#!/usr/bin/env bash
# Where do the mining seconds go? Runs a small EnuMiner job and a small
# RLMiner job on generated covid data with --trace-json/--metrics-json and
# prints the top spans by self time for each (tools/trace_stats.cc).
#
#   scripts/profile.sh [BUILD_DIR]     default build dir: build
#
# Artifacts land in BUILD_DIR/profile/: per-method trace JSON (loadable in
# chrome://tracing or https://ui.perfetto.dev) and metrics JSON (the full
# registry dump: node expansions, prune reasons, cache hit/miss, DQN stats).
# The final stage smokes the sampling CPU profiler: --profile-out collapsed
# stacks, a mid-run GET /profile scrape, a rules-identity check against an
# unprofiled baseline, and an SVG flame graph via tools/flamegraph.py.
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
if [[ ! -x "$build/tools/erminer" || ! -x "$build/tools/trace_stats" ]]; then
  echo "building erminer + trace_stats in $build ..." >&2
  cmake -B "$build" -S . >/dev/null
  cmake --build "$build" -j "$(nproc)" --target erminer trace_stats >/dev/null
fi

out="$build/profile"
mkdir -p "$out/data"

echo "=== generating dataset (covid, 2000 rows) ==="
"$build/tools/erminer" generate --dataset=covid --out-dir="$out/data" \
  --input-size=2000 --master-size=2000 --seed=7

mine_common=(mine --input="$out/data/input.csv" --master="$out/data/master.csv"
             --y=infection_case --k=20 --support=20)

for method in enu rl; do
  echo
  echo "=== mining with --method=$method ==="
  extra=()
  if [[ "$method" == rl ]]; then extra=(--steps=200 --seed=17); fi
  "$build/tools/erminer" "${mine_common[@]}" --method="$method" \
    "${extra[@]}" \
    --trace-json="$out/trace_$method.json" \
    --metrics-json="$out/metrics_$method.json" >/dev/null
  echo "--- top 10 spans by self time ($method) ---"
  "$build/tools/trace_stats" --trace="$out/trace_$method.json" --top=10
done

echo
echo "=== live telemetry smoke (--telemetry-port / --run-dir / --metrics-stream) ==="
port=19417
"$build/tools/erminer" "${mine_common[@]}" --method=rl --steps=400 --seed=17 \
  --telemetry-port="$port" --run-dir="$out/run_rl" \
  --metrics-stream="$out/metrics_stream.jsonl" >/dev/null &
miner_pid=$!
scraped=0
for _ in $(seq 1 100); do
  if python3 scripts/watch_run.py --port="$port" --once 2>/dev/null; then
    scraped=1
    break
  fi
  kill -0 "$miner_pid" 2>/dev/null || break
  sleep 0.1
done
wait "$miner_pid"
if [[ "$scraped" == 1 ]]; then
  echo "scraped live /metrics.json from the running miner (above)"
else
  echo "warning: run finished before a scrape landed (tiny dataset)" >&2
fi
echo "--- run manifest ($out/run_rl) ---"
ls "$out/run_rl"
echo "episodes recorded: $(wc -l < "$out/run_rl/episodes.jsonl")"
echo "samples streamed:  $(wc -l < "$out/metrics_stream.jsonl")"

echo
echo "=== crash/resume smoke (--checkpoint-dir + ERMINER_FAULT + --resume) ==="
# Kill a checkpointed run mid-training with the deterministic fault
# injector (docs/checkpointing.md), then resume it to completion from the
# latest snapshot. Exercises the exact path a preempted long run takes.
ckpt_dir="$out/ckpt_rl"
rm -rf "$ckpt_dir" "$out/run_resume"
set +e
ERMINER_FAULT="train/episode_end:5" \
  "$build/tools/erminer" "${mine_common[@]}" --method=rl --steps=400 \
  --seed=17 --checkpoint-dir="$ckpt_dir" --checkpoint-every=1 \
  >/dev/null 2>"$out/fault.log"
fault_status=$?
set -e
if [[ "$fault_status" -ne 137 ]]; then  # 128 + SIGKILL
  echo "error: fault-injected run was not killed (exit $fault_status)" >&2
  cat "$out/fault.log" >&2
  exit 1
fi
echo "killed as planned: $(grep ERMINER_FAULT "$out/fault.log")"
echo "snapshots left behind: $(ls "$ckpt_dir" | tr '\n' ' ')"
"$build/tools/erminer" "${mine_common[@]}" --method=rl --steps=400 \
  --seed=17 --checkpoint-dir="$ckpt_dir" --resume \
  --run-dir="$out/run_resume" >/dev/null
echo "resumed run completed; provenance recorded in run_resume/config.json:"
grep -o '"provenance":{[^}]*}' "$out/run_resume/config.json"

echo
echo "=== sampling profiler smoke (--profile-out + live /profile) ==="
# Baseline rules without the profiler, then the same job with the profiler
# armed and the telemetry server up; mid-run GET /profile must return at
# least one collapsed stack, and the mined rules must be bit-identical to
# the unprofiled baseline (the profiler is strictly read-only).
"$build/tools/erminer" "${mine_common[@]}" --method=enu \
  --rules-out="$out/rules_baseline.txt" >/dev/null
port=19418
"$build/tools/erminer" "${mine_common[@]}" --method=rl --steps=400 --seed=17 \
  --rules-out="$out/rules_profiled.txt" \
  --profile-out="$out/prof_rl.collapsed:199" \
  --telemetry-port="$port" >/dev/null &
miner_pid=$!
live_stacks=0
for _ in $(seq 1 100); do
  if live=$(python3 - "$port" <<'EOF' 2>/dev/null
import sys, urllib.request
body = urllib.request.urlopen(
    f"http://127.0.0.1:{sys.argv[1]}/profile?seconds=1", timeout=10
).read().decode()
stacks = [l for l in body.splitlines() if l and not l.startswith("#")]
if not stacks:
    sys.exit(1)
print(len(stacks))
EOF
  ); then
    live_stacks=$live
    break
  fi
  kill -0 "$miner_pid" 2>/dev/null || break
  sleep 0.1
done
wait "$miner_pid"
if [[ "$live_stacks" -ge 1 ]]; then
  echo "live /profile returned $live_stacks collapsed stacks mid-run"
else
  echo "error: live /profile never returned a collapsed stack" >&2
  exit 1
fi
if [[ ! -s "$out/prof_rl.collapsed" ]]; then
  echo "error: --profile-out wrote no samples" >&2
  exit 1
fi
echo "continuous profile: $(wc -l < "$out/prof_rl.collapsed") unique stacks"
# Same dataset + enu baseline vs. the profiled enu run: identical rules.
"$build/tools/erminer" "${mine_common[@]}" --method=enu \
  --rules-out="$out/rules_profiled_enu.txt" \
  --profile-out="$out/prof_enu.collapsed" >/dev/null
if ! cmp -s "$out/rules_baseline.txt" "$out/rules_profiled_enu.txt"; then
  echo "error: rules differ with the profiler armed" >&2
  exit 1
fi
echo "rules bit-identical with and without the profiler"
python3 tools/flamegraph.py "$out/prof_rl.collapsed" > "$out/prof_rl.svg"
echo "flame graph rendered: $out/prof_rl.svg"

echo
echo "=== NN kernel profile smoke (fig12 + --profile-out) ==="
# The sparse+SIMD overhaul (docs/perf.md, "NN kernels") removed the
# Densify step and the dense first-layer scan from the DQN train path.
# Profile a training benchmark and assert the train-step stacks no longer
# root any time there — a tripwire against the densification creeping back.
if [[ ! -x "$build/bench/fig12_training_time" ]]; then
  echo "building fig12_training_time in $build ..." >&2
  cmake --build "$build" -j "$(nproc)" --target fig12_training_time >/dev/null
fi
"$build/bench/fig12_training_time" \
  --profile-out="$out/prof_fig12.collapsed:199" > "$out/fig12_bench.log"
train_stacks=$(grep -c '^dqn/train_step;' "$out/prof_fig12.collapsed" || true)
if [[ "$train_stacks" -lt 1 ]]; then
  echo "error: no dqn/train_step stacks sampled from fig12" >&2
  exit 1
fi
if grep -q 'Densify' "$out/prof_fig12.collapsed"; then
  echo "error: Densify is back in the train-step profile:" >&2
  grep 'Densify' "$out/prof_fig12.collapsed" >&2
  exit 1
fi
echo "train-step stacks sampled: $train_stacks; none spend time in Densify"

echo
echo "profile: traces and metrics written to $out/"
echo "open a trace_*.json in chrome://tracing or https://ui.perfetto.dev"
echo "open $out/prof_rl.svg in a browser for the CPU flame graph"
