#!/usr/bin/env python3
"""Compare two BENCH_JSON logs and fail on wall-clock regressions.

Usage:
  scripts/bench_compare.py BASELINE CANDIDATE [--threshold=PCT] [--min-secs=S]

Both inputs are files holding the stdout of one or more bench binaries
(bench/bench_util.h prints one `BENCH_JSON {...}` line per data point), e.g.

  build/bench/fig8_input_size               > baseline.log
  build/bench/fig8_input_size --no-refine   > candidate.log
  scripts/bench_compare.py baseline.log candidate.log

Records are matched by their identity fields — every scalar field except
timings (keys ending in `secs`/`seconds`/`_ms`/`_us`/`_ns` and latency
quantiles `p50`/`p90`/`p99`), `cpu_seconds`, `peak_rss_bytes` and the
`metrics` object. Millisecond/microsecond/nanosecond keys (`_ns` is what
bench/micro_primitives' per-call-vs-batched eval pair emits) are converted
to seconds before the --min-secs gate and the report, so all columns
compare in one unit. A record key that appears several times (multiple
trials) is averaged before comparison. For each matched record, every
timing field present on both sides is compared; the script exits 1 if any
timing regresses by more than --threshold percent (default 10) while both
sides exceed --min-secs (default 0.01 s — below that, timer noise
dominates). Identity mismatches (records present on only one side) are
reported but are not failures: sweeps legitimately differ across flags.

The `simd` field (the NN kernel dispatch level, bench/bench_util.h) is
metadata, not identity: results are bit-identical across levels, so records
from different levels describe the same work. But their timings are not
comparable — if both logs carry `simd` and their level sets differ, the
comparison is refused outright rather than reporting a phantom
regression/improvement. Re-run one side under ERMINER_SIMD=<level> to
match. Logs predating the field compare as before.

Decision-log counters (`decision_log/events`, `decision_log/dropped`) are
likewise metadata, never identity: mining results are bit-identical with
and without --decision-log, so a log armed on only one side must still
match. A nonzero `decision_log/dropped` is reported as a warning like the
other observability loss counters — those events are missing from the log.
"""

import json
import sys

MARKER = "BENCH_JSON "
NON_IDENTITY = {"cpu_seconds", "peak_rss_bytes", "metrics", "simd",
                "decision_log"}
# Observability loss counters: nonzero values mean the profile / sampled
# history / decision log under-represents the run, so timings may look
# cleaner (or provenance more complete) than they were. Reported as a
# warning, never a failure.
DROP_COUNTERS = ("profiler/dropped", "sampler/dropped_samples",
                 "decision_log/dropped")


def is_timing(key):
    if key == "cpu_seconds":
        return False
    return (key.endswith("secs") or key.endswith("seconds") or
            key.endswith("_ms") or key.endswith("_us") or
            key.endswith("_ns") or key in ("p50", "p90", "p99"))


def timing_seconds(key, value):
    """Normalizes a timing value to seconds by its key's unit suffix."""
    if key.endswith("_ms"):
        return value / 1e3
    if key.endswith("_us"):
        return value / 1e6
    if key.endswith("_ns"):
        return value / 1e9
    return value


def identity(record):
    items = []
    for key, value in sorted(record.items()):
        if key in NON_IDENTITY or is_timing(key):
            continue
        items.append((key, json.dumps(value, sort_keys=True)))
    return tuple(items)


def load(path):
    """path -> ({identity: {timing_key: mean}}, {drop_counter: total},
    {simd levels seen})."""
    sums = {}
    drops = {}
    simd = set()
    try:
        lines = open(path, encoding="utf-8").read().splitlines()
    except OSError as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    for line in lines:
        pos = line.find(MARKER)
        if pos < 0:
            continue
        try:
            record = json.loads(line[pos + len(MARKER):])
        except json.JSONDecodeError as e:
            sys.exit(f"bench_compare: bad BENCH_JSON line in {path}: {e}")
        if "simd" in record:
            simd.add(record["simd"])
        timings = {k: timing_seconds(k, float(v)) for k, v in record.items()
                   if is_timing(k) and isinstance(v, (int, float))}
        bucket = sums.setdefault(identity(record), {})
        for key, value in timings.items():
            total, count = bucket.get(key, (0.0, 0))
            bucket[key] = (total + value, count + 1)
        for counter in DROP_COUNTERS:
            value = record.get("metrics", {}).get(counter, 0)
            if isinstance(value, (int, float)) and value > 0:
                drops[counter] = drops.get(counter, 0) + value
    return ({ident: {k: total / count for k, (total, count) in bucket.items()}
             for ident, bucket in sums.items()}, drops, simd)


def describe(ident):
    return "{" + ", ".join(f"{k}={v}" for k, v in ident) + "}"


def main(argv):
    threshold = 10.0
    min_secs = 0.01
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg[len("--threshold="):])
        elif arg.startswith("--min-secs="):
            min_secs = float(arg[len("--min-secs="):])
        elif arg in ("-h", "--help"):
            print(__doc__.strip())
            return 0
        elif arg.startswith("-"):
            sys.exit(f"bench_compare: unknown flag {arg} (see --help)")
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.exit("usage: bench_compare.py BASELINE CANDIDATE "
                 "[--threshold=PCT] [--min-secs=S]")

    base, base_drops, base_simd = load(paths[0])
    cand, cand_drops, cand_simd = load(paths[1])
    if not base:
        sys.exit(f"bench_compare: no BENCH_JSON records in {paths[0]}")
    if not cand:
        sys.exit(f"bench_compare: no BENCH_JSON records in {paths[1]}")
    if base_simd and cand_simd and base_simd != cand_simd:
        sys.exit(
            f"bench_compare: SIMD kernel levels differ — {paths[0]} ran at "
            f"{{{', '.join(sorted(base_simd))}}} but {paths[1]} ran at "
            f"{{{', '.join(sorted(cand_simd))}}}; timings from different "
            f"kernel levels are not comparable. Re-run one side under "
            f"ERMINER_SIMD=<level> to match.")
    for path, drops in ((paths[0], base_drops), (paths[1], cand_drops)):
        for counter, total in sorted(drops.items()):
            print(f"warning: {path} lost {total:.0f} {counter} samples — "
                  f"its profile/history under-represents the run",
                  file=sys.stderr)

    regressions = []
    compared = 0
    for ident in sorted(set(base) & set(cand)):
        for key in sorted(set(base[ident]) & set(cand[ident])):
            a, b = base[ident][key], cand[ident][key]
            delta = (b - a) / a * 100.0 if a > 0 else 0.0
            marker = ""
            if delta > threshold and a > min_secs and b > min_secs:
                marker = "  REGRESSION"
                regressions.append((ident, key, a, b, delta))
            print(f"{describe(ident)} {key}: {a:.3f}s -> {b:.3f}s "
                  f"({delta:+.1f}%){marker}")
            compared += 1
    for ident in sorted(set(base) ^ set(cand)):
        side = paths[0] if ident in base else paths[1]
        print(f"{describe(ident)}: only in {side}")

    if compared == 0:
        sys.exit("bench_compare: no records matched between the two logs")
    print(f"\n{compared} timings compared, {len(regressions)} regressed "
          f"beyond {threshold:.1f}%")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
