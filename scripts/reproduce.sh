#!/usr/bin/env bash
# Build, test and regenerate every table/figure of the paper.
#   scripts/reproduce.sh          bench scale (minutes on one core)
#   scripts/reproduce.sh --full   paper-scale sizes and training budgets
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  echo "=== $b $* ==="
  "$b" "$@"
done
