#!/usr/bin/env python3
"""Terminal dashboard for a live erminer run's telemetry endpoint.

Usage:
  scripts/watch_run.py [--port=P] [--host=H] [--interval=S] [--once]
                       [--metrics=NAME,NAME,...] [--run-dir=DIR]

Polls http://HOST:PORT/metrics.json (the embedded server a run starts with
--telemetry-port=P) and redraws one line per watched metric with its current
value and a unicode sparkline of its recent history — counters are shown as
per-interval rates, gauges as values. With no --metrics, watches a default
set of mining/RL signals and adds any rl/* gauge it sees.

--run-dir=DIR additionally shows the run's last checkpoint (episode, age
and snapshot path) from the checkpoint events in DIR/episodes.jsonl — so a
glance answers "how much would a crash right now lose?".

When the run writes a decision log (--decision-log=FILE), the dashboard
also polls GET /decisions and shows the rule-emission rate and a breakdown
of the last-N prune reasons — a glance answers "is the miner still finding
rules, and what is cutting its search space?".

--once prints a single snapshot (no loop, no screen clearing) — usable from
scripts and smoke tests. Standard library only.
"""

import json
import os
import sys
import time
import urllib.error
import urllib.request

SPARK = "▁▂▃▄▅▆▇█"
DEFAULT_METRICS = [
    "enuminer/nodes_expanded",
    "evaluator/rules_evaluated",
    "rl/steps",
    "rl/episodes",
    "rl/episode_return",
    "rl/mean_loss",
    # Observability losses: nonzero means the sampled history / profile is
    # under-representing the run (ring too small, or sampling too fast).
    "sampler/dropped_samples",
    "profiler/dropped",
]
HISTORY = 40


def fetch(host, port):
    url = f"http://{host}:{port}/metrics.json"
    with urllib.request.urlopen(url, timeout=5) as response:
        return json.loads(response.read().decode("utf-8"))


def flatten(snapshot):
    """{name: (kind, value)} for counters and gauges."""
    out = {}
    for name, value in snapshot.get("counters", {}).items():
        out[name] = ("counter", float(value))
    for name, value in snapshot.get("gauges", {}).items():
        out[name] = ("gauge", float(value))
    return out


def sparkline(history):
    if not history:
        return ""
    lo, hi = min(history), max(history)
    if hi <= lo:
        return SPARK[0] * len(history)
    scale = (len(SPARK) - 1) / (hi - lo)
    return "".join(SPARK[int((v - lo) * scale)] for v in history)


def fetch_decisions(host, port, tail=64):
    """GET /decisions summary, or None when the server predates the
    endpoint or the log is not armed."""
    url = f"http://{host}:{port}/decisions?tail={tail}"
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, json.JSONDecodeError):
        return None


def decision_lines(dec, previous, interval):
    """Emission rate + last-N prune-reason breakdown for an armed log."""
    if not dec or not dec.get("armed"):
        return []
    events = dec.get("events", {})
    emits = float(events.get("emit", 0))
    delta = emits - previous.get("__decision_emits", emits)
    previous["__decision_emits"] = emits
    rate = delta / interval if interval > 0 else delta
    lines = [f"decision log: {dec.get('path', '')}  "
             f"emits {emits:.0f} ({rate:.1f}/s)  "
             f"dropped {dec.get('dropped', 0)}"]
    reasons = dec.get("prune_reasons", {})
    total = sum(reasons.values())
    if total:
        parts = ", ".join(
            f"{name} {100.0 * count / total:.0f}%"
            for name, count in sorted(reasons.items(), key=lambda kv: -kv[1]))
        lines.append(f"  last-{total} prunes: {parts}")
    return lines


def checkpoint_status(run_dir):
    """One line describing the newest checkpoint event in episodes.jsonl."""
    path = os.path.join(run_dir, "episodes.jsonl")
    last = None
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                if '"event":"checkpoint"' in line:
                    try:
                        last = json.loads(line)
                    except json.JSONDecodeError:
                        pass  # a partial trailing line during a live run
    except OSError as e:
        return f"checkpoint: cannot read {path}: {e}"
    if last is None:
        return "checkpoint: none written yet"
    snapshot = last.get("path", "")
    age = ""
    try:
        age = f", {time.time() - os.stat(snapshot).st_mtime:.0f}s ago"
    except OSError:
        age = ", snapshot pruned or moved"
    return (f"checkpoint: episode {last.get('episode', '?')} "
            f"(step {last.get('steps', '?')}){age}  {snapshot}")


def watched_names(requested, flat):
    if requested:
        return requested
    names = [n for n in DEFAULT_METRICS if n in flat]
    names += sorted(n for n, (kind, _) in flat.items()
                    if n.startswith("rl/") and kind == "gauge"
                    and n not in names)
    return names or sorted(flat)[:12]


def main(argv):
    host, port, interval, once, requested = "127.0.0.1", 9090, 1.0, False, []
    run_dir = ""
    for arg in argv[1:]:
        if arg.startswith("--port="):
            port = int(arg[len("--port="):])
        elif arg.startswith("--host="):
            host = arg[len("--host="):]
        elif arg.startswith("--interval="):
            interval = float(arg[len("--interval="):])
        elif arg == "--once":
            once = True
        elif arg.startswith("--metrics="):
            requested = [n for n in arg[len("--metrics="):].split(",") if n]
        elif arg.startswith("--run-dir="):
            run_dir = arg[len("--run-dir="):]
        elif arg in ("-h", "--help"):
            print(__doc__.strip())
            return 0
        else:
            sys.exit(f"watch_run: unknown flag {arg} (see --help)")

    histories = {}  # name -> list of plotted values
    previous = {}   # name -> last raw counter value, for rates
    while True:
        try:
            flat = flatten(fetch(host, port))
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as e:
            if run_dir:
                print(checkpoint_status(run_dir))
            sys.exit(f"watch_run: cannot scrape {host}:{port}: {e}")
        names = watched_names(requested, flat)
        lines = []
        for name in names:
            kind, value = flat.get(name, ("gauge", 0.0))
            if kind == "counter":
                plotted = value - previous.get(name, value)
                previous[name] = value
                label = f"{value:.0f} (+{plotted:.0f})"
            else:
                plotted = value
                label = f"{value:.4g}"
            history = histories.setdefault(name, [])
            history.append(plotted)
            del history[:-HISTORY]
            lines.append(f"{name:<32} {label:>18}  {sparkline(history)}")
        lines.extend(decision_lines(fetch_decisions(host, port),
                                    previous, interval))
        if run_dir:
            lines.append(checkpoint_status(run_dir))
        if once:
            print("\n".join(lines))
            return 0
        # Full-screen redraw, plain ANSI (no curses dependency).
        sys.stdout.write("\x1b[2J\x1b[H")
        sys.stdout.write(f"watching http://{host}:{port}/metrics.json "
                         f"every {interval}s (ctrl-c to stop)\n\n")
        sys.stdout.write("\n".join(lines) + "\n")
        sys.stdout.flush()
        time.sleep(interval)


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except KeyboardInterrupt:
        sys.exit(0)
