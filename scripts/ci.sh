#!/usr/bin/env bash
# One-shot tier-1 gate — the single entry point a PR runs before merge:
#   1. configure + build          (build/)
#   2. the full ctest suite
#   3. ThreadSanitizer on the labelled interleaving tests and UBSan on the
#      SIMD kernels (scripts/sanitize.sh --tsan / --ubsan; the ASan stage
#      is left to scheduled runs — it rebuilds the world a third time and
#      re-runs the whole suite)
#   4. bench_compare structural smoke: re-run the micro eval batching pair
#      and diff its BENCH_JSON records against the committed baseline log
#      with an effectively-infinite threshold. The gate is "records parse
#      and identities match" — it catches renamed or dropped timing keys
#      and broken BENCH_JSON emission, not wall-clock drift (CI machines
#      vary; real performance gating diffs two logs from one machine, see
#      scripts/bench_compare.py --help).
# Usage:
#   scripts/ci.sh           all stages
#   scripts/ci.sh --fast    stages 1, 2 and 4 (the edit-compile-test loop)
set -euo pipefail
cd "$(dirname "$0")/.."

fast=false
case "${1:-}" in
  --fast) fast=true ;;
  "") ;;
  *) echo "usage: scripts/ci.sh [--fast]" >&2; exit 2 ;;
esac

echo "=== ci: configure + build ==="
cmake -B build -S .
cmake --build build -j "$(nproc)"

echo "=== ci: ctest ==="
ctest --test-dir build -j "$(nproc)" --output-on-failure

if ! $fast; then
  scripts/sanitize.sh --tsan
  scripts/sanitize.sh --ubsan
fi

echo "=== ci: bench_compare smoke ==="
candidate="$(mktemp)"
trap 'rm -f "$candidate"' EXIT
./build/bench/micro_primitives \
  --benchmark_filter='BM_Eval(GetPerCall|Batch)/' \
  --benchmark_min_time=0.02 > "$candidate"
python3 scripts/bench_compare.py bench/baselines/micro_eval.log \
  "$candidate" --threshold=100000

echo "ci: all stages passed"
