#!/usr/bin/env bash
# Sanitizer gate for the concurrency layer (see docs/parallelism.md).
#   scripts/sanitize.sh           TSan on the concurrency tests, then
#                                 ASan+UBSan on the whole suite
#   scripts/sanitize.sh --tsan    TSan stage only
#   scripts/sanitize.sh --asan    ASan+UBSan stage only
# The TSan stage runs only the tests labelled `concurrency`, `checkpoint`
# or `profiler` (the pool, differential, stress and obs_concurrency tests,
# the checkpoint/crash-resume harness, and the SIGPROF profiler/watchdog
# tests) because TSan's ~10x slowdown makes the full suite impractical;
# those tests are written to maximize interleavings, so they are where a
# data race in the pool, the cache, the index, the metrics/trace layer,
# the signal-checkpoint path or the profiler's rings would show.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=true
run_asan=true
case "${1:-}" in
  --tsan) run_asan=false ;;
  --asan) run_tsan=false ;;
  "") ;;
  *) echo "usage: scripts/sanitize.sh [--tsan|--asan]" >&2; exit 2 ;;
esac

if $run_tsan; then
  echo "=== ThreadSanitizer: concurrency tests ==="
  cmake -B build-tsan -S . -DERMINER_SANITIZE=thread
  cmake --build build-tsan -j "$(nproc)"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 suppressions=$PWD/scripts/tsan.supp" \
    ctest --test-dir build-tsan -L "concurrency|checkpoint|profiler" \
    --output-on-failure
fi

if $run_asan; then
  echo "=== AddressSanitizer+UBSan: full suite ==="
  cmake -B build-asan -S . -DERMINER_SANITIZE=address
  cmake --build build-asan -j "$(nproc)"
  ASAN_OPTIONS="detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
fi

echo "sanitize: all stages passed"
