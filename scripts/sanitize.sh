#!/usr/bin/env bash
# Sanitizer gate for the concurrency layer (see docs/parallelism.md).
#   scripts/sanitize.sh           TSan on the concurrency tests, then
#                                 ASan+UBSan on the whole suite, then
#                                 UBSan-at-full-opt on the SIMD kernels
#   scripts/sanitize.sh --tsan    TSan stage only
#   scripts/sanitize.sh --asan    ASan+UBSan stage only
#   scripts/sanitize.sh --ubsan   UBSan kernel stage only
# The TSan stage runs only the tests labelled `concurrency`, `checkpoint`,
# `profiler`, `decision` or `search` (the pool, differential, stress and
# obs_concurrency tests, the checkpoint/crash-resume harness, the SIGPROF
# profiler/watchdog tests, the decision-log round-trip/differential tests,
# and the search-engine units that exercise EvalCache::GetBatch's locking)
# because TSan's ~10x slowdown makes the full suite impractical;
# those tests are written to maximize interleavings, so they are where a
# data race in the pool, the cache, the index, the metrics/trace layer,
# the signal-checkpoint path or the profiler's rings would show.
# The UBSan stage exists because the ASan stage changes codegen: it builds
# with -DERMINER_SANITIZE=undefined (UBSan alone, every finding fatal, no
# ASan instrumentation perturbing vectorization) and runs the NN kernel
# differential test, so the SSE2/AVX2 kernels are checked for misaligned
# loads and out-of-bounds lane arithmetic in the same codegen that ships.
set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=true
run_asan=true
run_ubsan=true
case "${1:-}" in
  --tsan) run_asan=false; run_ubsan=false ;;
  --asan) run_tsan=false; run_ubsan=false ;;
  --ubsan) run_tsan=false; run_asan=false ;;
  "") ;;
  *) echo "usage: scripts/sanitize.sh [--tsan|--asan|--ubsan]" >&2; exit 2 ;;
esac

if $run_tsan; then
  echo "=== ThreadSanitizer: concurrency tests ==="
  cmake -B build-tsan -S . -DERMINER_SANITIZE=thread
  cmake --build build-tsan -j "$(nproc)"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 suppressions=$PWD/scripts/tsan.supp" \
    ctest --test-dir build-tsan -L "concurrency|checkpoint|profiler|decision|search" \
    --output-on-failure
fi

if $run_asan; then
  echo "=== AddressSanitizer+UBSan: full suite ==="
  cmake -B build-asan -S . -DERMINER_SANITIZE=address
  cmake --build build-asan -j "$(nproc)"
  ASAN_OPTIONS="detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
fi

if $run_ubsan; then
  echo "=== UBSan at full optimization: NN kernel differential test ==="
  cmake -B build-ubsan -S . -DERMINER_SANITIZE=undefined
  cmake --build build-ubsan -j "$(nproc)" --target nn_kernel_differential_test
  # Every dispatch level the CPU offers, so the vector TUs actually run.
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ./build-ubsan/tests/nn_kernel_differential_test
fi

echo "sanitize: all stages passed"
