// Summarizes a Chrome trace JSON file written by --trace-json: per-span-name
// totals, self time (duration minus time spent in child spans), call counts
// and per-call duration quantiles (p50/p90/p99), sorted by self time.
// Answers "where did the mining seconds go" from the command line, without
// loading the trace into a browser.
//
//   trace_stats --trace=FILE [--top=N]
//
// Parses the one-event-per-line format TraceRecorder::ToJson emits (this is
// a contract: see src/obs/trace.h). Self time uses the per-tid export order
// — events sorted by (ts asc, dur desc), so a parent precedes the children
// it contains — with an interval stack: when an event starts inside the
// interval on top of the stack, its duration is subtracted from that
// parent's self time.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

struct Event {
  std::string name;
  int64_t ts = 0;
  int64_t dur = 0;
  int64_t tid = 0;
};

struct NameStats {
  uint64_t calls = 0;
  int64_t total_us = 0;
  int64_t self_us = 0;
  std::vector<int64_t> durs_us;  // per-call durations, for quantiles
};

/// Nearest-rank quantile over an (unsorted on entry) duration list.
double QuantileMs(std::vector<int64_t>* durs, double q) {
  if (durs->empty()) return 0.0;
  std::sort(durs->begin(), durs->end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(durs->size()));
  if (idx >= durs->size()) idx = durs->size() - 1;
  return static_cast<double>((*durs)[idx]) * 1e-3;
}

std::string JsonString(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  return line.substr(pos, line.find('"', pos) - pos);
}

bool JsonInt(const std::string& line, const char* key, int64_t* out) {
  const std::string needle = std::string("\"") + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtoll(line.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  size_t top = 10;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--trace=", 8) == 0) {
      path = a + 8;
    } else if (std::strncmp(a, "--top=", 6) == 0) {
      top = static_cast<size_t>(std::atoll(a + 6));
    } else {
      std::fprintf(stderr, "usage: trace_stats --trace=FILE [--top=N]\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: trace_stats --trace=FILE [--top=N]\n");
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  // One complete ("X") event per line; metadata ("M") lines are skipped.
  std::vector<Event> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    Event e;
    e.name = JsonString(line, "name");
    if (e.name.empty()) continue;
    if (!JsonInt(line, "ts", &e.ts) || !JsonInt(line, "dur", &e.dur) ||
        !JsonInt(line, "tid", &e.tid)) {
      continue;
    }
    events.push_back(std::move(e));
  }
  if (events.empty()) {
    std::fprintf(stderr, "no complete events in %s\n", path.c_str());
    return 1;
  }

  // The file is already in per-tid (ts asc, dur desc) order, but re-sorting
  // makes the tool robust to traces merged or filtered by other scripts.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.dur > b.dur;
                   });

  std::map<std::string, NameStats> stats;
  int64_t wall_us = 0;
  // Interval stack per tid: pop every frame that ended before this event
  // starts; whatever remains on top is the enclosing parent.
  std::vector<const Event*> stack;
  int64_t cur_tid = -1;
  for (const Event& e : events) {
    if (e.tid != cur_tid) {
      stack.clear();
      cur_tid = e.tid;
    }
    while (!stack.empty() &&
           stack.back()->ts + stack.back()->dur <= e.ts) {
      stack.pop_back();
    }
    NameStats& s = stats[e.name];
    s.calls += 1;
    s.total_us += e.dur;
    s.self_us += e.dur;
    s.durs_us.push_back(e.dur);
    if (!stack.empty()) stats[stack.back()->name].self_us -= e.dur;
    stack.push_back(&e);
    wall_us = std::max(wall_us, e.ts + e.dur);
  }

  std::vector<std::pair<std::string, NameStats>> rows(stats.begin(),
                                                      stats.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.self_us > b.second.self_us;
                   });

  std::printf("%zu events, %.3f s traced (max end timestamp)\n",
              events.size(), static_cast<double>(wall_us) * 1e-6);
  std::printf("%-32s %10s %12s %12s %10s %10s %10s\n", "span", "calls",
              "total_ms", "self_ms", "p50_ms", "p90_ms", "p99_ms");
  for (size_t i = 0; i < rows.size() && i < top; ++i) {
    NameStats& s = rows[i].second;
    std::printf("%-32s %10llu %12.3f %12.3f %10.3f %10.3f %10.3f\n",
                rows[i].first.c_str(),
                static_cast<unsigned long long>(s.calls),
                static_cast<double>(s.total_us) * 1e-3,
                static_cast<double>(s.self_us) * 1e-3,
                QuantileMs(&s.durs_us, 0.50), QuantileMs(&s.durs_us, 0.90),
                QuantileMs(&s.durs_us, 0.99));
  }
  return 0;
}
