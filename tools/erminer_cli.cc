// erminer — command-line front end for the library.
//
//   erminer generate --dataset=covid --out-dir=DIR [--input-size=N]
//           [--master-size=N] [--noise=R] [--seed=N]
//       Writes input.csv (dirty), master.csv (clean) and truth.csv (the
//       clean input) for one of the four paper datasets.
//
//   erminer mine --input=F.csv --master=F.csv --y=NAME [--y-master=NAME]
//           [--method=rl|enu|enuh3|ctane|beam] [--k=N] [--support=N]
//           [--steps=N] [--seed=N] [--negations] [--no-refine]
//           [--no-batch-eval]
//           [--rules-out=FILE] [--checkpoint-dir=DIR] [--checkpoint-every=N]
//           [--checkpoint-keep=N] [--resume[=latest|PATH]]
//       Discovers editing rules (schemas are matched by column name) and
//       prints them; optionally writes a rules file. With --checkpoint-dir
//       the RL trainer snapshots its full state every N episodes (default
//       1) and --resume=latest continues a killed run bit-identically
//       (docs/checkpointing.md).
//
//   erminer repair --input=F.csv --master=F.csv --y=NAME [--y-master=NAME]
//           --rules=FILE [--out=FILE] [--certain] [--overwrite]
//       Applies a rules file. By default only missing Y cells are filled
//       (certainty-weighted vote); --overwrite also replaces non-null
//       cells with the vote; --certain applies strict certain fixes
//       (which, by the eR semantics, may safely replace non-null cells).
//
//   erminer eval --pred=F.csv --truth=F.csv --y=NAME
//       Weighted precision/recall/F1 of a repaired table against a truth
//       table (row-aligned).
//
//   erminer detect --input=F.csv --master=F.csv --y=NAME [--y-master=NAME]
//           --rules=FILE [--min-certainty=R] [--limit=N]
//       Flags cells whose value provably conflicts with the rules'
//       unanimous master candidates (error detection, no repair).
//
//   erminer profile --input=F.csv [--y=NAME] [--top=N]
//       Column statistics (distincts, nulls, entropy, top values) and —
//       with --y — a ranking of which attributes determine Y (normalized
//       mutual information).
//
//   erminer pipeline --config=FILE
//       Config-driven end-to-end run: load/generate -> match -> mine ->
//       detect -> repair -> report (see src/eval/pipeline.h for the keys).
//
//   erminer explain --log=FILE --rule=HEX16
//       Replays one rule's decision path out of a --decision-log file: the
//       expansion chain that produced it (episode trajectory with Q-values
//       for RLMiner), the prunes taken along the way, and the cells it
//       repaired. Rule ids are printed by `mine` and written to rules files
//       as id=<16 hex>.
//
// Every command accepts --threads=N (0 = hardware concurrency, default 1 =
// serial). Results are bit-identical for every N; see docs/parallelism.md.
//
// Every command also accepts the observability flags (docs/observability.md):
//   --metrics-json=FILE     dump the process-wide metrics registry on exit
//   --trace-json=FILE       record scoped spans; write Chrome trace JSON
//   --telemetry-port=P      embedded HTTP endpoint while the run is live:
//                           GET /metrics (Prometheus text), /metrics.json,
//                           /trace.json, /healthz (P=0 picks a free port)
//   --metrics-stream=FILE   periodic sampler streaming counter deltas as
//                           JSONL (interval: --sample-interval-ms, def 1000)
//   --log-json[=FILE]       structured JSON log records with span
//                           correlation (default: stderr)
//   --decision-log=FILE     record the decision-provenance event log: every
//                           candidate expansion, prune (with reason and the
//                           triggering measure), rule emission, RL step and
//                           repaired cell, replayable with `erminer explain`
//                           and tools/decision_stats; live summary at
//                           GET /decisions?tail=N on the telemetry server
//   --run-dir=DIR           per-run manifest: config.json at start,
//                           episodes.jsonl appended live during RL
//                           training, summary.json on clean completion
//   --profile-out=FILE[:hz] continuous sampling CPU profiler (SIGPROF,
//                           default 99 Hz): collapsed stacks with the
//                           innermost ERMINER_SPAN as root frame, written
//                           on exit (tools/flamegraph.py renders SVG).
//                           Also live via GET /profile?seconds=N&hz=H on
//                           the telemetry server.
//   --watchdog-sec=N        stall watchdog: if no span/metric/pool
//                           activity for N seconds, write a stall artifact
//                           (all-thread span stacks + profile burst) to
//                           the run dir (or cwd) and log a stall event
// SIGINT/SIGTERM flush metrics/trace/stream/profile files before exiting,
// so an interrupted run still leaves its artifacts.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "core/beam_miner.h"
#include "core/certain_fix.h"
#include "core/cfd_miner.h"
#include "core/enu_miner.h"
#include "core/repair.h"
#include "core/rule_explain.h"
#include "core/rule_io.h"
#include "core/violations.h"
#include "data/csv.h"
#include "data/stats.h"
#include "eval/table.h"
#include "datagen/generators.h"
#include "eval/experiment.h"
#include "eval/pipeline.h"
#include "obs/decision_explain.h"
#include "obs/decision_log.h"
#include "obs/flush.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/run_manifest.h"
#include "obs/sampler.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "rl/rl_miner.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace erminer {
namespace {

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", a.c_str());
        std::exit(2);
      }
      a = a.substr(2);
      size_t eq = a.find('=');
      if (eq == std::string::npos) {
        values_[a] = "true";
      } else {
        values_[a.substr(0, eq)] = a.substr(eq + 1);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& dflt = "") {
    used_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  long GetInt(const std::string& key, long dflt) {
    std::string v = Get(key);
    return v.empty() ? dflt : std::atol(v.c_str());
  }
  double GetDouble(const std::string& key, double dflt) {
    std::string v = Get(key);
    return v.empty() ? dflt : std::atof(v.c_str());
  }
  bool GetBool(const std::string& key) { return Get(key) == "true"; }

  std::string Require(const std::string& key) {
    std::string v = Get(key);
    if (v.empty()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return v;
  }

  /// Every flag as parsed, for the run manifest's config.json.
  const std::map<std::string, std::string>& raw_values() const {
    return values_;
  }

  /// Rejects typo'd flags.
  void CheckAllUsed() const {
    for (const auto& [k, v] : values_) {
      if (!used_.count(k)) {
        std::fprintf(stderr, "unknown flag --%s\n", k.c_str());
        std::exit(2);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> used_;
};

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueOrDie();
}

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

int CmdGenerate(Flags* flags) {
  std::string dataset = flags->Require("dataset");
  std::string out_dir = flags->Require("out-dir");
  GenOptions gen;
  gen.input_size = static_cast<size_t>(flags->GetInt("input-size", 0));
  gen.master_size = static_cast<size_t>(flags->GetInt("master-size", 0));
  gen.noise_rate = flags->GetDouble("noise", 0.1);
  gen.seed = static_cast<uint64_t>(flags->GetInt("seed", 7));
  flags->CheckAllUsed();
  GeneratedDataset ds = Unwrap(MakeByName(dataset, gen), "generate");
  Check(WriteCsvFile(ds.input, out_dir + "/input.csv"), "write input.csv");
  Check(WriteCsvFile(ds.master, out_dir + "/master.csv"),
        "write master.csv");
  Check(WriteCsvFile(ds.clean_input, out_dir + "/truth.csv"),
        "write truth.csv");
  std::printf("wrote %s/{input,master,truth}.csv (%zu input rows, %zu "
              "master rows, %zu injected errors); Y attribute: %s\n",
              out_dir.c_str(), ds.input.num_rows(), ds.master.num_rows(),
              ds.injection.num_errors,
              ds.input.schema.attribute(static_cast<size_t>(ds.y_input))
                  .name.c_str());
  return 0;
}

Corpus LoadCorpus(Flags* flags, int* y_out) {
  StringTable input = Unwrap(ReadCsvFile(flags->Require("input")), "input");
  StringTable master =
      Unwrap(ReadCsvFile(flags->Require("master")), "master");
  std::string y_name = flags->Require("y");
  std::string ym_name = flags->Get("y-master", y_name);
  int y = input.schema.IndexOf(y_name);
  int ym = master.schema.IndexOf(ym_name);
  if (y < 0 || ym < 0) {
    std::fprintf(stderr, "Y attribute '%s'/'%s' not found\n", y_name.c_str(),
                 ym_name.c_str());
    std::exit(2);
  }
  SchemaMatch match = SchemaMatch::ByName(input.schema, master.schema);
  if (match.num_pairs() == 0) {
    std::fprintf(stderr, "no matching column names between the schemas\n");
    std::exit(2);
  }
  *y_out = y;
  return Unwrap(Corpus::Build(std::move(input), std::move(master), match, y,
                              ym),
                "corpus");
}

int CmdMine(Flags* flags) {
  int y = 0;
  Corpus corpus = LoadCorpus(flags, &y);
  std::string method = flags->Get("method", "rl");
  MinerOptions options;
  options.k = static_cast<size_t>(flags->GetInt("k", 50));
  options.support_threshold = flags->GetDouble(
      "support",
      std::max(10.0, static_cast<double>(corpus.input().num_rows()) / 40.0));
  options.include_negations = flags->GetBool("negations");
  // Escape hatches for the partition-refinement engine (docs/perf.md) and
  // the batched sibling evaluation path (docs/architecture.md); results
  // are bit-identical either way.
  options.refine = !flags->GetBool("no-refine");
  options.batch_eval = !flags->GetBool("no-batch-eval");
  RlMinerOptions rl;
  rl.base = options;
  rl.train_steps = static_cast<size_t>(flags->GetInt("steps", 3000));
  rl.seed = static_cast<uint64_t>(flags->GetInt("seed", 17));
  // Crash-safe training snapshots (docs/checkpointing.md). A bare --resume
  // parses as "true", meaning "latest".
  rl.checkpoint.dir = flags->Get("checkpoint-dir");
  rl.checkpoint.every_episodes = static_cast<size_t>(
      flags->GetInt("checkpoint-every", rl.checkpoint.dir.empty() ? 0 : 1));
  rl.checkpoint.keep_last =
      static_cast<size_t>(flags->GetInt("checkpoint-keep", 3));
  rl.resume = flags->Get("resume");
  if (rl.resume == "true") rl.resume = "latest";
  std::string rules_out = flags->Get("rules-out");
  bool explain = flags->GetBool("explain");
  flags->CheckAllUsed();

  MineResult result;
  if (method == "rl") {
    RlMiner miner(&corpus, rl);
    Check(miner.Resume(), "resume");
    result = miner.Mine();
  } else if (method == "enu") {
    result = EnuMine(corpus, options);
  } else if (method == "enuh3") {
    result = EnuMineH3(corpus, options);
  } else if (method == "ctane") {
    result = CfdMine(corpus, options);
  } else if (method == "beam") {
    result = BeamMine(corpus, options);
  } else {
    std::fprintf(stderr, "unknown method %s\n", method.c_str());
    return 2;
  }
  std::printf("# %zu rules (eta_s=%.0f, %.2fs, %zu rule evaluations)\n",
              result.rules.size(), options.support_threshold, result.seconds,
              result.rule_evaluations);
  RuleEvaluator explainer(&corpus);
  for (const auto& sr : result.rules) {
    // The id is the rule's provenance id — the join key into a
    // --decision-log file (`erminer explain <id>`).
    std::printf("U=%8.2f S=%6ld C=%.3f Q=%+.3f id=%016llx  %s\n",
                sr.stats.utility, sr.stats.support, sr.stats.certainty,
                sr.stats.quality,
                static_cast<unsigned long long>(sr.provenance),
                sr.rule.ToString(corpus).c_str());
    if (explain) {
      RuleExplanation ex = ExplainRule(&explainer, sr.rule);
      std::printf("%s", FormatExplanation(ex).c_str());
    }
  }
  if (!rules_out.empty()) {
    Check(WriteRulesFile(result.rules, corpus, rules_out), "write rules");
    std::printf("# rules written to %s\n", rules_out.c_str());
  }
  return 0;
}

int CmdRepair(Flags* flags) {
  int y = 0;
  Corpus corpus = LoadCorpus(flags, &y);
  std::string rules_path = flags->Require("rules");
  std::string out = flags->Get("out");
  bool certain_only = flags->GetBool("certain");
  bool overwrite = flags->GetBool("overwrite");
  flags->CheckAllUsed();

  auto rules = Unwrap(ReadRulesFile(rules_path, corpus), "rules");
  RuleEvaluator evaluator(&corpus);

  std::vector<ValueCode> prediction;
  if (certain_only) {
    CertainFixOutcome cf = ComputeCertainFixes(&evaluator, rules);
    prediction = cf.fix;
    std::printf("certain fixes: %zu certain, %zu ambiguous, %zu "
                "conflicting, %zu uncovered\n",
                cf.num_certain, cf.num_ambiguous, cf.num_conflicting,
                cf.num_uncovered);
  } else {
    RepairOutcome outcome = ApplyRules(&evaluator, rules);
    prediction = outcome.prediction;
    std::printf("repaired %zu of %zu tuples (certainty-weighted vote)\n",
                outcome.num_predictions, corpus.input().num_rows());
  }

  if (!out.empty()) {
    StringTable repaired = corpus.input().Decode();
    Domain* dy = corpus.y_domain().get();
    size_t changed = 0;
    for (size_t r = 0; r < repaired.num_rows(); ++r) {
      if (prediction[r] == kNullCode) continue;
      auto& cell = repaired.rows[r][static_cast<size_t>(y)];
      // Non-null cells are replaced only under --overwrite or --certain;
      // a certain fix is unique across all applicable rules, so the eR
      // semantics justify replacing a conflicting value.
      if (!cell.empty() && !overwrite && !certain_only) continue;
      std::string fix = dy->value(prediction[r]);
      if (cell != fix) {
        cell = fix;
        ++changed;
      }
    }
    Check(WriteCsvFile(repaired, out), "write repaired");
    std::printf("%zu cells changed; repaired table written to %s\n", changed,
                out.c_str());
  }
  return 0;
}

int CmdEval(Flags* flags) {
  StringTable pred = Unwrap(ReadCsvFile(flags->Require("pred")), "pred");
  StringTable truth = Unwrap(ReadCsvFile(flags->Require("truth")), "truth");
  std::string y_name = flags->Require("y");
  flags->CheckAllUsed();
  int yp = pred.schema.IndexOf(y_name);
  int yt = truth.schema.IndexOf(y_name);
  if (yp < 0 || yt < 0 || pred.num_rows() != truth.num_rows()) {
    std::fprintf(stderr, "tables not aligned or Y missing\n");
    return 2;
  }
  Domain dom;
  std::vector<ValueCode> p, t;
  for (size_t r = 0; r < pred.num_rows(); ++r) {
    p.push_back(dom.GetOrAdd(pred.rows[r][static_cast<size_t>(yp)]));
    t.push_back(dom.GetOrAdd(truth.rows[r][static_cast<size_t>(yt)]));
  }
  ClassificationReport rep = WeightedPrf(t, p);
  std::printf("rows=%zu predicted=%zu precision=%.4f recall=%.4f f1=%.4f\n",
              rep.num_rows, rep.num_predicted, rep.precision, rep.recall,
              rep.f1);
  return 0;
}

int CmdDetect(Flags* flags) {
  int y = 0;
  Corpus corpus = LoadCorpus(flags, &y);
  std::string rules_path = flags->Require("rules");
  ViolationOptions vopts;
  vopts.min_certainty = flags->GetDouble("min-certainty", 1.0);
  size_t limit = static_cast<size_t>(flags->GetInt("limit", 20));
  flags->CheckAllUsed();

  auto rules = Unwrap(ReadRulesFile(rules_path, corpus), "rules");
  RuleEvaluator evaluator(&corpus);
  ViolationReport report = DetectViolations(&evaluator, rules, vopts);
  std::printf("%zu violations across %zu rows (%zu covered rows have a "
              "missing value instead)\n",
              report.violations.size(), report.num_flagged_rows,
              report.num_missing_covered);
  Domain* dy = corpus.y_domain().get();
  for (size_t i = 0; i < report.violations.size() && i < limit; ++i) {
    const Violation& v = report.violations[i];
    std::printf("  row %-6zu '%s' should be '%s' (rule %zu: %s)\n", v.row,
                dy->ValueOrNull(v.current).c_str(),
                dy->ValueOrNull(v.expected).c_str(), v.rule_index,
                rules[v.rule_index].rule.ToString(corpus).c_str());
  }
  return 0;
}

int CmdProfile(Flags* flags) {
  StringTable raw = Unwrap(ReadCsvFile(flags->Require("input")), "input");
  std::string y_name = flags->Get("y");
  size_t top = static_cast<size_t>(flags->GetInt("top", 3));
  flags->CheckAllUsed();
  Table table = Unwrap(Table::EncodeFresh(raw), "encode");

  TablePrinter printer(
      {"column", "distinct", "nulls", "entropy(bits)", "top values"});
  for (size_t c = 0; c < table.num_cols(); ++c) {
    ColumnStats s = ComputeColumnStats(table, c, top);
    std::string tops;
    for (size_t i = 0; i < s.top_values.size(); ++i) {
      if (i > 0) tops += ", ";
      tops += s.top_values[i].first + " (" +
              std::to_string(s.top_values[i].second) + ")";
    }
    printer.AddRow({s.name, std::to_string(s.num_distinct),
                    std::to_string(s.num_nulls), FormatDouble(s.entropy, 2),
                    tops});
  }
  printer.Print();

  if (!y_name.empty()) {
    int y = raw.schema.IndexOf(y_name);
    if (y < 0) {
      std::fprintf(stderr, "unknown column %s\n", y_name.c_str());
      return 2;
    }
    std::printf("\ndeterminants of %s (normalized mutual information):\n",
                y_name.c_str());
    for (const auto& d :
         RankDeterminants(table, static_cast<size_t>(y))) {
      std::printf("  %-24s %.3f\n",
                  raw.schema.attribute(d.determinant).name.c_str(), d.nmi);
    }
  }
  return 0;
}

int CmdExplain(Flags* flags) {
  std::string log_path = flags->Require("log");
  std::string rule_hex = flags->Require("rule");
  size_t max_prunes = static_cast<size_t>(flags->GetInt("max-prunes", 12));
  size_t max_repairs = static_cast<size_t>(flags->GetInt("max-repairs", 20));
  flags->CheckAllUsed();
  const uint64_t rule_id = std::strtoull(rule_hex.c_str(), nullptr, 16);
  if (rule_id == 0) {
    std::fprintf(stderr, "--rule must be a nonzero hex provenance id\n");
    return 2;
  }
  obs::DecisionLogContents log = obs::ReadDecisionLogFile(log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "%s: %s\n", log_path.c_str(), log.error.c_str());
    return 1;
  }
  if (log.truncated) {
    std::fprintf(stderr,
                 "# note: %s is truncated (killed writer); replaying the "
                 "%zu surviving events\n",
                 log_path.c_str(), log.events.size());
  }
  obs::DecisionPath path = obs::ReplayDecisionPath(log, rule_id);
  std::printf("%s", obs::FormatDecisionPath(path, max_prunes,
                                            max_repairs).c_str());
  return path.found ? 0 : 1;
}

int CmdPipeline(Flags* flags) {
  std::string path = flags->Require("config");
  flags->CheckAllUsed();
  Config config = Unwrap(Config::FromFile(path), "config");
  PipelineReport report = Unwrap(RunPipeline(config), "pipeline");
  std::printf("%s", report.Summary().c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: erminer <generate|mine|repair|eval|profile|detect|"
               "pipeline|explain> [--flags]\n"
               "see the header of tools/erminer_cli.cc for details\n");
  return 2;
}

// Live-telemetry state armed from the global flags. File-scope so the
// SIGINT/SIGTERM flush path (obs/flush.h, function pointers only) can reach
// it: an interrupted run still leaves metrics/trace files behind, and the
// sampler stream / episodes.jsonl are flushed per line anyway.
std::string g_metrics_json;
std::string g_trace_json;
std::string g_profile_out;
std::unique_ptr<obs::Sampler> g_sampler;
std::unique_ptr<obs::RunManifest> g_manifest;

void FlushObsExportFiles() {
  if (!g_metrics_json.empty()) {
    obs::MetricsRegistry::Global().WriteJsonFile(g_metrics_json);
  }
  if (!g_trace_json.empty()) {
    obs::TraceRecorder::Global().WriteJsonFile(g_trace_json);
  }
  if (!g_profile_out.empty()) {
    // Stop drains the rings so the file covers everything sampled; on the
    // normal exit path FinishTelemetry has already stopped it (idempotent).
    obs::Profiler::Global().Stop();
    obs::Profiler::Global().WriteCollapsedFile(g_profile_out);
  }
}

/// Arms everything the telemetry flags ask for. Exits with an error message
/// on unusable configuration (bad port, unwritable file) — better to fail
/// before a 40-minute training run than to discover it afterwards.
void ArmTelemetry(const std::string& cmd, Flags* flags) {
  const std::string log_json = flags->Get("log-json");
  if (!log_json.empty() &&
      !EnableJsonLogSink(log_json == "true" ? "" : log_json)) {
    std::fprintf(stderr, "cannot open --log-json file %s\n",
                 log_json.c_str());
    std::exit(1);
  }

  g_metrics_json = flags->Get("metrics-json");
  g_trace_json = flags->Get("trace-json");
  if (!g_trace_json.empty()) obs::TraceRecorder::Global().Enable();

  const long port = flags->GetInt("telemetry-port", -1);
  const long interval_ms = flags->GetInt("sample-interval-ms", 1000);
  const std::string stream = flags->Get("metrics-stream");
  const std::string run_dir = flags->Get("run-dir");
  std::string error;

  if (port >= 0) {
    obs::TelemetryServerOptions sopts;
    sopts.port = static_cast<int>(port);
    if (!obs::TelemetryServer::Global().Start(sopts, &error)) {
      std::fprintf(stderr, "telemetry server: %s\n", error.c_str());
      std::exit(1);
    }
    std::fprintf(stderr,
                 "telemetry: http://127.0.0.1:%d/{metrics,metrics.json,"
                 "trace.json,decisions,healthz}\n",
                 obs::TelemetryServer::Global().port());
  }

  if (!stream.empty()) {
    obs::SamplerOptions sopts;
    sopts.interval_ms = static_cast<int>(interval_ms);
    sopts.stream_path = stream;
    g_sampler = std::make_unique<obs::Sampler>(sopts);
    if (!g_sampler->Start(&error)) {
      std::fprintf(stderr, "metrics sampler: %s\n", error.c_str());
      std::exit(1);
    }
  }

  if (!run_dir.empty()) {
    std::map<std::string, std::string> config = flags->raw_values();
    config["command"] = cmd;
    g_manifest = obs::RunManifest::Open(run_dir, config, &error);
    if (g_manifest == nullptr) {
      std::fprintf(stderr, "run manifest: %s\n", error.c_str());
      std::exit(1);
    }
    obs::SetActiveRunManifest(g_manifest.get());
  }

  // Armed after the manifest so the log's path lands in config.json; the
  // log registers its own flush hook, and the signal handlers below make
  // sure a SIGINT/SIGTERM drains a partial log before the process dies.
  const std::string decision_log = flags->Get("decision-log");
  if (!decision_log.empty()) {
    if (!obs::DecisionLog::Global().Open(decision_log, &error)) {
      std::fprintf(stderr, "decision log: %s\n", error.c_str());
      std::exit(1);
    }
    if (g_manifest != nullptr) {
      g_manifest->SetProvenance("decision_log", decision_log);
    }
  }

  const std::string profile_spec = flags->Get("profile-out");
  if (!profile_spec.empty()) {
    obs::ProfilerOptions popts;
    g_profile_out = obs::ParseProfileOutSpec(profile_spec, &popts.hz);
    if (!obs::Profiler::Global().Start(popts, &error)) {
      std::fprintf(stderr, "profiler: %s\n", error.c_str());
      std::exit(1);
    }
  }

  const double watchdog_sec = flags->GetDouble("watchdog-sec", 0);
  if (watchdog_sec > 0) {
    obs::WatchdogOptions wopts;
    wopts.deadline_sec = watchdog_sec;
    wopts.artifact_dir = run_dir.empty() ? "." : run_dir;
    if (!obs::Watchdog::Global().Start(wopts, &error)) {
      std::fprintf(stderr, "watchdog: %s\n", error.c_str());
      std::exit(1);
    }
  }

  if (!g_metrics_json.empty() || !g_trace_json.empty() ||
      !g_profile_out.empty() || !decision_log.empty()) {
    obs::RegisterFlush(FlushObsExportFiles);
    obs::InstallSignalFlushHandlers();
  }
}

/// Orderly telemetry shutdown after the command returns: final sample,
/// summary.json (clean completions only — an interrupted run is marked by
/// its absence), export files, sockets closed.
void FinishTelemetry(int rc, double wall_seconds) {
  obs::SetPhase("shutdown");
  obs::Watchdog::Global().Stop();
  if (!g_profile_out.empty()) {
    obs::Profiler::Global().Stop();
    if (!obs::Profiler::Global().WriteCollapsedFile(g_profile_out)) {
      std::fprintf(stderr, "failed to write %s\n", g_profile_out.c_str());
    } else {
      std::fprintf(stderr,
                   "profile: %llu samples (%llu dropped) -> %s "
                   "(render: tools/flamegraph.py %s > profile.svg)\n",
                   static_cast<unsigned long long>(
                       obs::Profiler::Global().num_samples()),
                   static_cast<unsigned long long>(
                       obs::Profiler::Global().num_dropped()),
                   g_profile_out.c_str(), g_profile_out.c_str());
    }
  }
  if (g_sampler != nullptr) g_sampler->Stop();
  obs::DecisionLog::Global().Close();  // no-op when never armed
  if (g_manifest != nullptr) {
    obs::SetActiveRunManifest(nullptr);
    char summary[256];
    std::snprintf(summary, sizeof summary,
                  "{\"ok\":%s,\"exit_code\":%d,\"episodes\":%zu,"
                  "\"seconds\":%.3f,\"cpu_seconds\":%.3f,"
                  "\"peak_rss_bytes\":%zu}",
                  rc == 0 ? "true" : "false", rc,
                  g_manifest->episodes_appended(), wall_seconds,
                  CpuSeconds(), PeakRssBytes());
    g_manifest->WriteSummary(summary);
  }
  obs::TelemetryServer::Global().Stop();
}

}  // namespace
}  // namespace erminer

int main(int argc, char** argv) {
  using namespace erminer;  // NOLINT
  if (argc < 2) return Usage();
  Flags flags(argc, argv, 2);
  // Sized once up front; a pipeline config's `threads` key may override.
  SetGlobalThreads(flags.GetInt("threads", 1));
  std::string cmd = argv[1];
  // Telemetry is armed before the command runs and export files are written
  // after it returns (whatever its exit code, so a partial run still
  // explains itself); SIGINT/SIGTERM flush the same files.
  ArmTelemetry(cmd, &flags);
  Timer wall;
  int rc;
  if (cmd == "generate") { obs::SetPhase("generate"); rc = CmdGenerate(&flags); }
  else if (cmd == "mine") { obs::SetPhase("mine"); rc = CmdMine(&flags); }
  else if (cmd == "repair") { obs::SetPhase("repair"); rc = CmdRepair(&flags); }
  else if (cmd == "eval") { obs::SetPhase("eval"); rc = CmdEval(&flags); }
  else if (cmd == "profile") { obs::SetPhase("profile"); rc = CmdProfile(&flags); }
  else if (cmd == "detect") { obs::SetPhase("detect"); rc = CmdDetect(&flags); }
  else if (cmd == "pipeline") { obs::SetPhase("pipeline"); rc = CmdPipeline(&flags); }
  else if (cmd == "explain") { obs::SetPhase("explain"); rc = CmdExplain(&flags); }
  else return Usage();
  FinishTelemetry(rc, wall.Seconds());
  if (!g_metrics_json.empty() &&
      !obs::MetricsRegistry::Global().WriteJsonFile(g_metrics_json)) {
    std::fprintf(stderr, "failed to write %s\n", g_metrics_json.c_str());
    return 1;
  }
  if (!g_trace_json.empty() &&
      !obs::TraceRecorder::Global().WriteJsonFile(g_trace_json)) {
    std::fprintf(stderr, "failed to write %s\n", g_trace_json.c_str());
    return 1;
  }
  return rc;
}
