// Summarizes a --decision-log file: per-event-type and per-miner counts,
// prune-reason breakdown with the triggering measures, top emitted rules by
// utility, RL step/exploration statistics, and repair totals. Answers "what
// did the miner actually decide, and why" from the command line; use
// `erminer explain <rule-id>` to replay one rule's full path.
//
//   decision_stats --log=FILE [--top=N] [--rule=HEX16]
//
// With --rule the tool prints the one rule's replayed decision path instead
// of the aggregate view (same output as `erminer explain`).

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/decision_explain.h"
#include "obs/decision_log.h"

namespace {

using erminer::obs::DecisionEvent;
using erminer::obs::DecisionEventType;
using erminer::obs::DecisionMiner;
using erminer::obs::PruneReason;

struct PruneAgg {
  uint64_t count = 0;
  double measure_sum = 0;
};

int Run(const std::string& log_path, size_t top, uint64_t rule_id) {
  erminer::obs::DecisionLogContents log =
      erminer::obs::ReadDecisionLogFile(log_path);
  if (!log.ok()) {
    std::fprintf(stderr, "%s: %s\n", log_path.c_str(), log.error.c_str());
    return 1;
  }
  if (log.truncated) {
    std::printf("# truncated file (killed writer): %zu complete events "
                "survive\n",
                log.events.size());
  }

  if (rule_id != 0) {
    erminer::obs::DecisionPath path =
        erminer::obs::ReplayDecisionPath(log, rule_id);
    std::printf("%s", erminer::obs::FormatDecisionPath(path).c_str());
    return path.found ? 0 : 1;
  }

  std::map<uint8_t, uint64_t> by_type;
  std::map<uint8_t, uint64_t> by_miner;
  std::map<uint8_t, PruneAgg> by_reason;
  std::vector<const DecisionEvent*> emits;
  uint64_t rl_steps = 0, rl_explored = 0, rl_inference = 0, rl_trains = 0;
  double reward_sum = 0, loss_sum = 0;
  uint64_t repairs = 0, repairs_unresolved = 0;
  for (const DecisionEvent& e : log.events) {
    ++by_type[static_cast<uint8_t>(e.type)];
    switch (e.type) {
      case DecisionEventType::kExpand:
      case DecisionEventType::kEmit:
      case DecisionEventType::kPrune:
        ++by_miner[e.miner];
        break;
      default:
        break;
    }
    if (e.type == DecisionEventType::kPrune) {
      PruneAgg& agg = by_reason[e.reason];
      ++agg.count;
      agg.measure_sum += e.measure;
    } else if (e.type == DecisionEventType::kEmit) {
      emits.push_back(&e);
    } else if (e.type == DecisionEventType::kRlStep) {
      ++rl_steps;
      reward_sum += e.reward;
      if (e.flags & erminer::obs::kRlStepExplored) ++rl_explored;
      if (e.flags & erminer::obs::kRlStepInference) ++rl_inference;
    } else if (e.type == DecisionEventType::kRlTrain) {
      ++rl_trains;
      loss_sum += e.loss;
    } else if (e.type == DecisionEventType::kRepair) {
      ++repairs;
      if (e.master_row < 0) ++repairs_unresolved;
    }
  }

  std::printf("%zu events (format v%u)\n", log.events.size(), log.version);
  for (const auto& [t, n] : by_type) {
    std::printf("  %-8s %10" PRIu64 "\n",
                erminer::obs::DecisionEventTypeName(
                    static_cast<DecisionEventType>(t)),
                n);
  }
  if (!by_miner.empty()) {
    std::printf("by miner (expand+prune+emit):\n");
    for (const auto& [m, n] : by_miner) {
      std::printf("  %-8s %10" PRIu64 "\n",
                  erminer::obs::DecisionMinerName(
                      static_cast<DecisionMiner>(m)),
                  n);
    }
  }
  if (!by_reason.empty()) {
    std::printf("prune reasons:\n");
    for (const auto& [r, agg] : by_reason) {
      std::printf("  %-15s %10" PRIu64 "  (mean measure %.4f)\n",
                  erminer::obs::PruneReasonName(static_cast<PruneReason>(r)),
                  agg.count,
                  agg.count > 0
                      ? agg.measure_sum / static_cast<double>(agg.count)
                      : 0.0);
    }
  }
  if (!emits.empty()) {
    std::sort(emits.begin(), emits.end(),
              [](const DecisionEvent* a, const DecisionEvent* b) {
                return a->utility > b->utility;
              });
    std::printf("top emitted rules by utility (%zu of %zu):\n",
                std::min(top, emits.size()), emits.size());
    for (size_t i = 0; i < emits.size() && i < top; ++i) {
      const DecisionEvent& e = *emits[i];
      std::printf("  id=%016llx %-6s U=%10.2f S=%6" PRId64 " C=%.3f\n",
                  static_cast<unsigned long long>(e.rule_id),
                  erminer::obs::DecisionMinerName(
                      static_cast<DecisionMiner>(e.miner)),
                  e.utility, e.support, e.certainty);
    }
  }
  if (rl_steps > 0) {
    std::printf("rl: %" PRIu64 " steps (%" PRIu64 " explored, %" PRIu64
                " inference), mean reward %.4f; %" PRIu64
                " train updates, mean loss %.6f\n",
                rl_steps, rl_explored, rl_inference,
                reward_sum / static_cast<double>(rl_steps), rl_trains,
                rl_trains > 0 ? loss_sum / static_cast<double>(rl_trains)
                              : 0.0);
  }
  if (repairs > 0) {
    std::printf("repairs: %" PRIu64 " cells (%" PRIu64
                " without a resolved master row)\n",
                repairs, repairs_unresolved);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string log_path;
  size_t top = 10;
  uint64_t rule_id = 0;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--log=", 6) == 0) {
      log_path = a + 6;
    } else if (std::strncmp(a, "--top=", 6) == 0) {
      top = static_cast<size_t>(std::atoll(a + 6));
    } else if (std::strncmp(a, "--rule=", 7) == 0) {
      rule_id = std::strtoull(a + 7, nullptr, 16);
    } else {
      std::fprintf(stderr,
                   "usage: decision_stats --log=FILE [--top=N] "
                   "[--rule=HEX16]\n");
      return 2;
    }
  }
  if (log_path.empty()) {
    std::fprintf(stderr, "missing --log=FILE\n");
    return 2;
  }
  return Run(log_path, top, rule_id);
}
