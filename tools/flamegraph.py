#!/usr/bin/env python3
"""Render a collapsed-stack profile as a static SVG flame graph.

Input is the format written by --profile-out / GET /profile (one stack per
line, frames separated by ';', trailing sample count):

    rl/train;main;TrainLoop;Environment::Step 42

Usage:
    tools/flamegraph.py profile.collapsed > profile.svg
    curl -s localhost:9100/profile?seconds=5 | tools/flamegraph.py - > p.svg

Standard library only — no external dependencies, no browser needed until
you open the SVG. Frames are laid out root-at-bottom; hover any rect for
the full frame name, sample count and percentage.
"""

import argparse
import html
import sys

FRAME_HEIGHT = 16
FONT_SIZE = 11
CHAR_WIDTH = 6.5  # rough monospace advance at FONT_SIZE, for truncation
MIN_RECT_WIDTH = 0.3  # px; narrower frames are dropped from the rendering


class Node:
    __slots__ = ("name", "total", "children")

    def __init__(self, name):
        self.name = name
        self.total = 0
        self.children = {}

    def child(self, name):
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = Node(name)
        return node


def parse_collapsed(lines):
    """Folds 'a;b;c N' lines into a frame tree; returns the root node."""
    root = Node("all")
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        stack, sep, count_str = line.rpartition(" ")
        if not sep:
            continue
        try:
            count = int(count_str)
        except ValueError:
            continue
        if count <= 0 or not stack:
            continue
        root.total += count
        node = root
        for frame in stack.split(";"):
            node = node.child(frame)
            node.total += count
    return root


def frame_color(name):
    """Deterministic warm color per frame name (FNV-1a hash → palette)."""
    h = 2166136261
    for c in name.encode("utf-8", "replace"):
        h = ((h ^ c) * 16777619) & 0xFFFFFFFF
    # Warm flame palette: red-orange-yellow band.
    r = 205 + (h & 0x3F) % 50
    g = 60 + ((h >> 8) & 0xFF) % 150
    b = ((h >> 16) & 0x3F) % 60
    return f"rgb({r},{g},{b})"


def layout(root, width):
    """Yields (node, depth, x, w) rects, root-first, in pixel coordinates."""
    if root.total <= 0:
        return
    scale = width / root.total

    def walk(node, depth, x):
        w = node.total * scale
        if w < MIN_RECT_WIDTH:
            return
        yield node, depth, x, w
        cx = x
        # Sorted for deterministic output across runs.
        for name in sorted(node.children):
            child = node.children[name]
            yield from walk(child, depth + 1, cx)
            cx += child.total * scale

    cx = 0.0
    for name in sorted(root.children):
        child = root.children[name]
        yield from walk(child, 0, cx)
        cx += child.total * scale


def max_depth(node, depth=0):
    if not node.children:
        return depth
    return max(max_depth(c, depth + 1) for c in node.children.values())


def render_svg(root, width, title):
    depth_levels = max_depth(root) if root.children else 1
    height = (depth_levels + 1) * FRAME_HEIGHT + 40
    out = []
    out.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" '
        f'font-size="{FONT_SIZE}">'
    )
    out.append(
        f'<rect width="{width}" height="{height}" fill="#f8f8f8"/>'
    )
    out.append(
        f'<text x="{width / 2:.0f}" y="16" text-anchor="middle" '
        f'font-size="14">{html.escape(title)} '
        f"({root.total} samples)</text>"
    )
    base_y = height - FRAME_HEIGHT - 4  # root row at the bottom
    for node, depth, x, w in layout(root, width):
        y = base_y - depth * FRAME_HEIGHT
        pct = 100.0 * node.total / root.total
        label = html.escape(node.name)
        out.append("<g>")
        out.append(
            f"<title>{label} — {node.total} samples ({pct:.2f}%)</title>"
        )
        out.append(
            f'<rect x="{x:.2f}" y="{y}" width="{w:.2f}" '
            f'height="{FRAME_HEIGHT - 1}" fill="{frame_color(node.name)}" '
            f'rx="1"/>'
        )
        max_chars = int((w - 4) / CHAR_WIDTH)
        if max_chars >= 3:
            text = node.name
            if len(text) > max_chars:
                text = text[: max_chars - 1] + "…"
            out.append(
                f'<text x="{x + 2:.2f}" y="{y + FRAME_HEIGHT - 4}" '
                f'fill="#000">{html.escape(text)}</text>'
            )
        out.append("</g>")
    out.append("</svg>")
    return "\n".join(out) + "\n"


def main():
    ap = argparse.ArgumentParser(
        description="collapsed-stack profile -> static SVG flame graph"
    )
    ap.add_argument("input", help="collapsed profile file, or - for stdin")
    ap.add_argument("--width", type=int, default=1200, help="SVG width px")
    ap.add_argument("--title", default="erminer CPU profile")
    args = ap.parse_args()

    if args.input == "-":
        lines = sys.stdin.readlines()
    else:
        with open(args.input, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()

    root = parse_collapsed(lines)
    if root.total == 0:
        sys.stderr.write("flamegraph.py: no samples in input\n")
        return 1
    sys.stdout.write(render_svg(root, args.width, args.title))
    return 0


if __name__ == "__main__":
    sys.exit(main())
