#include "search/search_engine.h"

#include <algorithm>
#include <utility>

#include "core/mask.h"
#include "core/rule.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace erminer::search {

SearchEngine::SearchEngine(const Corpus* corpus, const ActionSpace* space,
                           RuleEvaluator* evaluator,
                           const MinerOptions& options,
                           obs::DecisionMiner miner,
                           const std::string& metric_prefix)
    : corpus_(corpus),
      space_(space),
      evaluator_(evaluator),
      options_(options),
      miner_(miner) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  nodes_expanded_ = &reg.GetCounter(metric_prefix + "/nodes_expanded");
  children_evaluated_ = &reg.GetCounter(metric_prefix + "/children_evaluated");
  rules_pooled_ = &reg.GetCounter(metric_prefix + "/rules_pooled");
  children_enqueued_ = &reg.GetCounter(metric_prefix + "/children_enqueued");
  rules_emitted_ = &reg.GetCounter("miner/rules_emitted");
  for (size_t i = 0; i < kNumPruneReasons; ++i) {
    prune_[i] = &reg.GetCounter(metric_prefix + "/prune_" +
                                PruneReasonName(static_cast<PruneReason>(i)));
  }
}

MineResult SearchEngine::Mine(ExpansionPolicy& policy) {
  obs::TraceSpan span(policy.mine_span());
  Timer timer;
  pool_.clear();
  frontier_.clear();
  // dedup_ and nodes_explored_ deliberately survive across Mine calls:
  // RLMiner's environment accumulates both over training episodes and
  // restores them from checkpoints before inference.
  policy.Run(*this);
  MineResult result;
  result.rules = SelectTopKNonRedundant(std::move(pool_), options_.k);
  pool_.clear();
  result.nodes_explored = nodes_explored_;
  result.rule_evaluations = evaluator_->num_evaluations();
  result.seconds = timer.Seconds();
  return result;
}

void SearchEngine::PushRoot() {
  frontier_.push_back({RuleKey{}, FullCover(*corpus_), 0, 0, 0});
}

SearchEngine::Node SearchEngine::PopFront() {
  Node node = std::move(frontier_.front());
  frontier_.pop_front();
  return node;
}

void SearchEngine::TruncateByScore(size_t width) {
  if (frontier_.size() <= width) return;
  prune_[static_cast<size_t>(PruneReason::kBeamWidth)]->Inc(frontier_.size() -
                                                            width);
  std::partial_sort(frontier_.begin(),
                    frontier_.begin() + static_cast<long>(width),
                    frontier_.end(), [](const Node& x, const Node& y) {
                      return x.score > y.score;
                    });
  if (obs::DecisionLog::Armed()) {
    for (size_t i = width; i < frontier_.size(); ++i) {
      obs::DecisionLog::Global().Prune(miner_, obs::PruneReason::kBeamWidth,
                                       frontier_[i].key, -1,
                                       frontier_[i].score);
    }
  }
  frontier_.resize(width);
}

void SearchEngine::ExpandNode(Node node, ExpansionPolicy& policy) {
  if (const char* name = policy.expand_span()) {
    obs::TraceSpan span(name);
    ExpandNodeImpl(node, policy);
  } else {
    ExpandNodeImpl(node, policy);
  }
}

void SearchEngine::ExpandNodeImpl(Node& node, ExpansionPolicy& policy) {
  nodes_expanded_->Inc(1);

  // Expansion is split into three stages so the expensive middle stage can
  // fan out across the pool while the result stays bit-identical to the
  // serial walk: (1) admission — mask, depth limits and the dedup set run
  // serially in action order; (2) evaluation — decode, cover refinement and
  // measures run in parallel over the admitted frontier; (3) pruning and
  // frontier growth consume the results serially, again in action order.
  //
  // The local mask forbids re-specifying bound attributes; the global
  // duplicate check happens per child (cheaper than Alg. 1's global mask
  // here because we enumerate every allowed child anyway).
  std::vector<uint8_t> mask = ComputeMask(*space_, node.key, {});
  std::vector<Candidate> frontier;
  // Duplicates found when the policy wants them interleaved with the
  // admitted children's decision events (BeamMiner's historical order).
  std::vector<int32_t> dup_actions;
  const bool dup_at_admission = policy.dup_prune_at_admission();
  const bool depth_limited = policy.depth_limited();
  // Prune reasons are tallied locally and published once per node.
  uint64_t prune_masked = 0, prune_depth = 0, prune_duplicate = 0;
  for (int32_t a = 0; a < space_->stop_action(); ++a) {
    if (!mask[static_cast<size_t>(a)]) {
      ++prune_masked;
      continue;
    }
    const bool is_lhs = space_->IsLhsAction(a);
    if (depth_limited &&
        ((is_lhs && node.lhs_size >= options_.max_lhs) ||
         (!is_lhs && node.pattern_size >= options_.max_pattern))) {
      ++prune_depth;
      continue;
    }

    RuleKey child_key = KeyWith(node.key, a);
    if (!dedup_.insert(child_key).second) {  // already seen
      ++prune_duplicate;
      if (dup_at_admission) {
        LogPrune(PruneReason::kDuplicate, node.key, a, 0.0);
      } else {
        dup_actions.push_back(a);
      }
      continue;
    }
    ++nodes_explored_;
    Candidate c;
    c.action = a;
    c.is_lhs = is_lhs;
    c.key = std::move(child_key);
    frontier.push_back(std::move(c));
  }
  prune_[static_cast<size_t>(PruneReason::kMasked)]->Inc(prune_masked);
  prune_[static_cast<size_t>(PruneReason::kDepth)]->Inc(prune_depth);
  prune_[static_cast<size_t>(PruneReason::kDuplicate)]->Inc(prune_duplicate);
  children_evaluated_->Inc(frontier.size());

  // LHS-extending children are this node's LHS plus one pair, so the
  // node's LHS is passed as a partition-refinement hint; pattern children
  // keep the LHS and hit the cache directly.
  const LhsPairs parent_lhs = space_->Decode(node.key).lhs;
  EvaluateFrontier(frontier, node, parent_lhs);

  uint64_t prune_support = 0, pooled = 0, enqueued = 0, closed = 0;
  // Decision-provenance events are recorded in this serial consume loop
  // (candidate order), so the log's event order is deterministic and the
  // mined results stay bit-identical for any thread count. Interleaved
  // duplicate events were already counted above; only the log record is
  // deferred to here.
  size_t di = 0;
  auto log_dups_before = [&](int32_t action) {
    for (; di < dup_actions.size() && dup_actions[di] < action; ++di) {
      LogPrune(PruneReason::kDuplicate, node.key, dup_actions[di], 0.0);
    }
  };
  for (Candidate& c : frontier) {
    log_dups_before(c.action);
    RecordExpand(node.key, c.action, c.key);
    // Support pruning (Lemma 1): children cannot beat the threshold.
    if (static_cast<double>(c.stats.support) < options_.support_threshold) {
      ++prune_support;
      LogPrune(PruneReason::kSupport, node.key, c.action,
               static_cast<double>(c.stats.support));
      continue;
    }
    if (!c.rule.lhs.empty()) {
      EmitRule(c.rule, c.stats, c.key, /*to_pool=*/true);
      ++pooled;
    }
    // Refine further unless the rule already returns certain fixes
    // (Alg. 4 line 14); rules without an LHS must keep growing.
    if (c.rule.lhs.empty() || c.stats.certainty < 1.0) {
      ++enqueued;
      frontier_.push_back({std::move(c.key), std::move(c.cover),
                           c.stats.utility, c.rule.LhsSize(),
                           c.rule.PatternSize()});
    } else {
      ++closed;  // certain already: the subtree below is never opened
      LogPrune(PruneReason::kCertain, node.key, c.action, c.stats.certainty);
    }
  }
  log_dups_before(space_->stop_action());
  prune_[static_cast<size_t>(PruneReason::kSupport)]->Inc(prune_support);
  rules_pooled_->Inc(pooled);
  children_enqueued_->Inc(enqueued);
  prune_[static_cast<size_t>(PruneReason::kCertain)]->Inc(closed);
}

void SearchEngine::EvaluateFrontier(std::vector<Candidate>& frontier,
                                    const Node& node,
                                    const LhsPairs& parent_lhs) {
  if (!options_.batch_eval) {
    // Legacy per-candidate path: each worker fetches its own cache entry.
    GlobalPool().ParallelFor(0, frontier.size(), 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        Candidate& c = frontier[i];
        c.rule = space_->Decode(c.key);
        c.cover = c.is_lhs ? node.cover
                           : RefineCover(*corpus_, node.cover,
                                         space_->pattern_item(c.action));
        c.stats = evaluator_->Evaluate(c.rule, c.cover,
                                       c.is_lhs ? &parent_lhs : nullptr);
      }
    });
    return;
  }
  if (frontier.empty()) return;
  // Batched path: decode and refine covers first, then resolve the whole
  // sibling group's cache entries in one GetBatch (one lock pass + one
  // pool submission — pattern children hit the parent's resident entry,
  // LHS children build under the shared refinement hint), then score.
  // Entry values are identical to the per-candidate path, so the results
  // and the decision log stay bit-for-bit the same.
  GlobalPool().ParallelFor(0, frontier.size(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      Candidate& c = frontier[i];
      c.rule = space_->Decode(c.key);
      c.cover = c.is_lhs ? node.cover
                         : RefineCover(*corpus_, node.cover,
                                       space_->pattern_item(c.action));
    }
  });
  std::vector<const LhsPairs*> keys;
  keys.reserve(frontier.size());
  for (const Candidate& c : frontier) keys.push_back(&c.rule.lhs);
  std::vector<EvalCache::Entry> entries =
      evaluator_->cache().GetBatch(&parent_lhs, keys);
  GlobalPool().ParallelFor(0, frontier.size(), 1, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      Candidate& c = frontier[i];
      c.stats = evaluator_->EvaluateWith(entries[i], c.rule, c.cover);
    }
  });
}

void SearchEngine::RecordExpand(const RuleKey& parent_key, int32_t action,
                                const RuleKey& key) {
  if (obs::DecisionLog::Armed()) {
    obs::DecisionLog::Global().Expand(miner_, parent_key, action, key);
  }
}

void SearchEngine::RecordPrune(PruneReason reason, const RuleKey& parent_key,
                               int32_t action, double measure) {
  prune_[static_cast<size_t>(reason)]->Inc(1);
  LogPrune(reason, parent_key, action, measure);
}

void SearchEngine::LogPrune(PruneReason reason, const RuleKey& parent_key,
                            int32_t action, double measure) {
  if (static_cast<size_t>(reason) >= kNumWireReasons) return;  // metrics-only
  if (obs::DecisionLog::Armed()) {
    obs::DecisionLog::Global().Prune(miner_, WireReason(reason), parent_key,
                                     action, measure);
  }
}

ScoredRule SearchEngine::EmitRule(const EditingRule& rule,
                                  const RuleStats& stats, const RuleKey& key,
                                  bool to_pool, uint64_t episode,
                                  uint64_t step) {
  ScoredRule scored{rule, stats, RuleProvenanceId(rule, *corpus_)};
  rules_emitted_->Inc(1);
  if (obs::DecisionLog::Armed()) {
    obs::DecisionLog::Global().Emit(miner_, scored.provenance, key,
                                    stats.support, stats.certainty,
                                    stats.quality, stats.utility, episode,
                                    step);
  }
  if (to_pool) pool_.push_back(scored);
  return scored;
}

RuleStats SearchEngine::EvaluateCandidate(const EditingRule& rule,
                                          const Cover& cover,
                                          const LhsPairs* parent_lhs) {
  if (options_.batch_eval) {
    // Width-1 batch: single-candidate policies (CTANE's converted rules,
    // RLMiner's per-step scoring) share the batched fetch path.
    std::vector<const LhsPairs*> keys = {&rule.lhs};
    std::vector<EvalCache::Entry> entries =
        evaluator_->cache().GetBatch(parent_lhs, keys);
    return evaluator_->EvaluateWith(entries[0], rule, cover);
  }
  return evaluator_->Evaluate(rule, cover, parent_lhs);
}

}  // namespace erminer::search
