// SearchEngine: the one lattice-search core behind every miner.
//
// The paper's four discovery algorithms (EnuMiner/EnuMinerH3, the beam
// heuristic, CTANE and RLMiner) all walk the same LHS/pattern lattice with
// the same measures; they differ only in *expansion policy*. The engine
// owns everything the walks share — the frontier, the canonical-key dedup
// set, the unified search::PruneReason taxonomy, threshold checks, the
// MineResult counters, and all span/metrics/decision-log emission — while
// an ExpansionPolicy supplies the loop shape (exhaustive FIFO, level-wise
// beam, the CTANE bitmask walk, a DQN-greedy episode driver).
//
// Layering (docs/architecture.md): data -> index -> search -> policies ->
// obs consumers. The engine evaluates candidates through the batched
// EvalCache path (EvalCache::GetBatch): all of one node's children are
// resolved under one cache lock and built under one thread-pool
// submission, instead of a lock/probe round-trip per child.
// MinerOptions::batch_eval is the escape hatch; results are bit-identical
// either way (tests/search_differential_test.cc pins this against
// pre-refactor goldens).
//
// Counter semantics (see MineResult in core/miner.h): nodes_explored is
// incremented exactly once per admitted candidate — one per kExpand event
// the decision log records — and rule_evaluations is the evaluator's query
// count. The engine counts both identically for every policy.

#ifndef ERMINER_SEARCH_SEARCH_ENGINE_H_
#define ERMINER_SEARCH_SEARCH_ENGINE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/action_space.h"
#include "core/measures.h"
#include "core/miner.h"
#include "core/rule_set.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "search/prune.h"

namespace erminer::search {

class SearchEngine;

/// The strategy half of a miner: loop shape plus per-policy traits. The
/// engine calls Run() once per Mine(); Run drives the search with the
/// engine's primitives (frontier, ExpandNode, RecordPrune/EmitRule, ...).
class ExpansionPolicy {
 public:
  virtual ~ExpansionPolicy() = default;

  /// Span literal wrapping the whole Mine() (must be a string literal).
  virtual const char* mine_span() const = 0;
  /// Span literal wrapping one ExpandNode, or nullptr for no per-node span.
  virtual const char* expand_span() const { return nullptr; }

  /// Duplicate children are prune-logged during admission — before any of
  /// the node's kExpand events — when true (EnuMiner's historical order);
  /// when false they are interleaved in action order with the admitted
  /// children's events (BeamMiner's historical order).
  virtual bool dup_prune_at_admission() const { return true; }
  /// Gate children on MinerOptions::max_lhs / max_pattern.
  virtual bool depth_limited() const { return true; }

  virtual void Run(SearchEngine& engine) = 0;
};

class SearchEngine {
 public:
  /// One frontier node. `score` orders beam truncation (the rule's utility
  /// at admission); the size fields feed the depth gates.
  struct Node {
    RuleKey key;
    Cover cover;
    double score = 0;
    size_t lhs_size = 0;
    size_t pattern_size = 0;
  };

  /// `space` may be null for policies that never expand lattice nodes
  /// through the engine (CTANE drives its own bitmask walk). `options` is
  /// copied. `metric_prefix` names this miner's counters
  /// ("<prefix>/nodes_expanded", "<prefix>/prune_<reason>", ...); they are
  /// resolved once here so hot paths cost one relaxed atomic add.
  SearchEngine(const Corpus* corpus, const ActionSpace* space,
               RuleEvaluator* evaluator, const MinerOptions& options,
               obs::DecisionMiner miner, const std::string& metric_prefix);

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  /// Runs the policy and finalizes: top-K non-redundant selection over the
  /// emitted pool, counter totals, wall-clock seconds. The pool is cleared
  /// at entry; nodes_explored is NOT reset (RLMiner accumulates across
  /// training and inference, restored from checkpoints).
  MineResult Mine(ExpansionPolicy& policy);

  // --- Frontier --------------------------------------------------------
  void PushRoot();
  void PushNode(Node node) { frontier_.push_back(std::move(node)); }
  bool HasFrontier() const { return !frontier_.empty(); }
  size_t FrontierSize() const { return frontier_.size(); }
  Node PopFront();
  /// Beam truncation: keeps the `width` best-scoring frontier nodes
  /// (descending score, std::partial_sort), logging one kBeamWidth prune
  /// per dropped node in post-sort order.
  void TruncateByScore(size_t width);

  // --- Dedup -----------------------------------------------------------
  /// True if the key was not yet discovered (and is now recorded).
  bool InsertDedup(const RuleKey& key) {
    return dedup_.insert(key).second;
  }
  void ClearDedup() { dedup_.clear(); }
  const RuleKeySet& dedup() const { return dedup_; }

  // --- Node expansion (the lattice policies' three-stage core) ---------
  /// (1) admission — mask, depth gates and dedup, serially in action
  /// order; (2) evaluation — decode, cover refinement and measures across
  /// the thread pool, batched through EvalCache::GetBatch; (3) consume —
  /// support/certainty thresholds, pool emission and frontier growth,
  /// serially in action order again, so results and decision-log bytes are
  /// identical for every thread count.
  void ExpandNode(Node node, ExpansionPolicy& policy);

  // --- Primitives for policies that drive their own walk ---------------
  void RecordExpand(const RuleKey& parent_key, int32_t action,
                    const RuleKey& key);
  /// Bumps "<prefix>/prune_<reason>" and, for wire reasons, records the
  /// decision-log event.
  void RecordPrune(PruneReason reason, const RuleKey& parent_key,
                   int32_t action, double measure);
  /// Provenance id, "miner/rules_emitted", the kEmit decision event, and
  /// (when `to_pool`) pool insertion. Returns the scored rule for callers
  /// that keep their own pools (the RL environment's leaves).
  ScoredRule EmitRule(const EditingRule& rule, const RuleStats& stats,
                      const RuleKey& key, bool to_pool, uint64_t episode = 0,
                      uint64_t step = 0);
  void PushPool(ScoredRule rule) { pool_.push_back(std::move(rule)); }
  void BumpNodesExpanded() { nodes_expanded_->Inc(1); }

  /// One candidate's measures through the batched EvalCache path (a
  /// width-1 GetBatch — RLMiner's per-step scoring); falls back to the
  /// per-call Evaluate when batch_eval is off. Null `cover` is computed
  /// from the rule's pattern.
  RuleStats EvaluateCandidate(const EditingRule& rule, const Cover& cover,
                              const LhsPairs* parent_lhs);

  // --- Counters --------------------------------------------------------
  size_t nodes_explored() const { return nodes_explored_; }
  /// Checkpoint restore (the RL environment's persisted node counter).
  void set_nodes_explored(size_t n) { nodes_explored_ = n; }
  void IncNodesExplored() { ++nodes_explored_; }
  bool NodeBudgetLeft() const {
    return nodes_explored_ < options_.max_nodes;
  }

  const Corpus& corpus() const { return *corpus_; }
  const ActionSpace& space() const { return *space_; }
  RuleEvaluator& evaluator() { return *evaluator_; }
  const MinerOptions& options() const { return options_; }

 private:
  /// One admissible child plus its evaluation outputs (filled in parallel,
  /// consumed serially in candidate order).
  struct Candidate {
    int32_t action = 0;
    bool is_lhs = false;
    RuleKey key;
    EditingRule rule;
    Cover cover;
    RuleStats stats;
  };

  void ExpandNodeImpl(Node& node, ExpansionPolicy& policy);
  /// Stage 2: measures for every admitted candidate of one node.
  void EvaluateFrontier(std::vector<Candidate>& frontier, const Node& node,
                        const LhsPairs& parent_lhs);
  /// Log-only prune event (counters are tallied in bulk by the caller).
  void LogPrune(PruneReason reason, const RuleKey& parent_key, int32_t action,
                double measure);

  const Corpus* corpus_;
  const ActionSpace* space_;
  RuleEvaluator* evaluator_;
  MinerOptions options_;
  obs::DecisionMiner miner_;

  std::deque<Node> frontier_;
  RuleKeySet dedup_;
  std::vector<ScoredRule> pool_;
  size_t nodes_explored_ = 0;

  obs::Counter* nodes_expanded_;
  obs::Counter* children_evaluated_;
  obs::Counter* rules_pooled_;
  obs::Counter* children_enqueued_;
  obs::Counter* rules_emitted_;
  obs::Counter* prune_[kNumPruneReasons];
};

}  // namespace erminer::search

#endif  // ERMINER_SEARCH_SEARCH_ENGINE_H_
