#include "search/policies.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "index/group_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hash.h"

namespace erminer::search {

MineResult MineLattice(const Corpus& corpus, const MinerOptions& options,
                       ExpansionPolicy& policy, obs::DecisionMiner miner,
                       const std::string& metric_prefix) {
  ActionSpaceOptions aopts;
  aopts.support_threshold = options.support_threshold;
  aopts.max_classes_per_attr = options.max_classes_per_attr;
  aopts.prefix_merge = false;  // exact value enumeration
  aopts.include_negations = options.include_negations;
  ActionSpace space = ActionSpace::Build(corpus, aopts);
  RuleEvaluator evaluator(&corpus);
  evaluator.cache().set_refine_enabled(options.refine);
  SearchEngine engine(&corpus, &space, &evaluator, options, miner,
                      metric_prefix);
  return engine.Mine(policy);
}

void ExhaustivePolicy::Run(SearchEngine& engine) {
  engine.PushRoot();
  while (engine.HasFrontier() && engine.NodeBudgetLeft()) {
    engine.ExpandNode(engine.PopFront(), *this);
  }
}

void BeamPolicy::Run(SearchEngine& engine) {
  engine.PushRoot();
  for (size_t depth = 0; depth < beam_.max_depth && engine.HasFrontier();
       ++depth) {
    ERMINER_SPAN("beam/level");
    // After this level's nodes are popped, the frontier holds exactly the
    // surviving children — the next level, pre-truncation.
    const size_t level = engine.FrontierSize();
    for (size_t i = 0; i < level; ++i) {
      engine.ExpandNode(engine.PopFront(), *this);
    }
    engine.TruncateByScore(beam_.beam_width);
  }
}

namespace {

/// First input attribute matched to master attribute `am`, or -1.
int ReverseMatch(const Corpus& corpus, int am) {
  for (size_t a = 0; a < corpus.input().num_cols(); ++a) {
    if (static_cast<int>(a) == corpus.y_input()) continue;
    for (int m : corpus.match().Matches(static_cast<int>(a))) {
      if (m == am) return static_cast<int>(a);
    }
  }
  return -1;
}

struct PGroupAgg {
  long rows = 0;
  bool confident = true;
  /// The smallest group confidence seen — the measure a confidence prune
  /// reports to the decision log.
  double min_certainty = 1.0;
};

}  // namespace

void CfdPolicy::Run(SearchEngine& engine) {
  const Corpus& corpus = engine.corpus();
  const MinerOptions& options = engine.options();
  const Table& master = corpus.master();
  double eta_m = cfd_.master_support_threshold;
  if (eta_m <= 0) {
    eta_m = options.support_threshold *
            static_cast<double>(master.num_rows()) /
            std::max<double>(1.0, static_cast<double>(
                                      corpus.input().num_rows()));
    eta_m = std::max(eta_m, 2.0);
  }

  // Master attributes usable in X: matched to some input attribute and not
  // the target.
  std::vector<int> usable;      // master column
  std::vector<int> usable_rev;  // the matched input column
  for (size_t am = 0; am < master.num_cols(); ++am) {
    if (static_cast<int>(am) == corpus.y_master()) continue;
    int a = ReverseMatch(corpus, static_cast<int>(am));
    if (a >= 0) {
      usable.push_back(static_cast<int>(am));
      usable_rev.push_back(a);
    }
  }

  const size_t n_usable = usable.size();
  ERMINER_CHECK(n_usable < 31);

  // Index chain for partition refinement: `X \ {first attr}` is the parent
  // of X under the ascending bitmask walk (x_bits & (x_bits - 1) clears the
  // lowest set bit), so each level's index derives from a live parent. The
  // empty-X root index lives for the whole mine; every other parent is
  // dropped the moment the walk passes its last possible child,
  // p + lowest_set_bit(p) — exact liveness, so memory stays proportional to
  // the live frontier, not the lattice.
  std::unordered_map<uint32_t, GroupIndex> live;
  std::priority_queue<std::pair<uint32_t, uint32_t>,
                      std::vector<std::pair<uint32_t, uint32_t>>,
                      std::greater<std::pair<uint32_t, uint32_t>>>
      expiries;  // (first x_bits that no longer needs it, bits)
  if (options.refine) {
    live.emplace(0u, GroupIndex::Build(master, {}, corpus.y_master()));
  }

  for (uint32_t x_bits = 1; x_bits < (1u << n_usable); ++x_bits) {
    while (!expiries.empty() && expiries.top().first <= x_bits) {
      live.erase(expiries.top().second);
      expiries.pop();
    }
    std::vector<size_t> x_members;  // indices into `usable`
    for (size_t i = 0; i < n_usable; ++i) {
      if (x_bits & (1u << i)) x_members.push_back(i);
    }
    if (x_members.size() > cfd_.max_lhs) continue;

    ERMINER_SPAN("ctane/node");
    engine.BumpNodesExpanded();
    std::vector<int> xm_cols;
    for (size_t i : x_members) xm_cols.push_back(usable[i]);
    const uint32_t parent_bits = x_bits & (x_bits - 1);
    auto parent_it = live.find(parent_bits);
    GroupIndex built =
        parent_it != live.end()
            ? GroupIndex::BuildRefined(master, parent_it->second, xm_cols,
                                       corpus.y_master())
            : GroupIndex::Build(master, xm_cols, corpus.y_master());
    // Keep this index only while it can still seed children: x_bits with a
    // clear bit below its lowest set bit, and room left under max_lhs.
    GroupIndex* index_ptr = &built;
    if (options.refine && (x_bits & 1u) == 0 &&
        x_members.size() < cfd_.max_lhs) {
      expiries.emplace(x_bits + (x_bits & (~x_bits + 1u)), x_bits);
      index_ptr = &live.emplace(x_bits, std::move(built)).first->second;
    }
    const GroupIndex& index = *index_ptr;
    engine.IncNodesExplored();

    // The decision log's lattice key for a CTANE node is its master-column
    // list (ascending); the walk's refinement parent drops the lowest set
    // bit, i.e. the first column. Candidate-level events pack p_bits into
    // the action field.
    std::vector<int32_t> x_key(xm_cols.begin(), xm_cols.end());
    engine.RecordExpand(
        std::vector<int32_t>(x_key.begin() + 1, x_key.end()),
        x_key.front(), x_key);

    uint64_t candidates = 0;
    // Every proper constant subset P of X (wildcards W = X \ P nonempty).
    const uint32_t p_limit = 1u << x_members.size();
    std::vector<ValueCode> pkey;  // hoisted out of the group loops
    pkey.reserve(x_members.size());
    for (uint32_t p_bits = 0; p_bits + 1 < p_limit; ++p_bits) {
      // Aggregate groups by their P projection, in group-id (ascending
      // first-row) order — deterministic, and identical whether `index` was
      // refined or built from scratch.
      std::unordered_map<std::vector<ValueCode>, PGroupAgg, VectorHash> agg;
      for (size_t gid = 0; gid < index.num_groups(); ++gid) {
        const ValueCode* key = index.key_of(gid);
        const Group& group = index.group(gid);
        pkey.clear();
        for (size_t j = 0; j < x_members.size(); ++j) {
          if (p_bits & (1u << j)) pkey.push_back(key[j]);
        }
        PGroupAgg& a = agg[pkey];
        a.rows += group.total;
        const double certainty = group.Certainty();
        if (certainty < a.min_certainty) a.min_certainty = certainty;
        if (certainty < cfd_.min_confidence) {
          a.confident = false;
        }
      }
      for (const auto& [pk, a] : agg) {
        ++candidates;
        if (!a.confident) {
          engine.RecordPrune(PruneReason::kConfidence, x_key,
                             static_cast<int32_t>(p_bits), a.min_certainty);
          continue;
        }
        if (static_cast<double>(a.rows) < eta_m) {
          engine.RecordPrune(PruneReason::kMasterSupport, x_key,
                             static_cast<int32_t>(p_bits),
                             static_cast<double>(a.rows));
          continue;
        }
        // Convert: wildcards -> LHS pairs, constants -> pattern conditions.
        EditingRule rule;
        rule.y_input = corpus.y_input();
        rule.y_master = corpus.y_master();
        size_t p_pos = 0;
        bool valid = true;
        for (size_t j = 0; j < x_members.size(); ++j) {
          size_t i = x_members[j];
          if (p_bits & (1u << j)) {
            ValueCode v = pk[p_pos++];
            const Domain& dom =
                *corpus.input().domain(static_cast<size_t>(usable_rev[i]));
            if (rule.pattern.SpecifiesAttr(usable_rev[i])) {
              valid = false;  // two master attrs map to one input attr
              break;
            }
            rule.pattern.Add({usable_rev[i], {v}, dom.ValueOrNull(v)});
          } else {
            if (rule.HasLhsAttr(usable_rev[i])) {
              valid = false;
              break;
            }
            rule.AddLhs(usable_rev[i], usable[i]);
          }
        }
        if (!valid || rule.lhs.empty()) continue;
        RuleStats stats = engine.EvaluateCandidate(rule, nullptr, nullptr);
        engine.EmitRule(rule, stats, x_key, /*to_pool=*/true);
      }
    }
    ERMINER_COUNT("ctane/candidates", candidates);
  }
}

}  // namespace erminer::search
