// The unified prune-reason taxonomy for every miner.
//
// Before the search engine existed, each miner kept its own ad-hoc set of
// prune counter names and wire enums; this header is now the single site.
// The first six values mirror obs::PruneReason one-to-one — that enum IS
// the decision-log wire format (v1), which stays unchanged — so converting
// a loggable reason is a static cast checked at compile time. kMasked and
// kDepth are pre-admission cuts: they are tallied in metrics
// ("<miner>/prune_masked", "<miner>/prune_depth") but never recorded on
// the wire, exactly as before the unification (no miner ever logged them).

#ifndef ERMINER_SEARCH_PRUNE_H_
#define ERMINER_SEARCH_PRUNE_H_

#include <cstddef>
#include <cstdint>

#include "obs/decision_log.h"

namespace erminer::search {

enum class PruneReason : uint8_t {
  kSupport = 0,        // support below eta_s (measure: the support)
  kCertain = 1,        // subtree closed, fixes already certain (measure: f_c)
  kDuplicate = 2,      // key already discovered (no measure)
  kBeamWidth = 3,      // fell off the beam (measure: the node's utility)
  kConfidence = 4,     // CTANE group confidence below threshold
  kMasterSupport = 5,  // CTANE master rows below eta_m (measure: the rows)
  kMasked = 6,         // action forbidden by the local mask (metrics only)
  kDepth = 7,          // max_lhs / max_pattern reached (metrics only)
};

inline constexpr size_t kNumPruneReasons = 8;
/// Reasons below this bound exist on the decision-log wire.
inline constexpr size_t kNumWireReasons = 6;

/// Short shared names ("support", "certain", "duplicate", "beam_width",
/// "confidence", "master_support", "masked", "depth"). The first six match
/// obs::PruneReasonName byte for byte, so tools/decision_stats and
/// scripts/watch_run.py keep reading one vocabulary.
const char* PruneReasonName(PruneReason reason);

/// The wire enum for a loggable reason. Requires
/// static_cast<size_t>(reason) < kNumWireReasons.
obs::PruneReason WireReason(PruneReason reason);

}  // namespace erminer::search

#endif  // ERMINER_SEARCH_PRUNE_H_
