// The lattice expansion policies behind the non-RL miners.
//
// Each policy is the strategy half of one paper algorithm; the shared
// mechanics (frontier, dedup, thresholds, counters, decision events) live
// in SearchEngine. RLMiner's DqnGreedyPolicy lives in src/rl/dqn_policy.h —
// it needs the trained agent, so it sits in the rl layer.

#ifndef ERMINER_SEARCH_POLICIES_H_
#define ERMINER_SEARCH_POLICIES_H_

#include "core/beam_miner.h"
#include "core/cfd_miner.h"
#include "search/search_engine.h"

namespace erminer::search {

/// EnuMiner (Alg. 4): exhaustive FIFO expansion of every admissible child,
/// bounded only by MinerOptions::max_nodes and the support/certainty cuts.
class ExhaustivePolicy : public ExpansionPolicy {
 public:
  const char* mine_span() const override { return "enuminer/mine"; }
  const char* expand_span() const override { return "enuminer/expand"; }
  void Run(SearchEngine& engine) override;
};

/// EnuMinerH3: the same walk with MinerOptions::max_lhs/max_pattern capped
/// (the caps themselves live in the options the engine was built with).
class DepthLimitedPolicy : public ExhaustivePolicy {};

/// The level-wise beam heuristic: expand a whole level, keep the
/// beam_width best-utility children. No depth gates and no node budget —
/// the beam itself is the bound.
class BeamPolicy : public ExpansionPolicy {
 public:
  explicit BeamPolicy(const BeamMinerOptions& beam) : beam_(beam) {}
  const char* mine_span() const override { return "beam/mine"; }
  // Duplicate prunes interleave with the level's expand events, matching
  // the historical serial walk's event order.
  bool dup_prune_at_admission() const override { return false; }
  bool depth_limited() const override { return false; }
  void Run(SearchEngine& engine) override;

 private:
  BeamMinerOptions beam_;
};

/// CTANE: the ascending-bitmask walk over master-attribute sets with
/// partial CFD conversion. Drives its own lattice (the engine's ActionSpace
/// may be null); uses the engine for counting, thresholds-adjacent prune
/// bookkeeping, emission and the rule pool.
class CfdPolicy : public ExpansionPolicy {
 public:
  explicit CfdPolicy(const CfdMinerOptions& cfd) : cfd_(cfd) {}
  const char* mine_span() const override { return "ctane/mine"; }
  void Run(SearchEngine& engine) override;

 private:
  CfdMinerOptions cfd_;
};

/// The shared front door for the exact-enumeration lattice miners: builds
/// the ActionSpace (prefix_merge off), an evaluator with refinement per
/// MinerOptions::refine, and an engine tagged `miner`/`metric_prefix`, then
/// runs the policy. EnuMine, EnuMineH3 and BeamMine are this plus options.
MineResult MineLattice(const Corpus& corpus, const MinerOptions& options,
                       ExpansionPolicy& policy, obs::DecisionMiner miner,
                       const std::string& metric_prefix);

}  // namespace erminer::search

#endif  // ERMINER_SEARCH_POLICIES_H_
