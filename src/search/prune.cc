#include "search/prune.h"

#include "util/status.h"

namespace erminer::search {

// The taxonomy's loggable prefix must coincide with the wire enum — the
// decision-log format (v1) is frozen, so a drift here would silently
// relabel on-disk events.
static_assert(static_cast<uint8_t>(PruneReason::kSupport) ==
              static_cast<uint8_t>(obs::PruneReason::kSupport));
static_assert(static_cast<uint8_t>(PruneReason::kCertain) ==
              static_cast<uint8_t>(obs::PruneReason::kCertain));
static_assert(static_cast<uint8_t>(PruneReason::kDuplicate) ==
              static_cast<uint8_t>(obs::PruneReason::kDuplicate));
static_assert(static_cast<uint8_t>(PruneReason::kBeamWidth) ==
              static_cast<uint8_t>(obs::PruneReason::kBeamWidth));
static_assert(static_cast<uint8_t>(PruneReason::kConfidence) ==
              static_cast<uint8_t>(obs::PruneReason::kConfidence));
static_assert(static_cast<uint8_t>(PruneReason::kMasterSupport) ==
              static_cast<uint8_t>(obs::PruneReason::kMasterSupport));

const char* PruneReasonName(PruneReason reason) {
  switch (reason) {
    case PruneReason::kSupport:
      return "support";
    case PruneReason::kCertain:
      return "certain";
    case PruneReason::kDuplicate:
      return "duplicate";
    case PruneReason::kBeamWidth:
      return "beam_width";
    case PruneReason::kConfidence:
      return "confidence";
    case PruneReason::kMasterSupport:
      return "master_support";
    case PruneReason::kMasked:
      return "masked";
    case PruneReason::kDepth:
      return "depth";
  }
  return "unknown";
}

obs::PruneReason WireReason(PruneReason reason) {
  ERMINER_CHECK(static_cast<size_t>(reason) < kNumWireReasons);
  return static_cast<obs::PruneReason>(reason);
}

}  // namespace erminer::search
