#include "core/mask.h"

namespace erminer {

std::vector<uint8_t> ComputeMask(const ActionSpace& space, const RuleKey& key,
                                 const RuleKeySet& discovered) {
  std::vector<uint8_t> mask(space.num_actions(), 1);

  // Local mask: per bound attribute, close its whole action group. This
  // covers both Alg. 1's "other matches of A" / "other values of A" cases
  // and re-adding the identical action (which would be a no-op transform).
  for (int32_t i : key) {
    if (space.IsLhsAction(i)) {
      int attr = space.lhs_action(i).a;
      for (int32_t j : space.LhsActionsOfAttr(attr)) mask[j] = 0;
    } else if (space.IsPatternAction(i)) {
      int attr = space.pattern_item(i).attr;
      for (int32_t j : space.PatternActionsOfAttr(attr)) mask[j] = 0;
    }
  }

  // Global mask: an allowed action must not regenerate an existing rule.
  if (!discovered.empty()) {
    for (int32_t i = 0; i < space.stop_action(); ++i) {
      if (!mask[i]) continue;
      if (discovered.count(KeyWith(key, i)) > 0) mask[i] = 0;
    }
  }

  // Never mask stop.
  mask[static_cast<size_t>(space.stop_action())] = 1;
  return mask;
}

size_t CountAllowed(const std::vector<uint8_t>& mask) {
  size_t n = 0;
  for (size_t i = 0; i + 1 < mask.size(); ++i) n += mask[i];
  return n;
}

}  // namespace erminer
