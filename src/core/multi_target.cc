#include "core/multi_target.h"

namespace erminer {

std::vector<std::pair<int, int>> CandidateTargets(const Corpus& corpus,
                                                  size_t min_distinct) {
  std::vector<std::pair<int, int>> out;
  for (size_t a = 0; a < corpus.input().num_cols(); ++a) {
    const auto& matches = corpus.match().Matches(static_cast<int>(a));
    if (matches.empty()) continue;
    if (corpus.input().DistinctCount(a) < min_distinct) continue;
    out.emplace_back(static_cast<int>(a), matches.front());
  }
  return out;
}

Result<std::vector<TargetResult>> MineAllTargets(const StringTable& input,
                                                 const StringTable& master,
                                                 const SchemaMatch& match,
                                                 const MinerFn& miner,
                                                 size_t min_distinct) {
  // A throwaway corpus (first matched pair as target) enumerates targets.
  std::vector<std::pair<int, int>> targets;
  {
    int y0 = -1, ym0 = -1;
    for (size_t a = 0; a < input.num_cols() && y0 < 0; ++a) {
      const auto& m = match.Matches(static_cast<int>(a));
      if (!m.empty()) {
        y0 = static_cast<int>(a);
        ym0 = m.front();
      }
    }
    if (y0 < 0) {
      return Status::InvalidArgument("no matched attribute pairs to target");
    }
    ERMINER_ASSIGN_OR_RETURN(Corpus probe,
                             Corpus::Build(input, master, match, y0, ym0));
    targets = CandidateTargets(probe, min_distinct);
  }

  std::vector<TargetResult> out;
  out.reserve(targets.size());
  for (const auto& [y, ym] : targets) {
    ERMINER_ASSIGN_OR_RETURN(Corpus corpus,
                             Corpus::Build(input, master, match, y, ym));
    TargetResult tr;
    tr.y_input = y;
    tr.y_master = ym;
    tr.y_name = input.schema.attribute(static_cast<size_t>(y)).name;
    tr.mine = miner(corpus);
    out.push_back(std::move(tr));
  }
  return out;
}

}  // namespace erminer
