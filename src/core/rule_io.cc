#include "core/rule_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace erminer {

namespace {

/// Escapes the separators used by the format (',', ';', '|', '=', spaces).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '%' || c == ',' || c == ';' || c == '|' || c == '=' ||
        c == ' ' || c == '\n' || c == '\t') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) return Status::InvalidArgument("truncated escape");
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
    if (hi < 0 || lo < 0) return Status::InvalidArgument("bad escape");
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

}  // namespace

std::string RulesToText(const std::vector<ScoredRule>& rules,
                        const Corpus& corpus) {
  const Schema& in = corpus.input().schema();
  const Schema& ms = corpus.master().schema();
  std::ostringstream os;
  os << "# erminer rules v1 (" << rules.size() << " rules)\n";
  for (const auto& sr : rules) {
    os << "lhs=";
    for (size_t i = 0; i < sr.rule.lhs.size(); ++i) {
      if (i > 0) os << ",";
      os << Escape(in.attribute(static_cast<size_t>(sr.rule.lhs[i].first))
                       .name)
         << ":"
         << Escape(ms.attribute(static_cast<size_t>(sr.rule.lhs[i].second))
                       .name);
    }
    os << " y="
       << Escape(in.attribute(static_cast<size_t>(sr.rule.y_input)).name)
       << ":"
       << Escape(ms.attribute(static_cast<size_t>(sr.rule.y_master)).name);
    os << " tp=";
    for (size_t i = 0; i < sr.rule.pattern.items().size(); ++i) {
      const PatternItem& item = sr.rule.pattern.items()[i];
      if (i > 0) os << ";";
      if (item.negated) os << "!";
      os << Escape(in.attribute(static_cast<size_t>(item.attr)).name) << "=";
      const Domain& dom = *corpus.input().domain(
          static_cast<size_t>(item.attr));
      for (size_t v = 0; v < item.values.size(); ++v) {
        if (v > 0) os << "|";
        os << Escape(dom.value(item.values[v]));
      }
    }
    char buf[128];
    std::snprintf(buf, sizeof(buf), " S=%ld C=%.6f Q=%.6f U=%.6f",
                  sr.stats.support, sr.stats.certainty, sr.stats.quality,
                  sr.stats.utility);
    os << buf;
    // Provenance id: the join key into a --decision-log file (see
    // docs/observability.md). Derived from rule content, so it is stable
    // across write/read round trips; recomputed on read when absent.
    const uint64_t id =
        sr.provenance != 0 ? sr.provenance : RuleProvenanceId(sr.rule, corpus);
    std::snprintf(buf, sizeof(buf), " id=%016llx",
                  static_cast<unsigned long long>(id));
    os << buf << "\n";
  }
  return os.str();
}

Result<std::vector<ScoredRule>> RulesFromText(const std::string& text,
                                              const Corpus& corpus) {
  const Schema& in = corpus.input().schema();
  const Schema& ms = corpus.master().schema();
  std::vector<ScoredRule> out;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    auto fail = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(lineno) + ": " +
                                     why);
    };
    ScoredRule sr;
    sr.rule.y_input = corpus.y_input();
    sr.rule.y_master = corpus.y_master();
    for (const std::string& token : Split(line, ' ')) {
      if (token.empty()) continue;
      size_t eq = token.find('=');
      if (eq == std::string::npos) return fail("token without '=': " + token);
      std::string key = token.substr(0, eq);
      std::string value = token.substr(eq + 1);
      if (key == "lhs") {
        if (value.empty()) continue;
        for (const std::string& pair : Split(value, ',')) {
          auto parts = Split(pair, ':');
          if (parts.size() != 2) return fail("bad lhs pair: " + pair);
          ERMINER_ASSIGN_OR_RETURN(std::string a_name, Unescape(parts[0]));
          ERMINER_ASSIGN_OR_RETURN(std::string m_name, Unescape(parts[1]));
          int a = in.IndexOf(a_name);
          int am = ms.IndexOf(m_name);
          if (a < 0) return fail("unknown input attribute " + a_name);
          if (am < 0) return fail("unknown master attribute " + m_name);
          if (sr.rule.HasLhsAttr(a)) return fail("duplicate lhs " + a_name);
          sr.rule.AddLhs(a, am);
        }
      } else if (key == "y") {
        auto parts = Split(value, ':');
        if (parts.size() != 2) return fail("bad y pair");
        ERMINER_ASSIGN_OR_RETURN(std::string a_name, Unescape(parts[0]));
        ERMINER_ASSIGN_OR_RETURN(std::string m_name, Unescape(parts[1]));
        int y = in.IndexOf(a_name);
        int ym = ms.IndexOf(m_name);
        if (y < 0 || ym < 0) return fail("unknown y attribute");
        sr.rule.y_input = y;
        sr.rule.y_master = ym;
      } else if (key == "tp") {
        if (value.empty()) continue;
        for (std::string cond : Split(value, ';')) {
          bool negated = false;
          if (!cond.empty() && cond[0] == '!') {
            negated = true;
            cond.erase(cond.begin());
          }
          size_t ceq = cond.find('=');
          if (ceq == std::string::npos) return fail("bad condition " + cond);
          ERMINER_ASSIGN_OR_RETURN(std::string a_name,
                                   Unescape(cond.substr(0, ceq)));
          int a = in.IndexOf(a_name);
          if (a < 0) return fail("unknown pattern attribute " + a_name);
          const Domain& dom = *corpus.input().domain(static_cast<size_t>(a));
          PatternItem item{a, {}, "", negated};
          std::vector<std::string> labels;
          for (const std::string& vs : Split(cond.substr(ceq + 1), '|')) {
            ERMINER_ASSIGN_OR_RETURN(std::string v, Unescape(vs));
            ValueCode code = dom.Lookup(v);
            if (code == kNullCode) {
              return fail("pattern value '" + v + "' not in domain of " +
                          a_name);
            }
            item.values.push_back(code);
            labels.push_back(v);
          }
          std::sort(item.values.begin(), item.values.end());
          item.values.erase(
              std::unique(item.values.begin(), item.values.end()),
              item.values.end());
          item.label = (negated ? "!" : "") +
                       (labels.size() == 1 ? labels[0] : Join(labels, "|"));
          if (sr.rule.pattern.SpecifiesAttr(a)) {
            return fail("duplicate pattern attribute " + a_name);
          }
          sr.rule.pattern.Add(std::move(item));
        }
      } else if (key == "S") {
        sr.stats.support = std::atol(value.c_str());
      } else if (key == "C") {
        sr.stats.certainty = std::atof(value.c_str());
      } else if (key == "Q") {
        sr.stats.quality = std::atof(value.c_str());
      } else if (key == "U") {
        sr.stats.utility = std::atof(value.c_str());
      } else if (key == "id") {
        // Optional (absent in pre-provenance files); recomputed below when
        // missing or malformed so every loaded rule carries a join key.
        sr.provenance = std::strtoull(value.c_str(), nullptr, 16);
      } else {
        return fail("unknown key " + key);
      }
    }
    if (sr.provenance == 0) {
      sr.provenance = RuleProvenanceId(sr.rule, corpus);
    }
    out.push_back(std::move(sr));
  }
  return out;
}

Status WriteRulesFile(const std::vector<ScoredRule>& rules,
                      const Corpus& corpus, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  f << RulesToText(rules, corpus);
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<ScoredRule>> ReadRulesFile(const std::string& path,
                                              const Corpus& corpus) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return RulesFromText(ss.str(), corpus);
}

}  // namespace erminer
