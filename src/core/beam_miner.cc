#include "core/beam_miner.h"

#include <algorithm>

#include "core/action_space.h"
#include "core/mask.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace erminer {

namespace {

struct BeamNode {
  RuleKey key;
  Cover cover;
  double utility = 0;
};

}  // namespace

MineResult BeamMine(const Corpus& corpus, const MinerOptions& options,
                    const BeamMinerOptions& beam_options) {
  ERMINER_SPAN("beam/mine");
  Timer timer;
  MineResult result;

  ActionSpaceOptions aopts;
  aopts.support_threshold = options.support_threshold;
  aopts.max_classes_per_attr = options.max_classes_per_attr;
  aopts.prefix_merge = false;
  aopts.include_negations = options.include_negations;
  ActionSpace space = ActionSpace::Build(corpus, aopts);
  RuleEvaluator evaluator(&corpus);
  evaluator.cache().set_refine_enabled(options.refine);

  RuleKeySet discovered;
  std::vector<ScoredRule> pool;
  std::vector<BeamNode> beam = {{RuleKey{}, FullCover(corpus), 0}};

  for (size_t depth = 0; depth < beam_options.max_depth && !beam.empty();
       ++depth) {
    ERMINER_SPAN("beam/level");
    std::vector<BeamNode> next;
    uint64_t prune_support = 0, prune_duplicate = 0;
    for (const BeamNode& node : beam) {
      ERMINER_COUNT("beam/nodes_expanded", 1);
      std::vector<uint8_t> mask = ComputeMask(space, node.key, {});
      // This node's LHS is the refinement hint for its LHS-extending
      // children (their LHS is it plus exactly one pair).
      const LhsPairs parent_lhs = space.Decode(node.key).lhs;
      const bool decisions = obs::DecisionLog::Armed();
      for (int32_t a = 0; a < space.stop_action(); ++a) {
        if (!mask[static_cast<size_t>(a)]) continue;
        RuleKey child_key = KeyWith(node.key, a);
        if (!discovered.insert(child_key).second) {
          ++prune_duplicate;
          if (decisions) {
            obs::DecisionLog::Global().Prune(obs::DecisionMiner::kBeam,
                                             obs::PruneReason::kDuplicate,
                                             node.key, a, 0.0);
          }
          continue;
        }
        ++result.nodes_explored;
        EditingRule rule = space.Decode(child_key);
        const bool is_pattern = space.IsPatternAction(a);
        Cover cover = is_pattern ? RefineCover(corpus, node.cover,
                                               space.pattern_item(a))
                                 : node.cover;
        RuleStats stats = evaluator.Evaluate(
            rule, cover, is_pattern ? nullptr : &parent_lhs);
        if (decisions) {
          obs::DecisionLog::Global().Expand(obs::DecisionMiner::kBeam,
                                            node.key, a, child_key);
        }
        if (static_cast<double>(stats.support) <
            options.support_threshold) {
          ++prune_support;
          if (decisions) {
            obs::DecisionLog::Global().Prune(
                obs::DecisionMiner::kBeam, obs::PruneReason::kSupport,
                node.key, a, static_cast<double>(stats.support));
          }
          continue;  // Lemma 1: no descendant can recover
        }
        if (!rule.lhs.empty()) {
          pool.push_back({rule, stats, RuleProvenanceId(rule, corpus)});
          ERMINER_COUNT("miner/rules_emitted", 1);
          if (decisions) {
            obs::DecisionLog::Global().Emit(
                obs::DecisionMiner::kBeam, pool.back().provenance, child_key,
                stats.support, stats.certainty, stats.quality, stats.utility);
          }
        }
        if (rule.lhs.empty() || stats.certainty < 1.0) {
          next.push_back({std::move(child_key), std::move(cover),
                          stats.utility});
        } else if (decisions) {
          obs::DecisionLog::Global().Prune(
              obs::DecisionMiner::kBeam, obs::PruneReason::kCertain, node.key,
              a, stats.certainty);
        }
      }
    }
    ERMINER_COUNT("beam/prune_support", prune_support);
    ERMINER_COUNT("beam/prune_duplicate", prune_duplicate);
    // Keep the beam_width most promising rules for the next level.
    if (next.size() > beam_options.beam_width) {
      ERMINER_COUNT("beam/prune_beam_width",
                    next.size() - beam_options.beam_width);
      std::partial_sort(next.begin(),
                        next.begin() +
                            static_cast<long>(beam_options.beam_width),
                        next.end(),
                        [](const BeamNode& x, const BeamNode& y) {
                          return x.utility > y.utility;
                        });
      if (obs::DecisionLog::Armed()) {
        for (size_t i = beam_options.beam_width; i < next.size(); ++i) {
          obs::DecisionLog::Global().Prune(
              obs::DecisionMiner::kBeam, obs::PruneReason::kBeamWidth,
              next[i].key, -1, next[i].utility);
        }
      }
      next.resize(beam_options.beam_width);
    }
    beam = std::move(next);
  }

  result.rules = SelectTopKNonRedundant(std::move(pool), options.k);
  result.rule_evaluations = evaluator.num_evaluations();
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace erminer
