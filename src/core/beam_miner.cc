// The beam-search heuristic miner as a search-engine policy: level-wise
// expansion with utility-ranked truncation (search::BeamPolicy). This TU
// is options plumbing; see search/policies.cc for the walk.

#include "core/beam_miner.h"

#include "search/policies.h"

namespace erminer {

MineResult BeamMine(const Corpus& corpus, const MinerOptions& options,
                    const BeamMinerOptions& beam_options) {
  search::BeamPolicy policy(beam_options);
  return search::MineLattice(corpus, options, policy,
                             obs::DecisionMiner::kBeam, "beam");
}

}  // namespace erminer
