// The rule-discovery MDP environment (Def. 5): the growing rule tree of
// Sec. III-B with GrowTree (Alg. 4) and CalReward (Alg. 2).
//
// Traversal: non-stop actions refine the current rule and descend into the
// new child (depth-first); the stop action — or a child that cannot be
// refined further (support below eta_s, or already-certain fixes) — advances
// to the next queued node in level order. The episode ends when the queue is
// exhausted or K valid leaves have been collected.
//
// Persistent across episodes (Alg. 2 lines 5-14): the reward/stats hash map
// R_Sigma keyed by rule, so identical rules generated in later episodes cost
// no new queries; and the global pool of every valid rule ever found, from
// which the final top-K set is drawn.

#ifndef ERMINER_CORE_ENVIRONMENT_H_
#define ERMINER_CORE_ENVIRONMENT_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "ckpt/serial.h"
#include "core/action_space.h"
#include "core/mask.h"
#include "core/measures.h"
#include "core/rule_set.h"
#include "search/search_engine.h"

namespace erminer {

struct EnvOptions {
  /// Episode leaf target (Alg. 3 line 14).
  size_t k = 50;
  /// eta_s.
  double support_threshold = 100;
  /// theta, the stop reward (Alg. 2 line 2).
  double stop_reward = 0.01;
  /// Reward for rules below the support threshold (Alg. 2 line 13).
  double invalid_reward = -0.01;
  /// Scale utilities by 1/(log |D|)^2 so rewards live in about [-2, 2]
  /// regardless of data size. A constant factor preserves the utility
  /// ordering exactly; it only conditions the TD targets.
  bool normalize_utility = true;

  // Ablation toggles (all on by default — the paper's configuration).
  /// Alg. 2 lines 15-16: the frontier bonus / over-specialization penalty.
  bool frontier_bonus = true;
  /// Alg. 1 lines 12-17: mask actions that would regenerate a rule.
  bool use_global_mask = true;
  /// Alg. 2 lines 6-7 + the measure cache: reuse rewards/stats of rules
  /// regenerated in later episodes instead of re-querying the data.
  bool reuse_rewards = true;
  /// Forwarded to the search engine: per-step measure queries go through
  /// the batched EvalCache path (see MinerOptions::batch_eval).
  bool batch_eval = true;
};

class Environment {
 public:
  Environment(const Corpus* corpus, const ActionSpace* space,
              RuleEvaluator* evaluator, const EnvOptions& options);

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  /// Starts a new episode: fresh tree rooted at the empty rule. The reward
  /// cache and global rule pool persist.
  void Reset();

  /// The current node's rule key (the agent's state s_t).
  const RuleKey& current_state() const;

  /// Alg. 1's mask for the current state against this episode's tree.
  std::vector<uint8_t> CurrentMask() const;

  bool done() const { return done_; }

  struct StepResult {
    RuleKey state;       // s_t
    int32_t action;
    float reward;        // r_t (Alg. 2)
    RuleKey next_state;  // s_{t+1}
    std::vector<uint8_t> next_mask;
    bool done;
  };

  /// One GrowTree + CalReward step. Requires !done() and an action allowed
  /// by CurrentMask().
  StepResult Step(int32_t action);

  /// Valid rules (non-empty LHS, support >= eta_s) found this episode.
  const std::vector<ScoredRule>& leaves() const { return leaves_; }

  /// Every distinct valid rule found across all episodes.
  const std::vector<ScoredRule>& global_pool() const { return global_pool_; }

  size_t nodes_this_episode() const { return nodes_.size(); }
  size_t total_nodes() const { return engine_.nodes_explored(); }
  size_t reward_cache_size() const { return reward_cache_.size(); }

  /// The search engine this environment grows through (the RL expansion
  /// policy runs its inference walk via engine().Mine). The engine owns
  /// the per-episode dedup set, the cross-episode node counter, and every
  /// counter/decision-log emission for the "rl" miner.
  search::SearchEngine& engine() { return engine_; }

  /// 1-based count of Reset() calls and the step count within the current
  /// episode — the (episode, step) coordinates the decision log stamps on
  /// its RL events, so RlMiner's step records and the environment's emit
  /// records join on the same axes.
  size_t episode_index() const { return episode_index_; }
  size_t step_index() const { return step_index_; }

  const ActionSpace& space() const { return *space_; }
  const EnvOptions& options() const { return options_; }

  /// Checkpoint support for the cross-episode state: the global rule pool
  /// (with each entry's rule key, restoring pool_keys_ in lockstep) and the
  /// node counter. The reward/stats caches are deliberately NOT saved: they
  /// are pure memoization and are recomputed deterministically on resume —
  /// only the evaluation *count* differs, never any reward value.
  void SavePersistent(ckpt::Writer* w) const;
  Status LoadPersistent(ckpt::Reader* r);

 private:
  struct TreeNode {
    RuleKey key;
    Cover cover;
    size_t num_children = 0;
  };

  /// Base reward of a rule (cached): utility if supported, else the penalty.
  float BaseReward(const RuleKey& key, const RuleStats& stats);

  /// Measures of the rule `key` over `cover`, cached across episodes.
  /// `parent_lhs`, when the step appended an LHS pair, is the parent rule's
  /// LHS — forwarded to the evaluator as a partition-refinement hint.
  RuleStats StatsOf(const RuleKey& key, const EditingRule& rule,
                    const Cover& cover,
                    const LhsPairs* parent_lhs = nullptr);

  /// Advances current_ to the next queued node; sets done_ if none.
  void AdvanceToNextNode();

  const Corpus* corpus_;
  const ActionSpace* space_;
  RuleEvaluator* evaluator_;
  EnvOptions options_;
  /// Tagged kRl/"rl". Owns the tree's dedup set (cleared per episode), the
  /// cross-episode node counter (persisted in checkpoints), evaluation,
  /// and all expand/prune/emit bookkeeping.
  search::SearchEngine engine_;
  double utility_scale_ = 1.0;

  // Episode state.
  std::vector<TreeNode> nodes_;
  std::deque<size_t> queue_;
  size_t current_ = 0;
  bool done_ = true;
  std::vector<ScoredRule> leaves_;

  // Persistent state.
  std::unordered_map<RuleKey, float, VectorHash> reward_cache_;   // R_Sigma
  std::unordered_map<RuleKey, RuleStats, VectorHash> stats_cache_;
  RuleKeySet pool_keys_;
  std::vector<ScoredRule> global_pool_;
  size_t episode_index_ = 0;
  size_t step_index_ = 0;
};

}  // namespace erminer

#endif  // ERMINER_CORE_ENVIRONMENT_H_
