#include "core/rule.h"

#include <algorithm>
#include <sstream>

namespace erminer {

bool PatternItem::Matches(ValueCode v) const {
  if (v == kNullCode) return false;
  const bool member = std::binary_search(values.begin(), values.end(), v);
  return negated ? !member : member;
}

void Pattern::Add(PatternItem item) {
  ERMINER_CHECK(!item.values.empty());
  ERMINER_CHECK(std::is_sorted(item.values.begin(), item.values.end()));
  ERMINER_CHECK(!SpecifiesAttr(item.attr));
  auto pos = std::lower_bound(
      items_.begin(), items_.end(), item,
      [](const PatternItem& x, const PatternItem& y) { return x.attr < y.attr; });
  items_.insert(pos, std::move(item));
}

bool Pattern::SpecifiesAttr(int attr) const {
  for (const auto& it : items_) {
    if (it.attr == attr) return true;
  }
  return false;
}

bool Pattern::MatchesRow(const Table& input, size_t r) const {
  for (const auto& it : items_) {
    if (!it.Matches(input.at(r, static_cast<size_t>(it.attr)))) return false;
  }
  return true;
}

bool Pattern::DominatesOrEquals(const Pattern& other) const {
  // items_ sorted by attr in both; subset check with identical conditions.
  size_t j = 0;
  for (const auto& mine : items_) {
    while (j < other.items_.size() && other.items_[j].attr < mine.attr) ++j;
    if (j >= other.items_.size() || !(other.items_[j] == mine)) return false;
  }
  return true;
}

void EditingRule::AddLhs(int a, int a_m) {
  ERMINER_CHECK(!HasLhsAttr(a));
  auto pos = std::lower_bound(lhs.begin(), lhs.end(), std::make_pair(a, a_m));
  lhs.insert(pos, {a, a_m});
}

bool EditingRule::HasLhsAttr(int a) const {
  for (const auto& [x, xm] : lhs) {
    if (x == a) return true;
  }
  return false;
}

bool EditingRule::Dominates(const EditingRule& other) const {
  if (y_input != other.y_input || y_master != other.y_master) return false;
  if (*this == other) return false;
  // lhs subset (both sorted).
  if (!std::includes(other.lhs.begin(), other.lhs.end(), lhs.begin(),
                     lhs.end())) {
    return false;
  }
  return pattern.DominatesOrEquals(other.pattern);
}

uint64_t RuleProvenanceId(const EditingRule& rule, const Corpus& corpus) {
  const Schema& in = corpus.input().schema();
  const Schema& ms = corpus.master().schema();
  // FNV-1a over a tagged, NUL-delimited rendering of the rule's structure.
  uint64_t h = 0xCBF29CE484222325ull;
  auto mix = [&h](const char* s, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(s[i]);
      h *= 0x100000001B3ull;
    }
  };
  auto mix_str = [&](const std::string& s) {
    mix(s.data(), s.size());
    mix("\0", 1);
  };
  for (const auto& [a, am] : rule.lhs) {
    mix("L", 1);
    mix_str(in.attribute(static_cast<size_t>(a)).name);
    mix_str(ms.attribute(static_cast<size_t>(am)).name);
  }
  mix("Y", 1);
  mix_str(in.attribute(static_cast<size_t>(rule.y_input)).name);
  mix_str(ms.attribute(static_cast<size_t>(rule.y_master)).name);
  for (const PatternItem& item : rule.pattern.items()) {
    mix(item.negated ? "N" : "P", 1);
    mix_str(in.attribute(static_cast<size_t>(item.attr)).name);
    const Domain& dom = *corpus.input().domain(static_cast<size_t>(item.attr));
    for (ValueCode v : item.values) mix_str(dom.value(v));
  }
  return h != 0 ? h : 1;  // 0 is reserved for "no id"
}

std::string EditingRule::ToString(const Corpus& corpus) const {
  const Schema& in = corpus.input().schema();
  const Schema& ms = corpus.master().schema();
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) os << ",";
    os << "(" << in.attribute(static_cast<size_t>(lhs[i].first)).name << ","
       << ms.attribute(static_cast<size_t>(lhs[i].second)).name << ")";
  }
  os << ") -> (" << in.attribute(static_cast<size_t>(y_input)).name << ","
     << ms.attribute(static_cast<size_t>(y_master)).name << ")";
  if (!pattern.empty()) {
    os << ", tp[";
    for (size_t i = 0; i < pattern.items().size(); ++i) {
      if (i > 0) os << ",";
      os << in.attribute(static_cast<size_t>(pattern.items()[i].attr)).name;
    }
    os << "]=(";
    for (size_t i = 0; i < pattern.items().size(); ++i) {
      if (i > 0) os << ",";
      os << pattern.items()[i].label;
    }
    os << ")";
  } else {
    os << ", tp=()";
  }
  return os.str();
}

}  // namespace erminer
