#include "core/rule_explain.h"

#include <algorithm>
#include <sstream>

namespace erminer {

namespace {

std::string ProseOf(const EditingRule& rule, const Corpus& corpus,
                    const RuleStats& stats) {
  const Schema& in = corpus.input().schema();
  const Schema& ms = corpus.master().schema();
  std::ostringstream os;
  os << "When a tuple ";
  if (!rule.pattern.empty()) {
    os << "has ";
    for (size_t i = 0; i < rule.pattern.items().size(); ++i) {
      const PatternItem& item = rule.pattern.items()[i];
      if (i > 0) os << " and ";
      std::string label = item.label;
      if (item.negated && !label.empty() && label[0] == '!') {
        label = label.substr(1);  // the comparator already says "!="
      }
      os << in.attribute(static_cast<size_t>(item.attr)).name
         << (item.negated ? " != " : " = ") << label;
    }
    os << " and ";
  }
  os << "agrees with a master tuple on ";
  for (size_t i = 0; i < rule.lhs.size(); ++i) {
    if (i > 0) os << ", ";
    os << in.attribute(static_cast<size_t>(rule.lhs[i].first)).name << "/"
       << ms.attribute(static_cast<size_t>(rule.lhs[i].second)).name;
  }
  os << ", take its "
     << ms.attribute(static_cast<size_t>(rule.y_master)).name << " as the "
     << in.attribute(static_cast<size_t>(rule.y_input)).name << " fix. "
     << "It applies to " << stats.support << " tuples with average "
     << "certainty " << static_cast<int>(stats.certainty * 100 + 0.5)
     << "% and quality " << static_cast<int>(stats.quality * 100 + 0.5)
     << "%.";
  return os.str();
}

}  // namespace

RuleExplanation ExplainRule(RuleEvaluator* evaluator, const EditingRule& rule,
                            size_t max_examples) {
  const Corpus& corpus = evaluator->corpus();
  RuleExplanation out;
  Cover cover = CoverOf(corpus, rule.pattern);
  out.cover_size = cover->size();
  out.stats = evaluator->Evaluate(rule, cover);
  out.applicable = static_cast<size_t>(out.stats.support);
  out.prose = ProseOf(rule, corpus, out.stats);

  EvalCache::Entry entry = evaluator->cache().Get(rule.lhs);
  const Domain& dy = *corpus.y_domain();
  std::vector<RuleExample> candidates;
  for (uint32_t r : *cover) {
    const Group* g = entry.column->group[r];
    if (g == nullptr) continue;
    RuleExample ex;
    ex.row = r;
    ex.current_value =
        corpus.input().CellString(r, static_cast<size_t>(rule.y_input));
    ex.proposed_value = dy.ValueOrNull(g->argmax);
    ex.certainty = g->Certainty();
    candidates.push_back(std::move(ex));
  }
  // Prefer actual changes, then uncertain cases; stable row order inside.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const RuleExample& a, const RuleExample& b) {
                     bool change_a = a.current_value != a.proposed_value;
                     bool change_b = b.current_value != b.proposed_value;
                     if (change_a != change_b) return change_a;
                     return a.certainty < b.certainty;
                   });
  if (candidates.size() > max_examples) candidates.resize(max_examples);
  out.examples = std::move(candidates);
  return out;
}

std::string FormatExplanation(const RuleExplanation& explanation) {
  std::ostringstream os;
  os << explanation.prose << "\n";
  os << "  pattern cover: " << explanation.cover_size
     << " tuples, applicable: " << explanation.applicable << "\n";
  for (const auto& ex : explanation.examples) {
    os << "  row " << ex.row << ": '" << ex.current_value << "' -> '"
       << ex.proposed_value << "' (certainty "
       << static_cast<int>(ex.certainty * 100 + 0.5) << "%)\n";
  }
  return os.str();
}

}  // namespace erminer
