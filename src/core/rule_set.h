// Non-redundant top-K rule selection (Defs. 3-4, Problem 1).

#ifndef ERMINER_CORE_RULE_SET_H_
#define ERMINER_CORE_RULE_SET_H_

#include <vector>

#include "core/measures.h"
#include "core/rule.h"

namespace erminer {

struct ScoredRule {
  EditingRule rule;
  RuleStats stats;
  /// RuleProvenanceId(rule, corpus), filled by the miners at pool insertion
  /// (and by rule_io on read): the join key into the decision log's emit and
  /// repair events. 0 = not attached.
  uint64_t provenance = 0;
};

/// Greedy utility-descending selection of at most K rules such that no
/// selected rule dominates another (Def. 4). Exact duplicates are dropped.
std::vector<ScoredRule> SelectTopKNonRedundant(std::vector<ScoredRule> pool,
                                               size_t k);

/// Verifies Def. 4 over a set (used by tests and as a debug check).
bool IsNonRedundant(const std::vector<ScoredRule>& rules);

/// Mean/std/max/min of LHS and pattern lengths (Table II rows).
struct RuleLengthStats {
  double lhs_mean = 0, lhs_std = 0;
  size_t lhs_max = 0, lhs_min = 0;
  double pattern_mean = 0, pattern_std = 0;
  size_t pattern_max = 0, pattern_min = 0;
};
RuleLengthStats ComputeLengthStats(const std::vector<ScoredRule>& rules);

}  // namespace erminer

#endif  // ERMINER_CORE_RULE_SET_H_
