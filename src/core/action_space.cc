#include "core/action_space.h"

#include <algorithm>

namespace erminer {

const std::vector<int32_t> ActionSpace::kEmpty = {};

RuleKey KeyWith(const RuleKey& key, int32_t a) {
  RuleKey out = key;
  auto pos = std::lower_bound(out.begin(), out.end(), a);
  ERMINER_CHECK(pos == out.end() || *pos != a);
  out.insert(pos, a);
  return out;
}

ActionSpace ActionSpace::Build(const Corpus& corpus,
                               const ActionSpaceOptions& opts) {
  ActionSpace space;
  space.y_input_ = corpus.y_input();
  space.y_master_ = corpus.y_master();
  const size_t width = corpus.input().num_cols();
  space.lhs_by_attr_.assign(width, {});
  space.pattern_by_attr_.assign(width, {});

  // s_l: one action per matched pair (A, A_m), A != Y (Eq. 7/10).
  for (size_t a = 0; a < width; ++a) {
    if (static_cast<int>(a) == corpus.y_input()) continue;
    for (int am : corpus.match().Matches(static_cast<int>(a))) {
      space.lhs_by_attr_[a].push_back(
          static_cast<int32_t>(space.lhs_actions_.size()));
      space.lhs_actions_.push_back({static_cast<int>(a), am});
    }
  }

  // s_p: candidate value classes per attribute A != Y (Eq. 8/11).
  DomainCompressOptions copts;
  copts.min_frequency = opts.support_threshold;
  copts.max_classes = opts.max_classes_per_attr;
  copts.prefix_merge = opts.prefix_merge;
  copts.include_negations = opts.include_negations;
  for (size_t a = 0; a < width; ++a) {
    if (static_cast<int>(a) == corpus.y_input()) continue;
    auto items = CompressDomain(corpus, static_cast<int>(a), copts);
    for (auto& item : items) {
      space.pattern_by_attr_[a].push_back(static_cast<int32_t>(
          space.lhs_actions_.size() + space.pattern_items_.size()));
      space.pattern_items_.push_back(std::move(item));
    }
  }
  return space;
}

const std::vector<int32_t>& ActionSpace::LhsActionsOfAttr(int attr) const {
  if (attr < 0 || static_cast<size_t>(attr) >= lhs_by_attr_.size()) {
    return kEmpty;
  }
  return lhs_by_attr_[static_cast<size_t>(attr)];
}

const std::vector<int32_t>& ActionSpace::PatternActionsOfAttr(int attr) const {
  if (attr < 0 || static_cast<size_t>(attr) >= pattern_by_attr_.size()) {
    return kEmpty;
  }
  return pattern_by_attr_[static_cast<size_t>(attr)];
}

EditingRule ActionSpace::Decode(const RuleKey& key) const {
  EditingRule rule;
  rule.y_input = y_input_;
  rule.y_master = y_master_;
  for (int32_t i : key) {
    if (IsLhsAction(i)) {
      const LhsAction& la = lhs_action(i);
      rule.AddLhs(la.a, la.a_m);
    } else if (IsPatternAction(i)) {
      rule.pattern.Add(pattern_item(i));
    } else {
      ERMINER_CHECK(false && "stop action in a rule key");
    }
  }
  return rule;
}

Result<RuleKey> ActionSpace::Encode(const EditingRule& rule) const {
  RuleKey key;
  for (const auto& [a, am] : rule.lhs) {
    bool found = false;
    for (int32_t i : LhsActionsOfAttr(a)) {
      const LhsAction& la = lhs_action(i);
      if (la.a_m == am) {
        key.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("no action for lhs pair (" + std::to_string(a) +
                              "," + std::to_string(am) + ")");
    }
  }
  for (const auto& item : rule.pattern.items()) {
    bool found = false;
    for (int32_t i : PatternActionsOfAttr(item.attr)) {
      if (pattern_item(i).values == item.values) {
        key.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("no action for pattern condition on attr " +
                              std::to_string(item.attr));
    }
  }
  std::sort(key.begin(), key.end());
  return key;
}

}  // namespace erminer
