#include "core/violations.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace erminer {

ViolationReport DetectViolations(RuleEvaluator* evaluator,
                                 const std::vector<ScoredRule>& rules,
                                 const ViolationOptions& options) {
  ERMINER_SPAN("violations/detect");
  ERMINER_COUNT("violations/rules_checked", rules.size());
  const Corpus& corpus = evaluator->corpus();
  const size_t y = static_cast<size_t>(corpus.y_input());
  ViolationReport report;
  std::vector<uint8_t> flagged(corpus.input().num_rows(), 0);
  std::vector<uint8_t> missing_seen(corpus.input().num_rows(), 0);

  for (size_t ri = 0; ri < rules.size(); ++ri) {
    const EditingRule& rule = rules[ri].rule;
    Cover cover = CoverOf(corpus, rule.pattern);
    EvalCache::Entry entry = evaluator->cache().Get(rule.lhs);
    const std::vector<uint32_t>& rows = *cover;
    const std::vector<const Group*>& groups = entry.column->group;
    // Rows within one cover are distinct, so the flag writes are race-free;
    // per-chunk violation lists concatenated in chunk order reproduce the
    // serial (ascending-row) order within this rule.
    std::vector<Violation> found = GlobalPool().ParallelReduce(
        0, rows.size(), kDefaultGrain, std::vector<Violation>{},
        [&](size_t b, size_t e) {
          std::vector<Violation> part;
          for (size_t i = b; i < e; ++i) {
            const uint32_t r = rows[i];
            const Group* g = groups[r];
            if (g == nullptr || g->total == 0) continue;
            if (g->Certainty() < options.min_certainty) continue;
            ValueCode current = corpus.input().at(r, y);
            if (current == kNullCode) {
              missing_seen[r] = 1;
              if (options.flag_missing) {
                part.push_back({r, ri, kNullCode, g->argmax});
                flagged[r] = 1;
              }
              continue;
            }
            if (current != g->argmax) {
              part.push_back({r, ri, current, g->argmax});
              flagged[r] = 1;
            }
          }
          return part;
        },
        [](std::vector<Violation>* acc, const std::vector<Violation>& part) {
          acc->insert(acc->end(), part.begin(), part.end());
        });
    report.violations.insert(report.violations.end(), found.begin(),
                             found.end());
  }
  for (uint8_t f : flagged) report.num_flagged_rows += f;
  for (uint8_t m : missing_seen) report.num_missing_covered += m;
  ERMINER_COUNT("violations/found", report.violations.size());
  ERMINER_COUNT("violations/rows_flagged", report.num_flagged_rows);
  return report;
}

}  // namespace erminer
