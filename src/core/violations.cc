#include "core/violations.h"

namespace erminer {

ViolationReport DetectViolations(RuleEvaluator* evaluator,
                                 const std::vector<ScoredRule>& rules,
                                 const ViolationOptions& options) {
  const Corpus& corpus = evaluator->corpus();
  const size_t y = static_cast<size_t>(corpus.y_input());
  ViolationReport report;
  std::vector<uint8_t> flagged(corpus.input().num_rows(), 0);
  std::vector<uint8_t> missing_seen(corpus.input().num_rows(), 0);

  for (size_t ri = 0; ri < rules.size(); ++ri) {
    const EditingRule& rule = rules[ri].rule;
    Cover cover = CoverOf(corpus, rule.pattern);
    EvalCache::Entry entry = evaluator->cache().Get(rule.lhs);
    for (uint32_t r : *cover) {
      const Group* g = entry.column->group[r];
      if (g == nullptr || g->total == 0) continue;
      if (g->Certainty() < options.min_certainty) continue;
      ValueCode current = corpus.input().at(r, y);
      if (current == kNullCode) {
        missing_seen[r] = 1;
        if (options.flag_missing) {
          report.violations.push_back({r, ri, kNullCode, g->argmax});
          flagged[r] = 1;
        }
        continue;
      }
      if (current != g->argmax) {
        report.violations.push_back({r, ri, current, g->argmax});
        flagged[r] = 1;
      }
    }
  }
  for (uint8_t f : flagged) report.num_flagged_rows += f;
  for (uint8_t m : missing_seen) report.num_missing_covered += m;
  return report;
}

}  // namespace erminer
