// Action space and state encoding (Sec. IV-A, IV-B; Eqs. 6-12).
//
// The state of a rule is the one-hot vector s = [s_l ; s_p]:
//   s_l — one dimension per matched attribute pair (A, A_m), A != Y;
//   s_p — one dimension per candidate pattern condition (A, value class),
//         A != Y, produced by CompressDomain (continuous attributes were
//         discretized into N_split ranges when the Corpus was built).
// The action vector a = [a_l ; a_p ; a_stop] aligns with s plus one trailing
// stop action. A rule therefore IS the set of action indices that are 1 in
// its state; we call that sorted index set the rule's key.

#ifndef ERMINER_CORE_ACTION_SPACE_H_
#define ERMINER_CORE_ACTION_SPACE_H_

#include <unordered_set>
#include <vector>

#include "core/domain_compress.h"
#include "core/rule.h"
#include "data/corpus.h"
#include "util/hash.h"

namespace erminer {

/// A rule identified by its sorted set of action indices.
using RuleKey = std::vector<int32_t>;
using RuleKeySet = std::unordered_set<RuleKey, VectorHash>;

/// Returns a copy of `key` with action `a` inserted (keeps order).
RuleKey KeyWith(const RuleKey& key, int32_t a);

struct ActionSpaceOptions {
  /// eta_s: prunes pattern-value candidates by input frequency.
  double support_threshold = 0;
  /// K: per-attribute cap on candidate classes (0 = unlimited).
  size_t max_classes_per_attr = 64;
  /// Common-prefix merging beyond K (RLMiner: on; EnuMiner: off for
  /// exactness — it then simply keeps the K most frequent values).
  bool prefix_merge = true;
  /// Emit negated pattern conditions (\bar{a} of [18]) for small domains.
  bool include_negations = false;
};

class ActionSpace {
 public:
  struct LhsAction {
    int a;    // input column
    int a_m;  // master column
  };

  static ActionSpace Build(const Corpus& corpus,
                           const ActionSpaceOptions& opts);

  /// dim(s_l), dim(s_p), dim(s) and the number of actions dim(s)+1.
  size_t lhs_dim() const { return lhs_actions_.size(); }
  size_t pattern_dim() const { return pattern_items_.size(); }
  size_t state_dim() const { return lhs_dim() + pattern_dim(); }
  size_t num_actions() const { return state_dim() + 1; }
  int32_t stop_action() const { return static_cast<int32_t>(state_dim()); }

  bool IsLhsAction(int32_t i) const {
    return i >= 0 && static_cast<size_t>(i) < lhs_dim();
  }
  bool IsPatternAction(int32_t i) const {
    return static_cast<size_t>(i) >= lhs_dim() &&
           static_cast<size_t>(i) < state_dim();
  }
  bool IsStopAction(int32_t i) const { return i == stop_action(); }

  const LhsAction& lhs_action(int32_t i) const {
    ERMINER_CHECK(IsLhsAction(i));
    return lhs_actions_[static_cast<size_t>(i)];
  }
  const PatternItem& pattern_item(int32_t i) const {
    ERMINER_CHECK(IsPatternAction(i));
    return pattern_items_[static_cast<size_t>(i) - lhs_dim()];
  }

  /// All LHS action indices whose input attribute is `attr`.
  const std::vector<int32_t>& LhsActionsOfAttr(int attr) const;
  /// All pattern action indices whose attribute is `attr`.
  const std::vector<int32_t>& PatternActionsOfAttr(int attr) const;

  /// Builds the EditingRule a key denotes.
  EditingRule Decode(const RuleKey& key) const;

  /// Inverse of Decode. Every LHS pair / pattern condition must correspond
  /// to an action; returns NotFound otherwise.
  Result<RuleKey> Encode(const EditingRule& rule) const;

  int y_input() const { return y_input_; }
  int y_master() const { return y_master_; }

 private:
  std::vector<LhsAction> lhs_actions_;
  std::vector<PatternItem> pattern_items_;
  std::vector<std::vector<int32_t>> lhs_by_attr_;      // indexed by input col
  std::vector<std::vector<int32_t>> pattern_by_attr_;  // indexed by input col
  int y_input_ = -1;
  int y_master_ = -1;
  static const std::vector<int32_t> kEmpty;
};

}  // namespace erminer

#endif  // ERMINER_CORE_ACTION_SPACE_H_
