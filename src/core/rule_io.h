// Textual (de)serialization of discovered rule sets, so mining and repair
// can run as separate processes (see tools/erminer_cli).
//
// Format: one rule per line,
//   lhs=A:Am,B:Bm  y=Y:Ym  tp=Attr=val1|val2;Attr2=val  S=123 C=0.95 Q=0.4
//   U=0.2 id=00451a2b3c4d5e6f
// Attribute references are written by NAME (resolved against the corpus on
// load, so a rule file survives column reordering); pattern values are the
// dictionary strings. Lines starting with '#' are comments. `id` is the
// rule's provenance id (RuleProvenanceId) — the join key into a
// --decision-log file; optional on read (recomputed when absent), so
// pre-provenance files still load.

#ifndef ERMINER_CORE_RULE_IO_H_
#define ERMINER_CORE_RULE_IO_H_

#include <string>
#include <vector>

#include "core/rule_set.h"
#include "data/corpus.h"

namespace erminer {

/// Serializes a rule set (with stats) against the corpus's schemas.
std::string RulesToText(const std::vector<ScoredRule>& rules,
                        const Corpus& corpus);

/// Parses rules back. Unknown attribute names fail; pattern values absent
/// from the corpus dictionary fail (such a condition could never match).
Result<std::vector<ScoredRule>> RulesFromText(const std::string& text,
                                              const Corpus& corpus);

/// File convenience wrappers.
Status WriteRulesFile(const std::vector<ScoredRule>& rules,
                      const Corpus& corpus, const std::string& path);
Result<std::vector<ScoredRule>> ReadRulesFile(const std::string& path,
                                              const Corpus& corpus);

}  // namespace erminer

#endif  // ERMINER_CORE_RULE_IO_H_
