// EnuMiner (Sec. II-D): CTANE-style breadth-first enumeration of the full
// editing-rule lattice with support-based pruning (Lemma 1) and duplicate
// elimination, plus the depth-limited heuristic EnuMinerH3 (Sec. V-D2).
//
// Enumeration is exact over the candidate space after the sound
// frequency-pruning of pattern values (a value rarer than eta_s in the input
// cannot support a qualifying rule); prefix merging is disabled.

#ifndef ERMINER_CORE_ENU_MINER_H_
#define ERMINER_CORE_ENU_MINER_H_

#include "core/measures.h"
#include "core/miner.h"
#include "data/corpus.h"

namespace erminer {

/// Mines top-K non-redundant editing rules by exhaustive lattice search.
MineResult EnuMine(const Corpus& corpus, const MinerOptions& options);

/// The paper's heuristic: EnuMine with LHS and pattern lengths capped at 3.
MineResult EnuMineH3(const Corpus& corpus, MinerOptions options);

}  // namespace erminer

#endif  // ERMINER_CORE_ENU_MINER_H_
