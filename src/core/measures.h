// The utility measures of Sec. II-B: Support (Eq. 1), Certainty (Eqs. 2-3),
// Quality (Eqs. 4-5) and Utility U = (log S)^2 * (C + Q).

#ifndef ERMINER_CORE_MEASURES_H_
#define ERMINER_CORE_MEASURES_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/rule.h"
#include "data/corpus.h"
#include "index/eval_cache.h"

namespace erminer {

struct RuleStats {
  long support = 0;       // S (Eq. 1)
  double certainty = 0;   // C (Eq. 3)
  double quality = 0;     // Q (Eq. 5)
  double utility = 0;     // U = (log S)^2 * (C + Q)
};

/// Utility from its components; support <= 1 yields utility 0 (log(1) = 0).
double UtilityOf(long support, double certainty, double quality);

/// A cover: input row ids matching a rule's pattern. Shared between a node
/// and its LHS-refining children (the pattern is unchanged there).
using Cover = std::shared_ptr<const std::vector<uint32_t>>;

/// The all-rows cover of a corpus.
Cover FullCover(const Corpus& corpus);

/// Rows of `parent` that additionally satisfy `item` (subspace search).
Cover RefineCover(const Corpus& corpus, const Cover& parent,
                  const PatternItem& item);

/// Cover computed from scratch for an arbitrary pattern.
Cover CoverOf(const Corpus& corpus, const Pattern& pattern);

class RuleEvaluator {
 public:
  explicit RuleEvaluator(const Corpus* corpus, size_t cache_capacity = 256)
      : corpus_(corpus), cache_(corpus, cache_capacity) {}

  RuleEvaluator(const RuleEvaluator&) = delete;
  RuleEvaluator& operator=(const RuleEvaluator&) = delete;

  /// Evaluates all measures over the rule's pattern cover. If `cover` is
  /// null it is computed from the rule's pattern. The Quality measure uses
  /// Corpus::QualityLabel (labelled truths when available, otherwise the
  /// input value itself, Sec. II-B3).
  ///
  /// Thread-safe: the cover scan partitions rows into per-chunk counters
  /// merged in chunk-index order (bit-identical for every thread count),
  /// and the backing EvalCache serializes its own mutation. Concurrent
  /// Evaluate calls from a parallel miner frontier are therefore safe.
  ///
  /// `parent_lhs`, if non-null, is the rule's LHS minus the one pair the
  /// miner just appended; it is forwarded to the EvalCache as a partition-
  /// refinement hint (docs/perf.md). Purely a performance hint — results
  /// are bit-identical with or without it.
  RuleStats Evaluate(const EditingRule& rule, const Cover& cover = nullptr,
                     const LhsPairs* parent_lhs = nullptr);

  /// Evaluate against an already-fetched cache entry for the rule's LHS —
  /// the consumer half of EvalCache::GetBatch (the search engine fetches
  /// one entry per admitted sibling in a single batch, then scores each
  /// rule with this). Same counting and identical results as Evaluate.
  RuleStats EvaluateWith(const EvalCache::Entry& entry,
                         const EditingRule& rule,
                         const Cover& cover = nullptr);

  /// Number of rule evaluations performed (for the experiment reports).
  size_t num_evaluations() const {
    return num_evaluations_.load(std::memory_order_relaxed);
  }

  const Corpus& corpus() const { return *corpus_; }
  EvalCache& cache() { return cache_; }

 private:
  const Corpus* corpus_;
  EvalCache cache_;
  std::atomic<size_t> num_evaluations_{0};
};

}  // namespace erminer

#endif  // ERMINER_CORE_MEASURES_H_
