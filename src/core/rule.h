// Editing rules (Def. 1) and the domination order (Defs. 2-4).
//
// An eR is ((X, X_m) -> (Y, Y_m), t_p): matched LHS attribute pairs, the
// target pair, and a constant pattern over input attributes. One extension
// over the paper's syntax: a pattern condition is a *value class* — normally
// a singleton constant, but possibly a common-prefix class produced by
// DomainCompressor when a domain is too large to one-hot encode (Sec. IV-A's
// prefix reduction). Matching a class tests membership.

#ifndef ERMINER_CORE_RULE_H_
#define ERMINER_CORE_RULE_H_

#include <string>
#include <vector>

#include "data/corpus.h"
#include "index/eval_cache.h"

namespace erminer {

/// One pattern condition: t_p[attr] \in values, or — with `negated`, the
/// paper's \bar{a} conditions from [18] — t_p[attr] \notin values. A NULL
/// cell matches neither form (its value is unknown).
struct PatternItem {
  int attr = -1;                   // input column
  std::vector<ValueCode> values;   // sorted, non-empty value class
  std::string label;               // display form ("HZ", "pc1*", "!HZ")
  bool negated = false;

  bool Matches(ValueCode v) const;
  bool operator==(const PatternItem& other) const {
    return attr == other.attr && values == other.values &&
           negated == other.negated;
  }
};

/// A pattern tuple t_p: at most one condition per attribute, sorted by attr.
class Pattern {
 public:
  Pattern() = default;

  /// Adds a condition; the attribute must not already be specified.
  void Add(PatternItem item);

  bool SpecifiesAttr(int attr) const;
  const std::vector<PatternItem>& items() const { return items_; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Does input row `r` match every condition?
  bool MatchesRow(const Table& input, size_t r) const;

  /// Pattern domination (Def. 2): this <= other componentwise, i.e. every
  /// condition of *this appears identically in `other`.
  bool DominatesOrEquals(const Pattern& other) const;

  bool operator==(const Pattern& other) const { return items_ == other.items_; }

 private:
  std::vector<PatternItem> items_;
};

/// An editing rule.
struct EditingRule {
  LhsPairs lhs;        // sorted (A, A_m) pairs; distinct input attributes
  int y_input = -1;    // Y
  int y_master = -1;   // Y_m
  Pattern pattern;     // t_p

  size_t LhsSize() const { return lhs.size(); }
  size_t PatternSize() const { return pattern.size(); }

  /// Adds an LHS pair keeping the sorted order. The input attribute must not
  /// already appear.
  void AddLhs(int a, int a_m);

  bool HasLhsAttr(int a) const;

  /// Rule domination per Def. 3 (interpreted inclusively, as the paper's
  /// prose describes): lhs(this) \subseteq lhs(other), t_p(this) <= t_p(other)
  /// and the rules differ. A dominating rule is the more general one;
  /// Lemma 1 gives S(this) >= S(other).
  bool Dominates(const EditingRule& other) const;

  bool operator==(const EditingRule& other) const {
    return lhs == other.lhs && y_input == other.y_input &&
           y_master == other.y_master && pattern == other.pattern;
  }

  /// Human-readable form using corpus schemas, e.g.
  /// "((City,City),(Date,Date)) -> (Case,Infection), tp[Overseas]=No".
  std::string ToString(const Corpus& corpus) const;
};

/// The rule's provenance id: a 64-bit content hash over its structure by
/// *name* (attribute names, pattern value strings), so the same rule gets
/// the same id in any process over the same corpus files — mining, repair
/// and the decision log all derive it independently and join on it. Never
/// zero (zero means "no id"). Thread count, miner and log arming cannot
/// change it: it is a pure function of (rule, corpus).
uint64_t RuleProvenanceId(const EditingRule& rule, const Corpus& corpus);

}  // namespace erminer

#endif  // ERMINER_CORE_RULE_H_
