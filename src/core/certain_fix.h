// Certain fixes in the sense of the original editing-rule paper
// (Fan et al., "Towards certain fixes with editing rules and master data",
// VLDB J. 2012): a fix for t[Y] is *certain* under a rule set when every
// applicable rule determines a unique candidate and all applicable rules
// agree on it. This is the strict companion to RepairEngine's
// certainty-weighted vote (which always picks the best-scoring candidate).

#ifndef ERMINER_CORE_CERTAIN_FIX_H_
#define ERMINER_CORE_CERTAIN_FIX_H_

#include <vector>

#include "core/measures.h"
#include "core/rule_set.h"

namespace erminer {

enum class FixKind : uint8_t {
  kNoRule = 0,      // no rule covers the tuple
  kCertain = 1,     // unique agreed candidate
  kAmbiguous = 2,   // some rule returns more than one candidate
  kConflicting = 3, // rules determine different unique candidates
};

struct CertainFixOutcome {
  /// Per input row: the certain fix, or kNullCode when kind != kCertain.
  std::vector<ValueCode> fix;
  std::vector<FixKind> kind;
  size_t num_certain = 0;
  size_t num_ambiguous = 0;
  size_t num_conflicting = 0;
  size_t num_uncovered = 0;
};

/// Computes certain fixes of the evaluator's corpus under `rules`.
CertainFixOutcome ComputeCertainFixes(RuleEvaluator* evaluator,
                                      const std::vector<ScoredRule>& rules);

}  // namespace erminer

#endif  // ERMINER_CORE_CERTAIN_FIX_H_
