// CTANE baseline (Sec. V-A2): level-wise discovery of conditional functional
// dependencies on the MASTER relation, converted into editing rules.
//
// A CFD (X -> Y_m, t_p) holds when, within every group of master tuples
// agreeing on the constant part t_p and on the wildcard attributes, the Y_m
// value is unique (confidence 1), and the pattern's master support reaches
// the (master-scaled) threshold. A CFD converts to an eR only if its
// wildcard attributes all have matched input attributes (they become LHS
// pairs) and its constant attributes do too (they become pattern
// conditions). As the paper argues, this baseline cannot express conditions
// on input-only attributes, which is what limits its recall.

#ifndef ERMINER_CORE_CFD_MINER_H_
#define ERMINER_CORE_CFD_MINER_H_

#include "core/measures.h"
#include "core/miner.h"
#include "data/corpus.h"

namespace erminer {

struct CfdMinerOptions {
  /// Max attributes in X (wildcards + constants).
  size_t max_lhs = 3;
  /// CFD confidence required within each group (1.0 = exact). The default
  /// admits approximate CFDs, as is common in CFD discovery over real data;
  /// master relations whose dependencies have exceptions would otherwise
  /// yield no rules at all.
  double min_confidence = 0.9;
  /// Master support threshold; if <= 0, derived as
  /// eta_s * |master| / |input| (clamped to >= 2).
  double master_support_threshold = 0;
};

/// Mines CFDs on master data and returns the top-K converted editing rules
/// (stats evaluated on the corpus for reporting parity with other miners).
MineResult CfdMine(const Corpus& corpus, const MinerOptions& options,
                   const CfdMinerOptions& cfd_options = {});

}  // namespace erminer

#endif  // ERMINER_CORE_CFD_MINER_H_
