// The rule mask mechanism, Algorithm 1.
//
// Given the current rule's key and the set of already-generated rule keys,
// produces a 0/1 vector over the action space:
//   - local mask: actions that would re-specify an attribute already bound
//     in LHS(phi) or in t_p are disallowed (lines 3-11);
//   - global mask: actions whose resulting rule was already generated are
//     disallowed (lines 12-17);
//   - the stop action (last dimension) is never masked (line 1).

#ifndef ERMINER_CORE_MASK_H_
#define ERMINER_CORE_MASK_H_

#include <cstdint>
#include <vector>

#include "core/action_space.h"

namespace erminer {

/// mask[i] == 1 iff action i is allowed. Size = space.num_actions().
std::vector<uint8_t> ComputeMask(const ActionSpace& space, const RuleKey& key,
                                 const RuleKeySet& discovered);

/// Number of allowed non-stop actions in a mask.
size_t CountAllowed(const std::vector<uint8_t>& mask);

}  // namespace erminer

#endif  // ERMINER_CORE_MASK_H_
