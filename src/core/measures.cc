#include "core/measures.h"

#include <cmath>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace erminer {

double UtilityOf(long support, double certainty, double quality) {
  if (support <= 1) return 0.0;
  double ls = std::log(static_cast<double>(support));
  return ls * ls * (certainty + quality);
}

Cover FullCover(const Corpus& corpus) {
  auto rows = std::make_shared<std::vector<uint32_t>>();
  rows->resize(corpus.input().num_rows());
  std::vector<uint32_t>& out = *rows;
  GlobalPool().ParallelFor(0, out.size(), kDefaultGrain,
                           [&out](size_t b, size_t e) {
                             for (size_t i = b; i < e; ++i) {
                               out[i] = static_cast<uint32_t>(i);
                             }
                           });
  return rows;
}

Cover RefineCover(const Corpus& corpus, const Cover& parent,
                  const PatternItem& item) {
  ERMINER_CHECK(parent != nullptr);
  const auto& col = corpus.input().column(static_cast<size_t>(item.attr));
  const std::vector<uint32_t>& in = *parent;
  // Per-chunk filters concatenated in chunk order keep the surviving rows
  // in exactly the serial (ascending) order for any thread count.
  auto rows = std::make_shared<std::vector<uint32_t>>(
      GlobalPool().ParallelReduce(
          0, in.size(), kDefaultGrain, std::vector<uint32_t>{},
          [&](size_t b, size_t e) {
            std::vector<uint32_t> kept;
            kept.reserve(e - b);
            for (size_t i = b; i < e; ++i) {
              if (item.Matches(col[in[i]])) kept.push_back(in[i]);
            }
            return kept;
          },
          [](std::vector<uint32_t>* acc, const std::vector<uint32_t>& part) {
            acc->insert(acc->end(), part.begin(), part.end());
          }));
  return rows;
}

Cover CoverOf(const Corpus& corpus, const Pattern& pattern) {
  Cover cover = FullCover(corpus);
  for (const auto& item : pattern.items()) {
    cover = RefineCover(corpus, cover, item);
  }
  return cover;
}

namespace {

/// Per-chunk measure accumulator; merged in chunk order so the double sums
/// associate identically for every thread count.
struct MeasurePartial {
  long support = 0;
  double certainty_sum = 0.0;
  double quality_sum = 0.0;
};

}  // namespace

RuleStats RuleEvaluator::Evaluate(const EditingRule& rule,
                                  const Cover& cover_in,
                                  const LhsPairs* parent_lhs) {
  return EvaluateWith(cache_.Get(rule.lhs, parent_lhs), rule, cover_in);
}

RuleStats RuleEvaluator::EvaluateWith(const EvalCache::Entry& entry,
                                      const EditingRule& rule,
                                      const Cover& cover_in) {
  num_evaluations_.fetch_add(1, std::memory_order_relaxed);
  ERMINER_COUNT("eval/rule_evaluations", 1);
  Cover cover = cover_in ? cover_in : CoverOf(*corpus_, rule.pattern);
  const auto& groups = entry.column->group;
  const std::vector<uint32_t>& rows = *cover;

  MeasurePartial sums = GlobalPool().ParallelReduce(
      0, rows.size(), kDefaultGrain, MeasurePartial{},
      [&](size_t b, size_t e) {
        MeasurePartial p;
        for (size_t i = b; i < e; ++i) {
          const uint32_t r = rows[i];
          const Group* g = groups[r];
          if (g == nullptr) continue;  // f_s = 0
          p.support += 1;
          p.certainty_sum += g->Certainty();
          ValueCode label = corpus_->QualityLabel(r);
          p.quality_sum +=
              (g->argmax == label && label != kNullCode) ? 1.0 : -1.0;
        }
        return p;
      },
      [](MeasurePartial* acc, const MeasurePartial& p) {
        acc->support += p.support;
        acc->certainty_sum += p.certainty_sum;
        acc->quality_sum += p.quality_sum;
      });

  RuleStats stats;
  stats.support = sums.support;
  if (stats.support > 0) {
    stats.certainty =
        sums.certainty_sum / static_cast<double>(stats.support);
    stats.quality = sums.quality_sum / static_cast<double>(stats.support);
  }
  stats.utility = UtilityOf(stats.support, stats.certainty, stats.quality);
  return stats;
}

}  // namespace erminer
