#include "core/measures.h"

#include <cmath>

namespace erminer {

double UtilityOf(long support, double certainty, double quality) {
  if (support <= 1) return 0.0;
  double ls = std::log(static_cast<double>(support));
  return ls * ls * (certainty + quality);
}

Cover FullCover(const Corpus& corpus) {
  auto rows = std::make_shared<std::vector<uint32_t>>();
  rows->resize(corpus.input().num_rows());
  for (size_t i = 0; i < rows->size(); ++i) {
    (*rows)[i] = static_cast<uint32_t>(i);
  }
  return rows;
}

Cover RefineCover(const Corpus& corpus, const Cover& parent,
                  const PatternItem& item) {
  ERMINER_CHECK(parent != nullptr);
  const auto& col = corpus.input().column(static_cast<size_t>(item.attr));
  auto rows = std::make_shared<std::vector<uint32_t>>();
  rows->reserve(parent->size() / 2);
  for (uint32_t r : *parent) {
    if (item.Matches(col[r])) rows->push_back(r);
  }
  return rows;
}

Cover CoverOf(const Corpus& corpus, const Pattern& pattern) {
  Cover cover = FullCover(corpus);
  for (const auto& item : pattern.items()) {
    cover = RefineCover(corpus, cover, item);
  }
  return cover;
}

RuleStats RuleEvaluator::Evaluate(const EditingRule& rule,
                                  const Cover& cover_in) {
  ++num_evaluations_;
  Cover cover = cover_in ? cover_in : CoverOf(*corpus_, rule.pattern);
  EvalCache::Entry entry = cache_.Get(rule.lhs);
  const auto& groups = entry.column->group;

  RuleStats stats;
  double certainty_sum = 0.0;
  double quality_sum = 0.0;
  for (uint32_t r : *cover) {
    const Group* g = groups[r];
    if (g == nullptr) continue;  // f_s = 0
    stats.support += 1;
    certainty_sum += g->Certainty();
    ValueCode label = corpus_->QualityLabel(r);
    quality_sum += (g->argmax == label && label != kNullCode) ? 1.0 : -1.0;
  }
  if (stats.support > 0) {
    stats.certainty = certainty_sum / static_cast<double>(stats.support);
    stats.quality = quality_sum / static_cast<double>(stats.support);
  }
  stats.utility = UtilityOf(stats.support, stats.certainty, stats.quality);
  return stats;
}

}  // namespace erminer
