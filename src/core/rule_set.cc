#include "core/rule_set.h"

#include <algorithm>
#include <cmath>

namespace erminer {

std::vector<ScoredRule> SelectTopKNonRedundant(std::vector<ScoredRule> pool,
                                               size_t k) {
  std::stable_sort(pool.begin(), pool.end(),
                   [](const ScoredRule& a, const ScoredRule& b) {
                     return a.stats.utility > b.stats.utility;
                   });
  std::vector<ScoredRule> out;
  for (auto& cand : pool) {
    if (out.size() >= k) break;
    bool redundant = false;
    for (const auto& kept : out) {
      if (kept.rule == cand.rule || kept.rule.Dominates(cand.rule) ||
          cand.rule.Dominates(kept.rule)) {
        redundant = true;
        break;
      }
    }
    if (!redundant) out.push_back(std::move(cand));
  }
  return out;
}

bool IsNonRedundant(const std::vector<ScoredRule>& rules) {
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = 0; j < rules.size(); ++j) {
      if (i == j) continue;
      if (rules[i].rule.Dominates(rules[j].rule)) return false;
    }
  }
  return true;
}

RuleLengthStats ComputeLengthStats(const std::vector<ScoredRule>& rules) {
  RuleLengthStats s;
  if (rules.empty()) return s;
  auto accumulate = [&](auto size_of, double* mean, double* stdev,
                        size_t* mx, size_t* mn) {
    double sum = 0;
    *mx = 0;
    *mn = static_cast<size_t>(-1);
    for (const auto& r : rules) {
      size_t n = size_of(r);
      sum += static_cast<double>(n);
      *mx = std::max(*mx, n);
      *mn = std::min(*mn, n);
    }
    *mean = sum / static_cast<double>(rules.size());
    double var = 0;
    for (const auto& r : rules) {
      double d = static_cast<double>(size_of(r)) - *mean;
      var += d * d;
    }
    *stdev = std::sqrt(var / static_cast<double>(rules.size()));
  };
  accumulate([](const ScoredRule& r) { return r.rule.LhsSize(); },
             &s.lhs_mean, &s.lhs_std, &s.lhs_max, &s.lhs_min);
  accumulate([](const ScoredRule& r) { return r.rule.PatternSize(); },
             &s.pattern_mean, &s.pattern_std, &s.pattern_max, &s.pattern_min);
  return s;
}

}  // namespace erminer
