// CTANE (partial CFD discovery) as a search-engine policy: the
// ascending-bitmask walk lives in search::CfdPolicy; this TU wires the
// evaluator and engine. The engine gets no ActionSpace — CTANE drives its
// own lattice over master-attribute sets.

#include "core/cfd_miner.h"

#include "search/policies.h"

namespace erminer {

MineResult CfdMine(const Corpus& corpus, const MinerOptions& options,
                   const CfdMinerOptions& cfd_options) {
  // Historical quirk, kept deliberately: CTANE never enables EvalCache
  // partition refinement — MinerOptions::refine gates only the live
  // GroupIndex chain inside the policy's walk.
  RuleEvaluator evaluator(&corpus);
  search::SearchEngine engine(&corpus, /*space=*/nullptr, &evaluator,
                              options, obs::DecisionMiner::kCtane, "ctane");
  search::CfdPolicy policy(cfd_options);
  return engine.Mine(policy);
}

}  // namespace erminer
