// Error DETECTION with editing rules: a tuple violates a rule when it
// matches the pattern, agrees with master tuples on the LHS, the rule's
// candidate set is unanimous (certainty 1), and the tuple's current Y value
// disagrees with that unique candidate. Under the eR semantics such a cell
// is provably wrong (given a valid rule and clean master data) — the
// detection counterpart of ComputeCertainFixes.

#ifndef ERMINER_CORE_VIOLATIONS_H_
#define ERMINER_CORE_VIOLATIONS_H_

#include <vector>

#include "core/measures.h"
#include "core/rule_set.h"

namespace erminer {

struct Violation {
  size_t row = 0;
  size_t rule_index = 0;      // into the rule vector passed in
  ValueCode current = kNullCode;
  ValueCode expected = kNullCode;
};

struct ViolationReport {
  std::vector<Violation> violations;
  /// Rows flagged by at least one rule (violations may overlap).
  size_t num_flagged_rows = 0;
  /// Rows with a NULL Y covered by a unanimous rule (missing, not wrong).
  size_t num_missing_covered = 0;
};

struct ViolationOptions {
  /// Only candidate sets at least this certain flag violations. 1.0 is the
  /// provable setting; lower values trade precision for detection recall.
  double min_certainty = 1.0;
  /// Include NULL Y cells in `violations` (as current = kNullCode).
  bool flag_missing = false;
};

ViolationReport DetectViolations(RuleEvaluator* evaluator,
                                 const std::vector<ScoredRule>& rules,
                                 const ViolationOptions& options = {});

}  // namespace erminer

#endif  // ERMINER_CORE_VIOLATIONS_H_
