// BeamMiner: a utility-guided beam-search heuristic over the same rule
// lattice. Not from the paper — an extra baseline sitting between EnuMiner
// (exhaustive) and RLMiner (learned): at each depth it keeps only the
// `beam_width` highest-utility refinable rules and expands those. Fast and
// greedy; it misses rules whose ancestors score poorly (exactly the
// low-reward-parent problem the paper's frontier bonus addresses), which
// makes it a useful foil in the ablation bench.

#ifndef ERMINER_CORE_BEAM_MINER_H_
#define ERMINER_CORE_BEAM_MINER_H_

#include "core/measures.h"
#include "core/miner.h"
#include "data/corpus.h"

namespace erminer {

struct BeamMinerOptions {
  /// Rules kept per depth level.
  size_t beam_width = 16;
  /// Maximum LHS size + pattern size.
  size_t max_depth = 6;
};

MineResult BeamMine(const Corpus& corpus, const MinerOptions& options,
                    const BeamMinerOptions& beam_options = {});

}  // namespace erminer

#endif  // ERMINER_CORE_BEAM_MINER_H_
