// Multi-target discovery: Problem 1 fixes one target pair (Y, Y_m); a data
// cleaning deployment usually wants rules for EVERY repairable attribute.
// This driver re-targets the corpus per matched attribute pair and runs a
// miner for each, returning one rule set per target.

#ifndef ERMINER_CORE_MULTI_TARGET_H_
#define ERMINER_CORE_MULTI_TARGET_H_

#include <functional>
#include <string>
#include <vector>

#include "core/miner.h"
#include "data/corpus.h"

namespace erminer {

struct TargetResult {
  int y_input = -1;
  int y_master = -1;
  std::string y_name;
  MineResult mine;
};

/// A miner as a function of the (re-targeted) corpus.
using MinerFn = std::function<MineResult(const Corpus&)>;

/// All matched attribute pairs of `corpus` as candidate targets, excluding
/// pairs whose input attribute has fewer than `min_distinct` distinct
/// values (a constant column needs no rules).
std::vector<std::pair<int, int>> CandidateTargets(const Corpus& corpus,
                                                  size_t min_distinct = 2);

/// Runs `miner` once per candidate target. The corpus is rebuilt per target
/// from the same raw relations (dictionary sharing is target-dependent).
Result<std::vector<TargetResult>> MineAllTargets(
    const StringTable& input, const StringTable& master,
    const SchemaMatch& match, const MinerFn& miner,
    size_t min_distinct = 2);

}  // namespace erminer

#endif  // ERMINER_CORE_MULTI_TARGET_H_
