// Common options and result type for all rule-discovery algorithms.

#ifndef ERMINER_CORE_MINER_H_
#define ERMINER_CORE_MINER_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "core/rule_set.h"

namespace erminer {

struct MinerOptions {
  /// Number of rules to return (paper: K = 50).
  size_t k = 50;
  /// eta_s: minimum support for a rule to be kept or refined.
  double support_threshold = 100;
  /// Per-attribute cap on candidate pattern classes (state encoding K).
  size_t max_classes_per_attr = 64;
  /// Also consider negated pattern conditions (\bar{a} of [18]) on small
  /// domains. Off by default, exactly like the paper.
  bool include_negations = false;
  /// Depth limits. EnuMiner uses unlimited; EnuMinerH3 sets both to 3.
  size_t max_lhs = std::numeric_limits<size_t>::max();
  size_t max_pattern = std::numeric_limits<size_t>::max();
  /// Safety cap on lattice expansions for the enumeration miners.
  size_t max_nodes = 50'000'000;
  /// Partition refinement: derive child-LHS indexes from cached parents
  /// instead of rebuilding from scratch (docs/perf.md). Results are
  /// bit-identical either way; `--no-refine` turns it off.
  bool refine = true;
  /// Batched candidate evaluation: all of a node's admitted children
  /// resolve their EvalCache entries through one GetBatch call — one lock
  /// pass plus one thread-pool submission for the sibling group — instead
  /// of a per-child Get round-trip. Results are bit-identical either way;
  /// `--no-batch-eval` turns it off.
  bool batch_eval = true;
};

struct MineResult {
  std::vector<ScoredRule> rules;
  /// Candidates admitted to the search — exactly one per kExpand event the
  /// decision log records, for every miner. The search engine increments
  /// this at admission time (after the mask/depth/duplicate gates, before
  /// any threshold); CTANE counts each opened attribute-set node; the RL
  /// environment counts each non-duplicate step. The invariant
  /// nodes_explored == expand-event count is pinned by
  /// tests/search_differential_test.cc.
  size_t nodes_explored = 0;
  /// RuleEvaluator measure queries (reward/measure computations). Equals
  /// nodes_explored for the lattice miners (each admitted candidate is
  /// evaluated exactly once) and the emit count for CTANE (only converted
  /// rules are evaluated); RLMiner pins neither — reward memoization makes
  /// evaluations a strict subset of steps.
  size_t rule_evaluations = 0;
  /// Wall-clock seconds, total (for RLMiner: training + inference).
  double seconds = 0;
  /// RLMiner only: split timings and the greedy episode's length.
  double train_seconds = 0;
  double inference_seconds = 0;
  size_t inference_steps = 0;
};

}  // namespace erminer

#endif  // ERMINER_CORE_MINER_H_
