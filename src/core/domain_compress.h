// Pattern-value candidate generation with domain compression (Sec. IV-A).
//
// For an input attribute A, the candidate pattern conditions are derived in
// two steps:
//   1. Support pruning: a value whose input frequency is below the support
//      threshold eta_s can never appear in a rule with S >= eta_s (Lemma 1),
//      so it is dropped. This is sound — no qualifying rule is lost.
//   2. Prefix merging (optional): if more than `max_classes` values survive,
//      they are merged into at most `max_classes` common-prefix classes,
//      implementing the paper's reduction of the encoding dimension from
//      |dom(x_i)| to K << |dom(x_i)|. Classes trade rule granularity for a
//      tractable one-hot state, exactly the paper's intent.

#ifndef ERMINER_CORE_DOMAIN_COMPRESS_H_
#define ERMINER_CORE_DOMAIN_COMPRESS_H_

#include <vector>

#include "core/rule.h"
#include "data/corpus.h"

namespace erminer {

struct DomainCompressOptions {
  /// Values with input frequency strictly below this are dropped.
  double min_frequency = 0;
  /// Maximum candidate classes per attribute (the paper's K); 0 = unlimited.
  size_t max_classes = 64;
  /// Allow common-prefix merging. EnuMiner disables it to stay exact.
  bool prefix_merge = true;
  /// Also emit negated conditions (the \bar{a} of [18]) for attributes with
  /// at most `negation_max_domain` candidate values; a negated condition's
  /// input frequency must likewise reach min_frequency.
  bool include_negations = false;
  size_t negation_max_domain = 8;
};

/// Candidate pattern conditions for input attribute `attr`, most frequent
/// first. Singleton classes carry the value string as label; merged classes
/// are labelled "<prefix>*".
std::vector<PatternItem> CompressDomain(const Corpus& corpus, int attr,
                                        const DomainCompressOptions& opts);

}  // namespace erminer

#endif  // ERMINER_CORE_DOMAIN_COMPRESS_H_
