// Applying a discovered rule set to repair the input's Y attribute
// (Sec. V-B2): every rule contributes certainty scores
// sigma_{v,phi} = count(v,phi) / sum_v' count(v',phi) for its candidate
// fixes; the fix of a tuple is argmax_v sum_phi sigma_{v,phi}.

#ifndef ERMINER_CORE_REPAIR_H_
#define ERMINER_CORE_REPAIR_H_

#include <vector>

#include "core/measures.h"
#include "core/rule_set.h"

namespace erminer {

struct RepairOutcome {
  /// Per input row: the predicted Y value, or kNullCode when no rule covers
  /// the row.
  std::vector<ValueCode> prediction;
  /// The winning aggregate certainty score per row (0 when no prediction).
  std::vector<double> score;
  size_t num_predictions = 0;
};

/// Applies `rules` to the evaluator's corpus.
RepairOutcome ApplyRules(RuleEvaluator* evaluator,
                         const std::vector<ScoredRule>& rules);

}  // namespace erminer

#endif  // ERMINER_CORE_REPAIR_H_
