// Human-readable rule explanations: what a rule says in prose, which tuples
// it covers, sample fixes it proposes, and where its certainty leaks.
// Surfaced through `erminer mine --explain` and useful when presenting
// discovered rules to a data steward for sign-off.

#ifndef ERMINER_CORE_RULE_EXPLAIN_H_
#define ERMINER_CORE_RULE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/measures.h"
#include "core/rule_set.h"

namespace erminer {

struct RuleExample {
  size_t row = 0;                 // input row id
  std::string current_value;     // t[Y] before repair
  std::string proposed_value;    // the rule's argmax candidate
  double certainty = 0;          // f_c of this tuple
};

struct RuleExplanation {
  std::string prose;             // one-paragraph English description
  RuleStats stats;
  size_t cover_size = 0;         // tuples matching the pattern
  size_t applicable = 0;         // of those, with a master match (= support)
  /// Up to `max_examples` covered tuples, preferring (a) cells the rule
  /// would change and (b) low-certainty cases.
  std::vector<RuleExample> examples;
};

/// Explains one rule over the evaluator's corpus.
RuleExplanation ExplainRule(RuleEvaluator* evaluator, const EditingRule& rule,
                            size_t max_examples = 5);

/// Renders an explanation as indented text.
std::string FormatExplanation(const RuleExplanation& explanation);

}  // namespace erminer

#endif  // ERMINER_CORE_RULE_EXPLAIN_H_
