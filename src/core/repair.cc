#include "core/repair.h"

#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace erminer {

RepairOutcome ApplyRules(RuleEvaluator* evaluator,
                         const std::vector<ScoredRule>& rules) {
  ERMINER_SPAN("repair/apply");
  ERMINER_COUNT("repair/rules_applied", rules.size());
  const Corpus& corpus = evaluator->corpus();
  const size_t n = corpus.input().num_rows();
  RepairOutcome out;
  out.prediction.assign(n, kNullCode);
  out.score.assign(n, 0.0);

  // Aggregate certainty scores per (row, candidate).
  std::vector<std::unordered_map<ValueCode, double>> scores(n);
  for (const auto& sr : rules) {
    Cover cover = CoverOf(corpus, sr.rule.pattern);
    EvalCache::Entry entry = evaluator->cache().Get(sr.rule.lhs);
    const auto& groups = entry.column->group;
    for (uint32_t r : *cover) {
      const Group* g = groups[r];
      if (g == nullptr || g->total == 0) continue;
      for (const auto& [v, c] : g->counts) {
        scores[r][v] +=
            static_cast<double>(c) / static_cast<double>(g->total);
      }
    }
  }
  for (size_t r = 0; r < n; ++r) {
    ValueCode best = kNullCode;
    double best_score = 0.0;
    for (const auto& [v, s] : scores[r]) {
      if (s > best_score || (s == best_score && best != kNullCode && v < best)) {
        best = v;
        best_score = s;
      }
    }
    out.prediction[r] = best;
    out.score[r] = best_score;
    if (best != kNullCode) ++out.num_predictions;
  }
  ERMINER_COUNT("repair/predictions", out.num_predictions);
  return out;
}

}  // namespace erminer
