#include "core/repair.h"

#include <unordered_map>

#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace erminer {

namespace {

/// Best single-rule contributor to one (row, candidate) score — the rule the
/// repair audit attributes the fix to. ApplyRules sums sigma across rules
/// before the argmax, so attribution is tracked on the side (armed only).
struct Contributor {
  double sigma = -1.0;
  uint32_t rule = 0;
  const Group* group = nullptr;
  uint32_t entry = 0;  // index into the kept-alive EvalCache entries
};

}  // namespace

RepairOutcome ApplyRules(RuleEvaluator* evaluator,
                         const std::vector<ScoredRule>& rules) {
  ERMINER_SPAN("repair/apply");
  ERMINER_COUNT("repair/rules_applied", rules.size());
  const Corpus& corpus = evaluator->corpus();
  const size_t n = corpus.input().num_rows();
  RepairOutcome out;
  out.prediction.assign(n, kNullCode);
  out.score.assign(n, 0.0);

  // The audit keeps each rule's cache entry alive (shared_ptrs) so the
  // winning Group pointers can be resolved to master rows after the argmax.
  const bool audit = obs::DecisionLog::Armed();
  std::vector<EvalCache::Entry> entries;
  std::vector<std::unordered_map<ValueCode, Contributor>> contribs;
  if (audit) contribs.resize(n);

  // Aggregate certainty scores per (row, candidate).
  std::vector<std::unordered_map<ValueCode, double>> scores(n);
  for (size_t ri = 0; ri < rules.size(); ++ri) {
    const ScoredRule& sr = rules[ri];
    Cover cover = CoverOf(corpus, sr.rule.pattern);
    EvalCache::Entry entry = evaluator->cache().Get(sr.rule.lhs);
    const auto& groups = entry.column->group;
    for (uint32_t r : *cover) {
      const Group* g = groups[r];
      if (g == nullptr || g->total == 0) continue;
      for (const auto& [v, c] : g->counts) {
        const double sigma =
            static_cast<double>(c) / static_cast<double>(g->total);
        scores[r][v] += sigma;
        if (audit) {
          Contributor& best = contribs[r][v];
          if (sigma > best.sigma) {
            best = {sigma, static_cast<uint32_t>(ri), g,
                    static_cast<uint32_t>(entries.size())};
          }
        }
      }
    }
    if (audit) entries.push_back(std::move(entry));
  }
  for (size_t r = 0; r < n; ++r) {
    ValueCode best = kNullCode;
    double best_score = 0.0;
    for (const auto& [v, s] : scores[r]) {
      if (s > best_score || (s == best_score && best != kNullCode && v < best)) {
        best = v;
        best_score = s;
      }
    }
    out.prediction[r] = best;
    out.score[r] = best_score;
    if (best != kNullCode) {
      ++out.num_predictions;
      if (audit) {
        const Contributor& c = contribs[r][best];
        const ScoredRule& sr = rules[c.rule];
        const uint64_t rule_id = sr.provenance != 0
                                     ? sr.provenance
                                     : RuleProvenanceId(sr.rule, corpus);
        // The master tuple behind the fix: the first row of the winning
        // group whose Y_m equals the predicted value.
        int64_t master_row = -1;
        const GroupIndex& index = *entries[c.entry].index;
        auto [mb, me] = index.rows_of(index.IdOf(c.group));
        for (const uint32_t* m = mb; m != me; ++m) {
          if (corpus.master().at(*m, static_cast<size_t>(
                                          corpus.y_master())) == best) {
            master_row = static_cast<int64_t>(*m);
            break;
          }
        }
        const ValueCode old_value = corpus.input().at(
            r, static_cast<size_t>(corpus.y_input()));
        obs::DecisionLog::Global().Repair(
            rule_id, r, master_row, static_cast<int32_t>(old_value),
            static_cast<int32_t>(best), best_score);
      }
    }
  }
  ERMINER_COUNT("repair/predictions", out.num_predictions);
  ERMINER_COUNT("repair/cells_repaired", out.num_predictions);
  return out;
}

}  // namespace erminer
