#include "core/environment.h"

#include <cmath>

namespace erminer {

namespace {

// The engine options the RL walk shares with the lattice miners: the leaf
// target, eta_s, and the batched-evaluation lever. Depth limits and node
// budgets stay at their defaults — the episode loop bounds the walk.
MinerOptions EngineOptions(const EnvOptions& o) {
  MinerOptions m;
  m.k = o.k;
  m.support_threshold = o.support_threshold;
  m.batch_eval = o.batch_eval;
  return m;
}

}  // namespace

Environment::Environment(const Corpus* corpus, const ActionSpace* space,
                         RuleEvaluator* evaluator, const EnvOptions& options)
    : corpus_(corpus),
      space_(space),
      evaluator_(evaluator),
      options_(options),
      engine_(corpus, space, evaluator, EngineOptions(options),
              obs::DecisionMiner::kRl, "rl") {
  ERMINER_CHECK(corpus_ && space_ && evaluator_);
  if (options_.normalize_utility) {
    double ls = std::log(std::max<double>(
        3.0, static_cast<double>(corpus_->input().num_rows())));
    utility_scale_ = 1.0 / (ls * ls);
  }
}

void Environment::Reset() {
  nodes_.clear();
  queue_.clear();
  engine_.ClearDedup();
  leaves_.clear();
  nodes_.push_back({RuleKey{}, FullCover(*corpus_), 0});
  engine_.InsertDedup(RuleKey{});
  current_ = 0;
  done_ = false;
  ++episode_index_;
  step_index_ = 0;
}

const RuleKey& Environment::current_state() const {
  return nodes_[current_].key;
}

std::vector<uint8_t> Environment::CurrentMask() const {
  static const RuleKeySet kNoDiscovered;
  return ComputeMask(*space_, nodes_[current_].key,
                     options_.use_global_mask ? engine_.dedup()
                                              : kNoDiscovered);
}

float Environment::BaseReward(const RuleKey& key, const RuleStats& stats) {
  auto it = reward_cache_.find(key);
  if (options_.reuse_rewards && it != reward_cache_.end()) return it->second;
  float r;
  if (static_cast<double>(stats.support) >= options_.support_threshold) {
    r = static_cast<float>(stats.utility * utility_scale_);
  } else {
    r = static_cast<float>(options_.invalid_reward);
  }
  if (it == reward_cache_.end()) {
    reward_cache_.emplace(key, r);
  }
  return r;
}

RuleStats Environment::StatsOf(const RuleKey& key, const EditingRule& rule,
                               const Cover& cover,
                               const LhsPairs* parent_lhs) {
  auto it = stats_cache_.find(key);
  if (options_.reuse_rewards && it != stats_cache_.end()) return it->second;
  RuleStats stats = engine_.EvaluateCandidate(rule, cover, parent_lhs);
  if (it == stats_cache_.end()) {
    stats_cache_.emplace(key, stats);
  }
  return stats;
}

void Environment::AdvanceToNextNode() {
  if (queue_.empty()) {
    done_ = true;
    return;
  }
  current_ = queue_.front();
  queue_.pop_front();
}

Environment::StepResult Environment::Step(int32_t action) {
  ERMINER_CHECK(!done_);
  ++step_index_;
  StepResult sr;
  sr.state = nodes_[current_].key;
  sr.action = action;

  if (space_->IsStopAction(action)) {
    sr.reward = static_cast<float>(options_.stop_reward);
    AdvanceToNextNode();
  } else {
    const size_t parent_id = current_;
    RuleKey child_key = KeyWith(nodes_[parent_id].key, action);
    const bool fresh = engine_.InsertDedup(child_key);
    if (!fresh) {
      // Only reachable when the global mask is ablated: the agent re-derived
      // an existing rule. Pay the (cached) reward, grow nothing.
      ERMINER_CHECK(!options_.use_global_mask);
      engine_.RecordPrune(search::PruneReason::kDuplicate,
                          nodes_[parent_id].key, action, 0.0);
      EditingRule rule = space_->Decode(child_key);
      sr.reward = BaseReward(child_key, StatsOf(child_key, rule, nullptr));
      sr.done = done_;
      sr.next_state = nodes_[current_].key;
      sr.next_mask = CurrentMask();
      return sr;
    }

    EditingRule rule = space_->Decode(child_key);
    const bool is_pattern = space_->IsPatternAction(action);
    Cover cover = is_pattern ? RefineCover(*corpus_, nodes_[parent_id].cover,
                                           space_->pattern_item(action))
                             : nodes_[parent_id].cover;
    // An LHS action means this rule's LHS is the parent's plus one pair —
    // exactly what the evaluator's refinement path wants as a hint.
    const LhsPairs parent_lhs =
        is_pattern ? LhsPairs{} : space_->Decode(nodes_[parent_id].key).lhs;
    RuleStats stats =
        StatsOf(child_key, rule, cover, is_pattern ? nullptr : &parent_lhs);
    const bool supported =
        static_cast<double>(stats.support) >= options_.support_threshold;

    float reward = BaseReward(child_key, stats);
    // Frontier bonus / over-specialization penalty (Alg. 2 lines 15-16):
    // applies to the first valid child grown from a node.
    if (options_.frontier_bonus && nodes_[parent_id].num_children == 0 &&
        supported) {
      auto pit = reward_cache_.find(nodes_[parent_id].key);
      float parent_reward = pit == reward_cache_.end() ? 0.0f : pit->second;
      reward += reward - parent_reward;
    }
    sr.reward = reward;

    nodes_[parent_id].num_children += 1;
    const size_t child_id = nodes_.size();
    nodes_.push_back({std::move(child_key), cover, 0});
    engine_.IncNodesExplored();
    engine_.RecordExpand(nodes_[parent_id].key, action, nodes_[child_id].key);
    if (!supported) {
      engine_.RecordPrune(search::PruneReason::kSupport,
                          nodes_[parent_id].key, action,
                          static_cast<double>(stats.support));
    }

    if (supported && !rule.lhs.empty()) {
      // The engine stamps the (episode, step) coordinates on the emit event;
      // the pool itself stays here — across-episode dedup is the
      // environment's job (pool_keys_), not the per-Mine pool's.
      leaves_.push_back(engine_.EmitRule(rule, stats, nodes_[child_id].key,
                                         /*to_pool=*/false, episode_index_,
                                         step_index_));
      if (pool_keys_.insert(nodes_[child_id].key).second) {
        global_pool_.push_back(leaves_.back());
      }
      if (leaves_.size() >= options_.k) done_ = true;
    }

    // Alg. 4 lines 14-17: refine further only while fixes are uncertain and
    // the support threshold holds; rules without an LHS must keep growing.
    const bool refinable =
        supported && (rule.lhs.empty() || stats.certainty < 1.0);
    if (supported && !refinable) {
      engine_.RecordPrune(search::PruneReason::kCertain,
                          nodes_[parent_id].key, action, stats.certainty);
    }
    if (!done_) {
      if (refinable) {
        queue_.push_back(child_id);
        current_ = child_id;  // depth-first descent into the new rule
      } else {
        // Dead end (pruned subtree): continue from the next queued node.
        AdvanceToNextNode();
      }
    }
  }

  sr.done = done_;
  sr.next_state = nodes_[current_].key;
  sr.next_mask = done_ ? std::vector<uint8_t>(space_->num_actions(), 0)
                       : CurrentMask();
  if (done_) sr.next_mask.back() = 1;  // keep the invariant "stop allowed"
  return sr;
}

void Environment::SavePersistent(ckpt::Writer* w) const {
  w->U64(engine_.nodes_explored());
  // Pool rules are exactly space_->Decode(key) of their tree key (see the
  // insertion above), so each entry is saved as (key, stats) and the rule is
  // re-decoded on load — pool_keys_ is rebuilt in lockstep.
  ERMINER_CHECK(pool_keys_.size() == global_pool_.size());
  w->U64(global_pool_.size());
  for (const ScoredRule& sr : global_pool_) {
    Result<RuleKey> keyr = space_->Encode(sr.rule);
    ERMINER_CHECK(keyr.ok());
    RuleKey key = std::move(keyr).ValueOrDie();
    w->Vec(key);
    w->I64(sr.stats.support);
    w->F64(sr.stats.certainty);
    w->F64(sr.stats.quality);
    w->F64(sr.stats.utility);
  }
}

Status Environment::LoadPersistent(ckpt::Reader* r) {
  uint64_t total_nodes = 0, n_pool = 0;
  ERMINER_RETURN_NOT_OK(r->U64(&total_nodes));
  ERMINER_RETURN_NOT_OK(r->U64(&n_pool));
  std::vector<ScoredRule> pool;
  pool.reserve(n_pool);
  RuleKeySet keys;
  for (uint64_t i = 0; i < n_pool; ++i) {
    RuleKey key;
    ERMINER_RETURN_NOT_OK(r->Vec(&key));
    for (int32_t a : key) {
      if (a < 0 || a >= space_->stop_action()) {
        return Status::InvalidArgument(
            "environment pool rule key has action " + std::to_string(a) +
            " outside this action space (" +
            std::to_string(space_->stop_action()) +
            " non-stop actions) — checkpoint from a different corpus?");
      }
    }
    ScoredRule sr;
    sr.rule = space_->Decode(key);
    sr.provenance = RuleProvenanceId(sr.rule, *corpus_);
    int64_t support = 0;
    ERMINER_RETURN_NOT_OK(r->I64(&support));
    sr.stats.support = static_cast<long>(support);
    ERMINER_RETURN_NOT_OK(r->F64(&sr.stats.certainty));
    ERMINER_RETURN_NOT_OK(r->F64(&sr.stats.quality));
    ERMINER_RETURN_NOT_OK(r->F64(&sr.stats.utility));
    keys.insert(std::move(key));
    pool.push_back(std::move(sr));
  }
  if (keys.size() != pool.size()) {
    return Status::InvalidArgument(
        "environment pool corrupt: " + std::to_string(pool.size()) +
        " rules but " + std::to_string(keys.size()) + " distinct keys");
  }
  engine_.set_nodes_explored(total_nodes);
  global_pool_ = std::move(pool);
  pool_keys_ = std::move(keys);
  return Status::OK();
}

}  // namespace erminer
