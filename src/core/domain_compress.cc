#include "core/domain_compress.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/string_util.h"

namespace erminer {

namespace {

struct Candidate {
  ValueCode code;
  size_t freq;
};

/// Groups candidates by the first `p` characters of their value strings.
std::map<std::string, std::vector<Candidate>> GroupByPrefix(
    const std::vector<Candidate>& cands, const Domain& dom, size_t p) {
  std::map<std::string, std::vector<Candidate>> groups;
  for (const auto& c : cands) {
    const std::string& s = dom.value(c.code);
    groups[s.substr(0, std::min(p, s.size()))].push_back(c);
  }
  return groups;
}

}  // namespace

namespace {

/// Appends negated twins of singleton candidates when the attribute's
/// candidate set is small; each must itself pass the frequency bar.
void AppendNegations(const DomainCompressOptions& opts, size_t non_null_rows,
                     const std::unordered_map<ValueCode, size_t>& freq,
                     std::vector<PatternItem>* items) {
  if (!opts.include_negations ||
      items->size() > opts.negation_max_domain || items->size() < 2) {
    return;
  }
  const size_t base = items->size();
  for (size_t i = 0; i < base; ++i) {
    const PatternItem& it = (*items)[i];
    size_t member_freq = 0;
    for (ValueCode v : it.values) {
      auto f = freq.find(v);
      if (f != freq.end()) member_freq += f->second;
    }
    const size_t neg_freq = non_null_rows - member_freq;
    if (static_cast<double>(neg_freq) < opts.min_frequency) continue;
    PatternItem neg = it;
    neg.negated = true;
    neg.label = "!" + it.label;
    items->push_back(std::move(neg));
  }
}

}  // namespace

std::vector<PatternItem> CompressDomain(const Corpus& corpus, int attr,
                                        const DomainCompressOptions& opts) {
  const Table& input = corpus.input();
  const Domain& dom = *input.domain(static_cast<size_t>(attr));

  // Input frequency per code.
  std::unordered_map<ValueCode, size_t> freq;
  size_t non_null_rows = 0;
  for (ValueCode v : input.column(static_cast<size_t>(attr))) {
    if (v != kNullCode) {
      ++freq[v];
      ++non_null_rows;
    }
  }
  std::vector<Candidate> cands;
  cands.reserve(freq.size());
  for (const auto& [code, f] : freq) {
    if (static_cast<double>(f) >= opts.min_frequency) {
      cands.push_back({code, f});
    }
  }
  std::sort(cands.begin(), cands.end(), [&](const Candidate& a,
                                            const Candidate& b) {
    if (a.freq != b.freq) return a.freq > b.freq;
    return dom.value(a.code) < dom.value(b.code);
  });

  auto make_singletons = [&](const std::vector<Candidate>& cs) {
    std::vector<PatternItem> items;
    items.reserve(cs.size());
    for (const auto& c : cs) {
      items.push_back({attr, {c.code}, dom.value(c.code)});
    }
    return items;
  };

  if (opts.max_classes == 0 || cands.size() <= opts.max_classes ||
      !opts.prefix_merge) {
    auto items = make_singletons(cands);
    if (opts.max_classes > 0 && items.size() > opts.max_classes) {
      items.resize(opts.max_classes);  // keep most frequent
    }
    AppendNegations(opts, non_null_rows, freq, &items);
    return items;
  }

  // Prefix merging: the longest prefix length whose grouping fits in
  // max_classes (longer prefix = finer classes).
  size_t best_p = 1;
  for (size_t p = 16; p >= 1; --p) {
    if (GroupByPrefix(cands, dom, p).size() <= opts.max_classes) {
      best_p = p;
      break;
    }
  }
  auto groups = GroupByPrefix(cands, dom, best_p);
  std::vector<PatternItem> items;
  if (groups.size() > opts.max_classes) {
    // Even single-character prefixes exceed K: keep the K-1 most frequent
    // singletons and merge the rest into one catch-all class.
    items = make_singletons(cands);
    PatternItem rest{attr, {}, "*"};
    for (size_t i = opts.max_classes - 1; i < items.size(); ++i) {
      rest.values.push_back(items[i].values[0]);
    }
    items.resize(opts.max_classes - 1);
    std::sort(rest.values.begin(), rest.values.end());
    items.push_back(std::move(rest));
    AppendNegations(opts, non_null_rows, freq, &items);
    return items;
  }
  items.reserve(groups.size());
  for (auto& [prefix, members] : groups) {
    PatternItem item{attr, {}, prefix};
    size_t total = 0;
    for (const auto& m : members) {
      item.values.push_back(m.code);
      total += m.freq;
    }
    std::sort(item.values.begin(), item.values.end());
    if (members.size() > 1) item.label = prefix + "*";
    (void)total;
    items.push_back(std::move(item));
  }
  // Order classes by aggregate frequency, most frequent first.
  auto class_freq = [&](const PatternItem& it) {
    size_t f = 0;
    for (ValueCode v : it.values) f += freq[v];
    return f;
  };
  std::stable_sort(items.begin(), items.end(),
                   [&](const PatternItem& a, const PatternItem& b) {
                     return class_freq(a) > class_freq(b);
                   });
  AppendNegations(opts, non_null_rows, freq, &items);
  return items;
}

}  // namespace erminer
