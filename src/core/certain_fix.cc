#include "core/certain_fix.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace erminer {

CertainFixOutcome ComputeCertainFixes(RuleEvaluator* evaluator,
                                      const std::vector<ScoredRule>& rules) {
  ERMINER_SPAN("repair/certain_fixes");
  const Corpus& corpus = evaluator->corpus();
  const size_t n = corpus.input().num_rows();
  CertainFixOutcome out;
  out.fix.assign(n, kNullCode);
  out.kind.assign(n, FixKind::kNoRule);

  for (const auto& sr : rules) {
    Cover cover = CoverOf(corpus, sr.rule.pattern);
    EvalCache::Entry entry = evaluator->cache().Get(sr.rule.lhs);
    const auto& groups = entry.column->group;
    for (uint32_t r : *cover) {
      const Group* g = groups[r];
      if (g == nullptr || g->total == 0) continue;
      if (out.kind[r] == FixKind::kConflicting ||
          out.kind[r] == FixKind::kAmbiguous) {
        continue;  // already disqualified
      }
      if (g->counts.size() > 1) {
        // This rule does not determine a unique candidate for t.
        out.kind[r] = FixKind::kAmbiguous;
        out.fix[r] = kNullCode;
        continue;
      }
      ValueCode candidate = g->counts[0].first;
      if (out.kind[r] == FixKind::kNoRule) {
        out.kind[r] = FixKind::kCertain;
        out.fix[r] = candidate;
      } else if (out.fix[r] != candidate) {
        out.kind[r] = FixKind::kConflicting;
        out.fix[r] = kNullCode;
      }
    }
  }
  for (size_t r = 0; r < n; ++r) {
    switch (out.kind[r]) {
      case FixKind::kNoRule:
        ++out.num_uncovered;
        break;
      case FixKind::kCertain:
        ++out.num_certain;
        break;
      case FixKind::kAmbiguous:
        ++out.num_ambiguous;
        break;
      case FixKind::kConflicting:
        ++out.num_conflicting;
        break;
    }
  }
  ERMINER_COUNT("repair/certain", out.num_certain);
  ERMINER_COUNT("repair/ambiguous", out.num_ambiguous);
  ERMINER_COUNT("repair/conflicting", out.num_conflicting);
  return out;
}

}  // namespace erminer
