#include "core/enu_miner.h"

#include <deque>

#include "core/action_space.h"
#include "core/mask.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace erminer {

namespace {

struct LatticeNode {
  RuleKey key;
  Cover cover;           // rows matching the pattern part of `key`
  size_t lhs_size = 0;
  size_t pattern_size = 0;
};

/// One admissible child of the node being expanded, plus its evaluation
/// outputs (filled in parallel, consumed serially in candidate order).
struct Candidate {
  int32_t action = 0;
  bool is_lhs = false;
  RuleKey key;
  EditingRule rule;
  Cover cover;
  RuleStats stats;
};

}  // namespace

MineResult EnuMine(const Corpus& corpus, const MinerOptions& options) {
  ERMINER_SPAN("enuminer/mine");
  Timer timer;
  MineResult result;

  ActionSpaceOptions aopts;
  aopts.support_threshold = options.support_threshold;
  aopts.max_classes_per_attr = options.max_classes_per_attr;
  aopts.prefix_merge = false;  // exact value enumeration
  aopts.include_negations = options.include_negations;
  ActionSpace space = ActionSpace::Build(corpus, aopts);
  RuleEvaluator evaluator(&corpus);
  evaluator.cache().set_refine_enabled(options.refine);

  RuleKeySet discovered;
  std::vector<ScoredRule> pool;
  std::deque<LatticeNode> queue;
  queue.push_back({RuleKey{}, FullCover(corpus), 0, 0});

  while (!queue.empty() && result.nodes_explored < options.max_nodes) {
    ERMINER_SPAN("enuminer/expand");
    ERMINER_COUNT("enuminer/nodes_expanded", 1);
    LatticeNode node = std::move(queue.front());
    queue.pop_front();

    // Local mask forbids re-specifying bound attributes; the global
    // duplicate check happens per child below (cheaper than Alg. 1's global
    // mask here because we enumerate every allowed child anyway).
    //
    // Expansion is split into three stages so the expensive middle stage
    // can fan out across the pool while the result stays bit-identical to
    // the serial walk: (1) admission — mask, depth limits and the
    // `discovered` dedup run serially in action order; (2) evaluation —
    // decode, cover refinement and measures run in parallel over the
    // admitted frontier; (3) pruning and queue growth consume the results
    // serially, again in action order.
    std::vector<uint8_t> mask = ComputeMask(space, node.key, {});
    std::vector<Candidate> frontier;
    // Prune reasons are tallied locally and published once per node.
    uint64_t prune_masked = 0, prune_depth = 0, prune_duplicate = 0;
    for (int32_t a = 0; a < space.stop_action(); ++a) {
      if (!mask[static_cast<size_t>(a)]) {
        ++prune_masked;
        continue;
      }
      const bool is_lhs = space.IsLhsAction(a);
      if ((is_lhs && node.lhs_size >= options.max_lhs) ||
          (!is_lhs && node.pattern_size >= options.max_pattern)) {
        ++prune_depth;
        continue;
      }

      RuleKey child_key = KeyWith(node.key, a);
      if (!discovered.insert(child_key).second) {  // already seen
        ++prune_duplicate;
        if (obs::DecisionLog::Armed()) {
          obs::DecisionLog::Global().Prune(obs::DecisionMiner::kEnu,
                                           obs::PruneReason::kDuplicate,
                                           node.key, a, 0.0);
        }
        continue;
      }
      ++result.nodes_explored;
      Candidate c;
      c.action = a;
      c.is_lhs = is_lhs;
      c.key = std::move(child_key);
      frontier.push_back(std::move(c));
    }
    ERMINER_COUNT("enuminer/prune_masked", prune_masked);
    ERMINER_COUNT("enuminer/prune_depth", prune_depth);
    ERMINER_COUNT("enuminer/prune_duplicate", prune_duplicate);
    ERMINER_COUNT("enuminer/children_evaluated", frontier.size());

    // LHS-extending children are this node's LHS plus one pair, so the
    // node's LHS is passed as a partition-refinement hint; pattern children
    // keep the LHS and hit the cache directly.
    const LhsPairs parent_lhs = space.Decode(node.key).lhs;
    GlobalPool().ParallelFor(0, frontier.size(), 1, [&](size_t b, size_t e) {
      for (size_t i = b; i < e; ++i) {
        Candidate& c = frontier[i];
        c.rule = space.Decode(c.key);
        c.cover = c.is_lhs ? node.cover
                           : RefineCover(corpus, node.cover,
                                         space.pattern_item(c.action));
        c.stats = evaluator.Evaluate(c.rule, c.cover,
                                     c.is_lhs ? &parent_lhs : nullptr);
      }
    });

    uint64_t prune_support = 0, pooled = 0, enqueued = 0, closed = 0;
    // Decision-provenance events are recorded in this serial consume loop
    // (candidate order), so the log's event order is deterministic and the
    // mined results stay bit-identical for any thread count.
    const bool decisions = obs::DecisionLog::Armed();
    for (Candidate& c : frontier) {
      if (decisions) {
        obs::DecisionLog::Global().Expand(obs::DecisionMiner::kEnu, node.key,
                                          c.action, c.key);
      }
      // Support pruning (Lemma 1): children cannot beat the threshold.
      if (static_cast<double>(c.stats.support) < options.support_threshold) {
        ++prune_support;
        if (decisions) {
          obs::DecisionLog::Global().Prune(
              obs::DecisionMiner::kEnu, obs::PruneReason::kSupport, node.key,
              c.action, static_cast<double>(c.stats.support));
        }
        continue;
      }
      if (!c.rule.lhs.empty()) {
        pool.push_back({c.rule, c.stats, RuleProvenanceId(c.rule, corpus)});
        ++pooled;
        ERMINER_COUNT("miner/rules_emitted", 1);
        if (decisions) {
          obs::DecisionLog::Global().Emit(
              obs::DecisionMiner::kEnu, pool.back().provenance, c.key,
              c.stats.support, c.stats.certainty, c.stats.quality,
              c.stats.utility);
        }
      }
      // Refine further unless the rule already returns certain fixes
      // (Alg. 4 line 14); rules without an LHS must keep growing.
      if (c.rule.lhs.empty() || c.stats.certainty < 1.0) {
        ++enqueued;
        queue.push_back({std::move(c.key), std::move(c.cover),
                         c.rule.LhsSize(), c.rule.PatternSize()});
      } else {
        ++closed;  // certain already: the subtree below is never opened
        if (decisions) {
          obs::DecisionLog::Global().Prune(
              obs::DecisionMiner::kEnu, obs::PruneReason::kCertain, node.key,
              c.action, c.stats.certainty);
        }
      }
    }
    ERMINER_COUNT("enuminer/prune_support", prune_support);
    ERMINER_COUNT("enuminer/rules_pooled", pooled);
    ERMINER_COUNT("enuminer/children_enqueued", enqueued);
    ERMINER_COUNT("enuminer/prune_certain", closed);
  }

  result.rules = SelectTopKNonRedundant(std::move(pool), options.k);
  result.rule_evaluations = evaluator.num_evaluations();
  result.seconds = timer.Seconds();
  return result;
}

MineResult EnuMineH3(const Corpus& corpus, MinerOptions options) {
  options.max_lhs = 3;
  options.max_pattern = 3;
  return EnuMine(corpus, options);
}

}  // namespace erminer
