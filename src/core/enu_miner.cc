// EnuMiner (Alg. 4) as a search-engine policy: the exhaustive FIFO walk
// and its H3 depth-capped variant. All mechanics — admission, parallel
// batched evaluation, thresholds, dedup, counters, decision events — live
// in search::SearchEngine; this TU is options plumbing.

#include "core/enu_miner.h"

#include "search/policies.h"

namespace erminer {

MineResult EnuMine(const Corpus& corpus, const MinerOptions& options) {
  search::ExhaustivePolicy policy;
  return search::MineLattice(corpus, options, policy,
                             obs::DecisionMiner::kEnu, "enuminer");
}

MineResult EnuMineH3(const Corpus& corpus, MinerOptions options) {
  options.max_lhs = 3;
  options.max_pattern = 3;
  search::DepthLimitedPolicy policy;
  return search::MineLattice(corpus, options, policy,
                             obs::DecisionMiner::kEnu, "enuminer");
}

}  // namespace erminer
