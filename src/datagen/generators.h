// The four evaluation datasets of Sec. V-A1, synthesized per DESIGN.md:
// Adult, Covid-19, Nursery, Location. Each generator reproduces the paper
// dataset's schema widths, domain scales, master/input split protocol and a
// gated functional dependency structure on the Y attribute.

#ifndef ERMINER_DATAGEN_GENERATORS_H_
#define ERMINER_DATAGEN_GENERATORS_H_

#include <string>
#include <vector>

#include "data/schema_match.h"
#include "data/table.h"
#include "datagen/error_injector.h"
#include "datagen/spec.h"
#include "util/random.h"

namespace erminer {

struct GenOptions {
  /// 0 = use the spec defaults (the paper's Table I sizes).
  size_t input_size = 0;
  size_t master_size = 0;
  /// Per-cell error probability on the input relation.
  double noise_rate = 0.1;
  /// Fig. 7 knob: percentage of input rows drawn from master entities.
  /// Negative = paper's default protocol (input and master sampled
  /// separately from the original pool, disjoint rows).
  double duplicate_percent = -1.0;
  uint64_t seed = 7;
};

struct GeneratedDataset {
  std::string name;
  StringTable input;        // dirty
  StringTable clean_input;  // pre-injection ground truth
  StringTable master;       // clean
  SchemaMatch match;        // name-based
  int y_input = -1;
  int y_master = -1;
  InjectionReport injection;
  double support_threshold = 100;

  /// Ground-truth Y value per input row.
  std::vector<std::string> YTruth() const;
  /// Whether each input row's Y cell was perturbed.
  std::vector<bool> YDirty() const;

  /// Prefix view for incremental-discovery experiments (Figs. 10-11):
  /// first `n_input` input rows and `n_master` master rows, with truth and
  /// injection bookkeeping sliced to match.
  GeneratedDataset HeadRows(size_t n_input, size_t n_master) const;
};

/// Spec accessors (also used by Table 1 and by tests).
DatasetSpec AdultSpec();
DatasetSpec CovidSpec();
DatasetSpec NurserySpec();
DatasetSpec LocationSpec();

/// Builds a dataset from a spec with the paper's split protocol.
Result<GeneratedDataset> GenerateDataset(const DatasetSpec& spec,
                                         const GenOptions& opts);

Result<GeneratedDataset> MakeAdult(const GenOptions& opts = {});
Result<GeneratedDataset> MakeCovid(const GenOptions& opts = {});
Result<GeneratedDataset> MakeNursery(const GenOptions& opts = {});
Result<GeneratedDataset> MakeLocation(const GenOptions& opts = {});

/// Dispatch by dataset name ("adult", "covid", "nursery", "location").
Result<GeneratedDataset> MakeByName(const std::string& name,
                                    const GenOptions& opts = {});

/// All four dataset names in the paper's order.
const std::vector<std::string>& DatasetNames();

}  // namespace erminer

#endif  // ERMINER_DATAGEN_GENERATORS_H_
