#include "datagen/error_injector.h"

#include <algorithm>

namespace erminer {

std::string MakeTypo(const std::string& value, Rng* rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789";
  constexpr size_t kAlphabetSize = sizeof(kAlphabet) - 1;
  std::string out = value;
  for (int attempt = 0; attempt < 8; ++attempt) {
    out = value;
    int op = out.empty() ? 1 : static_cast<int>(rng->NextUint64(3));
    switch (op) {
      case 0: {  // substitute
        size_t pos = static_cast<size_t>(rng->NextUint64(out.size()));
        out[pos] = kAlphabet[rng->NextUint64(kAlphabetSize)];
        break;
      }
      case 1: {  // insert
        size_t pos = static_cast<size_t>(rng->NextUint64(out.size() + 1));
        out.insert(out.begin() + static_cast<long>(pos),
                   kAlphabet[rng->NextUint64(kAlphabetSize)]);
        break;
      }
      default: {  // delete
        size_t pos = static_cast<size_t>(rng->NextUint64(out.size()));
        out.erase(out.begin() + static_cast<long>(pos));
        break;
      }
    }
    if (out != value && !out.empty()) return out;
  }
  return value + "~";  // guaranteed different, non-empty
}

InjectionReport InjectErrors(StringTable* table,
                             const ErrorInjectorOptions& opts, Rng* rng) {
  InjectionReport report;
  const size_t cols = table->num_cols();
  const size_t rows = table->num_rows();
  report.dirty.assign(cols, std::vector<bool>(rows, false));
  const std::vector<double> weights = {opts.w_missing, opts.w_typo,
                                       opts.w_swap};
  for (size_t c = 0; c < cols; ++c) {
    if (opts.only_column >= 0 && c != static_cast<size_t>(opts.only_column)) {
      continue;
    }
    for (size_t r = 0; r < rows; ++r) {
      if (!rng->NextBernoulli(opts.noise_rate)) continue;
      std::string& cell = table->rows[r][c];
      switch (rng->NextWeighted(weights)) {
        case 0:
          cell.clear();
          break;
        case 1:
          cell = MakeTypo(cell, rng);
          break;
        default: {
          // Swap with a value from a different row of the same column;
          // falls back to a typo when the column is (near-)constant.
          bool swapped = false;
          for (int attempt = 0; attempt < 8 && rows > 1; ++attempt) {
            size_t other = static_cast<size_t>(rng->NextUint64(rows));
            if (table->rows[other][c] != cell &&
                !table->rows[other][c].empty()) {
              cell = table->rows[other][c];
              swapped = true;
              break;
            }
          }
          if (!swapped) cell = MakeTypo(cell, rng);
          break;
        }
      }
      report.dirty[c][r] = true;
      ++report.num_errors;
    }
  }
  return report;
}

}  // namespace erminer
