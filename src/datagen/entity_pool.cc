#include "datagen/entity_pool.h"

#include <algorithm>
#include <cstdio>

#include "util/hash.h"

namespace erminer {

size_t EntityPool::FunctionalMap(uint64_t salt, size_t attr,
                                 const std::vector<size_t>& parent_values,
                                 size_t domain_size, bool alternative) {
  uint64_t h = salt ^ (alternative ? 0xA17E12BADF00DULL : 0x0ULL);
  HashCombine(&h, attr + 0x1234);
  for (size_t v : parent_values) HashCombine(&h, v + 1);
  return static_cast<size_t>(h % domain_size);
}

Result<EntityPool> EntityPool::Generate(const DatasetSpec& spec, size_t n,
                                        Rng* rng) {
  ERMINER_RETURN_NOT_OK(spec.Validate());
  EntityPool pool;
  pool.spec_ = spec;
  pool.rows_.assign(n, std::vector<size_t>(spec.attributes.size(), 0));
  pool.numeric_.assign(n, std::vector<double>(spec.attributes.size(), 0.0));

  std::vector<size_t> parent_vals;
  for (size_t r = 0; r < n; ++r) {
    for (size_t a = 0; a < spec.attributes.size(); ++a) {
      const AttributeSpec& as = spec.attributes[a];
      size_t idx;
      if (as.parents.empty()) {
        idx = rng->NextZipf(as.domain_size, as.zipf);
      } else {
        parent_vals.clear();
        for (int p : as.parents) {
          parent_vals.push_back(pool.rows_[r][static_cast<size_t>(p)]);
        }
        bool gated_out = false;
        if (as.gate_attr >= 0) {
          size_t gv = pool.rows_[r][static_cast<size_t>(as.gate_attr)];
          gated_out = std::find(as.gate_values.begin(), as.gate_values.end(),
                                gv) == as.gate_values.end();
        }
        if (rng->NextBernoulli(as.strength)) {
          idx = FunctionalMap(spec.salt, a, parent_vals, as.domain_size,
                              /*alternative=*/gated_out);
        } else {
          idx = rng->NextZipf(as.domain_size, as.zipf);
        }
      }
      pool.rows_[r][a] = idx;
      if (as.kind == AttributeKind::kContinuous) {
        // Map the index to a jittered point inside its sub-range so the raw
        // numbers look continuous while preserving the dependency structure.
        double step = (as.numeric_hi - as.numeric_lo) /
                      static_cast<double>(as.domain_size);
        pool.numeric_[r][a] = as.numeric_lo +
                              (static_cast<double>(idx) + rng->NextDouble()) *
                                  step;
      }
    }
  }
  return pool;
}

std::string EntityPool::ValueString(size_t row, size_t attr) const {
  const AttributeSpec& as = spec_.attributes[attr];
  if (as.kind == AttributeKind::kContinuous) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2f", numeric_[row][attr]);
    return buf;
  }
  return as.prefix + std::to_string(rows_[row][attr]);
}

StringTable EntityPool::Project(const std::vector<std::string>& columns,
                                const std::vector<size_t>& row_ids) const {
  StringTable out;
  std::vector<Attribute> attrs;
  std::vector<size_t> col_idx;
  for (const auto& name : columns) {
    int i = spec_.AttrIndex(name);
    ERMINER_CHECK(i >= 0);
    col_idx.push_back(static_cast<size_t>(i));
    attrs.push_back({name, spec_.attributes[static_cast<size_t>(i)].kind});
  }
  out.schema = Schema(std::move(attrs));
  out.rows.reserve(row_ids.size());
  for (size_t r : row_ids) {
    std::vector<std::string> row;
    row.reserve(col_idx.size());
    for (size_t c : col_idx) row.push_back(ValueString(r, c));
    out.rows.push_back(std::move(row));
  }
  return out;
}

std::vector<size_t> EntityPool::MasterEligible() const {
  std::vector<size_t> ids;
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (spec_.master_filter_attr < 0) {
      ids.push_back(r);
      continue;
    }
    size_t v = rows_[r][static_cast<size_t>(spec_.master_filter_attr)];
    if (std::find(spec_.master_filter_values.begin(),
                  spec_.master_filter_values.end(),
                  v) != spec_.master_filter_values.end()) {
      ids.push_back(r);
    }
  }
  return ids;
}

std::vector<size_t> EntityPool::MasterIneligible() const {
  if (spec_.master_filter_attr < 0) return {};
  std::vector<size_t> ids;
  for (size_t r = 0; r < rows_.size(); ++r) {
    size_t v = rows_[r][static_cast<size_t>(spec_.master_filter_attr)];
    if (std::find(spec_.master_filter_values.begin(),
                  spec_.master_filter_values.end(),
                  v) == spec_.master_filter_values.end()) {
      ids.push_back(r);
    }
  }
  return ids;
}

}  // namespace erminer
