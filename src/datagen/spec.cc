#include "datagen/spec.h"

namespace erminer {

int DatasetSpec::AttrIndex(const std::string& attr_name) const {
  for (size_t i = 0; i < attributes.size(); ++i) {
    if (attributes[i].name == attr_name) return static_cast<int>(i);
  }
  return -1;
}

Status DatasetSpec::Validate() const {
  if (attributes.empty()) return Status::InvalidArgument("no attributes");
  for (size_t i = 0; i < attributes.size(); ++i) {
    const auto& a = attributes[i];
    if (a.domain_size == 0 && a.kind == AttributeKind::kDiscrete) {
      return Status::InvalidArgument("attribute " + a.name +
                                     " has empty domain");
    }
    for (int p : a.parents) {
      if (p < 0 || static_cast<size_t>(p) >= i) {
        return Status::InvalidArgument(
            "attribute " + a.name + " has parent not preceding it");
      }
      if (attributes[static_cast<size_t>(p)].kind !=
          AttributeKind::kDiscrete) {
        return Status::InvalidArgument("continuous parent for " + a.name);
      }
    }
    if (a.gate_attr >= 0) {
      if (static_cast<size_t>(a.gate_attr) >= i) {
        return Status::InvalidArgument("gate attribute must precede " +
                                       a.name);
      }
      if (a.gate_values.empty()) {
        return Status::InvalidArgument("empty gate_values for " + a.name);
      }
    }
  }
  auto check_cols = [&](const std::vector<std::string>& cols,
                        const char* which) -> Status {
    if (cols.empty()) {
      return Status::InvalidArgument(std::string(which) + " columns empty");
    }
    for (const auto& c : cols) {
      if (AttrIndex(c) < 0) {
        return Status::InvalidArgument(std::string(which) +
                                       " references unknown attribute " + c);
      }
    }
    return Status::OK();
  };
  ERMINER_RETURN_NOT_OK(check_cols(input_columns, "input"));
  ERMINER_RETURN_NOT_OK(check_cols(master_columns, "master"));
  if (AttrIndex(y_name) < 0) {
    return Status::InvalidArgument("unknown y attribute " + y_name);
  }
  auto contains = [](const std::vector<std::string>& v,
                     const std::string& s) {
    for (const auto& x : v) {
      if (x == s) return true;
    }
    return false;
  };
  if (!contains(input_columns, y_name) || !contains(master_columns, y_name)) {
    return Status::InvalidArgument("y attribute missing from a column list");
  }
  if (master_filter_attr >= 0 &&
      static_cast<size_t>(master_filter_attr) >= attributes.size()) {
    return Status::OutOfRange("master_filter_attr out of range");
  }
  return Status::OK();
}

}  // namespace erminer
