#include "datagen/generators.h"

#include <algorithm>

#include "datagen/entity_pool.h"

namespace erminer {

std::vector<std::string> GeneratedDataset::YTruth() const {
  std::vector<std::string> out;
  out.reserve(clean_input.num_rows());
  for (const auto& row : clean_input.rows) {
    out.push_back(row[static_cast<size_t>(y_input)]);
  }
  return out;
}

std::vector<bool> GeneratedDataset::YDirty() const {
  std::vector<bool> out(input.num_rows(), false);
  if (injection.dirty.empty()) return out;
  const auto& col = injection.dirty[static_cast<size_t>(y_input)];
  for (size_t r = 0; r < out.size(); ++r) out[r] = col[r];
  return out;
}

GeneratedDataset GeneratedDataset::HeadRows(size_t n_input,
                                            size_t n_master) const {
  GeneratedDataset out = *this;
  n_input = std::min(n_input, input.num_rows());
  n_master = std::min(n_master, master.num_rows());
  out.input.rows.resize(n_input);
  out.clean_input.rows.resize(n_input);
  out.master.rows.resize(n_master);
  for (auto& col : out.injection.dirty) col.resize(n_input);
  out.injection.num_errors = 0;
  for (const auto& col : out.injection.dirty) {
    for (bool b : col) out.injection.num_errors += b;
  }
  return out;
}

DatasetSpec AdultSpec() {
  DatasetSpec s;
  s.name = "Adult";
  s.salt = 0xAD017;
  auto add = [&](AttributeSpec a) {
    s.attributes.push_back(std::move(a));
    return static_cast<int>(s.attributes.size() - 1);
  };
  int workclass = add({.name = "workclass", .domain_size = 9, .zipf = 0.8,
                       .prefix = "wc"});
  int education = add({.name = "education", .domain_size = 16, .zipf = 0.6,
                       .prefix = "edu"});
  add({.name = "education_num",
       .domain_size = 16,
       .prefix = "en",
       .parents = {education},
       .strength = 1.0});
  int marital = add({.name = "marital_status", .domain_size = 7, .zipf = 0.6,
                     .prefix = "ms"});
  int occupation = add({.name = "occupation",
                        .domain_size = 15,
                        .zipf = 0.4,
                        .prefix = "occ",
                        .parents = {education},
                        .strength = 0.6});
  add({.name = "relationship",
       .domain_size = 6,
       .prefix = "rel",
       .parents = {marital},
       .strength = 0.8});
  add({.name = "race", .domain_size = 5, .zipf = 1.2, .prefix = "race"});
  add({.name = "sex", .domain_size = 2, .zipf = 0.2, .prefix = "sex"});
  add({.name = "age",
       .kind = AttributeKind::kContinuous,
       .domain_size = 10,
       .zipf = 0.3,
       .numeric_lo = 17,
       .numeric_hi = 90});
  add({.name = "hours",
       .kind = AttributeKind::kContinuous,
       .domain_size = 8,
       .zipf = 0.5,
       .numeric_lo = 1,
       .numeric_hi = 99});
  add({.name = "native_country", .domain_size = 40, .zipf = 1.6,
       .prefix = "nc"});
  add({.name = "income",
       .domain_size = 2,
       .prefix = "inc",
       .parents = {education, occupation, marital},
       .strength = 0.92,
       .gate_attr = workclass,
       .gate_values = {0, 1, 2}});
  s.input_columns = {"age",          "workclass",    "education",
                     "marital_status", "occupation", "relationship",
                     "race",         "sex",          "native_country",
                     "income"};
  s.master_columns = {"workclass",  "education",    "education_num",
                      "marital_status", "occupation", "relationship",
                      "sex",        "hours",        "income"};
  s.y_name = "income";
  s.default_input_size = 40000;
  s.default_master_size = 5000;
  s.default_support_threshold = 1000;
  ERMINER_CHECK_OK(s.Validate());
  return s;
}

DatasetSpec CovidSpec() {
  DatasetSpec s;
  s.name = "Covid";
  s.salt = 0xC071D;
  auto add = [&](AttributeSpec a) {
    s.attributes.push_back(std::move(a));
    return static_cast<int>(s.attributes.size() - 1);
  };
  int city = add({.name = "city", .domain_size = 40, .zipf = 0.7,
                  .prefix = "city"});
  add({.name = "province",
       .domain_size = 12,
       .prefix = "prov",
       .parents = {city},
       .strength = 1.0});
  int date = add({.name = "confirmed_date", .domain_size = 12, .zipf = 0.3,
                  .prefix = "2021-"});
  add({.name = "sex", .domain_size = 2, .zipf = 0.1, .prefix = "sex"});
  add({.name = "age_group", .domain_size = 9, .zipf = 0.3, .prefix = "age"});
  int overseas = add({.name = "overseas", .domain_size = 2, .zipf = 2.2,
                      .prefix = "ovs"});  // ~0.82 "ovs0" (No)
  add({.name = "infection_case",
       .domain_size = 8,
       .zipf = 0.4,
       .prefix = "case",
       .parents = {city, date},
       .strength = 0.93,
       .gate_attr = overseas,
       .gate_values = {0}});
  add({.name = "state", .domain_size = 3, .zipf = 1.0, .prefix = "st"});
  add({.name = "patient_id", .domain_size = 100000, .zipf = 0.0,
       .prefix = "p"});
  s.input_columns = {"patient_id", "city",     "confirmed_date", "sex",
                     "age_group",  "overseas", "infection_case"};
  s.master_columns = {"patient_id", "city",      "province",
                      "confirmed_date", "sex",   "age_group",
                      "infection_case", "state"};
  s.y_name = "infection_case";
  // Master records only domestically infected patients (Example 1).
  s.master_filter_attr = overseas;
  s.master_filter_values = {0};
  s.default_input_size = 2500;
  s.default_master_size = 1824;
  s.default_support_threshold = 100;
  ERMINER_CHECK_OK(s.Validate());
  return s;
}

DatasetSpec NurserySpec() {
  DatasetSpec s;
  s.name = "Nursery";
  s.salt = 0x9085;
  auto add = [&](AttributeSpec a) {
    s.attributes.push_back(std::move(a));
    return static_cast<int>(s.attributes.size() - 1);
  };
  int parents = add({.name = "parents", .domain_size = 3, .zipf = 0.2,
                     .prefix = "par"});
  int has_nurs = add({.name = "has_nurs", .domain_size = 5, .zipf = 0.2,
                      .prefix = "nur"});
  add({.name = "form", .domain_size = 4, .zipf = 0.2, .prefix = "form"});
  add({.name = "children", .domain_size = 4, .zipf = 0.4, .prefix = "ch"});
  int housing = add({.name = "housing", .domain_size = 3, .zipf = 0.3,
                     .prefix = "hou"});
  int social = add({.name = "social", .domain_size = 3, .zipf = 0.2,
                    .prefix = "soc"});
  int health = add({.name = "health", .domain_size = 3, .zipf = 0.3,
                    .prefix = "hea"});
  add({.name = "class",
       .domain_size = 5,
       .prefix = "cls",
       .parents = {parents, has_nurs, health},
       .strength = 0.95});
  add({.name = "finance",
       .domain_size = 2,
       .prefix = "fin",
       .parents = {housing, social},
       .strength = 0.9,
       .gate_attr = health,
       .gate_values = {0, 1}});
  s.input_columns = {"parents", "has_nurs", "form",   "children", "housing",
                     "finance", "social",   "health", "class"};
  s.master_columns = s.input_columns;
  s.y_name = "finance";
  s.default_input_size = 10000;
  s.default_master_size = 2980;
  s.default_support_threshold = 1000;
  ERMINER_CHECK_OK(s.Validate());
  return s;
}

DatasetSpec LocationSpec() {
  DatasetSpec s;
  s.name = "Location";
  s.salt = 0x10CA7;
  auto add = [&](AttributeSpec a) {
    s.attributes.push_back(std::move(a));
    return static_cast<int>(s.attributes.size() - 1);
  };
  int city = add({.name = "city", .domain_size = 150, .zipf = 0.7,
                  .prefix = "city"});
  int county = add({.name = "county",
                    .domain_size = 60,
                    .prefix = "cty",
                    .parents = {city},
                    .strength = 1.0});
  add({.name = "state",
       .domain_size = 20,
       .prefix = "st",
       .parents = {county},
       .strength = 1.0});
  int area_code = add({.name = "area_code",
                       .domain_size = 50,
                       .prefix = "ac",
                       .parents = {county},
                       .strength = 0.98});
  add({.name = "name", .domain_size = 2000, .zipf = 0.1, .prefix = "store"});
  add({.name = "brand", .domain_size = 3, .zipf = 0.8, .prefix = "br"});
  add({.name = "store_number", .domain_size = 2500, .zipf = 0.0,
       .prefix = "sn"});
  add({.name = "phone", .domain_size = 2500, .zipf = 0.0, .prefix = "ph"});
  add({.name = "street", .domain_size = 800, .zipf = 0.2, .prefix = "strt"});
  add({.name = "postcode",
       .domain_size = 300,
       .prefix = "pc",
       .parents = {county, area_code},
       .strength = 0.97});
  s.input_columns = {"name",  "brand",     "store_number",
                     "phone", "city",      "state",
                     "street", "area_code", "postcode"};
  s.master_columns = {"city", "county", "state", "area_code", "postcode"};
  s.y_name = "postcode";
  s.default_input_size = 2559;
  s.default_master_size = 3430;
  s.default_support_threshold = 50;
  ERMINER_CHECK_OK(s.Validate());
  return s;
}

Result<GeneratedDataset> GenerateDataset(const DatasetSpec& spec,
                                         const GenOptions& opts) {
  const size_t input_size =
      opts.input_size > 0 ? opts.input_size : spec.default_input_size;
  const size_t master_size =
      opts.master_size > 0 ? opts.master_size : spec.default_master_size;
  Rng rng(opts.seed ^ spec.salt);

  // Oversized pool so the master filter still leaves enough eligible rows.
  const size_t pool_size = (input_size + master_size) * 2 + 64;
  ERMINER_ASSIGN_OR_RETURN(EntityPool pool,
                           EntityPool::Generate(spec, pool_size, &rng));

  std::vector<size_t> eligible = pool.MasterEligible();
  if (eligible.size() < master_size) {
    return Status::FailedPrecondition(
        "master filter too restrictive for requested master size");
  }
  rng.Shuffle(&eligible);
  std::vector<size_t> master_ids(eligible.begin(),
                                 eligible.begin() +
                                     static_cast<long>(master_size));

  // Entities not used as master records.
  std::vector<bool> in_master(pool.size(), false);
  for (size_t id : master_ids) in_master[id] = true;
  std::vector<size_t> others;
  others.reserve(pool.size() - master_ids.size());
  for (size_t r = 0; r < pool.size(); ++r) {
    if (!in_master[r]) others.push_back(r);
  }

  std::vector<size_t> input_ids;
  input_ids.reserve(input_size);
  if (opts.duplicate_percent < 0) {
    // Default protocol: input sampled from the pool, disjoint from master
    // rows (the same entity distribution; overlap of value combinations
    // arises naturally).
    ERMINER_CHECK(others.size() >= input_size);
    rng.Shuffle(&others);
    input_ids.assign(others.begin(),
                     others.begin() + static_cast<long>(input_size));
  } else {
    const double p = std::clamp(opts.duplicate_percent / 100.0, 0.0, 1.0);
    for (size_t i = 0; i < input_size; ++i) {
      if (rng.NextBernoulli(p)) {
        input_ids.push_back(
            master_ids[rng.NextUint64(master_ids.size())]);
      } else {
        input_ids.push_back(others[rng.NextUint64(others.size())]);
      }
    }
  }

  GeneratedDataset ds;
  ds.name = spec.name;
  ds.master = pool.Project(spec.master_columns, master_ids);
  ds.clean_input = pool.Project(spec.input_columns, input_ids);
  ds.input = ds.clean_input;
  ErrorInjectorOptions einj;
  einj.noise_rate = opts.noise_rate;
  ds.injection = InjectErrors(&ds.input, einj, &rng);
  ds.match = SchemaMatch::ByName(ds.input.schema, ds.master.schema);
  ds.y_input = ds.input.schema.IndexOf(spec.y_name);
  ds.y_master = ds.master.schema.IndexOf(spec.y_name);
  ds.support_threshold = spec.default_support_threshold;
  ERMINER_CHECK(ds.y_input >= 0 && ds.y_master >= 0);
  return ds;
}

Result<GeneratedDataset> MakeAdult(const GenOptions& opts) {
  return GenerateDataset(AdultSpec(), opts);
}
Result<GeneratedDataset> MakeCovid(const GenOptions& opts) {
  return GenerateDataset(CovidSpec(), opts);
}
Result<GeneratedDataset> MakeNursery(const GenOptions& opts) {
  return GenerateDataset(NurserySpec(), opts);
}
Result<GeneratedDataset> MakeLocation(const GenOptions& opts) {
  return GenerateDataset(LocationSpec(), opts);
}

Result<GeneratedDataset> MakeByName(const std::string& name,
                                    const GenOptions& opts) {
  if (name == "adult" || name == "Adult") return MakeAdult(opts);
  if (name == "covid" || name == "Covid") return MakeCovid(opts);
  if (name == "nursery" || name == "Nursery") return MakeNursery(opts);
  if (name == "location" || name == "Location") return MakeLocation(opts);
  return Status::NotFound("unknown dataset: " + name);
}

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"Nursery", "Adult", "Covid", "Location"};
  return *names;
}

}  // namespace erminer
