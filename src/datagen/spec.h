// Generative dataset specifications.
//
// A DatasetSpec describes a latent clean relation: every attribute either
// draws independently from a (Zipf-skewed) value domain or is a (possibly
// gated, possibly noisy) function of parent attributes. This is exactly the
// structure editing rules exploit: a gated functional dependency
// Y = f(parents) that holds only when a gate attribute takes certain values
// yields eRs whose pattern t_p must carry the gate condition — the paper's
// motivating example (t_p[Overseas] = No).

#ifndef ERMINER_DATAGEN_SPEC_H_
#define ERMINER_DATAGEN_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/schema.h"

namespace erminer {

struct AttributeSpec {
  std::string name;
  AttributeKind kind = AttributeKind::kDiscrete;

  /// Distinct base values; value i is spelled `prefix + i` (discrete) or a
  /// decimal in [numeric_lo, numeric_hi] (continuous).
  size_t domain_size = 10;
  /// Zipf skew for independent draws (0 = uniform).
  double zipf = 0.5;
  std::string prefix;

  /// Functional parents (indices into DatasetSpec::attributes; must precede
  /// this attribute). Empty means an independent draw.
  std::vector<int> parents;
  /// Probability the functional mapping is followed; with 1-strength the
  /// value is drawn independently, so master candidate sets are not always
  /// singletons (certainty < 1) and pattern refinement pays off.
  double strength = 1.0;

  /// If gate_attr >= 0, the primary mapping applies only when the gate
  /// attribute's value index is in gate_values; otherwise an alternative
  /// deterministic mapping is used (master data never covers it when the
  /// master filter excludes those rows).
  int gate_attr = -1;
  std::vector<size_t> gate_values;

  double numeric_lo = 0.0;
  double numeric_hi = 100.0;
};

struct DatasetSpec {
  std::string name;
  /// Salt for the deterministic functional mappings; fixed per dataset so
  /// the ground-truth dependency structure is stable across trials.
  uint64_t salt = 0x5eed;
  std::vector<AttributeSpec> attributes;

  /// Column subsets (by attribute name) forming the input and master
  /// schemas. Matched attributes carry the same name in both lists; columns
  /// exclusive to one side have unique names.
  std::vector<std::string> input_columns;
  std::vector<std::string> master_columns;

  /// Target attribute name (must appear in both column lists).
  std::string y_name;

  /// Master rows are restricted to entities whose value index on this
  /// attribute is in master_filter_values (-1 = no filter). Models the
  /// paper's "master data may not be comprehensive".
  int master_filter_attr = -1;
  std::vector<size_t> master_filter_values;

  /// Paper defaults for this dataset.
  size_t default_input_size = 1000;
  size_t default_master_size = 500;
  double default_support_threshold = 100;

  /// Index of an attribute by name, or -1.
  int AttrIndex(const std::string& attr_name) const;

  /// Validates parent ordering, name references, gate references.
  Status Validate() const;
};

}  // namespace erminer

#endif  // ERMINER_DATAGEN_SPEC_H_
