// BART-style cell error injection (Sec. V-A1, ref [10]) with ground-truth
// bookkeeping.
//
// Three error classes over a clean StringTable:
//   missing  — cell becomes NULL (empty string)
//   typo     — one random character edit (substitute/insert/delete)
//   swap     — cell replaced by a different value observed in its column

#ifndef ERMINER_DATAGEN_ERROR_INJECTOR_H_
#define ERMINER_DATAGEN_ERROR_INJECTOR_H_

#include <vector>

#include "data/table.h"
#include "util/random.h"

namespace erminer {

struct ErrorInjectorOptions {
  /// Per-cell perturbation probability.
  double noise_rate = 0.1;
  /// Relative mix of the three error classes (normalized internally).
  double w_missing = 0.4;
  double w_typo = 0.3;
  double w_swap = 0.3;
  /// If non-negative, only this column is perturbed.
  int only_column = -1;
};

struct InjectionReport {
  size_t num_errors = 0;
  /// dirty[c][r]: was cell (r, c) perturbed?
  std::vector<std::vector<bool>> dirty;

  size_t ColumnErrorCount(size_t col) const {
    size_t n = 0;
    for (bool b : dirty[col]) n += b;
    return n;
  }
};

/// Perturbs `table` in place; returns the report. Deterministic given rng.
InjectionReport InjectErrors(StringTable* table,
                             const ErrorInjectorOptions& opts, Rng* rng);

/// One random character edit of `value` (never returns `value` itself;
/// an empty input gains a character).
std::string MakeTypo(const std::string& value, Rng* rng);

}  // namespace erminer

#endif  // ERMINER_DATAGEN_ERROR_INJECTOR_H_
