// Latent clean entity generation from a DatasetSpec.

#ifndef ERMINER_DATAGEN_ENTITY_POOL_H_
#define ERMINER_DATAGEN_ENTITY_POOL_H_

#include <vector>

#include "data/table.h"
#include "datagen/spec.h"
#include "util/random.h"

namespace erminer {

/// A pool of clean entities over the FULL conceptual schema of a spec.
/// Value cells are stored as value indices; projections render strings.
class EntityPool {
 public:
  /// Generates `n` clean entities. Deterministic given (spec.salt, rng seed).
  static Result<EntityPool> Generate(const DatasetSpec& spec, size_t n,
                                     Rng* rng);

  size_t size() const { return rows_.size(); }
  const DatasetSpec& spec() const { return spec_; }

  /// Value index of entity `row` on attribute `attr`.
  size_t value_index(size_t row, size_t attr) const {
    return rows_[row][attr];
  }

  /// Renders the value string of entity `row` on attribute `attr`.
  std::string ValueString(size_t row, size_t attr) const;

  /// Projects entities onto the named columns as a StringTable.
  StringTable Project(const std::vector<std::string>& columns,
                      const std::vector<size_t>& row_ids) const;

  /// Row ids passing the spec's master filter (all rows if no filter).
  std::vector<size_t> MasterEligible() const;

  /// Row ids NOT passing the master filter (empty if no filter).
  std::vector<size_t> MasterIneligible() const;

  /// The deterministic primary functional mapping for attribute `attr`
  /// given parent value indices. Exposed for tests.
  static size_t FunctionalMap(uint64_t salt, size_t attr,
                              const std::vector<size_t>& parent_values,
                              size_t domain_size, bool alternative);

 private:
  DatasetSpec spec_;
  std::vector<std::vector<size_t>> rows_;        // discrete value indices
  std::vector<std::vector<double>> numeric_;     // continuous raw values
};

}  // namespace erminer

#endif  // ERMINER_DATAGEN_ENTITY_POOL_H_
