// Weighted multi-class precision / recall / F-measure (Sec. V-A2).
//
// Repairs are treated as a multi-class prediction of the Y attribute: each
// row's truth is its clean value, the prediction is the repair engine's
// output (or "no prediction"). Per-class scores are averaged weighted by the
// class's truth support, exactly the paper's Precision_w / Recall_w /
// F-Measure_w.

#ifndef ERMINER_EVAL_METRICS_H_
#define ERMINER_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/value.h"

namespace erminer {

struct ClassificationReport {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  size_t num_rows = 0;        // evaluated rows (non-null truth, in mask)
  size_t num_predicted = 0;   // rows with a prediction among those
};

/// `truth[r]` / `pred[r]` per input row; kNullCode in `pred` = no prediction;
/// rows with kNullCode truth are skipped. If `row_mask` is non-null only
/// rows with mask!=0 are evaluated.
ClassificationReport WeightedPrf(const std::vector<ValueCode>& truth,
                                 const std::vector<ValueCode>& pred,
                                 const std::vector<uint8_t>* row_mask = nullptr);

}  // namespace erminer

#endif  // ERMINER_EVAL_METRICS_H_
