#include "eval/table.h"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "util/status.h"

namespace erminer {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  ERMINER_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << " " << cells[c];
      os << std::string(widths[c] - cells[c].size() + 1, ' ') << "|";
    }
    os << "\n";
  };
  emit(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace erminer
