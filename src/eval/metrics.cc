#include "eval/metrics.h"

#include <unordered_map>

#include "util/status.h"

namespace erminer {

ClassificationReport WeightedPrf(const std::vector<ValueCode>& truth,
                                 const std::vector<ValueCode>& pred,
                                 const std::vector<uint8_t>* row_mask) {
  ERMINER_CHECK(truth.size() == pred.size());
  if (row_mask != nullptr) ERMINER_CHECK(row_mask->size() == truth.size());

  struct PerClass {
    size_t tp = 0;
    size_t fp = 0;       // predicted this class, truth differs
    size_t support = 0;  // truth count
  };
  std::unordered_map<ValueCode, PerClass> classes;

  ClassificationReport report;
  for (size_t r = 0; r < truth.size(); ++r) {
    if (row_mask != nullptr && !(*row_mask)[r]) continue;
    if (truth[r] == kNullCode) continue;
    ++report.num_rows;
    classes[truth[r]].support += 1;
    if (pred[r] == kNullCode) continue;
    ++report.num_predicted;
    if (pred[r] == truth[r]) {
      classes[truth[r]].tp += 1;
    } else {
      classes[pred[r]].fp += 1;  // may create a class with support 0
    }
  }

  double wp = 0, wr = 0, wf = 0, total_support = 0;
  for (const auto& [label, c] : classes) {
    if (c.support == 0) continue;  // spurious prediction-only class
    const double support = static_cast<double>(c.support);
    const size_t predicted = c.tp + c.fp;
    const double p = predicted > 0
                         ? static_cast<double>(c.tp) /
                               static_cast<double>(predicted)
                         : 0.0;
    const double rec = static_cast<double>(c.tp) / support;
    const double f = (p + rec) > 0 ? 2 * p * rec / (p + rec) : 0.0;
    wp += support * p;
    wr += support * rec;
    wf += support * f;
    total_support += support;
  }
  if (total_support > 0) {
    report.precision = wp / total_support;
    report.recall = wr / total_support;
    report.f1 = wf / total_support;
  }
  return report;
}

}  // namespace erminer
