#include "eval/pipeline.h"

#include <memory>
#include <sstream>

#include "core/cfd_miner.h"
#include "core/enu_miner.h"
#include "core/repair.h"
#include "core/certain_fix.h"
#include "core/rule_io.h"
#include "data/csv.h"
#include "data/instance_match.h"
#include "datagen/generators.h"
#include "eval/experiment.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/run_manifest.h"
#include "obs/sampler.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "rl/rl_miner.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace erminer {

namespace {

struct LoadedData {
  StringTable input;
  StringTable master;
  std::string y_name;
  std::string ym_name;
  std::vector<std::string> truth;  // empty when unavailable
};

Result<LoadedData> LoadData(const Config& config) {
  LoadedData data;
  if (config.Has("data.dataset")) {
    GenOptions gen;
    gen.input_size =
        static_cast<size_t>(config.GetInt("data.input_size", 0));
    gen.master_size =
        static_cast<size_t>(config.GetInt("data.master_size", 0));
    gen.noise_rate = config.GetDouble("data.noise", 0.1);
    gen.seed = static_cast<uint64_t>(config.GetInt("data.seed", 7));
    ERMINER_ASSIGN_OR_RETURN(GeneratedDataset ds,
                             MakeByName(config.Get("data.dataset"), gen));
    data.input = std::move(ds.input);
    data.master = std::move(ds.master);
    data.y_name = data.input.schema
                      .attribute(static_cast<size_t>(ds.y_input))
                      .name;
    data.ym_name = data.master.schema
                       .attribute(static_cast<size_t>(ds.y_master))
                       .name;
    for (const auto& row : ds.clean_input.rows) {
      data.truth.push_back(row[static_cast<size_t>(ds.y_input)]);
    }
    return data;
  }
  if (!config.Has("data.input") || !config.Has("data.master") ||
      !config.Has("data.y")) {
    return Status::InvalidArgument(
        "config needs data.dataset or data.{input,master,y}");
  }
  ERMINER_ASSIGN_OR_RETURN(data.input,
                           ReadCsvFile(config.Get("data.input")));
  ERMINER_ASSIGN_OR_RETURN(data.master,
                           ReadCsvFile(config.Get("data.master")));
  data.y_name = config.Get("data.y");
  data.ym_name = config.Get("data.y_master", data.y_name);
  if (config.Has("data.truth")) {
    ERMINER_ASSIGN_OR_RETURN(StringTable truth_table,
                             ReadCsvFile(config.Get("data.truth")));
    int yt = truth_table.schema.IndexOf(data.y_name);
    if (yt < 0 || truth_table.num_rows() != data.input.num_rows()) {
      return Status::InvalidArgument("truth table not aligned with input");
    }
    for (const auto& row : truth_table.rows) {
      data.truth.push_back(row[static_cast<size_t>(yt)]);
    }
  }
  return data;
}

/// Arms the configured observability for the duration of the pipeline —
/// trace recording, live telemetry server, metrics sampler, JSON logs and
/// the run manifest — and writes the export files on the way out. RAII so
/// the exports happen even when a stage fails early (a partial trace is
/// exactly what you want when diagnosing why a stage returned an error).
/// Telemetry is pull-only, so results are bit-identical whether or not any
/// of it is armed.
class ScopedObsExports {
 public:
  explicit ScopedObsExports(const Config& config)
      : metrics_path_(config.Get("obs.metrics_json", "")),
        trace_path_(config.Get("obs.trace_json", "")) {
    if (!trace_path_.empty()) obs::TraceRecorder::Global().Enable();
    const std::string log_json = config.Get("obs.log_json", "");
    if (!log_json.empty()) {
      EnableJsonLogSink(log_json == "stderr" ? "" : log_json);
    }
    std::string error;
    if (config.Has("obs.telemetry_port")) {
      obs::TelemetryServerOptions sopts;
      sopts.port = static_cast<int>(config.GetInt("obs.telemetry_port", 0));
      if (obs::TelemetryServer::Global().Start(sopts, &error)) {
        server_started_ = true;
      } else {
        ERMINER_LOG(WARNING) << "telemetry server: " << error;
      }
    }
    const std::string stream = config.Get("obs.metrics_stream", "");
    if (!stream.empty()) {
      obs::SamplerOptions sopts;
      sopts.interval_ms =
          static_cast<int>(config.GetInt("obs.sample_interval_ms", 1000));
      sopts.stream_path = stream;
      sampler_ = std::make_unique<obs::Sampler>(sopts);
      if (!sampler_->Start(&error)) {
        ERMINER_LOG(WARNING) << "metrics sampler: " << error;
        sampler_.reset();
      }
    }
    const std::string run_dir = config.Get("obs.run_dir", "");
    if (!run_dir.empty()) {
      manifest_ = obs::RunManifest::Open(run_dir, config.values(), &error);
      if (manifest_ != nullptr) {
        obs::SetActiveRunManifest(manifest_.get());
      } else {
        ERMINER_LOG(WARNING) << "run manifest: " << error;
      }
    }
    // Decision-provenance event log (docs/observability.md). Armed after
    // the manifest so the log's path lands in config.json.
    const std::string decision_log = config.Get("obs.decision_log", "");
    if (!decision_log.empty()) {
      if (obs::DecisionLog::Global().Open(decision_log, &error)) {
        decision_log_armed_ = true;
        if (manifest_ != nullptr) {
          manifest_->SetProvenance("decision_log", decision_log);
        }
      } else {
        ERMINER_LOG(WARNING) << "decision log: " << error;
      }
    }
    const std::string profile_spec = config.Get("obs.profile_out", "");
    if (!profile_spec.empty()) {
      obs::ProfilerOptions popts;
      profile_path_ = obs::ParseProfileOutSpec(profile_spec, &popts.hz);
      if (obs::Profiler::Global().Start(popts, &error)) {
        profiler_started_ = true;
      } else {
        ERMINER_LOG(WARNING) << "profiler: " << error;
        profile_path_.clear();
      }
    }
    const double watchdog_sec = config.GetDouble("obs.watchdog_sec", 0);
    if (watchdog_sec > 0) {
      obs::WatchdogOptions wopts;
      wopts.deadline_sec = watchdog_sec;
      if (!run_dir.empty()) wopts.artifact_dir = run_dir;
      if (obs::Watchdog::Global().Start(wopts, &error)) {
        watchdog_started_ = true;
      } else {
        ERMINER_LOG(WARNING) << "watchdog: " << error;
      }
    }
  }

  ~ScopedObsExports() {
    if (watchdog_started_) obs::Watchdog::Global().Stop();
    if (profiler_started_) {
      obs::Profiler::Global().Stop();
      if (!profile_path_.empty() &&
          !obs::Profiler::Global().WriteCollapsedFile(profile_path_)) {
        ERMINER_LOG(WARNING) << "cannot write profile " << profile_path_;
      }
    }
    if (sampler_ != nullptr) sampler_->Stop();
    if (decision_log_armed_) obs::DecisionLog::Global().Close();
    if (manifest_ != nullptr) {
      obs::SetActiveRunManifest(nullptr);
      manifest_->WriteSummary(
          "{\"ok\":true,\"episodes\":" +
          std::to_string(manifest_->episodes_appended()) + "}");
    }
    if (server_started_) obs::TelemetryServer::Global().Stop();
    if (!metrics_path_.empty()) {
      obs::MetricsRegistry::Global().WriteJsonFile(metrics_path_);
    }
    if (!trace_path_.empty()) {
      obs::TraceRecorder::Global().WriteJsonFile(trace_path_);
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string profile_path_;
  bool server_started_ = false;
  bool profiler_started_ = false;
  bool watchdog_started_ = false;
  bool decision_log_armed_ = false;
  std::unique_ptr<obs::Sampler> sampler_;
  std::unique_ptr<obs::RunManifest> manifest_;
};

}  // namespace

Result<PipelineReport> RunPipeline(const Config& config) {
  PipelineReport report;
  ConfigureThreadsFromConfig(config);
  ScopedObsExports obs_exports(config);
  ERMINER_SPAN("pipeline/run");

  // --- data ---
  ERMINER_ASSIGN_OR_RETURN(LoadedData data, LoadData(config));
  report.input_rows = data.input.num_rows();
  report.master_rows = data.master.num_rows();
  report.y_name = data.y_name;
  int y = data.input.schema.IndexOf(data.y_name);
  int ym = data.master.schema.IndexOf(data.ym_name);
  if (y < 0 || ym < 0) {
    return Status::InvalidArgument("target attribute not found: " +
                                   data.y_name + "/" + data.ym_name);
  }

  // --- match ---
  SchemaMatch match;
  if (config.Get("match.mode", "name") == "values") {
    InstanceMatchOptions mopts;
    mopts.min_score = config.GetDouble("match.min_score", 0.5);
    match = MatchByValues(data.input, data.master, mopts);
  } else {
    match = SchemaMatch::ByName(data.input.schema, data.master.schema);
  }
  report.matched_pairs = match.num_pairs();
  if (report.matched_pairs == 0) {
    return Status::FailedPrecondition("schema matching found no pairs");
  }
  ERMINER_ASSIGN_OR_RETURN(
      Corpus corpus, Corpus::Build(data.input, data.master, match, y, ym));

  // --- mine ---
  MinerOptions options;
  options.k = static_cast<size_t>(config.GetInt("miner.k", 50));
  options.support_threshold = config.GetDouble(
      "miner.support",
      std::max(10.0, static_cast<double>(report.input_rows) / 40.0));
  options.include_negations = config.GetBool("miner.negations", false);
  // Performance levers (results are bit-identical either way): partition
  // refinement (docs/perf.md) and batched sibling evaluation
  // (docs/architecture.md).
  options.refine = config.GetBool("miner.refine", true);
  options.batch_eval = config.GetBool("miner.batch_eval", true);
  report.method = config.Get("miner.method", "rl");
  if (report.method == "rl") {
    RlMinerOptions rl;
    rl.base = options;
    rl.train_steps =
        static_cast<size_t>(config.GetInt("miner.steps", 3000));
    rl.seed = static_cast<uint64_t>(config.GetInt("miner.seed", 17));
    // [rl] section: crash-safe checkpoint/resume (docs/checkpointing.md).
    rl.checkpoint.dir = config.Get("rl.checkpoint_dir", "");
    rl.checkpoint.every_episodes = static_cast<size_t>(config.GetInt(
        "rl.checkpoint_every", rl.checkpoint.dir.empty() ? 0 : 1));
    rl.checkpoint.keep_last =
        static_cast<size_t>(config.GetInt("rl.checkpoint_keep", 3));
    rl.resume = config.Get("rl.resume", "");
    if (rl.resume == "true") rl.resume = "latest";
    RlMiner miner(&corpus, rl);
    ERMINER_RETURN_NOT_OK(miner.Resume());
    report.mine = miner.Mine();
  } else if (report.method == "enu") {
    report.mine = EnuMine(corpus, options);
  } else if (report.method == "enuh3") {
    report.mine = EnuMineH3(corpus, options);
  } else if (report.method == "ctane") {
    report.mine = CfdMine(corpus, options);
  } else {
    return Status::InvalidArgument("unknown miner.method " + report.method);
  }
  if (config.Has("output.rules")) {
    ERMINER_RETURN_NOT_OK(WriteRulesFile(report.mine.rules, corpus,
                                         config.Get("output.rules")));
  }

  // --- detect ---
  RuleEvaluator evaluator(&corpus);
  ViolationReport violations =
      DetectViolations(&evaluator, report.mine.rules);
  report.violations = violations.violations.size();
  report.flagged_rows = violations.num_flagged_rows;

  // --- repair ---
  const bool certain = config.Get("repair.mode", "vote") == "certain";
  const bool overwrite = config.GetBool("repair.overwrite", false);
  std::vector<ValueCode> prediction;
  if (certain) {
    prediction = ComputeCertainFixes(&evaluator, report.mine.rules).fix;
  } else {
    prediction = ApplyRules(&evaluator, report.mine.rules).prediction;
  }
  StringTable repaired = data.input;
  Domain* dy = corpus.y_domain().get();
  for (size_t r = 0; r < repaired.num_rows(); ++r) {
    if (prediction[r] == kNullCode) continue;
    auto& cell = repaired.rows[r][static_cast<size_t>(y)];
    const bool missing = cell.empty();
    if (!missing && !overwrite && !certain) continue;
    std::string fix = dy->value(prediction[r]);
    if (cell != fix) {
      cell = fix;
      ++report.repaired_cells;
      if (missing) ++report.filled_missing;
    }
  }
  if (config.Has("output.repaired")) {
    ERMINER_RETURN_NOT_OK(
        WriteCsvFile(repaired, config.Get("output.repaired")));
  }

  // --- evaluate ---
  if (!data.truth.empty()) {
    std::vector<ValueCode> truth_codes, pred_codes;
    for (size_t r = 0; r < repaired.num_rows(); ++r) {
      truth_codes.push_back(dy->GetOrAdd(data.truth[r]));
      pred_codes.push_back(prediction[r]);
    }
    report.accuracy = WeightedPrf(truth_codes, pred_codes);
  }
  return report;
}

std::string PipelineReport::Summary() const {
  std::ostringstream os;
  os << "pipeline: " << input_rows << " input rows, " << master_rows
     << " master rows, " << matched_pairs << " matched pairs, target "
     << y_name << "\n";
  os << "mined " << mine.rules.size() << " rules with " << method << " in "
     << mine.seconds << "s (" << mine.rule_evaluations
     << " rule evaluations)\n";
  os << "detected " << violations << " violations across " << flagged_rows
     << " rows\n";
  os << "repaired " << repaired_cells << " cells (" << filled_missing
     << " were missing values)\n";
  if (accuracy.has_value()) {
    os << "accuracy vs truth: P=" << accuracy->precision
       << " R=" << accuracy->recall << " F1=" << accuracy->f1 << "\n";
  }
  return os.str();
}

}  // namespace erminer
