// Fixed-width ASCII table printer; every bench binary reports paper-style
// rows through it.

#ifndef ERMINER_EVAL_TABLE_H_
#define ERMINER_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace erminer {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells);

  /// Aligned rendering with a header separator line.
  std::string ToString() const;

  /// ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace erminer

#endif  // ERMINER_EVAL_TABLE_H_
