#include "eval/experiment.h"

#include <cmath>

#include "util/string_util.h"

namespace erminer {

const char* MethodName(Method m) {
  switch (m) {
    case Method::kCtane:
      return "CTANE";
    case Method::kEnuMiner:
      return "EnuMiner";
    case Method::kEnuMinerH3:
      return "EnuMinerH3";
    case Method::kRlMiner:
      return "RLMiner";
  }
  return "?";
}

Result<Corpus> BuildCorpus(const GeneratedDataset& ds) {
  return Corpus::Build(ds.input, ds.master, ds.match, ds.y_input,
                       ds.y_master);
}

std::vector<ValueCode> EncodeTruth(const Corpus& corpus,
                                   const GeneratedDataset& ds) {
  std::vector<ValueCode> truth;
  truth.reserve(ds.clean_input.num_rows());
  Domain* dom = corpus.y_domain().get();
  for (const auto& t : ds.YTruth()) truth.push_back(dom->GetOrAdd(t));
  return truth;
}

TrialResult ScoreRules(const Corpus& corpus, const GeneratedDataset& ds,
                       MineResult mine) {
  TrialResult out;
  RuleEvaluator evaluator(&corpus);
  RepairOutcome repair = ApplyRules(&evaluator, mine.rules);
  std::vector<ValueCode> truth = EncodeTruth(corpus, ds);
  out.repair = WeightedPrf(truth, repair.prediction);
  std::vector<bool> dirty = ds.YDirty();
  std::vector<uint8_t> mask(dirty.size());
  for (size_t i = 0; i < dirty.size(); ++i) mask[i] = dirty[i] ? 1 : 0;
  out.repair_dirty = WeightedPrf(truth, repair.prediction, &mask);
  out.lengths = ComputeLengthStats(mine.rules);
  out.mine = std::move(mine);
  return out;
}

Result<TrialResult> RunTrial(const GeneratedDataset& ds, Method method,
                             const MinerOptions& options,
                             const RlMinerOptions& rl) {
  ERMINER_ASSIGN_OR_RETURN(Corpus corpus, BuildCorpus(ds));
  MineResult mine;
  switch (method) {
    case Method::kCtane:
      mine = CfdMine(corpus, options);
      break;
    case Method::kEnuMiner:
      mine = EnuMine(corpus, options);
      break;
    case Method::kEnuMinerH3:
      mine = EnuMineH3(corpus, options);
      break;
    case Method::kRlMiner: {
      RlMiner miner(&corpus, rl);
      mine = miner.Mine();
      break;
    }
  }
  return ScoreRules(corpus, ds, std::move(mine));
}

MinerOptions DefaultMinerOptions(const GeneratedDataset& ds, size_t k) {
  MinerOptions o;
  o.k = k;
  o.support_threshold = ds.support_threshold;
  return o;
}

RlMinerOptions DefaultRlOptions(const GeneratedDataset& ds, size_t k,
                                uint64_t seed) {
  RlMinerOptions o;
  o.base = DefaultMinerOptions(ds, k);
  o.seed = seed;
  return o;
}

Aggregate Aggregate_(const std::vector<double>& xs) {
  Aggregate a;
  if (xs.empty()) return a;
  double sum = 0;
  for (double x : xs) sum += x;
  a.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - a.mean) * (x - a.mean);
  a.stdev = std::sqrt(var / static_cast<double>(xs.size()));
  return a;
}

std::string MeanStd(const Aggregate& a, int precision) {
  return FormatDouble(a.mean, precision) + " +- " +
         FormatDouble(a.stdev, precision);
}

}  // namespace erminer
