// The end-to-end cleaning pipeline: load (or generate) -> match schemas ->
// mine editing rules -> detect violations -> repair -> report. Config-driven
// so a deployment is one file; each stage's outcome is captured in a
// PipelineReport.
//
// Config keys (see examples in tests/pipeline_test.cc):
//   [data]    input / master / y / y_master        (CSV paths, column names)
//             dataset / input_size / master_size / noise / seed (generate)
//   [match]   mode = name | values ; min_score
//   [miner]   method = rl|enu|enuh3|ctane ; k ; support ; steps ; seed ;
//             negations ; refine ; batch_eval     (the last two default on;
//             both are pure performance levers — results are bit-identical)
//   [repair]  mode = vote | certain ; overwrite
//   [output]  repaired ; rules                      (optional CSV/rule paths)
//   [obs]     metrics_json ; trace_json             (observability exports:
//             metrics registry dump / Chrome trace of the run)
//             telemetry_port                        (live /metrics endpoint
//             for the duration of the pipeline; 0 picks a free port)
//             metrics_stream ; sample_interval_ms   (periodic JSONL counter
//             samples, default interval 1000 ms)
//             log_json                              (structured JSON logs:
//             "stderr" or a file path)
//             run_dir                               (manifest directory:
//             config.json, episodes.jsonl, summary.json — see
//             docs/observability.md)
//             profile_out                           (sampling CPU profiler;
//             FILE[:hz], default 99 Hz; collapsed stacks written at exit)
//             watchdog_sec                          (stall watchdog deadline
//             in seconds; artifacts land in run_dir when set, else the cwd)
//   threads   top-level worker count (0 = hardware concurrency; default 1 =
//             serial). Results are bit-identical for every value — see
//             docs/parallelism.md.

#ifndef ERMINER_EVAL_PIPELINE_H_
#define ERMINER_EVAL_PIPELINE_H_

#include <optional>
#include <string>

#include "core/miner.h"
#include "core/violations.h"
#include "data/corpus.h"
#include "eval/metrics.h"
#include "util/config.h"

namespace erminer {

struct PipelineReport {
  // Data stage.
  size_t input_rows = 0;
  size_t master_rows = 0;
  size_t matched_pairs = 0;
  std::string y_name;

  // Mining stage.
  std::string method;
  MineResult mine;

  // Detection stage.
  size_t violations = 0;
  size_t flagged_rows = 0;

  // Repair stage.
  size_t repaired_cells = 0;
  size_t filled_missing = 0;

  // Evaluation stage (only when ground truth is available, i.e. generated
  // data or a truth CSV was configured).
  std::optional<ClassificationReport> accuracy;

  /// Multi-line human-readable summary.
  std::string Summary() const;
};

/// Runs the pipeline described by `config`. Writes optional outputs to disk
/// (repaired CSV, rules file) when configured.
Result<PipelineReport> RunPipeline(const Config& config);

}  // namespace erminer

#endif  // ERMINER_EVAL_PIPELINE_H_
