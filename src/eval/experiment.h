// Shared experiment harness: builds a Corpus from a generated dataset, runs
// a mining method, applies the discovered rules, and scores the repairs
// against ground truth. Every bench binary is a thin driver over this.

#ifndef ERMINER_EVAL_EXPERIMENT_H_
#define ERMINER_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/cfd_miner.h"
#include "core/enu_miner.h"
#include "core/miner.h"
#include "core/repair.h"
#include "datagen/generators.h"
#include "eval/metrics.h"
#include "rl/rl_miner.h"

namespace erminer {

enum class Method {
  kCtane,
  kEnuMiner,
  kEnuMinerH3,
  kRlMiner,
};

const char* MethodName(Method m);

struct TrialResult {
  MineResult mine;
  /// Repairs scored over all rows (the paper's protocol).
  ClassificationReport repair;
  /// Repairs scored over perturbed Y cells only (extra diagnostic).
  ClassificationReport repair_dirty;
  RuleLengthStats lengths;
};

/// Corpus from a generated dataset (no labels: miners use input-as-label
/// quality, Sec. II-B3).
Result<Corpus> BuildCorpus(const GeneratedDataset& ds);

/// Truth codes for the Y column (encoded with the corpus's target domain).
std::vector<ValueCode> EncodeTruth(const Corpus& corpus,
                                   const GeneratedDataset& ds);

/// Applies `rules` to the corpus and scores them against the dataset truth.
TrialResult ScoreRules(const Corpus& corpus, const GeneratedDataset& ds,
                       MineResult mine);

/// End-to-end: mine with `method` and score. `rl` is only consulted for
/// kRlMiner.
Result<TrialResult> RunTrial(const GeneratedDataset& ds, Method method,
                             const MinerOptions& options,
                             const RlMinerOptions& rl);

/// MinerOptions tuned to a dataset's defaults, with the bench-scale K.
MinerOptions DefaultMinerOptions(const GeneratedDataset& ds, size_t k = 50);
RlMinerOptions DefaultRlOptions(const GeneratedDataset& ds, size_t k = 50,
                                uint64_t seed = 17);

/// mean/std over repeated trials.
struct Aggregate {
  double mean = 0;
  double stdev = 0;
};
Aggregate Aggregate_(const std::vector<double>& xs);

/// "0.52 +- 0.01" formatting used by the table benches.
std::string MeanStd(const Aggregate& a, int precision = 2);

}  // namespace erminer

#endif  // ERMINER_EVAL_EXPERIMENT_H_
