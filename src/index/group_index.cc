#include "index/group_index.h"

namespace erminer {

GroupIndex GroupIndex::Build(const Table& master,
                             const std::vector<int>& xm_cols, int ym_col) {
  GroupIndex idx;
  idx.xm_cols_ = xm_cols;
  ERMINER_CHECK(ym_col >= 0 &&
                static_cast<size_t>(ym_col) < master.num_cols());
  std::vector<ValueCode> key(xm_cols.size());
  for (size_t r = 0; r < master.num_rows(); ++r) {
    ValueCode ym = master.at(r, static_cast<size_t>(ym_col));
    if (ym == kNullCode) continue;
    bool null_key = false;
    for (size_t i = 0; i < xm_cols.size(); ++i) {
      key[i] = master.at(r, static_cast<size_t>(xm_cols[i]));
      if (key[i] == kNullCode) {
        null_key = true;
        break;
      }
    }
    if (null_key) continue;
    Group& g = idx.groups_[key];
    g.total += 1;
    bool found = false;
    for (auto& [v, c] : g.counts) {
      if (v == ym) {
        ++c;
        if (c > g.max_count) {
          g.max_count = c;
          g.argmax = v;
        }
        found = true;
        break;
      }
    }
    if (!found) {
      g.counts.emplace_back(ym, 1);
      if (1 > g.max_count) {
        g.max_count = 1;
        g.argmax = ym;
      }
    }
  }
  return idx;
}

const Group* GroupIndex::Find(const std::vector<ValueCode>& key) const {
  auto it = groups_.find(key);
  return it == groups_.end() ? nullptr : &it->second;
}

}  // namespace erminer
