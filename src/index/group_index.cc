#include "index/group_index.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace erminer {

GroupIndex GroupIndex::Build(const Table& master,
                             const std::vector<int>& xm_cols, int ym_col) {
  ERMINER_SPAN("group_index/build");
  ERMINER_COUNT("group_index/builds", 1);
  GroupIndex idx;
  idx.xm_cols_ = xm_cols;
  ERMINER_CHECK(ym_col >= 0 &&
                static_cast<size_t>(ym_col) < master.num_cols());
  const size_t n = master.num_rows();
  const size_t k = xm_cols.size();

  // Phase 1 (parallel group scan): extract every row's key vector and Y_m
  // code into flat arrays. Each row writes only its own slots, so the scan
  // is trivially race-free and bit-identical for any thread count.
  std::vector<ValueCode> keys(n * k);
  std::vector<ValueCode> yms(n);
  std::vector<uint8_t> usable(n, 0);
  GlobalPool().ParallelFor(0, n, kDefaultGrain, [&](size_t rb, size_t re) {
    for (size_t r = rb; r < re; ++r) {
      ValueCode ym = master.at(r, static_cast<size_t>(ym_col));
      if (ym == kNullCode) continue;
      bool null_key = false;
      for (size_t i = 0; i < k; ++i) {
        ValueCode v = master.at(r, static_cast<size_t>(xm_cols[i]));
        if (v == kNullCode) {
          null_key = true;
          break;
        }
        keys[r * k + i] = v;
      }
      if (null_key) continue;
      yms[r] = ym;
      usable[r] = 1;
    }
  });

  // Phase 2 (serial): hash inserts in ascending row order. Group::counts
  // insertion order and the argmax tie-break ("first value to exceed the
  // running max wins") depend on encounter order, so this phase must walk
  // rows exactly like the fully serial build — which keeps the index, and
  // everything downstream of it (CTANE's group iteration included),
  // bit-identical between threads=1 and threads=N.
  std::vector<ValueCode> key(k);
  for (size_t r = 0; r < n; ++r) {
    if (!usable[r]) continue;
    key.assign(keys.begin() + static_cast<ptrdiff_t>(r * k),
               keys.begin() + static_cast<ptrdiff_t>(r * k + k));
    const ValueCode ym = yms[r];
    Group& g = idx.groups_[key];
    g.total += 1;
    bool found = false;
    for (auto& [v, c] : g.counts) {
      if (v == ym) {
        ++c;
        if (c > g.max_count) {
          g.max_count = c;
          g.argmax = v;
        }
        found = true;
        break;
      }
    }
    if (!found) {
      g.counts.emplace_back(ym, 1);
      if (1 > g.max_count) {
        g.max_count = 1;
        g.argmax = ym;
      }
    }
  }
  ERMINER_COUNT("group_index/groups_built", idx.groups_.size());
  return idx;
}

const Group* GroupIndex::Find(const std::vector<ValueCode>& key) const {
  auto it = groups_.find(key);
  return it == groups_.end() ? nullptr : &it->second;
}

}  // namespace erminer
