#include "index/group_index.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace erminer {

namespace {

/// Base hash of the empty key; per-column mixes are added onto it.
constexpr uint64_t kSeedHash = 0x51ed270b3a4c5d6eULL;

size_t NextPow2(size_t n) {
  size_t p = 16;
  while (p < n) p <<= 1;
  return p;
}

/// One Y_m observation, with exactly the serial build's insertion-order and
/// argmax tie-break ("first value to exceed the running max wins").
void AddToGroup(Group* g, ValueCode ym) {
  g->total += 1;
  for (auto& [v, c] : g->counts) {
    if (v == ym) {
      ++c;
      if (c > g->max_count) {
        g->max_count = c;
        g->argmax = v;
      }
      return;
    }
  }
  g->counts.emplace_back(ym, 1);
  if (1 > g->max_count) {
    g->max_count = 1;
    g->argmax = ym;
  }
}

}  // namespace

uint64_t GroupIndex::MixColValue(int col, ValueCode v) {
  // splitmix64 finalizer over the packed (column, value) pair. The sum of
  // these lanes over a key's columns is the key's hash, so extending a key
  // by one column adds one lane — the incremental property BuildRefined
  // relies on. Distinct keys may still collide; Find compares full keys.
  uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(col)) << 32) |
               static_cast<uint32_t>(v + 1);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void GroupIndex::InitTable(size_t expected_groups) {
  const size_t slots = NextPow2(2 * std::max<size_t>(expected_groups, 1));
  table_.assign(slots, -1);
  table_mask_ = slots - 1;
}

int32_t GroupIndex::Lookup(uint64_t hash, const ValueCode* key) const {
  const size_t k = xm_cols_.size();
  size_t slot = static_cast<size_t>(hash & table_mask_);
  while (table_[slot] >= 0) {
    const int32_t gid = table_[slot];
    if (hashes_[static_cast<size_t>(gid)] == hash &&
        std::equal(key, key + k, key_of(static_cast<size_t>(gid)))) {
      return gid;
    }
    slot = (slot + 1) & table_mask_;
  }
  return -1;
}

void GroupIndex::InsertSlot(uint64_t hash, int32_t gid) {
  size_t slot = static_cast<size_t>(hash & table_mask_);
  while (table_[slot] >= 0) slot = (slot + 1) & table_mask_;
  table_[slot] = gid;
}

GroupIndex GroupIndex::Build(const Table& master,
                             const std::vector<int>& xm_cols, int ym_col) {
  ERMINER_SPAN("group_index/build");
  ERMINER_COUNT("group_index/builds", 1);
  GroupIndex idx;
  idx.xm_cols_ = xm_cols;
  ERMINER_CHECK(ym_col >= 0 &&
                static_cast<size_t>(ym_col) < master.num_cols());
  const size_t n = master.num_rows();
  const size_t k = xm_cols.size();

  // Phase 1 (parallel group scan): extract every row's key vector, Y_m code
  // and running 64-bit key hash into flat arrays. Each row writes only its
  // own slots, so the scan is trivially race-free and bit-identical for any
  // thread count.
  std::vector<ValueCode> keys(n * k);
  std::vector<ValueCode> yms(n);
  std::vector<uint64_t> hashes(n);
  std::vector<uint8_t> usable(n, 0);
  GlobalPool().ParallelFor(0, n, kDefaultGrain, [&](size_t rb, size_t re) {
    for (size_t r = rb; r < re; ++r) {
      ValueCode ym = master.at(r, static_cast<size_t>(ym_col));
      if (ym == kNullCode) continue;
      uint64_t h = kSeedHash;
      bool null_key = false;
      for (size_t i = 0; i < k; ++i) {
        ValueCode v = master.at(r, static_cast<size_t>(xm_cols[i]));
        if (v == kNullCode) {
          null_key = true;
          break;
        }
        keys[r * k + i] = v;
        h += MixColValue(xm_cols[i], v);
      }
      if (null_key) continue;
      yms[r] = ym;
      hashes[r] = h;
      usable[r] = 1;
    }
  });

  // Phase 2 (serial): group assignment in ascending row order. The table is
  // pre-sized from the row count (groups never outnumber usable rows), so
  // it never rehashes; Group::counts insertion order and the argmax
  // tie-break depend on encounter order, so this phase must walk rows
  // exactly like the fully serial build — which keeps the index, and
  // everything downstream of it (CTANE's group iteration included),
  // bit-identical between threads=1 and threads=N.
  idx.InitTable(n);
  std::vector<int32_t> row_gid(n, -1);
  for (size_t r = 0; r < n; ++r) {
    if (!usable[r]) continue;
    const ValueCode* key = keys.data() + r * k;
    int32_t gid = idx.Lookup(hashes[r], key);
    if (gid < 0) {
      gid = static_cast<int32_t>(idx.groups_.size());
      idx.groups_.emplace_back();
      idx.hashes_.push_back(hashes[r]);
      idx.key_arena_.insert(idx.key_arena_.end(), key, key + k);
      idx.InsertSlot(hashes[r], gid);
    }
    AddToGroup(&idx.groups_[static_cast<size_t>(gid)], yms[r]);
    row_gid[r] = gid;
  }

  // Phase 3 (serial scatter): per-group member rows in a contiguous arena,
  // ascending within each group — the lists BuildRefined splits.
  const size_t num_groups = idx.groups_.size();
  idx.row_begin_.assign(num_groups + 1, 0);
  for (size_t g = 0; g < num_groups; ++g) {
    idx.row_begin_[g + 1] =
        idx.row_begin_[g] + static_cast<uint32_t>(idx.groups_[g].total);
  }
  idx.row_arena_.resize(idx.row_begin_[num_groups]);
  std::vector<uint32_t> cursor(idx.row_begin_.begin(),
                               idx.row_begin_.end() - 1);
  for (size_t r = 0; r < n; ++r) {
    if (row_gid[r] >= 0) {
      idx.row_arena_[cursor[static_cast<size_t>(row_gid[r])]++] =
          static_cast<uint32_t>(r);
    }
  }
  ERMINER_COUNT("group_index/groups_built", num_groups);
  return idx;
}

namespace {

/// One child of the refinement: a (parent group, new-column value) cell.
/// The discovery pass records only identities and sizes; row lists and Y
/// stats are materialized later, straight into the final index arenas.
struct PendingChild {
  uint32_t parent_gid = 0;
  ValueCode value = kNullCode;
  uint32_t first_row = 0;  // lists are ascending, so the first row is min
  uint32_t size = 0;
  uint32_t final_gid = 0;  // assigned after the renumbering sort
  bool uniform = false;    // whole parent group carried over verbatim
};

/// Discovery output for one chunk of parent groups.
struct RefineChunk {
  size_t gb = 0, ge = 0;  // parent-group range [gb, ge)
  std::vector<PendingChild> children;
  /// Chunk-relative child index per parent row of split parents, -1 for
  /// NULLs in the new column; indexed by position within the chunk's
  /// contiguous span of the parent row arena.
  std::vector<int32_t> row_child;
  /// Per parent group in [gb, ge): its single child if the group did not
  /// split, -1 otherwise. Row lists for these are block-copied.
  std::vector<int32_t> uniform_child;
  /// Per parent group in [gb, ge), plus one sentinel: the range of the
  /// parent's children within `children` — discovery emits each parent's
  /// children contiguously, which lets the scatter phase keep its Y stats
  /// in a dense (child, value) table of per-parent extent.
  std::vector<uint32_t> child_begin;
};

}  // namespace

GroupIndex GroupIndex::BuildRefined(const Table& master,
                                    const GroupIndex& parent,
                                    const std::vector<int>& xm_cols,
                                    int ym_col) {
  ERMINER_SPAN("group_index/refine");
  ERMINER_COUNT("group_index/refines", 1);
  const size_t k = xm_cols.size();
  ERMINER_CHECK(parent.xm_cols_.size() + 1 == k);
  // The one column `xm_cols` adds over the parent, and its position.
  size_t pos = 0;
  while (pos < parent.xm_cols_.size() && xm_cols[pos] == parent.xm_cols_[pos]) {
    ++pos;
  }
  const int new_col = xm_cols[pos];
  for (size_t i = pos; i < parent.xm_cols_.size(); ++i) {
    ERMINER_CHECK(xm_cols[i + 1] == parent.xm_cols_[i]);
  }
  ERMINER_CHECK(new_col >= 0 &&
                static_cast<size_t>(new_col) < master.num_cols());

  GroupIndex idx;
  idx.xm_cols_ = xm_cols;
  idx.refined_pos_ = static_cast<int>(pos);
  const ValueCode* ncol = master.column(static_cast<size_t>(new_col)).data();
  const ValueCode* ycol = master.column(static_cast<size_t>(ym_col)).data();

  // Phase 1 (parallel discovery): split each parent group's row list on
  // the new column. Chunks are sized by rows rather than groups — dispatch
  // and per-chunk state are a fixed tax, so a chunk targets ~8k rows.
  // Parent rows already passed the Y_m and parent-key NULL filters; only
  // the new column can reject here.
  const size_t num_parents = parent.num_groups();
  constexpr size_t kRefineRowsPerChunk = 8192;
  const size_t grain = std::max<size_t>(
      1, num_parents * kRefineRowsPerChunk /
             std::max<size_t>(parent.row_arena_.size(), 1));
  std::vector<RefineChunk> chunks = GlobalPool().ParallelReduce(
      0, num_parents, grain, std::vector<RefineChunk>{},
      [&](size_t gb, size_t ge) {
        RefineChunk res;
        res.gb = gb;
        res.ge = ge;
        // Parent row lists are contiguous in the parent arena, so the
        // chunk's row span is two pointer reads.
        const uint32_t* span_b = parent.rows_of(gb).first;
        const uint32_t* span_e = parent.rows_of(ge - 1).second;
        res.row_child.assign(static_cast<size_t>(span_e - span_b), -1);
        res.uniform_child.assign(ge - gb, -1);
        // value code -> child of current parent; sized to the column's
        // domain once so the per-row loop carries no bounds check.
        std::vector<int32_t> slot(
            master.domain(static_cast<size_t>(new_col))->size(), -1);
        std::vector<ValueCode> touched;
        res.child_begin.reserve(ge - gb + 1);
        for (size_t pg = gb; pg < ge; ++pg) {
          res.child_begin.push_back(static_cast<uint32_t>(res.children.size()));
          auto [rb, re] = parent.rows_of(pg);
          // Fast path: if the new column is constant (and never NULL) over
          // the group, the child IS the parent — same rows, same Y multiset
          // in the same encounter order — so its row list and stats are
          // carried over verbatim by the fill phases below. Deep LHS
          // extensions rarely split anything, which makes this the common
          // case exactly where refinement matters.
          const ValueCode v0 = ncol[*rb];
          bool uniform = v0 != kNullCode;
          for (const uint32_t* rp = rb + 1; uniform && rp < re; ++rp) {
            uniform = ncol[*rp] == v0;
          }
          if (uniform) {
            res.uniform_child[pg - gb] =
                static_cast<int32_t>(res.children.size());
            res.children.push_back({static_cast<uint32_t>(pg), v0, *rb,
                                    static_cast<uint32_t>(re - rb), 0, true});
            continue;
          }
          // Split: discover this parent's children and their exact sizes
          // with a dense value→slot table — O(1) per row, reset via the
          // `touched` undo list so clearing costs O(values seen).
          for (const uint32_t* rp = rb; rp < re; ++rp) {
            if (rp + 8 < re) __builtin_prefetch(ncol + rp[8]);
            const ValueCode v = ncol[*rp];
            if (v == kNullCode) continue;  // row_child stays -1
            int32_t ci = slot[static_cast<size_t>(v)];
            if (ci < 0) {
              ci = static_cast<int32_t>(res.children.size());
              slot[static_cast<size_t>(v)] = ci;
              touched.push_back(v);
              res.children.push_back({static_cast<uint32_t>(pg), v, *rp, 0,
                                      0, false});
            }
            res.row_child[static_cast<size_t>(rp - span_b)] = ci;
            ++res.children[static_cast<size_t>(ci)].size;
          }
          for (ValueCode v : touched) slot[static_cast<size_t>(v)] = -1;
          touched.clear();
        }
        res.child_begin.push_back(static_cast<uint32_t>(res.children.size()));
        std::vector<RefineChunk> out;
        out.push_back(std::move(res));
        return out;
      },
      [](std::vector<RefineChunk>* acc, std::vector<RefineChunk>& part) {
        for (RefineChunk& c : part) acc->push_back(std::move(c));
      });

  // Phase 2 (serial renumber + fill): sort children by minimum member row
  // (the first row of each ascending list) — exactly the first-encounter
  // order a scratch Build over the full table produces, so group ids, and
  // every iteration downstream, are bit-identical to the unrefined path
  // for any thread count. Then fill keys, hashes, derivations, the probe
  // table and the row offsets; arenas are sized exactly and written
  // through raw cursors because with many small groups this loop is
  // child-bound and per-insert capacity checks are a measurable tax.
  struct ChildRef {
    uint32_t first_row;  // sort key, copied out to avoid a pointer chase
    PendingChild* child;
  };
  size_t total_children = 0;
  for (const RefineChunk& cr : chunks) total_children += cr.children.size();
  std::vector<ChildRef> order;
  order.reserve(total_children);
  for (RefineChunk& cr : chunks) {
    for (PendingChild& c : cr.children) order.push_back({c.first_row, &c});
  }
  // Row lists of distinct children are disjoint, so first_row keys are
  // unique; an LSD radix sort puts them in order in O(children) — in the
  // many-small-groups regime a comparison sort's branch misses dominate
  // this whole phase. Passes whose byte is constant (the high bytes, for
  // any table under 16M rows) are detected by their counting pass and
  // skipped.
  std::vector<ChildRef> radix_tmp(order.size());
  ChildRef* src_buf = order.data();
  ChildRef* dst_buf = radix_tmp.data();
  for (int shift = 0; shift < 32; shift += 8) {
    uint32_t buckets[257] = {0};
    for (size_t i = 0; i < order.size(); ++i) {
      ++buckets[((src_buf[i].first_row >> shift) & 0xffu) + 1];
    }
    bool single = false;
    for (size_t b = 1; b < 257 && !single; ++b) {
      single = buckets[b] == order.size();
    }
    if (single) continue;  // order unchanged by this pass
    for (size_t b = 1; b < 257; ++b) buckets[b] += buckets[b - 1];
    for (size_t i = 0; i < order.size(); ++i) {
      dst_buf[buckets[(src_buf[i].first_row >> shift) & 0xffu]++] =
          src_buf[i];
    }
    std::swap(src_buf, dst_buf);
  }
  const ChildRef* sorted = src_buf;

  const size_t num_groups = order.size();
  idx.groups_.resize(num_groups);  // stats filled by phase 3
  idx.hashes_.reserve(num_groups);
  idx.derivations_.reserve(num_groups);
  idx.key_arena_.resize(num_groups * k);
  idx.row_begin_.assign(num_groups + 1, 0);
  idx.InitTable(num_groups);
  ValueCode* kout = idx.key_arena_.data();
  for (size_t gid = 0; gid < num_groups; ++gid) {
    PendingChild& c = *sorted[gid].child;
    c.final_gid = static_cast<uint32_t>(gid);
    const ValueCode* pkey = parent.key_of(c.parent_gid);
    kout = std::copy(pkey, pkey + pos, kout);
    *kout++ = c.value;
    kout = std::copy(pkey + pos, pkey + parent.xm_cols_.size(), kout);
    const uint64_t h =
        parent.hashes_[c.parent_gid] + MixColValue(new_col, c.value);
    idx.hashes_.push_back(h);
    idx.derivations_.push_back({c.parent_gid, c.value});
    idx.InsertSlot(h, static_cast<int32_t>(gid));
    idx.row_begin_[gid + 1] = idx.row_begin_[gid] + c.size;
  }
  idx.row_arena_.resize(idx.row_begin_[num_groups]);

  // Phase 3 (parallel scatter + stats): each chunk writes its children's
  // row lists straight into the final arena — regions are disjoint by
  // construction, rows stay ascending because each parent list is scanned
  // in order — and counts Y candidates in the same pass over the parent
  // rows, so no row is read twice. A parent's children are contiguous in
  // the chunk, which keeps the running counts in a dense (child, value)
  // table of per-parent extent; the table is undo-reset through the list
  // of (child, value) pairs it actually touched, so clearing is O(distinct
  // pairs), not O(table). The running max/argmax updates replicate
  // AddToGroup's exact semantics (counts in first-encounter order, argmax
  // to the first value that exceeds the running max) at O(1) per row.
  // Uniform children block-copy the parent's rows and Group. Every group
  // is produced by exactly one chunk, so the result does not depend on
  // the chunking or the thread count.
  uint32_t* const arena = idx.row_arena_.data();
  const size_t ydom = master.domain(static_cast<size_t>(ym_col))->size();
  GlobalPool().ParallelFor(0, chunks.size(), 1, [&](size_t cb, size_t ce) {
    std::vector<uint32_t> cursor;
    std::vector<int> ycount;      // (rel child, Y code) -> running count
    std::vector<int> ymax;        // per rel child: running max count...
    std::vector<ValueCode> yarg;  // ...and the first value to exceed it
    std::vector<std::pair<uint32_t, ValueCode>> seen;  // 0->1 transitions
    std::vector<uint32_t> voff;   // bucketing offsets, one per rel child
    std::vector<ValueCode> vals;  // bucketed first-encounter values
    for (size_t ck = cb; ck < ce; ++ck) {
      RefineChunk& cr = chunks[ck];
      cursor.resize(cr.children.size());
      for (size_t ci = 0; ci < cr.children.size(); ++ci) {
        cursor[ci] = idx.row_begin_[cr.children[ci].final_gid];
      }
      const uint32_t* span_b = parent.rows_of(cr.gb).first;
      for (size_t pg = cr.gb; pg < cr.ge; ++pg) {
        auto [rb, re] = parent.rows_of(pg);
        const int32_t uci = cr.uniform_child[pg - cr.gb];
        if (uci >= 0) {
          std::copy(rb, re, arena + cursor[static_cast<size_t>(uci)]);
          idx.groups_[cr.children[static_cast<size_t>(uci)].final_gid] =
              parent.groups_[pg];
          continue;
        }
        const uint32_t c0 = cr.child_begin[pg - cr.gb];
        const uint32_t c1 = cr.child_begin[pg - cr.gb + 1];
        const size_t ncp = c1 - c0;
        if (ycount.size() < ncp * ydom) ycount.resize(ncp * ydom, 0);
        ymax.assign(ncp, 0);
        yarg.assign(ncp, kNullCode);
        seen.clear();
        for (const uint32_t* rp = rb; rp < re; ++rp) {
          if (rp + 8 < re) __builtin_prefetch(ycol + rp[8]);
          const int32_t ci = cr.row_child[static_cast<size_t>(rp - span_b)];
          if (ci < 0) continue;
          arena[cursor[static_cast<size_t>(ci)]++] = *rp;
          const uint32_t rc = static_cast<uint32_t>(ci) - c0;
          const ValueCode yv = ycol[*rp];
          const int cnt = ++ycount[rc * ydom + static_cast<size_t>(yv)];
          if (cnt == 1) seen.emplace_back(rc, yv);
          if (cnt > ymax[rc]) {
            ymax[rc] = cnt;
            yarg[rc] = yv;
          }
        }
        // Bucket the first-encounter pairs by child — a stable counting
        // sort, so each child sees its Y values in encounter order, which
        // is the order a scratch build inserts them in.
        voff.assign(ncp + 1, 0);
        for (const auto& [rc, yv] : seen) ++voff[rc + 1];
        for (size_t rc = 0; rc < ncp; ++rc) voff[rc + 1] += voff[rc];
        vals.resize(seen.size());
        for (const auto& [rc, yv] : seen) vals[voff[rc]++] = yv;
        // voff[rc] is now the END of child rc's slice; its begin is the
        // previous child's end (0 for the first).
        for (uint32_t ci = c0; ci < c1; ++ci) {
          const PendingChild& c = cr.children[ci];
          const uint32_t rc = ci - c0;
          Group& g = idx.groups_[c.final_gid];
          g.total = static_cast<int>(c.size);
          g.max_count = ymax[rc];
          g.argmax = yarg[rc];
          const uint32_t vb = rc == 0 ? 0 : voff[rc - 1];
          g.counts.reserve(voff[rc] - vb);
          for (uint32_t vi = vb; vi < voff[rc]; ++vi) {
            g.counts.emplace_back(
                vals[vi], ycount[rc * ydom + static_cast<size_t>(vals[vi])]);
          }
        }
        for (const auto& [rc, yv] : seen) {
          ycount[rc * ydom + static_cast<size_t>(yv)] = 0;
        }
      }
    }
  });
  ERMINER_COUNT("group_index/groups_built", num_groups);
  return idx;
}

const Group* GroupIndex::Find(const std::vector<ValueCode>& key) const {
  ERMINER_CHECK(key.size() == xm_cols_.size());
  if (groups_.empty()) return nullptr;
  uint64_t h = kSeedHash;
  for (size_t i = 0; i < key.size(); ++i) {
    h += MixColValue(xm_cols_[i], key[i]);
  }
  const int32_t gid = Lookup(h, key.data());
  return gid < 0 ? nullptr : &groups_[static_cast<size_t>(gid)];
}

}  // namespace erminer
