// EvalCache: per-LHS evaluation columns, the subspace-search substrate of
// Alg. 4 (lines 9-10).
//
// A rule's measures depend on the pattern only through which input rows are
// covered; everything master-side depends only on the LHS pairs (X, X_m).
// For each distinct LHS the cache materializes, once:
//   - the GroupIndex of the master relation on X_m, and
//   - an EvalColumn mapping every input row to its master group (or null),
// after which evaluating any rule over that LHS is a linear pass over its
// pattern cover. Entries are evicted LRU beyond a budget so EnuMiner's full
// lattice cannot exhaust memory.
//
// Every miner extends an LHS one attribute pair at a time, so most misses
// are for a child of an entry that is already resident. Callers pass that
// parent as a refinement hint: the child is then derived by splitting each
// parent group on the one new column (GroupIndex::BuildRefined) and by
// narrowing the parent's EvalColumn, instead of re-scanning the full tables.
// Refined entries are bit-identical to scratch builds — group order, counts,
// argmax and EvalColumn included (docs/perf.md) — so refinement is purely a
// performance lever, with `set_refine_enabled(false)` as the escape hatch.

#ifndef ERMINER_INDEX_EVAL_CACHE_H_
#define ERMINER_INDEX_EVAL_CACHE_H_

#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/corpus.h"
#include "index/group_index.h"
#include "util/hash.h"

namespace erminer {

/// The LHS of an eR: matched attribute pairs, kept sorted by (input, master)
/// column index.
using LhsPairs = std::vector<std::pair<int, int>>;

/// Canonical hashable key of an LHS.
std::vector<int32_t> LhsKeyOf(const LhsPairs& lhs);

/// Per-input-row master lookup results for one LHS.
struct EvalColumn {
  /// group[r]: the master group matching input row r's X values, or nullptr
  /// if no master tuple matches (f_s = 0) or the row has a NULL X value.
  std::vector<const Group*> group;
};

class EvalCache {
 public:
  /// `capacity`: maximum number of LHS entries kept resident.
  explicit EvalCache(const Corpus* corpus, size_t capacity = 256);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// The (index, column) pair for an LHS; built on first use. The returned
  /// shared_ptrs keep the entry alive even if the cache evicts it, and
  /// EvalColumn's Group pointers point into the paired GroupIndex.
  struct Entry {
    std::shared_ptr<GroupIndex> index;
    std::shared_ptr<EvalColumn> column;
  };
  /// Thread-safe. `parent_hint`, if non-null, names an LHS that is `lhs`
  /// minus exactly one pair; when that parent is resident, a miss is served
  /// by partition refinement instead of a scratch build. A stale or invalid
  /// hint silently falls back to the scratch path, and both paths produce
  /// bit-identical entries.
  ///
  /// Concurrency: the mutex covers only lookup, LRU motion and in-flight
  /// bookkeeping; builds run outside it, so misses on *different* LHSs
  /// build in parallel. A per-key in-flight record keeps single-build-per-
  /// key semantics — concurrent misses on the same LHS wait on the one
  /// build. Entries are immutable once built (values never depend on which
  /// thread built them); only the LRU *eviction order* — a performance
  /// detail — depends on request interleaving.
  Entry Get(const LhsPairs& lhs, const LhsPairs* parent_hint = nullptr);

  /// Batched Get for a sibling group: one entry per element of `lhs_keys`
  /// (typically every admitted child of one lattice node), sharing a single
  /// `parent_hint`. Hits and duplicate keys are resolved in one pass under
  /// one lock acquisition, and all missing entries build under a single
  /// thread-pool submission — instead of a lock/claim/build round-trip per
  /// child. Each entry is bit-identical to what per-key Get would return;
  /// only lock traffic and build scheduling differ ("eval_cache/batched"
  /// counts keys served through this path). Keys whose build another
  /// thread already has in flight fall back to Get (waiting on that
  /// build), preserving single-build-per-key semantics.
  std::vector<Entry> GetBatch(const LhsPairs* parent_hint,
                              const std::vector<const LhsPairs*>& lhs_keys);

  /// Toggles the refinement path (`--no-refine`); scratch builds are used
  /// for every miss while disabled. Safe to call at any time.
  void set_refine_enabled(bool enabled);
  bool refine_enabled() const;

  size_t num_built() const;
  const Corpus& corpus() const { return *corpus_; }

 private:
  /// One build in progress; waiters block on cv_ until `done`.
  struct InFlight {
    bool done = false;
  };

  Entry BuildScratch(const LhsPairs& lhs) const;
  Entry BuildRefinedEntry(const LhsPairs& lhs, size_t new_pos,
                          const Entry& parent) const;

  const Corpus* corpus_;
  size_t capacity_;
  size_t num_built_ = 0;
  bool refine_enabled_ = true;

  using Key = std::vector<int32_t>;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::list<Key> lru_;
  struct Slot {
    Entry entry;
    std::list<Key>::iterator lru_it;
  };
  std::unordered_map<Key, Slot, VectorHash> cache_;
  std::unordered_map<Key, std::shared_ptr<InFlight>, VectorHash> inflight_;
};

}  // namespace erminer

#endif  // ERMINER_INDEX_EVAL_CACHE_H_
