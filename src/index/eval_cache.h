// EvalCache: per-LHS evaluation columns, the subspace-search substrate of
// Alg. 4 (lines 9-10).
//
// A rule's measures depend on the pattern only through which input rows are
// covered; everything master-side depends only on the LHS pairs (X, X_m).
// For each distinct LHS the cache materializes, once:
//   - the GroupIndex of the master relation on X_m, and
//   - an EvalColumn mapping every input row to its master group (or null),
// after which evaluating any rule over that LHS is a linear pass over its
// pattern cover. Entries are evicted LRU beyond a budget so EnuMiner's full
// lattice cannot exhaust memory.

#ifndef ERMINER_INDEX_EVAL_CACHE_H_
#define ERMINER_INDEX_EVAL_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/corpus.h"
#include "index/group_index.h"
#include "util/hash.h"

namespace erminer {

/// The LHS of an eR: matched attribute pairs, kept sorted by (input, master)
/// column index.
using LhsPairs = std::vector<std::pair<int, int>>;

/// Canonical hashable key of an LHS.
std::vector<int32_t> LhsKeyOf(const LhsPairs& lhs);

/// Per-input-row master lookup results for one LHS.
struct EvalColumn {
  /// group[r]: the master group matching input row r's X values, or nullptr
  /// if no master tuple matches (f_s = 0) or the row has a NULL X value.
  std::vector<const Group*> group;
};

class EvalCache {
 public:
  /// `capacity`: maximum number of LHS entries kept resident.
  explicit EvalCache(const Corpus* corpus, size_t capacity = 256);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// The (index, column) pair for an LHS; built on first use. The returned
  /// shared_ptrs keep the entry alive even if the cache evicts it, and
  /// EvalColumn's Group pointers point into the paired GroupIndex.
  struct Entry {
    std::shared_ptr<GroupIndex> index;
    std::shared_ptr<EvalColumn> column;
  };
  /// Thread-safe: a single mutex serializes lookup, build and LRU motion,
  /// so concurrent miner threads may share one cache. Entries are immutable
  /// once built (values never depend on which thread built them); only the
  /// LRU *eviction order* — a performance detail — depends on request
  /// interleaving. The probe scan inside a build is itself parallelized
  /// over input rows.
  Entry Get(const LhsPairs& lhs);

  size_t num_built() const;
  const Corpus& corpus() const { return *corpus_; }

 private:
  const Corpus* corpus_;
  size_t capacity_;
  size_t num_built_ = 0;

  using Key = std::vector<int32_t>;
  mutable std::mutex mutex_;
  std::list<Key> lru_;
  struct Slot {
    Entry entry;
    std::list<Key>::iterator lru_it;
  };
  std::unordered_map<Key, Slot, VectorHash> cache_;
};

}  // namespace erminer

#endif  // ERMINER_INDEX_EVAL_CACHE_H_
