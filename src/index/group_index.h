// GroupIndex: the master-side lookup structure behind all rule measures.
//
// For a fixed list of master attributes X_m and the target Y_m, the index
// groups master tuples by their X_m code vector. Each group stores the
// multiset of Y_m candidate fixes (Cand in Eq. 2) with its total, maximum
// count and argmax precomputed, so evaluating f_s / f_c / kappa for an input
// tuple is a single hash probe.
//
// Storage layout (docs/perf.md): groups live in a flat vector in
// first-encounter order (ascending master row); their keys and member row
// ids live in contiguous arenas; probes go through an open-addressed table
// keyed by a mixed 64-bit hash, with a full-key compare only when two
// distinct keys collide on the same slot. Because the per-(column, value)
// mixes are combined additively, the hash of a child key X_m ∪ {B_m} is the
// parent's hash plus one mix — the property BuildRefined exploits to derive
// a child index from its parent by splitting each parent group on the one
// new column instead of re-scanning the master table.

#ifndef ERMINER_INDEX_GROUP_INDEX_H_
#define ERMINER_INDEX_GROUP_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/table.h"
#include "util/hash.h"

namespace erminer {

/// The candidate-fix statistics of one master group.
struct Group {
  /// Distinct Y_m candidates with their counts, insertion order.
  std::vector<std::pair<ValueCode, int>> counts;
  int total = 0;
  int max_count = 0;
  ValueCode argmax = kNullCode;

  /// f_c of any covered tuple probing this group (Eq. 2).
  double Certainty() const {
    return total > 0 ? static_cast<double>(max_count) / total : 0.0;
  }
};

class GroupIndex {
 public:
  /// Builds the index over `master` projected on `xm_cols` with candidate
  /// column `ym_col`. Master rows with a NULL in the key or in Y_m are
  /// skipped. An empty `xm_cols` produces a single group over all rows
  /// (the empty-LHS rule's semantics).
  static GroupIndex Build(const Table& master, const std::vector<int>& xm_cols,
                          int ym_col);

  /// Derives the index for `xm_cols` from `parent`, whose xm_cols() must be
  /// `xm_cols` minus exactly one column: each parent group's row list is
  /// split on the new column (parallel over parent groups), then groups are
  /// renumbered by their minimum row id — which makes the result, group
  /// order included, bit-identical to Build() from scratch for any thread
  /// count.
  static GroupIndex BuildRefined(const Table& master, const GroupIndex& parent,
                                 const std::vector<int>& xm_cols, int ym_col);

  /// The group for a key (aligned with xm_cols()), or nullptr. Pointers
  /// remain valid for the life of the index.
  const Group* Find(const std::vector<ValueCode>& key) const;

  size_t num_groups() const { return groups_.size(); }
  const std::vector<int>& xm_cols() const { return xm_cols_; }

  /// Iteration support: groups are indexed 0..num_groups() in
  /// first-encounter (ascending master row) order.
  const Group& group(size_t gid) const { return groups_[gid]; }
  /// The key of group `gid`: xm_cols().size() codes aligned with xm_cols().
  const ValueCode* key_of(size_t gid) const {
    return key_arena_.data() + gid * xm_cols_.size();
  }
  /// Member master rows of group `gid`, ascending.
  std::pair<const uint32_t*, const uint32_t*> rows_of(size_t gid) const {
    return {row_arena_.data() + row_begin_[gid],
            row_arena_.data() + row_begin_[gid + 1]};
  }
  /// Index of a Group pointer obtained from this index.
  size_t IdOf(const Group* g) const {
    return static_cast<size_t>(g - groups_.data());
  }

  /// How group `gid` was derived, for indexes built by BuildRefined: the
  /// parent group it was split from and the new column's value. Empty for
  /// scratch builds.
  struct Derivation {
    uint32_t parent_gid = 0;
    ValueCode value = kNullCode;
  };
  const std::vector<Derivation>& derivations() const { return derivations_; }

  /// The position in xm_cols() of the column this index added over its
  /// parent (refined builds only; -1 for scratch builds).
  int refined_pos() const { return refined_pos_; }

  /// Mixes one (master column, value) pair into a 64-bit lane. Key hashes
  /// are sums of these mixes, so they are incremental under column
  /// insertion; collisions are resolved by full-key compare.
  static uint64_t MixColValue(int col, ValueCode v);

 private:
  /// Offset of kSeedHash and the open-addressing helpers live in the .cc.
  int32_t Lookup(uint64_t hash, const ValueCode* key) const;
  void InsertSlot(uint64_t hash, int32_t gid);
  void InitTable(size_t expected_groups);

  std::vector<int> xm_cols_;
  std::vector<Group> groups_;            // first-encounter order
  std::vector<uint64_t> hashes_;         // per-group 64-bit key hash
  std::vector<ValueCode> key_arena_;     // num_groups * xm_cols_.size()
  std::vector<uint32_t> row_arena_;      // usable rows, grouped, ascending
  std::vector<uint32_t> row_begin_;      // num_groups + 1 prefix offsets
  std::vector<int32_t> table_;           // open addressing; -1 = empty
  uint64_t table_mask_ = 0;
  std::vector<Derivation> derivations_;  // refined builds only
  int refined_pos_ = -1;
};

}  // namespace erminer

#endif  // ERMINER_INDEX_GROUP_INDEX_H_
