// GroupIndex: the master-side lookup structure behind all rule measures.
//
// For a fixed list of master attributes X_m and the target Y_m, the index
// groups master tuples by their X_m code vector. Each group stores the
// multiset of Y_m candidate fixes (Cand in Eq. 2) with its total, maximum
// count and argmax precomputed, so evaluating f_s / f_c / kappa for an input
// tuple is a single hash probe.

#ifndef ERMINER_INDEX_GROUP_INDEX_H_
#define ERMINER_INDEX_GROUP_INDEX_H_

#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "util/hash.h"

namespace erminer {

/// The candidate-fix statistics of one master group.
struct Group {
  /// Distinct Y_m candidates with their counts, insertion order.
  std::vector<std::pair<ValueCode, int>> counts;
  int total = 0;
  int max_count = 0;
  ValueCode argmax = kNullCode;

  /// f_c of any covered tuple probing this group (Eq. 2).
  double Certainty() const {
    return total > 0 ? static_cast<double>(max_count) / total : 0.0;
  }
};

class GroupIndex {
 public:
  /// Builds the index over `master` projected on `xm_cols` with candidate
  /// column `ym_col`. Master rows with a NULL in the key or in Y_m are
  /// skipped. An empty `xm_cols` produces a single group over all rows
  /// (the empty-LHS rule's semantics).
  static GroupIndex Build(const Table& master, const std::vector<int>& xm_cols,
                          int ym_col);

  /// The group for a key, or nullptr. Pointers remain valid for the life of
  /// the index.
  const Group* Find(const std::vector<ValueCode>& key) const;

  size_t num_groups() const { return groups_.size(); }
  const std::vector<int>& xm_cols() const { return xm_cols_; }

  /// Iteration support (used by the CFD miner).
  const std::unordered_map<std::vector<ValueCode>, Group, VectorHash>& groups()
      const {
    return groups_;
  }

 private:
  std::vector<int> xm_cols_;
  std::unordered_map<std::vector<ValueCode>, Group, VectorHash> groups_;
};

}  // namespace erminer

#endif  // ERMINER_INDEX_GROUP_INDEX_H_
