#include "index/eval_cache.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace erminer {

std::vector<int32_t> LhsKeyOf(const LhsPairs& lhs) {
  std::vector<int32_t> key;
  key.reserve(lhs.size() * 2);
  for (const auto& [a, am] : lhs) {
    key.push_back(a);
    key.push_back(am);
  }
  return key;
}

EvalCache::EvalCache(const Corpus* corpus, size_t capacity)
    : corpus_(corpus), capacity_(std::max<size_t>(capacity, 2)) {
  ERMINER_CHECK(corpus_ != nullptr);
}

size_t EvalCache::num_built() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return num_built_;
}

EvalCache::Entry EvalCache::Get(const LhsPairs& lhs) {
  ERMINER_CHECK(std::is_sorted(lhs.begin(), lhs.end()));
  Key key = LhsKeyOf(lhs);
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.entry;
  }

  // Build the master index and the input-side column. The lock is held
  // across the build so one LHS is never built twice; the scans below are
  // themselves parallel (a worker-thread caller runs them inline).
  std::vector<int> x_cols, xm_cols;
  x_cols.reserve(lhs.size());
  xm_cols.reserve(lhs.size());
  for (const auto& [a, am] : lhs) {
    x_cols.push_back(a);
    xm_cols.push_back(am);
  }
  auto index = std::make_shared<GroupIndex>(
      GroupIndex::Build(corpus_->master(), xm_cols, corpus_->y_master()));
  auto column = std::make_shared<EvalColumn>();
  const Table& input = corpus_->input();
  column->group.assign(input.num_rows(), nullptr);
  std::vector<const Group*>& out = column->group;
  const GroupIndex& idx = *index;
  GlobalPool().ParallelFor(
      0, input.num_rows(), kDefaultGrain, [&](size_t rb, size_t re) {
        std::vector<ValueCode> probe(x_cols.size());
        for (size_t r = rb; r < re; ++r) {
          bool null_key = false;
          for (size_t i = 0; i < x_cols.size(); ++i) {
            probe[i] = input.at(r, static_cast<size_t>(x_cols[i]));
            if (probe[i] == kNullCode) {
              null_key = true;
              break;
            }
          }
          if (!null_key) out[r] = idx.Find(probe);
        }
      });
  ++num_built_;

  if (cache_.size() >= capacity_) {
    const Key& victim = lru_.back();
    cache_.erase(victim);
    lru_.pop_back();
  }
  lru_.push_front(key);
  Slot slot{Entry{std::move(index), std::move(column)}, lru_.begin()};
  auto [pos, inserted] = cache_.emplace(std::move(key), std::move(slot));
  ERMINER_CHECK(inserted);
  return pos->second.entry;
}

}  // namespace erminer
