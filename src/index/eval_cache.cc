#include "index/eval_cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace erminer {

std::vector<int32_t> LhsKeyOf(const LhsPairs& lhs) {
  std::vector<int32_t> key;
  key.reserve(lhs.size() * 2);
  for (const auto& [a, am] : lhs) {
    key.push_back(a);
    key.push_back(am);
  }
  return key;
}

EvalCache::EvalCache(const Corpus* corpus, size_t capacity)
    : corpus_(corpus), capacity_(std::max<size_t>(capacity, 2)) {
  ERMINER_CHECK(corpus_ != nullptr);
}

size_t EvalCache::num_built() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return num_built_;
}

EvalCache::Entry EvalCache::Get(const LhsPairs& lhs) {
  ERMINER_CHECK(std::is_sorted(lhs.begin(), lhs.end()));
  Key key = LhsKeyOf(lhs);
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ERMINER_COUNT("eval_cache/hits", 1);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.entry;
  }
  ERMINER_COUNT("eval_cache/misses", 1);
  ERMINER_SPAN("eval_cache/build");

  // Build the master index and the input-side column. The lock is held
  // across the build so one LHS is never built twice; the scans below are
  // themselves parallel (a worker-thread caller runs them inline).
  std::vector<int> x_cols, xm_cols;
  x_cols.reserve(lhs.size());
  xm_cols.reserve(lhs.size());
  for (const auto& [a, am] : lhs) {
    x_cols.push_back(a);
    xm_cols.push_back(am);
  }
  auto index = std::make_shared<GroupIndex>(
      GroupIndex::Build(corpus_->master(), xm_cols, corpus_->y_master()));
  auto column = std::make_shared<EvalColumn>();
  const Table& input = corpus_->input();
  column->group.assign(input.num_rows(), nullptr);
  std::vector<const Group*>& out = column->group;
  const GroupIndex& idx = *index;
  GlobalPool().ParallelFor(
      0, input.num_rows(), kDefaultGrain, [&](size_t rb, size_t re) {
        std::vector<ValueCode> probe(x_cols.size());
        // Probe outcomes are tallied per chunk and published once, so the
        // per-row cost stays a plain increment.
        uint64_t probes = 0, probe_hits = 0;
        for (size_t r = rb; r < re; ++r) {
          bool null_key = false;
          for (size_t i = 0; i < x_cols.size(); ++i) {
            probe[i] = input.at(r, static_cast<size_t>(x_cols[i]));
            if (probe[i] == kNullCode) {
              null_key = true;
              break;
            }
          }
          if (!null_key) {
            out[r] = idx.Find(probe);
            ++probes;
            if (out[r] != nullptr) ++probe_hits;
          }
        }
        ERMINER_COUNT("eval_cache/probes", probes);
        ERMINER_COUNT("eval_cache/probe_hits", probe_hits);
      });
  ++num_built_;

  if (cache_.size() >= capacity_) {
    ERMINER_COUNT("eval_cache/evictions", 1);
    const Key& victim = lru_.back();
    cache_.erase(victim);
    lru_.pop_back();
  }
  lru_.push_front(key);
  Slot slot{Entry{std::move(index), std::move(column)}, lru_.begin()};
  auto [pos, inserted] = cache_.emplace(std::move(key), std::move(slot));
  ERMINER_CHECK(inserted);
  return pos->second.entry;
}

}  // namespace erminer
