#include "index/eval_cache.h"

#include <algorithm>
#include <exception>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace erminer {

namespace {

/// If `parent` is `lhs` minus exactly one pair, returns true and sets
/// `*new_pos` to that pair's position in `lhs`. Both must be sorted.
bool IsParentOf(const LhsPairs& parent, const LhsPairs& lhs, size_t* new_pos) {
  if (parent.size() + 1 != lhs.size()) return false;
  size_t pos = lhs.size();
  size_t pi = 0;
  for (size_t ci = 0; ci < lhs.size(); ++ci) {
    if (pi < parent.size() && parent[pi] == lhs[ci]) {
      ++pi;
    } else if (pos == lhs.size()) {
      pos = ci;
    } else {
      return false;
    }
  }
  if (pi != parent.size() || pos == lhs.size()) return false;
  *new_pos = pos;
  return true;
}

}  // namespace

std::vector<int32_t> LhsKeyOf(const LhsPairs& lhs) {
  std::vector<int32_t> key;
  key.reserve(lhs.size() * 2);
  for (const auto& [a, am] : lhs) {
    key.push_back(a);
    key.push_back(am);
  }
  return key;
}

EvalCache::EvalCache(const Corpus* corpus, size_t capacity)
    : corpus_(corpus), capacity_(std::max<size_t>(capacity, 2)) {
  ERMINER_CHECK(corpus_ != nullptr);
}

size_t EvalCache::num_built() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return num_built_;
}

void EvalCache::set_refine_enabled(bool enabled) {
  std::lock_guard<std::mutex> lk(mutex_);
  refine_enabled_ = enabled;
}

bool EvalCache::refine_enabled() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return refine_enabled_;
}

EvalCache::Entry EvalCache::Get(const LhsPairs& lhs,
                                const LhsPairs* parent_hint) {
  ERMINER_CHECK(std::is_sorted(lhs.begin(), lhs.end()));
  Key key = LhsKeyOf(lhs);
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ERMINER_COUNT("eval_cache/hits", 1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.entry;
    }
    auto inf = inflight_.find(key);
    if (inf == inflight_.end()) break;
    // Another thread is building this LHS right now: wait for it, then
    // re-check the cache (the builder inserts before marking done).
    std::shared_ptr<InFlight> rec = inf->second;
    cv_.wait(lk, [&] { return rec->done; });
  }
  ERMINER_COUNT("eval_cache/misses", 1);

  // Resolve the refinement hint while still under the lock: the parent must
  // be resident (we copy its shared_ptrs so eviction cannot invalidate it)
  // and must really be `lhs` minus one pair — anything else falls back to a
  // scratch build.
  Entry parent;
  size_t new_pos = 0;
  bool refine = false;
  if (refine_enabled_ && parent_hint != nullptr &&
      IsParentOf(*parent_hint, lhs, &new_pos)) {
    auto pit = cache_.find(LhsKeyOf(*parent_hint));
    if (pit != cache_.end()) {
      parent = pit->second.entry;
      refine = true;
    }
  }

  auto rec = std::make_shared<InFlight>();
  inflight_.emplace(key, rec);
  lk.unlock();

  // The build runs unlocked, so concurrent misses on different LHSs
  // proceed in parallel; the in-flight record above keeps this key
  // single-build. The scans inside are themselves parallel (a worker-thread
  // caller runs them inline).
  Entry built;
  try {
    built = refine ? BuildRefinedEntry(lhs, new_pos, parent)
                   : BuildScratch(lhs);
  } catch (...) {
    lk.lock();
    inflight_.erase(key);
    rec->done = true;
    cv_.notify_all();
    throw;
  }

  lk.lock();
  ++num_built_;
  if (cache_.find(key) == cache_.end()) {
    if (cache_.size() >= capacity_) {
      ERMINER_COUNT("eval_cache/evictions", 1);
      const Key& victim = lru_.back();
      cache_.erase(victim);
      lru_.pop_back();
    }
    lru_.push_front(key);
    cache_.emplace(key, Slot{built, lru_.begin()});
  }
  inflight_.erase(key);
  rec->done = true;
  cv_.notify_all();
  return built;
}

std::vector<EvalCache::Entry> EvalCache::GetBatch(
    const LhsPairs* parent_hint,
    const std::vector<const LhsPairs*>& lhs_keys) {
  ERMINER_COUNT("eval_cache/batched", lhs_keys.size());
  std::vector<Entry> out(lhs_keys.size());

  /// One miss this batch claimed: built in phase 2, published in phase 3.
  struct Plan {
    Key key;
    size_t first_index;  // the batch position that claimed the key
    bool refine = false;
    Entry parent;
    size_t new_pos = 0;
    std::shared_ptr<InFlight> rec;
    Entry built;
    std::exception_ptr error;
  };
  std::vector<Plan> plans;
  std::vector<std::pair<size_t, size_t>> aliases;  // (index, plan index)
  std::vector<size_t> foreign;  // keys another thread is already building

  // Phase 1 — one pass under one lock: hits resolve immediately (with the
  // same counter and LRU motion as Get), duplicate keys within the batch
  // alias the first claim, and every remaining miss claims its in-flight
  // record with the refinement hint resolved while the parent is pinned.
  {
    std::unique_lock<std::mutex> lk(mutex_);
    std::unordered_map<Key, size_t, VectorHash> claimed;
    for (size_t i = 0; i < lhs_keys.size(); ++i) {
      const LhsPairs& lhs = *lhs_keys[i];
      ERMINER_CHECK(std::is_sorted(lhs.begin(), lhs.end()));
      Key key = LhsKeyOf(lhs);
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ERMINER_COUNT("eval_cache/hits", 1);
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        out[i] = it->second.entry;
        continue;
      }
      auto cl = claimed.find(key);
      if (cl != claimed.end()) {
        aliases.emplace_back(i, cl->second);
        continue;
      }
      if (inflight_.find(key) != inflight_.end()) {
        foreign.push_back(i);
        continue;
      }
      ERMINER_COUNT("eval_cache/misses", 1);
      Plan plan;
      plan.first_index = i;
      if (refine_enabled_ && parent_hint != nullptr &&
          IsParentOf(*parent_hint, lhs, &plan.new_pos)) {
        auto pit = cache_.find(LhsKeyOf(*parent_hint));
        if (pit != cache_.end()) {
          plan.parent = pit->second.entry;
          plan.refine = true;
        }
      }
      plan.rec = std::make_shared<InFlight>();
      inflight_.emplace(key, plan.rec);
      claimed.emplace(key, plans.size());
      plan.key = std::move(key);
      plans.push_back(std::move(plan));
    }
  }

  // Phase 2 — all claimed builds under one pool submission. Each build's
  // internal scans run inline in their worker, so the batch parallelizes
  // across siblings instead of across one sibling's rows at a time.
  GlobalPool().ParallelFor(0, plans.size(), 1, [&](size_t b, size_t e) {
    for (size_t p = b; p < e; ++p) {
      Plan& plan = plans[p];
      try {
        plan.built = plan.refine
                         ? BuildRefinedEntry(*lhs_keys[plan.first_index],
                                             plan.new_pos, plan.parent)
                         : BuildScratch(*lhs_keys[plan.first_index]);
      } catch (...) {
        plan.error = std::current_exception();
      }
    }
  });

  // Phase 3 — publish every build under one lock, then wake waiters.
  std::exception_ptr first_error;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    for (Plan& plan : plans) {
      if (plan.error != nullptr) {
        if (first_error == nullptr) first_error = plan.error;
      } else {
        ++num_built_;
        if (cache_.find(plan.key) == cache_.end()) {
          if (cache_.size() >= capacity_) {
            ERMINER_COUNT("eval_cache/evictions", 1);
            const Key& victim = lru_.back();
            cache_.erase(victim);
            lru_.pop_back();
          }
          lru_.push_front(plan.key);
          cache_.emplace(plan.key, Slot{plan.built, lru_.begin()});
        }
        out[plan.first_index] = plan.built;
      }
      inflight_.erase(plan.key);
      plan.rec->done = true;
    }
  }
  cv_.notify_all();
  if (first_error != nullptr) std::rethrow_exception(first_error);

  for (const auto& [i, p] : aliases) out[i] = plans[p].built;
  // Builds owned by other threads: the per-key path waits them out.
  for (size_t i : foreign) out[i] = Get(*lhs_keys[i], parent_hint);
  return out;
}

EvalCache::Entry EvalCache::BuildScratch(const LhsPairs& lhs) const {
  ERMINER_SPAN("eval_cache/build");
  ERMINER_COUNT("eval_cache/scratch", 1);
  std::vector<int> x_cols, xm_cols;
  x_cols.reserve(lhs.size());
  xm_cols.reserve(lhs.size());
  for (const auto& [a, am] : lhs) {
    x_cols.push_back(a);
    xm_cols.push_back(am);
  }
  auto index = std::make_shared<GroupIndex>(
      GroupIndex::Build(corpus_->master(), xm_cols, corpus_->y_master()));
  auto column = std::make_shared<EvalColumn>();
  const Table& input = corpus_->input();
  column->group.assign(input.num_rows(), nullptr);
  std::vector<const Group*>& out = column->group;
  const GroupIndex& idx = *index;
  GlobalPool().ParallelFor(
      0, input.num_rows(), kDefaultGrain, [&](size_t rb, size_t re) {
        // The probe buffer is hoisted out of the row loop and reused; probe
        // outcomes are tallied per chunk and published once, so the per-row
        // cost stays a plain increment.
        std::vector<ValueCode> probe(x_cols.size());
        uint64_t probes = 0, probe_hits = 0;
        for (size_t r = rb; r < re; ++r) {
          bool null_key = false;
          for (size_t i = 0; i < x_cols.size(); ++i) {
            probe[i] = input.at(r, static_cast<size_t>(x_cols[i]));
            if (probe[i] == kNullCode) {
              null_key = true;
              break;
            }
          }
          if (!null_key) {
            out[r] = idx.Find(probe);
            ++probes;
            if (out[r] != nullptr) ++probe_hits;
          }
        }
        ERMINER_COUNT("eval_cache/probes", probes);
        ERMINER_COUNT("eval_cache/probe_hits", probe_hits);
      });
  return Entry{std::move(index), std::move(column)};
}

EvalCache::Entry EvalCache::BuildRefinedEntry(const LhsPairs& lhs,
                                              size_t new_pos,
                                              const Entry& parent) const {
  ERMINER_SPAN("eval_cache/refine");
  ERMINER_COUNT("eval_cache/refined", 1);
  std::vector<int> xm_cols;
  xm_cols.reserve(lhs.size());
  for (const auto& [a, am] : lhs) {
    (void)a;
    xm_cols.push_back(am);
  }
  auto index = std::make_shared<GroupIndex>(GroupIndex::BuildRefined(
      corpus_->master(), *parent.index, xm_cols, corpus_->y_master()));

  // Children are addressable by (parent group, new-column value), so the
  // child EvalColumn follows from the parent's: rows the parent already
  // rejected (NULL key or no master match) stay null, and the rest remap
  // through one hash lookup instead of a full key probe.
  const GroupIndex& idx = *index;
  std::unordered_map<uint64_t, const Group*> by_parent;
  by_parent.reserve(idx.num_groups() * 2);
  const std::vector<GroupIndex::Derivation>& derivs = idx.derivations();
  for (size_t gid = 0; gid < derivs.size(); ++gid) {
    const uint64_t cell = (static_cast<uint64_t>(derivs[gid].parent_gid)
                           << 32) |
                          static_cast<uint32_t>(derivs[gid].value);
    by_parent.emplace(cell, &idx.group(gid));
  }

  auto column = std::make_shared<EvalColumn>();
  const Table& input = corpus_->input();
  column->group.assign(input.num_rows(), nullptr);
  std::vector<const Group*>& out = column->group;
  const GroupIndex& pidx = *parent.index;
  const std::vector<const Group*>& pcol = parent.column->group;
  const int x_new = lhs[new_pos].first;
  GlobalPool().ParallelFor(
      0, input.num_rows(), kDefaultGrain, [&](size_t rb, size_t re) {
        uint64_t probes = 0, probe_hits = 0;
        for (size_t r = rb; r < re; ++r) {
          const Group* pg = pcol[r];
          if (pg == nullptr) continue;
          ValueCode v = input.at(r, static_cast<size_t>(x_new));
          if (v == kNullCode) continue;
          ++probes;
          const uint64_t cell =
              (static_cast<uint64_t>(pidx.IdOf(pg)) << 32) |
              static_cast<uint32_t>(v);
          auto it = by_parent.find(cell);
          if (it != by_parent.end()) {
            out[r] = it->second;
            ++probe_hits;
          }
        }
        ERMINER_COUNT("eval_cache/probes", probes);
        ERMINER_COUNT("eval_cache/probe_hits", probe_hits);
      });
  return Entry{std::move(index), std::move(column)};
}

}  // namespace erminer
