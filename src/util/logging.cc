#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "obs/trace.h"

namespace erminer {

namespace {
LogLevel g_level = LogLevel::kWarning;

// JSON sink state. The FILE* is written once on enable and read by every
// logging thread; leaked on re-enable so in-flight writers never touch a
// closed stream.
std::atomic<bool> g_json{false};
std::atomic<std::FILE*> g_json_file{nullptr};  // null = stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

const char* Basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

/// Small sequential per-thread id — stable within a run and readable, which
/// hashed std::thread::ids are not.
int ThreadId() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string IsoTimestampUtc() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, millis);
  return buf;
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

bool EnableJsonLogSink(const std::string& path) {
  std::FILE* file = nullptr;
  if (!path.empty() && path != "-") {
    file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
  }
  g_json_file.store(file, std::memory_order_release);
  g_json.store(true, std::memory_order_release);
  // Records carry the innermost ERMINER_SPAN; arm the per-thread stack.
  obs::TraceRecorder::Global().EnableSpanStack();
  return true;
}

void DisableJsonLogSink() {
  g_json.store(false, std::memory_order_release);
  // The FILE* is deliberately leaked (see state comment above).
  g_json_file.store(nullptr, std::memory_order_release);
}

bool JsonLogSinkEnabled() { return g_json.load(std::memory_order_acquire); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  // One write per line: concurrent ERMINER_LOG calls from pool workers must
  // not interleave fragments. The full line (newline included) is formatted
  // first and handed to stdio in a single call — stderr is unbuffered, so
  // this reaches the fd as one write.
  std::string line;
  std::FILE* out = stderr;
  if (g_json.load(std::memory_order_acquire)) {
    line = "{\"ts\":\"" + IsoTimestampUtc() + "\"";
    line += ",\"level\":\"";
    line += LevelName(level_);
    line += "\",\"thread\":" + std::to_string(ThreadId());
    if (const char* span = obs::TraceRecorder::CurrentSpanName()) {
      line += ",\"span\":\"";
      AppendJsonEscaped(&line, span);
      line += "\"";
    }
    line += ",\"file\":\"";
    AppendJsonEscaped(&line, Basename(file_));
    line += "\",\"line\":" + std::to_string(line_);
    line += ",\"msg\":\"";
    AppendJsonEscaped(&line, stream_.str());
    line += "\"}\n";
    if (std::FILE* f = g_json_file.load(std::memory_order_acquire)) out = f;
  } else {
    line = "[";
    line += LevelName(level_);
    line += " ";
    line += Basename(file_);
    line += ":" + std::to_string(line_) + "] " + stream_.str() + "\n";
  }
  std::fwrite(line.data(), 1, line.size(), out);
  if (out != stderr) std::fflush(out);
}

}  // namespace internal_logging

}  // namespace erminer
