#include "util/logging.h"

namespace erminer {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() { std::cerr << stream_.str() << std::endl; }

}  // namespace internal_logging

}  // namespace erminer
