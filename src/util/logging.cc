#include "util/logging.h"

#include <cstdio>

namespace erminer {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename for readability.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // One write per line: concurrent ERMINER_LOG calls from pool workers must
  // not interleave fragments. The full line (newline included) is formatted
  // first and handed to stdio in a single call — stderr is unbuffered, so
  // this reaches the fd as one write.
  stream_ << '\n';
  const std::string line = stream_.str();
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal_logging

}  // namespace erminer
