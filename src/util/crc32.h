// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
// guarding checkpoint snapshots (src/ckpt/snapshot.h). Table-driven,
// byte-at-a-time — snapshot payloads are a few MB at most, so simplicity
// beats a sliced implementation here.

#ifndef ERMINER_UTIL_CRC32_H_
#define ERMINER_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace erminer {

/// CRC of `data[0..len)` continuing from `seed` (pass the previous result
/// to checksum data arriving in pieces; 0 starts a fresh stream).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace erminer

#endif  // ERMINER_UTIL_CRC32_H_
