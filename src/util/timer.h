// Wall-clock timer used by the experiment harness.

#ifndef ERMINER_UTIL_TIMER_H_
#define ERMINER_UTIL_TIMER_H_

#include <chrono>

namespace erminer {

/// Starts on construction; Seconds() reports elapsed wall time.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace erminer

#endif  // ERMINER_UTIL_TIMER_H_
