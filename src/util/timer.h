// Wall-clock timer used by the experiment harness, plus process resource
// probes (CPU time and peak RSS) reported next to wall time in BENCH_JSON.

#ifndef ERMINER_UTIL_TIMER_H_
#define ERMINER_UTIL_TIMER_H_

#include <chrono>
#include <cstddef>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace erminer {

/// Starts on construction; Seconds() reports elapsed wall time.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU time (user + system) in seconds since start, via getrusage.
/// Wall time >> CPU time means blocking; CPU time ~ threads x wall time
/// means the pool is actually busy. Returns 0 where getrusage is missing.
inline double CpuSeconds() {
#if defined(__unix__) || defined(__APPLE__)
  rusage u{};
  if (getrusage(RUSAGE_SELF, &u) != 0) return 0.0;
  auto secs = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) +
           static_cast<double>(t.tv_usec) * 1e-6;
  };
  return secs(u.ru_utime) + secs(u.ru_stime);
#else
  return 0.0;
#endif
}

/// Peak resident set size of the process in bytes (0 where unsupported).
inline size_t PeakRssBytes() {
#if defined(__APPLE__)
  rusage u{};
  if (getrusage(RUSAGE_SELF, &u) != 0) return 0;
  return static_cast<size_t>(u.ru_maxrss);  // bytes on macOS
#elif defined(__unix__)
  rusage u{};
  if (getrusage(RUSAGE_SELF, &u) != 0) return 0;
  return static_cast<size_t>(u.ru_maxrss) * 1024;  // kilobytes on Linux
#else
  return 0;
#endif
}

}  // namespace erminer

#endif  // ERMINER_UTIL_TIMER_H_
