// Hash helpers for composite keys (code vectors, attribute sets).

#ifndef ERMINER_UTIL_HASH_H_
#define ERMINER_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace erminer {

/// Mixes a value into a running hash (boost::hash_combine style, 64-bit).
inline void HashCombine(uint64_t* seed, uint64_t v) {
  v *= 0xff51afd7ed558ccdULL;
  v ^= v >> 33;
  *seed ^= v + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Hash of an int32 vector (used for master-index keys and state encodings).
struct VectorHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    uint64_t h = 0x51ed270b3a4c5d6eULL;
    for (int32_t x : v) HashCombine(&h, static_cast<uint64_t>(x) + 1);
    return static_cast<size_t>(h);
  }
};

struct VectorHashU8 {
  size_t operator()(const std::vector<uint8_t>& v) const {
    uint64_t h = 0x3c2a1908f7e6d5c4ULL;
    for (uint8_t x : v) HashCombine(&h, x + 1);
    return static_cast<size_t>(h);
  }
};

}  // namespace erminer

#endif  // ERMINER_UTIL_HASH_H_
