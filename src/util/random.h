// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of erminer (dataset generation, error injection,
// epsilon-greedy exploration, replay sampling, weight init) draw from Rng so
// that every experiment is reproducible from a single seed.

#ifndef ERMINER_UTIL_RANDOM_H_
#define ERMINER_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace erminer {

/// xoshiro256** generator seeded via SplitMix64. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Zipf-distributed value in [0, n) with exponent s (s=0 -> uniform).
  /// Uses an O(n) CDF built lazily per (n, s); intended for modest n.
  size_t NextZipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; stable given call order.
  Rng Fork();

  /// Raw xoshiro256** stream state, for checkpointing (ckpt::SaveRng /
  /// ckpt::LoadRng). The lazy Zipf CDF cache is derived data and is rebuilt
  /// on demand, so restoring the four state words restores the full stream.
  void GetState(uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }
  void SetState(const uint64_t s[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  uint64_t state_[4];

  // Cached Zipf CDF for repeated draws with identical parameters.
  size_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace erminer

#endif  // ERMINER_UTIL_RANDOM_H_
