#include "util/random.h"

#include <cmath>

namespace erminer {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  zipf_n_ = 0;
  zipf_s_ = -1.0;
  zipf_cdf_.clear();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  ERMINER_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  ERMINER_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box-Muller; discards the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    ERMINER_CHECK(w >= 0.0);
    total += w;
  }
  ERMINER_CHECK(total > 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::NextZipf(size_t n, double s) {
  ERMINER_CHECK(n > 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.assign(n, 0.0);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = acc;
    }
    for (auto& v : zipf_cdf_) v /= acc;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  double r = NextDouble();
  // Binary search for the first CDF entry >= r.
  size_t lo = 0, hi = n - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < r) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  ERMINER_CHECK(k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextUint64(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace erminer
