#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace erminer {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

size_t CommonPrefixLen(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1e", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  }
  return buf;
}

}  // namespace erminer
