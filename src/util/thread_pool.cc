#include "util/thread_pool.h"

#include <signal.h>

#include <algorithm>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/config.h"
#include "util/status.h"

namespace erminer {

namespace {

/// True while the current thread is executing a chunk task. Nested
/// ParallelFor calls observe it and run inline instead of re-entering the
/// pool, which keeps nesting deadlock-free (a worker never blocks waiting
/// for tasks only it could run).
thread_local bool t_in_parallel_region = false;

/// Chunks executed process-wide; see PoolProgressCount().
std::atomic<uint64_t> g_pool_progress{0};

}  // namespace

uint64_t PoolProgressCount() {
  return g_pool_progress.load(std::memory_order_relaxed);
}

struct ThreadPool::Batch {
  const std::function<void(size_t, size_t, size_t)>* fn = nullptr;
  size_t begin = 0;
  size_t end = 0;
  size_t grain = 1;
  size_t chunks = 0;
  // `completed`, `error*` and the final notify are all guarded by `mutex`:
  // the last chunk's increment-and-notify is one critical section, so the
  // caller cannot observe completion (and destroy this Batch) while a
  // worker still holds a reference.
  std::mutex mutex;
  std::condition_variable done_cv;
  size_t completed = 0;
  std::exception_ptr error;
  size_t error_chunk = 0;
};

struct ThreadPool::WorkerQueue {
  std::mutex mutex;
  std::deque<Task> tasks;
};

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  const size_t n_workers = num_threads_ - 1;
  queues_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_mutex_);
    stop_.store(true);
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop(size_t id) {
  // Process-directed SIGINT/SIGTERM must run their handlers on the main
  // thread, never on a worker: the flush handlers (obs/flush.h) serialize
  // training state, which is only coherent from the thread that owns it.
  // SIGPROF is deliberately NOT blocked: the sampling profiler
  // (obs/profiler.h) relies on the kernel delivering ITIMER_PROF ticks to
  // whichever thread is burning CPU — masking it here would blind the
  // profiler to the steal loops and chunk bodies it most needs to see.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  obs::TraceRecorder::Global().SetCurrentThreadName("pool-worker-" +
                                                    std::to_string(id));
  while (true) {
    Task task;
    if (TryAcquire(id, &task)) {
      RunTask(task);
      continue;
    }
    ERMINER_COUNT("thread_pool/worker_sleeps", 1);
    std::unique_lock<std::mutex> lk(sleep_mutex_);
    wake_cv_.wait(lk, [this] { return stop_.load() || pending_.load() > 0; });
    if (stop_.load() && pending_.load() == 0) return;
  }
}

bool ThreadPool::TryAcquire(size_t home, Task* task) {
  const size_t n = queues_.size();
  if (n == 0) return false;
  for (size_t i = 0; i < n; ++i) {
    const size_t qi = (home + i) % n;
    WorkerQueue& q = *queues_[qi];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (q.tasks.empty()) continue;
    if (qi == home) {
      *task = q.tasks.front();
      q.tasks.pop_front();
    } else {
      *task = q.tasks.back();  // steal from the victim's cold end
      q.tasks.pop_back();
      ERMINER_COUNT("thread_pool/steals", 1);
    }
    pending_.fetch_sub(1);
    return true;
  }
  return false;
}

void ThreadPool::RunTask(const Task& task) {
  ERMINER_COUNT("thread_pool/tasks", 1);
  g_pool_progress.fetch_add(1, std::memory_order_relaxed);
  Batch* b = task.batch;
  const size_t cb = b->begin + task.chunk * b->grain;
  const size_t ce = std::min(b->end, cb + b->grain);
  const bool prev = t_in_parallel_region;
  t_in_parallel_region = true;
  std::exception_ptr error;
  try {
    (*b->fn)(task.chunk, cb, ce);
  } catch (...) {
    error = std::current_exception();
  }
  t_in_parallel_region = prev;
  {
    std::lock_guard<std::mutex> lk(b->mutex);
    // Keep the lowest-index chunk's exception so even error reporting is
    // deterministic across schedules.
    if (error && (!b->error || task.chunk < b->error_chunk)) {
      b->error = error;
      b->error_chunk = task.chunk;
    }
    b->completed += 1;
    if (b->completed == b->chunks) b->done_cv.notify_all();
  }
}

void ThreadPool::RunBatch(Batch* batch) {
  ERMINER_COUNT("thread_pool/batches", 1);
  // Deal chunks round-robin across the worker deques so every worker has a
  // contiguous-ish share to start from; imbalance is fixed by stealing.
  for (size_t c = 0; c < batch->chunks; ++c) {
    WorkerQueue& q = *queues_[c % queues_.size()];
    std::lock_guard<std::mutex> lk(q.mutex);
    q.tasks.push_back(Task{batch, c});
  }
  {
    // pending_ is published under sleep_mutex_ so a worker cannot check the
    // wake predicate between this update and its block (missed wakeup).
    std::lock_guard<std::mutex> lk(sleep_mutex_);
    pending_.fetch_add(batch->chunks);
  }
  wake_cv_.notify_all();

  // The calling thread participates: drain whatever is still queued (its
  // own batch first, possibly chunks of concurrent batches too), then wait
  // for stragglers running on workers.
  Task task;
  while (TryAcquire(0, &task)) RunTask(task);
  std::unique_lock<std::mutex> lk(batch->mutex);
  batch->done_cv.wait(lk,
                      [&] { return batch->completed == batch->chunks; });
}

void ThreadPool::RunBatchInline(Batch* batch) {
  ERMINER_COUNT("thread_pool/batches_inline", 1);
  for (size_t c = 0; c < batch->chunks; ++c) {
    g_pool_progress.fetch_add(1, std::memory_order_relaxed);
    const size_t cb = batch->begin + c * batch->grain;
    const size_t ce = std::min(batch->end, cb + batch->grain);
    try {
      (*batch->fn)(c, cb, ce);
    } catch (...) {
      batch->error = std::current_exception();
      batch->error_chunk = c;
      break;  // serial semantics: nothing after the throwing chunk runs
    }
  }
}

void ThreadPool::ParallelForChunks(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn) {
  const size_t n = end > begin ? end - begin : 0;
  if (n == 0) return;
  Batch batch;
  batch.fn = &fn;
  batch.begin = begin;
  batch.end = end;
  batch.grain = grain == 0 ? 1 : grain;
  batch.chunks = NumChunksFor(n, grain);
  if (workers_.empty() || t_in_parallel_region || batch.chunks == 1) {
    RunBatchInline(&batch);
  } else {
    RunBatch(&batch);
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  ParallelForChunks(begin, end, grain,
                    [&fn](size_t, size_t b, size_t e) { fn(b, e); });
}

namespace {

std::mutex g_pool_mutex;
long g_threads_setting = 1;
std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool>* slot = new std::unique_ptr<ThreadPool>();
  return *slot;
}

}  // namespace

size_t ResolveThreads(long configured) {
  if (configured == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }
  return static_cast<size_t>(std::max<long>(1, configured));
}

void SetGlobalThreads(long threads) {
  std::unique_ptr<ThreadPool> old;
  {
    std::lock_guard<std::mutex> lk(g_pool_mutex);
    g_threads_setting = threads;
    old = std::move(GlobalPoolSlot());  // join workers outside the lock
  }
}

long GlobalThreadsSetting() {
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  return g_threads_setting;
}

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  auto& slot = GlobalPoolSlot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>(ResolveThreads(g_threads_setting));
  }
  return *slot;
}

void ConfigureThreadsFromConfig(const Config& config) {
  if (config.Has("threads")) {
    SetGlobalThreads(config.GetInt("threads", 1));
  }
}

}  // namespace erminer
