// Minimal leveled logging to stderr.
//
// Usage: ERMINER_LOG(INFO) << "built index with " << n << " groups";
// The global level defaults to WARNING so library code stays quiet in tests
// and benchmarks; binaries raise it via SetLogLevel or the -v flag.
//
// Structured mode (--log-json): EnableJsonLogSink switches the format to
// one JSON object per line —
//   {"ts":"2026-08-05T12:34:56.789Z","level":"INFO","thread":0,
//    "span":"rl/episode","file":"rl_miner.cc","line":93,"msg":"..."}
// where "span" is the innermost active ERMINER_SPAN on the logging thread
// (enabling the sink arms the obs span-name stack), so log records
// correlate with --trace-json spans by name and time.

#ifndef ERMINER_UTIL_LOGGING_H_
#define ERMINER_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace erminer {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Switches log output to JSON lines. `path` empty or "-" keeps writing to
/// stderr; otherwise records go to `path` (truncated). Returns false when
/// the file can't be opened (the text sink stays active). Also arms the
/// obs span-name stack so records carry the innermost active span.
bool EnableJsonLogSink(const std::string& path = "");
/// Back to the plain text sink (closes a JSON file sink if open).
void DisableJsonLogSink();
bool JsonLogSinkEnabled();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define ERMINER_LOG_DEBUG ::erminer::LogLevel::kDebug
#define ERMINER_LOG_INFO ::erminer::LogLevel::kInfo
#define ERMINER_LOG_WARNING ::erminer::LogLevel::kWarning
#define ERMINER_LOG_ERROR ::erminer::LogLevel::kError

#define ERMINER_LOG(severity)                                          \
  if (ERMINER_LOG_##severity < ::erminer::GetLogLevel()) {             \
  } else                                                               \
    ::erminer::internal_logging::LogMessage(ERMINER_LOG_##severity,    \
                                            __FILE__, __LINE__)        \
        .stream()

}  // namespace erminer

#endif  // ERMINER_UTIL_LOGGING_H_
