// Minimal leveled logging to stderr.
//
// Usage: ERMINER_LOG(INFO) << "built index with " << n << " groups";
// The global level defaults to WARNING so library code stays quiet in tests
// and benchmarks; binaries raise it via SetLogLevel or the -v flag.

#ifndef ERMINER_UTIL_LOGGING_H_
#define ERMINER_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace erminer {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define ERMINER_LOG_DEBUG ::erminer::LogLevel::kDebug
#define ERMINER_LOG_INFO ::erminer::LogLevel::kInfo
#define ERMINER_LOG_WARNING ::erminer::LogLevel::kWarning
#define ERMINER_LOG_ERROR ::erminer::LogLevel::kError

#define ERMINER_LOG(severity)                                          \
  if (ERMINER_LOG_##severity < ::erminer::GetLogLevel()) {             \
  } else                                                               \
    ::erminer::internal_logging::LogMessage(ERMINER_LOG_##severity,    \
                                            __FILE__, __LINE__)        \
        .stream()

}  // namespace erminer

#endif  // ERMINER_UTIL_LOGGING_H_
