// A fixed-size work-stealing thread pool with *deterministic* data
// parallelism primitives.
//
// The contract that makes parallel mining bit-identical to serial mining
// (see docs/parallelism.md) is:
//
//   1. ParallelFor decomposes [begin, end) into chunks that depend ONLY on
//      the range and the grain — never on the number of threads or on
//      scheduling. Chunk i covers [begin + i*grain, min(begin+(i+1)*grain,
//      end)).
//   2. ParallelReduce evaluates one accumulator per chunk (in any order, on
//      any thread) and merges them on the calling thread in ascending chunk
//      order. Floating-point reductions therefore associate identically for
//      every thread count, including threads=1.
//
// Scheduling: every worker owns a deque; chunk tasks are dealt round-robin
// at submit time, a worker pops from the front of its own deque and steals
// from the back of a victim's when empty. The calling thread participates
// (it steals too), so a pool of N threads applies N+1 executors to a batch
// and `threads=1` runs with zero worker threads — an exact serial fallback
// that still executes the chunked (deterministic) code path.
//
// Nested ParallelFor calls from inside a worker run inline (serially, in
// chunk order) instead of re-entering the pool; this keeps nesting
// deadlock-free and deterministic.
//
// Exceptions thrown by chunk functions are captured and the first one (by
// chunk index) is rethrown on the calling thread after the batch drains.
//
// Process-wide configuration: SetGlobalThreads(n) with the util::Config
// convention `threads=0` => hardware concurrency, `threads=1` => serial,
// `threads=n` => n workers. The CLI (--threads) and the pipeline config key
// `threads` both route here.

#ifndef ERMINER_UTIL_THREAD_POOL_H_
#define ERMINER_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace erminer {

class Config;

/// Default grain for per-row loops: small corpora (every unit-test fixture)
/// stay single-chunk — and therefore bit-identical to the pre-pool serial
/// code — while bench-scale corpora split into enough chunks to keep all
/// workers busy.
inline constexpr size_t kDefaultGrain = 1024;

class ThreadPool {
 public:
  /// `num_threads` is the total executor count, including the caller:
  /// 1 => no worker threads are spawned (serial), n => n-1 workers plus the
  /// calling thread. Values of 0 are clamped to 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Number of chunks the deterministic decomposition produces for a range
  /// of n elements (grain 0 is treated as 1).
  static size_t NumChunksFor(size_t n, size_t grain) {
    if (n == 0) return 0;
    const size_t g = grain == 0 ? 1 : grain;
    return (n + g - 1) / g;
  }

  /// Runs fn(chunk_begin, chunk_end) over the deterministic chunk
  /// decomposition of [begin, end). Blocks until every chunk completed.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Like ParallelFor but also passes the chunk index, the key to ordered
  /// (deterministic) reductions: write per-chunk results into slot `chunk`
  /// and combine them in index order afterwards.
  void ParallelForChunks(
      size_t begin, size_t end, size_t grain,
      const std::function<void(size_t chunk, size_t, size_t)>& fn);

  /// Ordered deterministic reduction. `chunk_fn(b, e) -> Acc` runs per
  /// chunk on pool threads; `merge(&acc, chunk_acc)` runs on the calling
  /// thread in ascending chunk order. Acc must be default-constructible.
  template <typename Acc, typename ChunkFn, typename MergeFn>
  Acc ParallelReduce(size_t begin, size_t end, size_t grain, Acc init,
                     const ChunkFn& chunk_fn, const MergeFn& merge) {
    const size_t n = end > begin ? end - begin : 0;
    if (n == 0) return init;
    const size_t chunks = NumChunksFor(n, grain);
    std::vector<Acc> partials(chunks);
    ParallelForChunks(begin, end, grain,
                      [&](size_t c, size_t b, size_t e) {
                        partials[c] = chunk_fn(b, e);
                      });
    Acc acc = std::move(init);
    for (size_t c = 0; c < chunks; ++c) merge(&acc, partials[c]);
    return acc;
  }

 private:
  struct Batch;
  struct Task {
    Batch* batch = nullptr;
    size_t chunk = 0;
  };
  struct WorkerQueue;

  void WorkerLoop(size_t id);
  /// Pops one task, preferring queue `home`, stealing otherwise.
  bool TryAcquire(size_t home, Task* task);
  void RunTask(const Task& task);
  void RunBatch(Batch* batch);
  /// Executes all chunks of `batch` inline, in order (serial fallback and
  /// nested calls).
  void RunBatchInline(Batch* batch);

  size_t num_threads_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex sleep_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stop_{false};
};

/// Resolves the `threads` convention: 0 => hardware concurrency (at least
/// 1), otherwise the value itself (clamped to >= 1).
size_t ResolveThreads(long configured);

/// Sets the process-wide thread setting (0 => hardware concurrency) and
/// tears down the existing global pool so the next GlobalPool() call
/// rebuilds it. Must not race with in-flight ParallelFor calls.
void SetGlobalThreads(long threads);

/// The configured (raw) setting, as passed to SetGlobalThreads. Default 1.
long GlobalThreadsSetting();

/// The lazily constructed process-wide pool.
ThreadPool& GlobalPool();

/// Applies the top-level `threads` key of a Config, if present.
void ConfigureThreadsFromConfig(const Config& config);

/// Process-wide count of chunks executed (across every pool instance,
/// worker-run and inline alike). A cheap monotone liveness signal: the
/// stall watchdog (obs/watchdog.h) treats it — via the thread_pool/*
/// registry counters that advance with it — as proof the data-parallel
/// layer is making progress.
uint64_t PoolProgressCount();

/// Convenience wrappers over the global pool.
inline void ParallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)>& fn) {
  GlobalPool().ParallelFor(begin, end, grain, fn);
}

template <typename Acc, typename ChunkFn, typename MergeFn>
Acc ParallelReduce(size_t begin, size_t end, size_t grain, Acc init,
                   const ChunkFn& chunk_fn, const MergeFn& merge) {
  return GlobalPool().ParallelReduce(begin, end, grain, std::move(init),
                                     chunk_fn, merge);
}

}  // namespace erminer

#endif  // ERMINER_UTIL_THREAD_POOL_H_
