// Status and Result<T>: Arrow-style error propagation without exceptions.
//
// Library code returns Status (for actions) or Result<T> (for producers).
// Exceptions are never thrown across public API boundaries; internal code
// uses ERMINER_CHECK for programmer errors (invariant violations) only.

#ifndef ERMINER_UTIL_STATUS_H_
#define ERMINER_UTIL_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace erminer {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIoError = 6,
  kUnimplemented = 7,
  kInternal = 8,
};

/// Returns a short human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome. Cheap to copy on the OK path (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Never holds an OK status
/// without a value.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional, mirrors Arrow.
  Result(T value) : storage_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : storage_(std::move(status)) {
    if (std::get<Status>(storage_).ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(storage_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(storage_);
  }

  const T& ValueOrDie() const& {
    CheckOk();
    return std::get<T>(storage_);
  }
  T& ValueOrDie() & {
    CheckOk();
    return std::get<T>(storage_);
  }
  T&& ValueOrDie() && {
    CheckOk();
    return std::move(std::get<T>(storage_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: "
                << std::get<Status>(storage_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> storage_;
};

// Propagates a non-OK Status from an expression.
#define ERMINER_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::erminer::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (false)

// Assigns the value of a Result expression or propagates its error.
#define ERMINER_CONCAT_IMPL(a, b) a##b
#define ERMINER_CONCAT(a, b) ERMINER_CONCAT_IMPL(a, b)
#define ERMINER_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).ValueOrDie()
#define ERMINER_ASSIGN_OR_RETURN(lhs, rexpr) \
  ERMINER_ASSIGN_OR_RETURN_IMPL(ERMINER_CONCAT(_res_, __LINE__), lhs, rexpr)

// Fatal invariant check for programmer errors. Always on.
#define ERMINER_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::cerr << "ERMINER_CHECK failed at " << __FILE__ << ":" << __LINE__ \
                << ": " #cond << "\n";                                       \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define ERMINER_CHECK_OK(expr)                                            \
  do {                                                                    \
    ::erminer::Status _st = (expr);                                       \
    if (!_st.ok()) {                                                      \
      std::cerr << "ERMINER_CHECK_OK failed at " << __FILE__ << ":"       \
                << __LINE__ << ": " << _st.ToString() << "\n";            \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

}  // namespace erminer

#endif  // ERMINER_UTIL_STATUS_H_
