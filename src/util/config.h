// Minimal key=value configuration files (with # comments and [sections]
// flattened as "section.key"). Used by the pipeline runner.

#ifndef ERMINER_UTIL_CONFIG_H_
#define ERMINER_UTIL_CONFIG_H_

#include <map>
#include <string>
#include <string_view>

#include "util/status.h"

namespace erminer {

class Config {
 public:
  /// Parses text like:
  ///   # comment
  ///   input = data/input.csv
  ///   [miner]
  ///   method = rl
  /// into {"input": "...", "miner.method": "rl"}.
  static Result<Config> Parse(std::string_view text);
  static Result<Config> FromFile(const std::string& path);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt = "") const;
  long GetInt(const std::string& key, long dflt) const;
  double GetDouble(const std::string& key, double dflt) const;
  bool GetBool(const std::string& key, bool dflt) const;

  const std::map<std::string, std::string>& values() const { return values_; }

  void Set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace erminer

#endif  // ERMINER_UTIL_CONFIG_H_
