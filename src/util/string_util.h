// Small string helpers shared across the project.

#ifndef ERMINER_UTIL_STRING_UTIL_H_
#define ERMINER_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace erminer {

/// Splits on a single delimiter character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string Trim(std::string_view s);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Longest common prefix length of two strings.
size_t CommonPrefixLen(std::string_view a, std::string_view b);

/// Formats a double with the given precision, trimming trailing zeros is NOT
/// performed (fixed width output keeps tables aligned).
std::string FormatDouble(double v, int precision);

/// "12.3" style seconds, or "1.2e+03" for huge values.
std::string FormatSeconds(double seconds);

}  // namespace erminer

#endif  // ERMINER_UTIL_STRING_UTIL_H_
