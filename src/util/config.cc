#include "util/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace erminer {

Result<Config> Config::Parse(std::string_view text) {
  Config config;
  std::string section;
  int lineno = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++lineno;
    std::string line = Trim(raw);
    // Strip trailing comments (only when preceded by whitespace or at
    // line start, so values may contain '#').
    size_t hash = line.find('#');
    if (hash == 0) continue;
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return Status::InvalidArgument("bad section at line " +
                                       std::to_string(lineno));
      }
      section = Trim(line.substr(1, line.size() - 2));
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("missing '=' at line " +
                                     std::to_string(lineno));
    }
    std::string key = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument("empty key at line " +
                                     std::to_string(lineno));
    }
    if (!section.empty()) key = section + "." + key;
    config.values_[key] = value;
  }
  return config;
}

Result<Config> Config::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Parse(ss.str());
}

std::string Config::Get(const std::string& key,
                        const std::string& dflt) const {
  auto it = values_.find(key);
  return it == values_.end() ? dflt : it->second;
}

long Config::GetInt(const std::string& key, long dflt) const {
  auto it = values_.find(key);
  return it == values_.end() ? dflt : std::atol(it->second.c_str());
}

double Config::GetDouble(const std::string& key, double dflt) const {
  auto it = values_.find(key);
  return it == values_.end() ? dflt : std::atof(it->second.c_str());
}

bool Config::GetBool(const std::string& key, bool dflt) const {
  auto it = values_.find(key);
  if (it == values_.end()) return dflt;
  std::string v = ToLower(it->second);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace erminer
