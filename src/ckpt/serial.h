// Binary (de)serialization primitives for checkpoint payloads.
//
// A checkpoint must restore training state *bit-identically* — a resumed
// run replays the exact trajectory of an uninterrupted one — so every field
// is written with its full in-memory precision (floats and doubles as raw
// IEEE-754 bytes, never text). The encoding is little-endian fixed-width
// with length-prefixed containers; there is no schema — writer and reader
// agree through the snapshot format version (src/ckpt/snapshot.h).
//
// Writer appends to an in-memory buffer (the whole payload is framed and
// checksummed at once by WriteSnapshotFile); Reader returns a Status on any
// out-of-bounds read, so a truncated or bit-flipped payload surfaces as a
// clean error instead of garbage state.

#ifndef ERMINER_CKPT_SERIAL_H_
#define ERMINER_CKPT_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace erminer::ckpt {

class Writer {
 public:
  void U8(uint8_t v) { Raw(&v, 1); }
  void U32(uint32_t v) { Raw(&v, sizeof v); }
  void U64(uint64_t v) { Raw(&v, sizeof v); }
  void I32(int32_t v) { Raw(&v, sizeof v); }
  void I64(int64_t v) { Raw(&v, sizeof v); }
  void F32(float v) { Raw(&v, sizeof v); }
  void F64(double v) { Raw(&v, sizeof v); }

  /// Length-prefixed byte string (nested blobs, e.g. network weights).
  void Bytes(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }

  /// Length-prefixed vector of a trivially-copyable element type.
  template <typename T>
  void Vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(T));
  }

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  void Raw(const void* p, size_t n) {
    buffer_.append(static_cast<const char*>(p), n);
  }

  std::string buffer_;
};

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* v) { return Raw(v, 1); }
  Status U32(uint32_t* v) { return Raw(v, sizeof *v); }
  Status U64(uint64_t* v) { return Raw(v, sizeof *v); }
  Status I32(int32_t* v) { return Raw(v, sizeof *v); }
  Status I64(int64_t* v) { return Raw(v, sizeof *v); }
  Status F32(float* v) { return Raw(v, sizeof *v); }
  Status F64(double* v) { return Raw(v, sizeof *v); }

  Status Bytes(std::string* s) {
    uint64_t n = 0;
    ERMINER_RETURN_NOT_OK(U64(&n));
    ERMINER_RETURN_NOT_OK(CheckRemaining(n));
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status Vec(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n = 0;
    ERMINER_RETURN_NOT_OK(U64(&n));
    // Element-count bound first, so n * sizeof(T) cannot overflow on a
    // corrupt length prefix.
    ERMINER_RETURN_NOT_OK(CheckRemaining(n));
    ERMINER_RETURN_NOT_OK(CheckRemaining(n * sizeof(T)));
    v->resize(n);
    std::memcpy(v->data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return Status::OK();
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status CheckRemaining(uint64_t n) {
    if (n > data_.size() - pos_) {
      return Status::IoError("checkpoint payload truncated: need " +
                             std::to_string(n) + " bytes at offset " +
                             std::to_string(pos_) + ", have " +
                             std::to_string(data_.size() - pos_));
    }
    return Status::OK();
  }

  Status Raw(void* p, size_t n) {
    ERMINER_RETURN_NOT_OK(CheckRemaining(n));
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Rng stream state (the four xoshiro256** words; the lazy Zipf CDF cache
/// is derived data and rebuilt on demand).
void SaveRng(const Rng& rng, Writer* w);
Status LoadRng(Reader* r, Rng* rng);

}  // namespace erminer::ckpt

#endif  // ERMINER_CKPT_SERIAL_H_
