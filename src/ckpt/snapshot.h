// Snapshot file framing: a versioned, CRC-checksummed container for one
// checkpoint payload, written atomically.
//
// Layout (all integers little-endian):
//   u32  magic "ERCK"
//   u32  format version (kSnapshotFormatVersion)
//   u64  payload size in bytes
//   ...  payload
//   u32  CRC-32 of the payload
//
// WriteSnapshotFile writes to `<path>.tmp`, flushes and fsyncs it, then
// renames over `<path>` — a reader can never observe a half-written
// snapshot under the final name, and a crash mid-write leaves at most a
// stale `.tmp` that loaders and latest-snapshot scans ignore.
// ReadSnapshotFile rejects wrong magic, unsupported versions (with the
// expected and found version in the message), truncation anywhere, and
// CRC mismatches, each as a distinct clear Status.

#ifndef ERMINER_CKPT_SNAPSHOT_H_
#define ERMINER_CKPT_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace erminer::ckpt {

inline constexpr uint32_t kSnapshotMagic = 0x4B435245u;  // "ERCK"
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// Atomically writes `payload` framed as above. The fault points
/// `ckpt/before_write`, `ckpt/after_tmp_write` and `ckpt/after_rename`
/// (obs/fault.h) bracket the three durability stages.
Status WriteSnapshotFile(const std::string& path, const std::string& payload);

/// Reads and verifies a snapshot, returning the payload.
Result<std::string> ReadSnapshotFile(const std::string& path);

}  // namespace erminer::ckpt

#endif  // ERMINER_CKPT_SNAPSHOT_H_
