// Checkpoint directory management: snapshot naming, bounded retention and
// latest-snapshot resolution for `--resume=latest`.
//
// A checkpoint directory holds snapshots named `ckpt-<episode>.erck` (zero-
// padded so lexicographic order is episode order) written atomically by
// WriteSnapshotFile. Retention keeps the newest `keep_last` snapshots and
// deletes the rest *after* a new snapshot is durable, so the directory
// never transits through an empty state. Stray `.tmp` files from a crash
// mid-write are ignored by every scan and cleaned up by the next prune.

#ifndef ERMINER_CKPT_CHECKPOINT_H_
#define ERMINER_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace erminer::ckpt {

struct CheckpointOptions {
  /// Snapshot directory; empty disables checkpointing.
  std::string dir;
  /// Write a snapshot every N training episodes (0 with a non-empty dir
  /// still writes the final end-of-training snapshot).
  size_t every_episodes = 0;
  /// Snapshots retained per directory; older ones are deleted.
  size_t keep_last = 3;

  bool enabled() const { return !dir.empty(); }
};

struct SnapshotRef {
  std::string path;
  uint64_t episode = 0;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointOptions options);

  const CheckpointOptions& options() const { return options_; }

  /// True when the per-episode cadence says episode `episode` should snap.
  bool DueAtEpisode(size_t episode) const {
    return options_.enabled() && options_.every_episodes > 0 &&
           episode % options_.every_episodes == 0;
  }

  /// Writes `payload` as the snapshot for `episode` (atomic tmp + rename),
  /// then prunes beyond keep_last. Returns the final path.
  Result<std::string> Write(uint64_t episode, const std::string& payload);

  /// Snapshots in `dir`, oldest first. Ignores foreign files and `.tmp`s.
  static std::vector<SnapshotRef> List(const std::string& dir);

  /// Path of the newest snapshot, or NotFound.
  static Result<std::string> LatestPath(const std::string& dir);

  /// Newest *loadable* snapshot payload for `--resume=latest`: corrupt or
  /// unreadable snapshots are skipped (their paths are appended to
  /// `skipped`, newest first) and the scan falls back to older ones.
  /// NotFound when the directory holds no loadable snapshot at all — the
  /// caller then starts fresh instead of failing the run.
  static Result<std::string> LoadLatest(const std::string& dir,
                                        std::string* path_out,
                                        std::vector<std::string>* skipped);

 private:
  CheckpointOptions options_;
  bool dir_ready_ = false;
};

}  // namespace erminer::ckpt

#endif  // ERMINER_CKPT_CHECKPOINT_H_
