#include "ckpt/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "obs/fault.h"
#include "util/crc32.h"

namespace erminer::ckpt {

namespace {

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable (a power loss after rename may otherwise resurrect
/// the old directory entry). Failure is ignored: an fsync-less checkpoint
/// still satisfies the atomicity contract against process crashes, which
/// is what the fault-injection harness proves.
void SyncParentDir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

Status WriteSnapshotFile(const std::string& path,
                         const std::string& payload) {
  obs::FaultPoint("ckpt/before_write");
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + tmp + " for writing");
  }
  const uint32_t magic = kSnapshotMagic;
  const uint32_t version = kSnapshotFormatVersion;
  const uint64_t size = payload.size();
  const uint32_t crc = Crc32(payload.data(), payload.size());
  bool ok = std::fwrite(&magic, sizeof magic, 1, f) == 1 &&
            std::fwrite(&version, sizeof version, 1, f) == 1 &&
            std::fwrite(&size, sizeof size, 1, f) == 1 &&
            (payload.empty() ||
             std::fwrite(payload.data(), payload.size(), 1, f) == 1) &&
            std::fwrite(&crc, sizeof crc, 1, f) == 1;
  ok = std::fflush(f) == 0 && ok;
  ok = ::fsync(::fileno(f)) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("failed writing snapshot " + tmp);
  }
  obs::FaultPoint("ckpt/after_tmp_write");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  SyncParentDir(path);
  obs::FaultPoint("ckpt/after_rename");
  return Status::OK();
}

Result<std::string> ReadSnapshotFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no snapshot at " + path);
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  uint32_t magic = 0, version = 0;
  uint64_t size = 0;
  if (std::fread(&magic, sizeof magic, 1, f) != 1 ||
      std::fread(&version, sizeof version, 1, f) != 1 ||
      std::fread(&size, sizeof size, 1, f) != 1) {
    return Status::IoError("truncated snapshot header in " + path);
  }
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("bad snapshot magic in " + path +
                                   " (not a checkpoint file)");
  }
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot format version in " + path + ": expected " +
        std::to_string(kSnapshotFormatVersion) + ", got " +
        std::to_string(version));
  }
  // Sanity-bound the declared size by the actual file size before
  // allocating (a corrupt length field must not trigger a huge allocation).
  const long data_at = std::ftell(f);
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, data_at, SEEK_SET);
  if (data_at < 0 || file_size < 0 ||
      size + sizeof(uint32_t) !=
          static_cast<uint64_t>(file_size - data_at)) {
    return Status::IoError("truncated snapshot " + path + ": payload of " +
                           std::to_string(size) + " bytes does not fit");
  }
  std::string payload(size, '\0');
  if (!payload.empty() &&
      std::fread(payload.data(), payload.size(), 1, f) != 1) {
    return Status::IoError("truncated snapshot payload in " + path);
  }
  uint32_t crc = 0;
  if (std::fread(&crc, sizeof crc, 1, f) != 1) {
    return Status::IoError("truncated snapshot trailer in " + path);
  }
  const uint32_t actual = Crc32(payload.data(), payload.size());
  if (crc != actual) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "stored %08x, computed %08x", crc,
                  actual);
    return Status::IoError("snapshot CRC mismatch in " + path + ": " + buf);
  }
  return payload;
}

}  // namespace erminer::ckpt
