#include "ckpt/serial.h"

namespace erminer::ckpt {

void SaveRng(const Rng& rng, Writer* w) {
  uint64_t state[4];
  rng.GetState(state);
  for (uint64_t s : state) w->U64(s);
}

Status LoadRng(Reader* r, Rng* rng) {
  uint64_t state[4];
  for (auto& s : state) ERMINER_RETURN_NOT_OK(r->U64(&s));
  rng->SetState(state);
  return Status::OK();
}

}  // namespace erminer::ckpt
