#include "ckpt/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "ckpt/snapshot.h"

namespace erminer::ckpt {

namespace {

constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".erck";

std::string SnapshotName(uint64_t episode) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%012llu%s", kPrefix,
                static_cast<unsigned long long>(episode), kSuffix);
  return buf;
}

/// Parses `ckpt-<digits>.erck`; false for anything else (tmp files, foreign
/// files, malformed names).
bool ParseSnapshotName(const std::string& name, uint64_t* episode) {
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return false;
  }
  uint64_t e = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    e = e * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *episode = e;
  return true;
}

}  // namespace

CheckpointManager::CheckpointManager(CheckpointOptions options)
    : options_(std::move(options)) {}

Result<std::string> CheckpointManager::Write(uint64_t episode,
                                             const std::string& payload) {
  if (!options_.enabled()) {
    return Status::FailedPrecondition("checkpointing is not enabled");
  }
  if (!dir_ready_) {
    std::error_code ec;
    std::filesystem::create_directories(options_.dir, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint dir " + options_.dir +
                             ": " + ec.message());
    }
    dir_ready_ = true;
  }
  const std::string path = options_.dir + "/" + SnapshotName(episode);
  ERMINER_RETURN_NOT_OK(WriteSnapshotFile(path, payload));
  // Prune only after the new snapshot is durable; keep_last counts the one
  // just written. Stray .tmps from an earlier crash go with the stale
  // snapshots.
  std::vector<SnapshotRef> all = List(options_.dir);
  const size_t keep = std::max<size_t>(1, options_.keep_last);
  for (size_t i = 0; i + keep < all.size(); ++i) {
    std::remove(all[i].path.c_str());
  }
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0 &&
        entry.path().string() != path + ".tmp") {
      std::remove(entry.path().string().c_str());
    }
  }
  return path;
}

std::vector<SnapshotRef> CheckpointManager::List(const std::string& dir) {
  std::vector<SnapshotRef> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t episode = 0;
    if (!ParseSnapshotName(entry.path().filename().string(), &episode)) {
      continue;
    }
    out.push_back({entry.path().string(), episode});
  }
  std::sort(out.begin(), out.end(),
            [](const SnapshotRef& a, const SnapshotRef& b) {
              return a.episode != b.episode ? a.episode < b.episode
                                            : a.path < b.path;
            });
  return out;
}

Result<std::string> CheckpointManager::LatestPath(const std::string& dir) {
  std::vector<SnapshotRef> all = List(dir);
  if (all.empty()) {
    return Status::NotFound("no snapshots in " + dir);
  }
  return all.back().path;
}

Result<std::string> CheckpointManager::LoadLatest(
    const std::string& dir, std::string* path_out,
    std::vector<std::string>* skipped) {
  std::vector<SnapshotRef> all = List(dir);
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    Result<std::string> payload = ReadSnapshotFile(it->path);
    if (payload.ok()) {
      if (path_out != nullptr) *path_out = it->path;
      return payload;
    }
    if (skipped != nullptr) skipped->push_back(it->path);
  }
  return Status::NotFound("no loadable snapshot in " + dir +
                          (all.empty() ? " (directory empty or missing)"
                                       : " (all snapshots corrupt)"));
}

}  // namespace erminer::ckpt
