#include "obs/fault.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <mutex>

namespace erminer::obs {

namespace {

// One armed point per process: a fault simulates one external kill, and a
// single point keeps the trigger deterministic (no cross-point ordering).
std::mutex g_mutex;
std::string g_armed_name;           // empty = unarmed
uint64_t g_armed_nth = 0;
std::atomic<bool> g_armed{false};   // fast-path gate for FaultPoint
std::atomic<uint64_t> g_hits{0};
std::once_flag g_env_once;

void ArmFromEnvOnce() {
  std::call_once(g_env_once, [] {
    const char* spec = std::getenv("ERMINER_FAULT");
    if (spec != nullptr && spec[0] != '\0' && !FaultArmed()) {
      if (!ArmFaultFromSpec(spec)) {
        std::fprintf(stderr, "ERMINER_FAULT: malformed spec '%s' "
                     "(want <point>:<n>), ignoring\n", spec);
      }
    }
  });
}

}  // namespace

void ArmFault(const std::string& name, uint64_t nth) {
  std::lock_guard<std::mutex> lk(g_mutex);
  g_armed_name = name;
  g_armed_nth = nth == 0 ? 1 : nth;
  g_hits.store(0, std::memory_order_relaxed);
  g_armed.store(!name.empty(), std::memory_order_release);
}

bool ArmFaultFromSpec(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long n =
      std::strtoull(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || n == 0) return false;
  ArmFault(spec.substr(0, colon), n);
  return true;
}

bool FaultArmed() { return g_armed.load(std::memory_order_acquire); }

uint64_t FaultHits() { return g_hits.load(std::memory_order_relaxed); }

void FaultPoint(const char* name) {
  // The env spec is parsed lazily at the first fault point, so library code
  // needs no init call; the atomic gate keeps unarmed points nearly free.
  ArmFromEnvOnce();
  if (!g_armed.load(std::memory_order_acquire)) return;
  uint64_t nth;
  {
    std::lock_guard<std::mutex> lk(g_mutex);
    if (g_armed_name != name) return;
    nth = g_armed_nth;
  }
  const uint64_t hit = g_hits.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (hit != nth) return;
  std::fprintf(stderr, "ERMINER_FAULT: SIGKILL at %s (hit %llu)\n", name,
               static_cast<unsigned long long>(hit));
  std::fflush(stderr);
  std::raise(SIGKILL);
  // SIGKILL cannot be handled; the process is gone. (On the impossible
  // fall-through, abort rather than continue past an injected crash.)
  std::abort();
}

const std::vector<std::string>& KnownFaultPoints() {
  static const std::vector<std::string>* points = new std::vector<std::string>{
      "train/episode_begin",  "train/episode_end",
      "ckpt/before_write",    "ckpt/after_tmp_write",
      "ckpt/after_rename",    "train/after_checkpoint",
      "manifest/append_episode",
  };
  return *points;
}

}  // namespace erminer::obs
