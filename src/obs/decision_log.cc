#include "obs/decision_log.h"

#include <cstdio>
#include <cstring>

#include "obs/fault.h"
#include "obs/flush.h"
#include "obs/metrics.h"

namespace erminer::obs {

namespace {

/// Per-thread buffers past this size drain to the file early, so an armed
/// log's memory stays bounded no matter how long the mine runs.
constexpr size_t kSpillBytes = 1 << 20;

/// Live-summary ring capacities (see SummaryJson).
constexpr size_t kRecentEmits = 256;
constexpr size_t kRecentPrunes = 4096;

// --- CRC-32 (IEEE 802.3, reflected; same family as util/crc32 but local:
// obs sits below erminer_util, so it cannot link against it) --------------

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// --- Little-endian encoding (mirrors ckpt/serial.h's wire conventions) ---

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(out, bits);
}

void PutKey(std::string* out, const std::vector<int32_t>& key) {
  PutU32(out, static_cast<uint32_t>(key.size()));
  for (int32_t v : key) PutI32(out, v);
}

/// Bound-checked reader over one record payload (or the whole file for the
/// framing). Every getter returns false instead of reading past the end,
/// with overflow-safe arithmetic (the ckpt::Reader::CheckRemaining idiom).
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  bool U8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool U32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool U64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool I32(int32_t* v) {
    uint32_t u;
    if (!U32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }

  bool Key(std::vector<int32_t>* key) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (remaining() / 4 < n) return false;  // overflow-safe bound check
    key->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      if (!I32(&(*key)[i])) return false;
    }
    return true;
  }

  bool Bytes(size_t n, std::string_view* out) {
    if (remaining() < n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

std::string EncodePayload(const DecisionEvent& e) {
  std::string p;
  switch (e.type) {
    case DecisionEventType::kExpand:
      PutU8(&p, e.miner);
      PutKey(&p, e.parent_key);
      PutI32(&p, e.action);
      PutKey(&p, e.key);
      break;
    case DecisionEventType::kPrune:
      PutU8(&p, e.miner);
      PutU8(&p, e.reason);
      PutKey(&p, e.parent_key);
      PutI32(&p, e.action);
      PutF64(&p, e.measure);
      break;
    case DecisionEventType::kEmit:
      PutU8(&p, e.miner);
      PutU64(&p, e.rule_id);
      PutKey(&p, e.key);
      PutI64(&p, e.support);
      PutF64(&p, e.certainty);
      PutF64(&p, e.quality);
      PutF64(&p, e.utility);
      PutU64(&p, e.episode);
      PutU64(&p, e.step);
      break;
    case DecisionEventType::kRlStep:
      PutU8(&p, e.flags);
      PutU64(&p, e.episode);
      PutU64(&p, e.step);
      PutKey(&p, e.key);
      PutI32(&p, e.action);
      PutI32(&p, e.greedy_action);
      PutF64(&p, e.epsilon);
      PutF64(&p, e.q_chosen);
      PutF64(&p, e.q_greedy);
      PutF64(&p, e.reward);
      break;
    case DecisionEventType::kRlTrain:
      PutU64(&p, e.step);
      PutU64(&p, e.replay_size);
      PutF64(&p, e.loss);
      break;
    case DecisionEventType::kRepair:
      PutU64(&p, e.rule_id);
      PutU64(&p, e.row);
      PutI64(&p, e.master_row);
      PutI32(&p, e.old_value);
      PutI32(&p, e.new_value);
      PutF64(&p, e.measure);
      break;
  }
  return p;
}

bool DecodePayload(DecisionEventType type, std::string_view payload,
                   DecisionEvent* e) {
  Cursor c(payload);
  e->type = type;
  switch (type) {
    case DecisionEventType::kExpand:
      if (!c.U8(&e->miner) || !c.Key(&e->parent_key) || !c.I32(&e->action) ||
          !c.Key(&e->key)) {
        return false;
      }
      break;
    case DecisionEventType::kPrune:
      if (!c.U8(&e->miner) || !c.U8(&e->reason) || !c.Key(&e->parent_key) ||
          !c.I32(&e->action) || !c.F64(&e->measure)) {
        return false;
      }
      break;
    case DecisionEventType::kEmit:
      if (!c.U8(&e->miner) || !c.U64(&e->rule_id) || !c.Key(&e->key) ||
          !c.I64(&e->support) || !c.F64(&e->certainty) ||
          !c.F64(&e->quality) || !c.F64(&e->utility) || !c.U64(&e->episode) ||
          !c.U64(&e->step)) {
        return false;
      }
      break;
    case DecisionEventType::kRlStep:
      if (!c.U8(&e->flags) || !c.U64(&e->episode) || !c.U64(&e->step) ||
          !c.Key(&e->key) || !c.I32(&e->action) ||
          !c.I32(&e->greedy_action) || !c.F64(&e->epsilon) ||
          !c.F64(&e->q_chosen) || !c.F64(&e->q_greedy) || !c.F64(&e->reward)) {
        return false;
      }
      break;
    case DecisionEventType::kRlTrain:
      if (!c.U64(&e->step) || !c.U64(&e->replay_size) || !c.F64(&e->loss)) {
        return false;
      }
      break;
    case DecisionEventType::kRepair:
      if (!c.U64(&e->rule_id) || !c.U64(&e->row) || !c.I64(&e->master_row) ||
          !c.I32(&e->old_value) || !c.I32(&e->new_value) ||
          !c.F64(&e->measure)) {
        return false;
      }
      break;
    default:
      return false;
  }
  return c.AtEnd();  // trailing payload bytes are corruption, not slack
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out->push_back('\\');
    out->push_back(ch);
  }
}

/// The flush-registry hook: a plain function pointer per obs/flush.h.
void DecisionLogFlushHook() { DecisionLog::Global().Flush(); }

}  // namespace

std::atomic<bool> DecisionLog::armed_flag_{false};

uint32_t DecisionLogCrc32(const void* data, size_t n) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeDecisionEvent(const DecisionEvent& event) {
  const std::string payload = EncodePayload(event);
  std::string record;
  record.reserve(payload.size() + 9);
  PutU8(&record, static_cast<uint8_t>(event.type));
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  record += payload;
  PutU32(&record, DecisionLogCrc32(record.data(), record.size()));
  return record;
}

DecisionLog& DecisionLog::Global() {
  // Leaked for the same reason as TraceRecorder: flush hooks run from
  // atexit/signal context after static destructors may have started.
  static DecisionLog* log = new DecisionLog();
  return *log;
}

bool DecisionLog::Open(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> file_lock(file_mutex_);
  if (file_ != nullptr) {
    if (error != nullptr) *error = "decision log already open at " + path_;
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string header;
  PutU32(&header, kDecisionLogMagic);
  PutU32(&header, kDecisionLogVersion);
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    std::fclose(f);
    if (error != nullptr) *error = "cannot write header to " + path;
    return false;
  }
  file_ = f;
  path_ = path;
  {
    // Fresh file, fresh live summary.
    std::lock_guard<std::mutex> summary_lock(summary_mutex_);
    recent_emits_.clear();
    recent_prunes_.clear();
  }
  for (auto& c : type_counts_) c.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  static bool flush_registered = [] {
    RegisterFlush(&DecisionLogFlushHook);
    return true;
  }();
  (void)flush_registered;
  armed_flag_.store(true, std::memory_order_release);
  return true;
}

DecisionLog::ThreadBuffer& DecisionLog::LocalBuffer() {
  // The shared_ptr keeps the buffer reachable by Flush after thread exit,
  // exactly like TraceRecorder::LocalBuffer.
  thread_local std::shared_ptr<ThreadBuffer> local = [this] {
    auto buf = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers_.push_back(buf);
    return buf;
  }();
  return *local;
}

void DecisionLog::DrainLocked(ThreadBuffer* buf) {
  if (buf->bytes.empty()) return;
  std::lock_guard<std::mutex> file_lock(file_mutex_);
  if (file_ != nullptr) {
    if (std::fwrite(buf->bytes.data(), 1, buf->bytes.size(), file_) !=
        buf->bytes.size()) {
      ERMINER_COUNT("decision_log/dropped", 1);
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    // Closed between the record and the drain: the events are lost.
    ERMINER_COUNT("decision_log/dropped", 1);
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  buf->bytes.clear();
}

void DecisionLog::Append(std::string_view record) {
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.bytes.append(record.data(), record.size());
  ERMINER_COUNT("decision_log/events", 1);
  if (buf.bytes.size() >= kSpillBytes) DrainLocked(&buf);
}

void DecisionLog::Flush() {
  if (!Armed()) return;
  FaultPoint("decision_log/flush");
  // Copy the registration list, then drain buffer by buffer: writers only
  // ever contend on their own buffer's mutex, never on the registry.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    DrainLocked(buf.get());
  }
  std::lock_guard<std::mutex> file_lock(file_mutex_);
  if (file_ != nullptr) std::fflush(file_);
}

void DecisionLog::Close() {
  if (!Armed()) return;
  // Disarm first so no new records race the final drain, then flush what
  // the threads already buffered.
  armed_flag_.store(false, std::memory_order_release);
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers = buffers_;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    DrainLocked(buf.get());
  }
  std::lock_guard<std::mutex> file_lock(file_mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

std::string DecisionLog::path() const {
  std::lock_guard<std::mutex> lock(file_mutex_);
  return path_;
}

void DecisionLog::Expand(DecisionMiner miner,
                         const std::vector<int32_t>& parent_key,
                         int32_t action, const std::vector<int32_t>& key) {
  if (!Armed()) return;
  DecisionEvent e;
  e.type = DecisionEventType::kExpand;
  e.miner = static_cast<uint8_t>(miner);
  e.parent_key = parent_key;
  e.action = action;
  e.key = key;
  type_counts_[1].fetch_add(1, std::memory_order_relaxed);
  Append(EncodeDecisionEvent(e));
}

void DecisionLog::Prune(DecisionMiner miner, PruneReason reason,
                        const std::vector<int32_t>& parent_key, int32_t action,
                        double measure) {
  if (!Armed()) return;
  DecisionEvent e;
  e.type = DecisionEventType::kPrune;
  e.miner = static_cast<uint8_t>(miner);
  e.reason = static_cast<uint8_t>(reason);
  e.parent_key = parent_key;
  e.action = action;
  e.measure = measure;
  type_counts_[2].fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(summary_mutex_);
    recent_prunes_.push_back(e.reason);
    if (recent_prunes_.size() > kRecentPrunes) recent_prunes_.pop_front();
  }
  Append(EncodeDecisionEvent(e));
}

void DecisionLog::Emit(DecisionMiner miner, uint64_t rule_id,
                       const std::vector<int32_t>& key, int64_t support,
                       double certainty, double quality, double utility,
                       uint64_t episode, uint64_t step) {
  if (!Armed()) return;
  DecisionEvent e;
  e.type = DecisionEventType::kEmit;
  e.miner = static_cast<uint8_t>(miner);
  e.rule_id = rule_id;
  e.key = key;
  e.support = support;
  e.certainty = certainty;
  e.quality = quality;
  e.utility = utility;
  e.episode = episode;
  e.step = step;
  type_counts_[3].fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(summary_mutex_);
    recent_emits_.push_back({rule_id, e.miner, utility});
    if (recent_emits_.size() > kRecentEmits) recent_emits_.pop_front();
  }
  Append(EncodeDecisionEvent(e));
}

void DecisionLog::RlStep(uint8_t flags, uint64_t episode, uint64_t step,
                         const std::vector<int32_t>& state, int32_t action,
                         int32_t greedy_action, double epsilon,
                         double q_chosen, double q_greedy, double reward) {
  if (!Armed()) return;
  DecisionEvent e;
  e.type = DecisionEventType::kRlStep;
  e.flags = flags;
  e.episode = episode;
  e.step = step;
  e.key = state;
  e.action = action;
  e.greedy_action = greedy_action;
  e.epsilon = epsilon;
  e.q_chosen = q_chosen;
  e.q_greedy = q_greedy;
  e.reward = reward;
  type_counts_[4].fetch_add(1, std::memory_order_relaxed);
  Append(EncodeDecisionEvent(e));
}

void DecisionLog::RlTrain(uint64_t step, uint64_t replay_size, double loss) {
  if (!Armed()) return;
  DecisionEvent e;
  e.type = DecisionEventType::kRlTrain;
  e.step = step;
  e.replay_size = replay_size;
  e.loss = loss;
  type_counts_[5].fetch_add(1, std::memory_order_relaxed);
  Append(EncodeDecisionEvent(e));
}

void DecisionLog::Repair(uint64_t rule_id, uint64_t row, int64_t master_row,
                         int32_t old_value, int32_t new_value, double score) {
  if (!Armed()) return;
  DecisionEvent e;
  e.type = DecisionEventType::kRepair;
  e.rule_id = rule_id;
  e.row = row;
  e.master_row = master_row;
  e.old_value = old_value;
  e.new_value = new_value;
  e.measure = score;
  type_counts_[6].fetch_add(1, std::memory_order_relaxed);
  Append(EncodeDecisionEvent(e));
}

uint64_t DecisionLog::events_recorded() const {
  uint64_t n = 0;
  for (const auto& c : type_counts_) n += c.load(std::memory_order_relaxed);
  return n;
}

uint64_t DecisionLog::emits_recorded() const {
  return type_counts_[3].load(std::memory_order_relaxed);
}

uint64_t DecisionLog::repairs_recorded() const {
  return type_counts_[6].load(std::memory_order_relaxed);
}

std::string DecisionLog::SummaryJson(size_t tail) const {
  if (tail == 0) tail = 32;
  std::string out = "{\"armed\":";
  out += Armed() ? "true" : "false";
  out += ",\"path\":\"";
  AppendJsonEscaped(&out, path());
  out += "\",\"events\":{";
  static const char* kNames[8] = {nullptr,    "expand",  "prune", "emit",
                                  "rl_step",  "rl_train", "repair", nullptr};
  bool first = true;
  for (int t = 1; t <= 6; ++t) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += kNames[t];
    out += "\":" + std::to_string(type_counts_[t].load(
                       std::memory_order_relaxed));
  }
  out += "},\"dropped\":" +
         std::to_string(dropped_.load(std::memory_order_relaxed));

  std::lock_guard<std::mutex> lock(summary_mutex_);
  out += ",\"prune_reasons\":{";
  uint64_t by_reason[8] = {};
  const size_t np = recent_prunes_.size() < tail ? recent_prunes_.size() : tail;
  for (size_t i = recent_prunes_.size() - np; i < recent_prunes_.size(); ++i) {
    uint8_t r = recent_prunes_[i];
    if (r < 8) ++by_reason[r];
  }
  first = true;
  for (int r = 0; r <= 5; ++r) {
    if (by_reason[r] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += PruneReasonName(static_cast<PruneReason>(r));
    out += "\":" + std::to_string(by_reason[r]);
  }
  out += "},\"recent_emits\":[";
  const size_t ne = recent_emits_.size() < tail ? recent_emits_.size() : tail;
  first = true;
  for (size_t i = recent_emits_.size() - ne; i < recent_emits_.size(); ++i) {
    const EmitSummary& s = recent_emits_[i];
    if (!first) out += ",";
    first = false;
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "{\"rule_id\":\"%016llx\",\"miner\":\"%s\","
                  "\"utility\":%.6f}",
                  static_cast<unsigned long long>(s.rule_id),
                  DecisionMinerName(static_cast<DecisionMiner>(s.miner)),
                  s.utility);
    out += buf;
  }
  out += "]}";
  return out;
}

DecisionLogContents ParseDecisionLog(std::string_view data) {
  DecisionLogContents out;
  Cursor c(data);
  uint32_t magic = 0, version = 0;
  if (!c.U32(&magic) || !c.U32(&version)) {
    out.error = "short header (" + std::to_string(data.size()) + " bytes)";
    return out;
  }
  if (magic != kDecisionLogMagic) {
    out.error = "bad magic (not a decision log)";
    return out;
  }
  if (version != kDecisionLogVersion) {
    out.error = "unsupported version " + std::to_string(version);
    return out;
  }
  out.version = version;
  while (!c.AtEnd()) {
    const size_t record_off = c.pos();
    uint8_t type = 0;
    uint32_t len = 0;
    std::string_view payload;
    if (!c.U8(&type) || !c.U32(&len) || !c.Bytes(len, &payload)) {
      out.truncated = true;  // killed mid-write; the prefix read is valid
      return out;
    }
    uint32_t stored_crc = 0;
    if (!c.U32(&stored_crc)) {
      out.truncated = true;
      return out;
    }
    const uint32_t actual_crc =
        DecisionLogCrc32(data.data() + record_off, 5 + len);
    if (stored_crc != actual_crc) {
      out.error = "CRC mismatch at offset " + std::to_string(record_off);
      return out;
    }
    if (type < 1 || type > 6) {
      out.error = "unknown event type " + std::to_string(type) +
                  " at offset " + std::to_string(record_off);
      return out;
    }
    DecisionEvent e;
    if (!DecodePayload(static_cast<DecisionEventType>(type), payload, &e)) {
      out.error =
          "malformed payload at offset " + std::to_string(record_off);
      return out;
    }
    out.events.push_back(std::move(e));
  }
  return out;
}

DecisionLogContents ReadDecisionLogFile(const std::string& path) {
  DecisionLogContents out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    out.error = "cannot open " + path;
    return out;
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
  std::fclose(f);
  return ParseDecisionLog(data);
}

const char* DecisionEventTypeName(DecisionEventType type) {
  switch (type) {
    case DecisionEventType::kExpand: return "expand";
    case DecisionEventType::kPrune: return "prune";
    case DecisionEventType::kEmit: return "emit";
    case DecisionEventType::kRlStep: return "rl_step";
    case DecisionEventType::kRlTrain: return "rl_train";
    case DecisionEventType::kRepair: return "repair";
  }
  return "unknown";
}

const char* DecisionMinerName(DecisionMiner miner) {
  switch (miner) {
    case DecisionMiner::kEnu: return "enu";
    case DecisionMiner::kBeam: return "beam";
    case DecisionMiner::kCtane: return "ctane";
    case DecisionMiner::kRl: return "rl";
  }
  return "unknown";
}

const char* PruneReasonName(PruneReason reason) {
  switch (reason) {
    case PruneReason::kSupport: return "support";
    case PruneReason::kCertain: return "certain";
    case PruneReason::kDuplicate: return "duplicate";
    case PruneReason::kBeamWidth: return "beam_width";
    case PruneReason::kConfidence: return "confidence";
    case PruneReason::kMasterSupport: return "master_support";
  }
  return "unknown";
}

}  // namespace erminer::obs
