#include "obs/decision_explain.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace erminer::obs {

namespace {

std::string Hex16(uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

}  // namespace

std::string FormatDecisionKey(const std::vector<int32_t>& key) {
  std::string out = "[";
  for (size_t i = 0; i < key.size(); ++i) {
    if (i > 0) out += " ";
    out += std::to_string(key[i]);
  }
  out += "]";
  return out;
}

DecisionPath ReplayDecisionPath(const DecisionLogContents& log,
                                uint64_t rule_id) {
  DecisionPath path;
  const DecisionEvent* emit = nullptr;
  for (const DecisionEvent& e : log.events) {
    if (e.type == DecisionEventType::kEmit && e.rule_id == rule_id) {
      emit = &e;
      break;
    }
  }
  if (emit == nullptr) {
    path.error = "rule id " + Hex16(rule_id) + " has no emit event in the log";
    return path;
  }
  path.found = true;
  path.emit = *emit;
  const uint8_t miner = emit->miner;

  // Child key -> the expand event that created it (first occurrence wins:
  // keys are unique within a miner's walk, and the first is the creation).
  std::map<std::vector<int32_t>, const DecisionEvent*> expand_of;
  for (const DecisionEvent& e : log.events) {
    if (e.type != DecisionEventType::kExpand || e.miner != miner) continue;
    expand_of.emplace(e.key, &e);
  }

  // Walk parent links from the emitted node back to the root, then flip.
  std::vector<int32_t> cur = emit->key;
  while (!cur.empty()) {
    auto it = expand_of.find(cur);
    if (it == expand_of.end()) break;  // truncated log: partial chain
    path.chain.push_back(*it->second);
    cur = it->second->parent_key;
  }
  std::reverse(path.chain.begin(), path.chain.end());

  // The roads not taken: prunes hanging off any node of the chain.
  std::map<std::vector<int32_t>, bool> on_chain;
  on_chain[emit->key] = true;
  for (const DecisionEvent& e : path.chain) on_chain[e.parent_key] = true;
  for (const DecisionEvent& e : log.events) {
    if (e.type != DecisionEventType::kPrune || e.miner != miner) continue;
    if (on_chain.count(e.parent_key)) path.prunes.push_back(e);
  }

  // RLMiner: the emitting episode's full step trajectory.
  if (miner == static_cast<uint8_t>(DecisionMiner::kRl) &&
      emit->episode != 0) {
    for (const DecisionEvent& e : log.events) {
      if (e.type == DecisionEventType::kRlStep &&
          e.episode == emit->episode) {
        path.trajectory.push_back(e);
      }
    }
  }

  for (const DecisionEvent& e : log.events) {
    if (e.type == DecisionEventType::kRepair && e.rule_id == rule_id) {
      path.repairs.push_back(e);
    }
  }
  return path;
}

std::string FormatDecisionPath(const DecisionPath& path, size_t max_prunes,
                               size_t max_repairs) {
  if (!path.found) return path.error + "\n";
  const DecisionEvent& emit = path.emit;
  std::string out;
  out += "rule " + Hex16(emit.rule_id) + " emitted by " +
         DecisionMinerName(static_cast<DecisionMiner>(emit.miner)) +
         "  S=" + std::to_string(emit.support) + " C=" + Num(emit.certainty) +
         " Q=" + Num(emit.quality) + " U=" + Num(emit.utility);
  if (emit.episode != 0) {
    out += "  (episode " + std::to_string(emit.episode) + ", step " +
           std::to_string(emit.step) + ")";
  }
  out += "\n";

  out += "decision path (" + std::to_string(path.chain.size()) +
         " expansions, root to leaf):\n";
  for (const DecisionEvent& e : path.chain) {
    out += "  " + FormatDecisionKey(e.parent_key) + " --action " +
           std::to_string(e.action) + "--> " + FormatDecisionKey(e.key) +
           "\n";
  }
  if (path.chain.empty() ||
      (path.chain.front().parent_key.empty() == false)) {
    out += "  (chain incomplete: the log does not reach the root — "
           "truncated file or pre-existing node)\n";
  }

  if (!path.trajectory.empty()) {
    out += "episode trajectory (" + std::to_string(path.trajectory.size()) +
           " RL steps):\n";
    for (const DecisionEvent& e : path.trajectory) {
      out += "  step " + std::to_string(e.step) + ": state " +
             FormatDecisionKey(e.key) + " action " +
             std::to_string(e.action) +
             (e.action == e.greedy_action ? " (greedy)"
                                          : " (greedy was " +
                                                std::to_string(
                                                    e.greedy_action) +
                                                ")") +
             " q=" + Num(e.q_chosen) + "/" + Num(e.q_greedy) +
             " eps=" + Num(e.epsilon) + " r=" + Num(e.reward);
      if (e.flags & kRlStepExplored) out += " [explored]";
      if (e.flags & kRlStepInference) out += " [inference]";
      out += "\n";
    }
  }

  if (!path.prunes.empty()) {
    out += "prunes along the path (" + std::to_string(path.prunes.size()) +
           "):\n";
    size_t shown = 0;
    for (const DecisionEvent& e : path.prunes) {
      if (max_prunes != 0 && shown++ >= max_prunes) {
        out += "  ... (" + std::to_string(path.prunes.size() - max_prunes) +
               " more)\n";
        break;
      }
      out += "  at " + FormatDecisionKey(e.parent_key) + " action " +
             std::to_string(e.action) + ": " +
             PruneReasonName(static_cast<PruneReason>(e.reason)) +
             " (measure " + Num(e.measure) + ")\n";
    }
  }

  out += "repaired cells (" + std::to_string(path.repairs.size()) + "):\n";
  size_t shown = 0;
  for (const DecisionEvent& e : path.repairs) {
    if (max_repairs != 0 && shown++ >= max_repairs) {
      out += "  ... (" + std::to_string(path.repairs.size() - max_repairs) +
             " more)\n";
      break;
    }
    out += "  row " + std::to_string(e.row) + ": value " +
           std::to_string(e.old_value) + " -> " +
           std::to_string(e.new_value) + " (master row " +
           std::to_string(e.master_row) + ", score " + Num(e.measure) +
           ")\n";
  }
  return out;
}

}  // namespace erminer::obs
