#include "obs/watchdog.h"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/run_manifest.h"
#include "obs/trace.h"

namespace erminer::obs {

namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  // splitmix64-style mix; only stability within one process matters.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Activity the watchdog itself (or a scraper polling a stalled run)
/// generates must not look like progress.
bool SelfReferentialMetric(const std::string& name) {
  return name.rfind("telemetry/", 0) == 0 ||
         name.rfind("profiler/", 0) == 0 || name.rfind("watchdog/", 0) == 0;
}

}  // namespace

Watchdog& Watchdog::Global() {
  static Watchdog* watchdog = new Watchdog();
  return *watchdog;
}

Watchdog::~Watchdog() { Stop(); }

uint64_t Watchdog::ActivityFingerprint() {
  uint64_t h = 0;
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  for (const auto& [name, value] : snap.counters) {
    if (SelfReferentialMetric(name)) continue;
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, value);
  }
  for (const auto& [name, value] : snap.gauges) {
    if (SelfReferentialMetric(name)) continue;
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof bits);
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, bits);
  }
  for (const auto& [name, hist] : snap.histograms) {
    if (SelfReferentialMetric(name)) continue;
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, hist.count);
  }
  // Thread-pool progress rides in through its registry counters
  // (thread_pool/tasks, thread_pool/batches_inline); the trace recorder's
  // event count adds span activity when tracing is armed.
  h = HashCombine(h, TraceRecorder::Global().num_events());
  return h;
}

bool Watchdog::Start(const WatchdogOptions& options, std::string* error) {
  if (running()) {
    if (error != nullptr) *error = "watchdog already running";
    return false;
  }
  if (options.deadline_sec <= 0) {
    if (error != nullptr) *error = "watchdog deadline must be > 0 seconds";
    return false;
  }
  options_ = options;
  if (options_.check_interval_sec <= 0) {
    options_.check_interval_sec = std::min(1.0, options_.deadline_sec / 4);
  }
  options_.check_interval_sec = std::max(options_.check_interval_sec, 0.01);
  if (options_.artifact_dir.empty()) options_.artifact_dir = ".";
  stalls_.store(0, std::memory_order_relaxed);
  checks_.store(0, std::memory_order_relaxed);
  artifacts_written_ = 0;
  // Span stacks are the stall artifact's "where is every thread" section;
  // arm them so instrumented regions are visible even without --trace-json.
  TraceRecorder::Global().EnableSpanStack();
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void Watchdog::Stop() {
  if (!running()) return;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void Watchdog::Loop() {
  TraceRecorder::Global().SetCurrentThreadName("stall-watchdog");
  // Watchdog checks are overhead, not workload; keep SIGPROF ticks aimed at
  // the threads being watched.
  sigset_t block;
  sigemptyset(&block);
  sigaddset(&block, SIGPROF);
  pthread_sigmask(SIG_BLOCK, &block, nullptr);
  const auto interval = std::chrono::duration<double>(
      options_.check_interval_sec);
  uint64_t last_fp = ActivityFingerprint();
  auto last_change = std::chrono::steady_clock::now();
  bool armed = true;
  std::unique_lock<std::mutex> lk(mutex_);
  while (!stop_requested_) {
    if (wake_.wait_for(lk, interval, [this] { return stop_requested_; })) {
      return;
    }
    lk.unlock();
    checks_.fetch_add(1, std::memory_order_relaxed);
    ERMINER_COUNT("watchdog/checks", 1);
    const uint64_t fp = ActivityFingerprint();
    const auto now = std::chrono::steady_clock::now();
    if (fp != last_fp) {
      last_fp = fp;
      last_change = now;
      armed = true;  // activity resumed; a future stall is a new episode
    } else if (armed) {
      const double stalled =
          std::chrono::duration<double>(now - last_change).count();
      if (stalled >= options_.deadline_sec) {
        armed = false;  // one artifact per stall episode
        HandleStall(stalled);
      }
    }
    lk.lock();
  }
}

void Watchdog::HandleStall(double stalled_sec) {
  stalls_.fetch_add(1, std::memory_order_relaxed);
  ERMINER_COUNT("watchdog/stalls", 1);

  std::string artifact_path;
  if (artifacts_written_ < options_.max_artifacts) {
    artifact_path = options_.artifact_dir + "/stall-" +
                    std::to_string(artifacts_written_) + ".txt";
    ++artifacts_written_;

    // Where does every thread sit? (Works for blocked stalls too.)
    std::string body = "# erminer stall artifact\n";
    {
      char line[128];
      std::snprintf(line, sizeof line,
                    "# no observable progress for %.1f s\n\n", stalled_sec);
      body += line;
    }
    body += "== open span stacks (outermost first) ==\n";
    const auto stacks = TraceRecorder::Global().AllSpanStacks();
    if (stacks.empty()) {
      body += "(no spans open on any thread)\n";
    }
    for (const auto& stack : stacks) {
      body += "thread " + std::to_string(stack.tid);
      if (!stack.thread_name.empty()) body += " (" + stack.thread_name + ")";
      body += ":";
      for (const char* name : stack.names) {
        body += ' ';
        body += name;
      }
      body += '\n';
    }

    // Where do the cycles go? (Empty for a fully blocked stall — ITIMER_PROF
    // ticks on CPU time — which is itself the diagnosis.)
    body += "\n== cpu profile (collapsed stacks) ==\n";
    Profiler& profiler = Profiler::Global();
    if (profiler.running()) {
      body += profiler.CollapsedStacks();
    } else {
      ProfilerOptions popts;
      popts.hz = options_.burst_hz;
      std::string error;
      if (profiler.Start(popts, &error)) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::max(options_.burst_sec, 0.05)));
        profiler.Stop();
        body += profiler.CollapsedStacks();
      } else {
        body += "(profile burst unavailable: " + error + ")\n";
      }
    }

    std::ofstream os(artifact_path);
    if (os) {
      os << body;
    } else {
      artifact_path.clear();
    }
  }

  // One structured line straight to stderr (src/obs cannot depend on
  // util/logging — erminer_util links erminer_obs, not the reverse). A
  // stall is always worth a line, JSON sink or not.
  const long long now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::fprintf(stderr,
               "{\"ts_ms\":%lld,\"level\":\"WARNING\",\"event\":\"stall\","
               "\"stalled_seconds\":%.3f,\"deadline_seconds\":%.3f,"
               "\"artifact\":\"%s\"}\n",
               now_ms, stalled_sec, options_.deadline_sec,
               artifact_path.c_str());
  if (RunManifest* manifest = ActiveRunManifest()) {
    char event[256];
    std::snprintf(event, sizeof event,
                  "{\"event\":\"stall\",\"stalled_seconds\":%.3f,"
                  "\"artifact\":\"%s\"}",
                  stalled_sec, artifact_path.c_str());
    manifest->AppendEvent(event);
  }
}

}  // namespace erminer::obs
