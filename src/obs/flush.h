// One flush path for every telemetry exporter, shared by normal exit,
// atexit, and SIGINT/SIGTERM. Current registrants: the metrics/trace file
// exports (CLI/bench), the sampler's final tick, checkpointing's
// best-effort final snapshot, and the decision log's buffer drain
// (decision_log.h registers on first Open), so a killed run keeps every
// complete decision record.
//
// Before this existed, the bench binaries exported metrics/trace via a bare
// std::atexit handler — which never runs when the process dies on a signal,
// so an interrupted 40-minute run left nothing behind, and on abnormal exit
// the handler could race thread-pool teardown. Now exporters register a
// callback here; FlushAll() runs them (newest first, each at most once per
// call) and InstallSignalFlushHandlers() arranges for SIGINT/SIGTERM to
// flush and then re-raise the default action, so the exit status still says
// "killed by signal" but the artifacts are on disk.
//
// Signal-safety note: flushing writes files, which is not strictly
// async-signal-safe. These are single-shot CLI/bench processes interrupted
// by a human (or a test); trading formal signal-safety for not losing the
// run's telemetry is deliberate. Callbacks must tolerate being invoked at
// any point after registration.

#ifndef ERMINER_OBS_FLUSH_H_
#define ERMINER_OBS_FLUSH_H_

namespace erminer::obs {

/// Plain function pointers only — registration must not allocate and the
/// table must be readable from a signal handler.
using FlushFn = void (*)();

/// Registers `fn` to run on FlushAll(). Bounded table (32 slots);
/// registering beyond that is ignored (telemetry, not correctness).
void RegisterFlush(FlushFn fn);

/// Runs every registered callback once, newest registration first (a
/// sampler's final tick lands before the metrics file is written).
/// Reentrancy-guarded: a FlushAll racing another (signal during exit) is a
/// no-op.
void FlushAll();

/// Installs SIGINT/SIGTERM handlers that FlushAll() and then re-raise the
/// default disposition. Also registers FlushAll with atexit so clean exits
/// share the path. Idempotent.
void InstallSignalFlushHandlers();

}  // namespace erminer::obs

#endif  // ERMINER_OBS_FLUSH_H_
