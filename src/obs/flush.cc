#include "obs/flush.h"

#include <atomic>
#include <csignal>
#include <cstdlib>

namespace erminer::obs {

namespace {

constexpr int kMaxFlushFns = 32;
FlushFn g_fns[kMaxFlushFns];
std::atomic<int> g_num_fns{0};
std::atomic<bool> g_flushing{false};
std::atomic<bool> g_handlers_installed{false};

extern "C" void FlushSignalHandler(int sig) {
  FlushAll();
  // Restore the default disposition and re-deliver, so the parent still
  // sees death-by-signal (ctest, shells and process supervisors key off
  // that) instead of a plain exit code.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void RegisterFlush(FlushFn fn) {
  if (fn == nullptr) return;
  int slot = g_num_fns.load(std::memory_order_relaxed);
  while (slot < kMaxFlushFns &&
         !g_num_fns.compare_exchange_weak(slot, slot + 1,
                                          std::memory_order_acq_rel)) {
  }
  if (slot >= kMaxFlushFns) return;
  g_fns[slot] = fn;
}

void FlushAll() {
  bool expected = false;
  if (!g_flushing.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    return;  // a flush is already in progress (signal during exit)
  }
  const int n = g_num_fns.load(std::memory_order_acquire);
  for (int i = n - 1; i >= 0; --i) {
    if (g_fns[i] != nullptr) g_fns[i]();
  }
  g_flushing.store(false, std::memory_order_release);
}

void InstallSignalFlushHandlers() {
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;
  }
  std::signal(SIGINT, FlushSignalHandler);
  std::signal(SIGTERM, FlushSignalHandler);
  std::atexit(FlushAll);
}

}  // namespace erminer::obs
