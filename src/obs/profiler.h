// Continuous in-process sampling CPU profiler with span attribution.
//
// A single ITIMER_PROF timer ticks on process CPU time (so an N-thread-busy
// process yields ~hz samples per CPU-second, fanned out by the kernel to
// whichever threads are actually burning cycles). Each SIGPROF delivery runs
// an async-signal-safe handler on the interrupted thread that records a
// bounded backtrace(3) frame walk plus the innermost open ERMINER_SPAN name
// (TraceRecorder::CurrentSpanNameSignalSafe) into that thread's lock-free
// SPSC ring buffer. A drain thread periodically moves ring contents into an
// aggregate keyed by (span, pc chain); symbolization via dladdr (demangled
// with __cxa_demangle, module+offset fallback) happens only when a profile
// is rendered, never per sample.
//
// Output is collapsed-stack text — `root;frame;...;leaf count`, one line
// per unique stack, span name as the root frame — which FlameGraph,
// speedscope and tools/flamegraph.py all consume directly.
//
// Armed from --profile-out=FILE[:hz] (CLI, bench, pipeline [obs] section),
// from GET /profile?seconds=N&hz=H on the telemetry server, and by the
// stall watchdog's burst capture. The handler never allocates, takes no
// locks and preserves errno; the profiler is pull-only with respect to
// miner state, so rules are bit-identical with it armed or not
// (tests/obs_profiler_test.cc proves this differentially).
//
// Caveats (the usual ones for signal-based profilers): backtrace(3) unwinds
// via eh_frame and is not formally async-signal-safe — Start() calls it
// once up front so glibc's unwinder is initialized before the first signal
// arrives. ITIMER_PROF measures CPU time, so threads blocked in syscalls
// accrue no samples (that is what the watchdog's span-stack capture is
// for).

#ifndef ERMINER_OBS_PROFILER_H_
#define ERMINER_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace erminer::obs {

struct ProfilerOptions {
  /// Samples per CPU-second. 99 (not 100) is the conventional default: it
  /// avoids lockstep with 10ms-periodic work.
  int hz = 99;
  /// Threads that can hold samples concurrently; a thread claims a
  /// pre-allocated ring on its first SIGPROF and keeps it. Beyond this,
  /// samples from extra threads count as dropped.
  size_t max_threads = 64;
  /// Per-thread ring capacity (rounded up to a power of two). The drain
  /// thread empties rings every ~50ms, so 256 slots absorb >5000 Hz
  /// per-thread bursts.
  size_t ring_capacity = 256;
};

/// Parses "FILE" or "FILE:hz" (the --profile-out flag form; the suffix is
/// taken as a rate only when it is all digits, so paths with colons keep
/// working). Returns the file part; *hz is updated only when a rate suffix
/// is present.
std::string ParseProfileOutSpec(const std::string& spec, int* hz);

class Profiler {
 public:
  static Profiler& Global();

  /// Installs the SIGPROF handler, arms ITIMER_PROF at options.hz and
  /// spawns the drain thread. Clears any previous aggregate. Returns false
  /// with *error set when already running or the timer can't be armed.
  bool Start(const ProfilerOptions& options, std::string* error);

  /// Disarms the timer (the handler stays installed but inert — restoring
  /// SIG_DFL could kill the process on one straggler signal), drains
  /// outstanding samples and joins the drain thread. The aggregate is kept
  /// for CollapsedStacks()/WriteCollapsedFile(). Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Collapsed-stack rendering of the aggregate so far (callable mid-run):
  /// "span;outer;...;leaf count\n" lines, sorted, flamegraph-ready.
  std::string CollapsedStacks() const;
  bool WriteCollapsedFile(const std::string& path) const;

  /// Totals since the last Start (drained samples only; call Stop or wait a
  /// drain tick for exact values).
  uint64_t num_samples() const { return samples_.load(std::memory_order_relaxed); }
  uint64_t num_dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t num_truncated() const { return truncated_.load(std::memory_order_relaxed); }

  /// The active hz, 0 when stopped.
  int hz() const { return running() ? options_.hz : 0; }

 private:
  Profiler() = default;

  static constexpr int kMaxFrames = 26;  // keeps a record at 224 bytes
  struct SampleRecord {
    const char* span;
    int32_t depth;      // frames actually stored
    int32_t truncated;  // 1 when the walk hit the frame cap
    void* frames[kMaxFrames];
  };
  struct Ring {
    std::atomic<uint32_t> head{0};  // producer (signal handler)
    std::atomic<uint32_t> tail{0};  // consumer (drain thread)
    std::atomic<uint64_t> dropped{0};
    std::vector<SampleRecord> slots;
  };

  friend void ProfilerHandleSample(Profiler* p);  // SIGPROF handler body
  void HandleSample();                            // async-signal-safe
  void DrainLoop();
  uint64_t DrainOnce();  // moves ring contents into the aggregate
  std::string SymbolizeFrame(void* pc) const;

  ProfilerOptions options_;
  std::mutex control_mutex_;  // Start/Stop vs. the /profile endpoint
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread drain_thread_;

  // Rings are allocated at Start and never freed while the process lives
  // (threads cache raw pointers to them across profiling sessions).
  std::vector<Ring*> rings_;
  std::atomic<uint32_t> rings_claimed_{0};
  uint32_t ring_mask_ = 0;

  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> truncated_{0};

  mutable std::mutex aggregate_mutex_;
  /// Key: span pointer + raw pc chain (leaf first), packed as bytes.
  std::map<std::string, uint64_t> aggregate_;
  mutable std::map<void*, std::string> symbol_cache_;
};

}  // namespace erminer::obs

#endif  // ERMINER_OBS_PROFILER_H_
