#include "obs/run_manifest.h"

#include <atomic>
#include <chrono>
#include <filesystem>

#include "obs/fault.h"

namespace erminer::obs {

namespace {

std::atomic<RunManifest*> g_active{nullptr};

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

const char* GitDescribe() {
#ifdef ERMINER_GIT_DESCRIBE
  return ERMINER_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::unique_ptr<RunManifest> RunManifest::Open(
    const std::string& dir,
    const std::map<std::string, std::string>& config, std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create run dir " + dir + ": " + ec.message();
    }
    return nullptr;
  }
  // config.json first: whatever happens later, the run's identity is on
  // disk before any work starts.
  std::unique_ptr<RunManifest> manifest(new RunManifest(dir));
  manifest->config_ = config;
  manifest->created_unix_ms_ =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  {
    std::lock_guard<std::mutex> lk(manifest->mutex_);
    manifest->WriteConfigLocked();
  }
  const std::string config_path = dir + "/config.json";
  if (!std::filesystem::exists(config_path)) {
    if (error != nullptr) *error = "cannot write " + config_path;
    return nullptr;
  }
  const std::string episodes_path = dir + "/episodes.jsonl";
  manifest->episodes_ = std::fopen(episodes_path.c_str(), "w");
  if (manifest->episodes_ == nullptr) {
    if (error != nullptr) *error = "cannot open " + episodes_path;
    return nullptr;
  }
  return manifest;
}

RunManifest::~RunManifest() {
  std::lock_guard<std::mutex> lk(mutex_);
  if (episodes_ != nullptr) std::fclose(episodes_);
}

void RunManifest::WriteConfigLocked() {
  std::string json = "{\"git_describe\":";
  AppendQuoted(&json, GitDescribe());
  json += ",\"created_unix_ms\":" + std::to_string(created_unix_ms_);
  json += ",\"options\":{";
  bool first = true;
  for (const auto& [key, value] : config_) {
    if (!first) json += ",";
    first = false;
    AppendQuoted(&json, key);
    json += ":";
    AppendQuoted(&json, value);
  }
  json += "}";
  if (!provenance_.empty()) {
    json += ",\"provenance\":{";
    first = true;
    for (const auto& [key, value] : provenance_) {
      if (!first) json += ",";
      first = false;
      AppendQuoted(&json, key);
      json += ":";
      AppendQuoted(&json, value);
    }
    json += "}";
  }
  json += "}\n";
  const std::string config_path = dir_ + "/config.json";
  std::FILE* f = std::fopen(config_path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

void RunManifest::AppendEpisode(const std::string& json_object) {
  FaultPoint("manifest/append_episode");
  std::lock_guard<std::mutex> lk(mutex_);
  if (episodes_ == nullptr) return;
  std::fwrite(json_object.data(), 1, json_object.size(), episodes_);
  std::fputc('\n', episodes_);
  std::fflush(episodes_);  // the crash-survival contract
  ++episodes_appended_;
}

void RunManifest::AppendEvent(const std::string& json_object) {
  std::lock_guard<std::mutex> lk(mutex_);
  if (episodes_ == nullptr) return;
  std::fwrite(json_object.data(), 1, json_object.size(), episodes_);
  std::fputc('\n', episodes_);
  std::fflush(episodes_);
}

void RunManifest::SetProvenance(const std::string& key,
                                const std::string& value) {
  std::lock_guard<std::mutex> lk(mutex_);
  provenance_[key] = value;
  WriteConfigLocked();
}

bool RunManifest::WriteSummary(const std::string& json_object) {
  const std::string path = dir_ + "/summary.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(json_object.data(), 1, json_object.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

size_t RunManifest::episodes_appended() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return episodes_appended_;
}

void SetActiveRunManifest(RunManifest* manifest) {
  g_active.store(manifest, std::memory_order_release);
}

RunManifest* ActiveRunManifest() {
  return g_active.load(std::memory_order_acquire);
}

}  // namespace erminer::obs
