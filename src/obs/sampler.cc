#include "obs/sampler.h"

#include "obs/trace.h"
#include "util/timer.h"  // header-only (CpuSeconds/PeakRssBytes); no link dep

namespace erminer::obs {

namespace {

std::string JsonDouble(double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Sampler::Sampler(SamplerOptions options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()) {
  if (options_.interval_ms < 1) options_.interval_ms = 1;
  if (options_.ring_capacity < 1) options_.ring_capacity = 1;
}

Sampler::~Sampler() { Stop(); }

bool Sampler::Start(std::string* error) {
  std::unique_lock<std::mutex> lk(mutex_);
  if (running_) {
    if (error != nullptr) *error = "sampler already running";
    return false;
  }
  if (!options_.stream_path.empty() && stream_ == nullptr) {
    stream_ = std::fopen(options_.stream_path.c_str(), "w");
    if (stream_ == nullptr) {
      if (error != nullptr) {
        *error = "cannot open metrics stream " + options_.stream_path;
      }
      return false;
    }
  }
  start_ = std::chrono::steady_clock::now();
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void Sampler::Stop() {
  {
    std::unique_lock<std::mutex> lk(mutex_);
    if (!running_) {
      // Tests drive SampleOnce without Start; still close a stream opened
      // by a failed/partial configuration.
      if (stream_ != nullptr) {
        std::fclose(stream_);
        stream_ = nullptr;
      }
      return;
    }
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  SampleOnce();  // final sample so the stream ends at the run's end state
  std::unique_lock<std::mutex> lk(mutex_);
  running_ = false;
  if (stream_ != nullptr) {
    std::fclose(stream_);
    stream_ = nullptr;
  }
}

void Sampler::Loop() {
  TraceRecorder::Global().SetCurrentThreadName("metrics-sampler");
  std::unique_lock<std::mutex> lk(mutex_);
  while (!stop_requested_) {
    lk.unlock();
    SampleOnce();
    lk.lock();
    wake_.wait_for(lk, std::chrono::milliseconds(options_.interval_ms),
                   [this] { return stop_requested_; });
  }
}

void Sampler::SampleOnce() {
  Sample s;
  s.t_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  s.cpu_seconds = CpuSeconds();
  s.rss_bytes = PeakRssBytes();
  s.snapshot = MetricsRegistry::Global().Snapshot();

  std::unique_lock<std::mutex> lk(mutex_);
  if (stream_ != nullptr) {
    const std::string line = ToJsonLine(s, last_streamed_);
    std::fwrite(line.data(), 1, line.size(), stream_);
    std::fflush(stream_);  // a killed run keeps every line written so far
    last_streamed_ = s.snapshot;
  }
  ring_.push_back(std::move(s));
  uint64_t evicted = 0;
  while (ring_.size() > options_.ring_capacity) {
    ring_.pop_front();
    ++evicted;
  }
  // Eviction used to be silent; counting it lets /metrics.json and
  // watch_run.py say "the ring is too small for this run" instead of
  // quietly showing a shortened history.
  if (evicted > 0) ERMINER_COUNT("sampler/dropped_samples", evicted);
  ++num_taken_;
}

std::vector<Sample> Sampler::Samples() const {
  std::unique_lock<std::mutex> lk(mutex_);
  return std::vector<Sample>(ring_.begin(), ring_.end());
}

size_t Sampler::num_samples_taken() const {
  std::unique_lock<std::mutex> lk(mutex_);
  return num_taken_;
}

std::string Sampler::ToJsonLine(const Sample& sample,
                                const MetricsSnapshot& prev) {
  const MetricsSnapshot delta = sample.snapshot.DeltaSince(prev);
  std::string out = "{\"t\":" + JsonDouble(sample.t_seconds);
  out += ",\"cpu_seconds\":" + JsonDouble(sample.cpu_seconds);
  out += ",\"rss_bytes\":" + std::to_string(sample.rss_bytes);
  out += ",\"counters\":" + delta.CountersJson();
  out += ",\"gauges\":{";
  bool first = true;
  for (const auto& [name, v] : delta.gauges) {
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, name);
    out += ":" + JsonDouble(v);
  }
  out += "}}\n";
  return out;
}

}  // namespace erminer::obs
