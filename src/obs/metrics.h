// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms.
//
// Design constraints (see docs/observability.md):
//   - Hot-path increments are lock-free relaxed atomics; the registry mutex
//     is taken only on first lookup of a name. Call sites cache the returned
//     reference (the ERMINER_COUNT / ERMINER_HISTOGRAM macros do this with a
//     function-local static), so steady-state cost is one atomic add.
//   - Metrics are registered forever: references returned by the registry
//     stay valid for the life of the process. ResetAll() zeroes values but
//     never removes objects, so cached references survive test resets.
//   - The library is dependency-free (standard library only) so the lowest
//     layers — erminer_util's thread pool included — can be instrumented
//     without a dependency cycle.
//
// Naming scheme: "<subsystem>/<event>", e.g. "enuminer/nodes_expanded",
// "eval_cache/hits". Counters count events, gauges hold last-set values
// (e.g. "rl/replay_size"), histograms record distributions ("dqn/loss").

#ifndef ERMINER_OBS_METRICS_H_
#define ERMINER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace erminer::obs {

/// Monotone event counter. Inc is wait-free.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge with atomic add (CAS loop, exact for integral steps).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one overflow bucket is appended implicitly. Observe is wait-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<uint64_t> bucket_counts() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A point-in-time copy of every metric, subtractable so bench trials can
/// report per-trial deltas. Plain data; safe to keep across ResetAll().
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;

    /// Quantile estimate by linear interpolation within the bucket that
    /// contains the q-th observation (the same estimator Prometheus'
    /// histogram_quantile uses). The first bucket interpolates from 0; the
    /// overflow bucket clamps to the last finite bound. Returns 0 when the
    /// histogram is empty.
    double Quantile(double q) const;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Counters and histograms become deltas (clamped at 0 for metrics that
  /// were reset in between); gauges keep their current value.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}. Histogram
  /// objects carry p50/p90/p99 quantile estimates next to the raw buckets.
  std::string ToJson() const;

  /// Prometheus text exposition (version 0.0.4): names are prefixed with
  /// "erminer_" and slashes become underscores; histograms emit cumulative
  /// `_bucket{le="..."}` series plus `_sum`/`_count`. Served by
  /// obs::TelemetryServer at GET /metrics.
  std::string ToPrometheusText() const;

  /// Inner JSON object of the non-zero counters only (for BENCH_JSON
  /// records): {"enuminer/nodes_expanded":123,...}.
  std::string CountersJson() const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Find-or-create. The returned reference is valid forever. Requesting an
  /// existing name as a different kind is an error (returns the existing
  /// object of the requested kind if present, otherwise aborts in debug;
  /// callers use distinct names per kind by convention).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// `bounds` is consulted only on first registration of `name`; empty
  /// bounds default to a decade grid covering 1e-6..1e3.
  Histogram& GetHistogram(std::string_view name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }
  /// Writes ToJson() to `path`; returns false on I/O failure.
  bool WriteJsonFile(const std::string& path) const;

  /// Zeroes every metric (objects stay registered; references stay valid).
  void ResetAll();

  size_t num_metrics() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace erminer::obs

/// Hot-path macros: the registry lookup happens once per call site (magic
/// static), after which each hit is a single relaxed atomic operation.
#define ERMINER_COUNT(name, n)                                              \
  do {                                                                      \
    static ::erminer::obs::Counter& erminer_obs_counter_ =                  \
        ::erminer::obs::MetricsRegistry::Global().GetCounter(name);         \
    erminer_obs_counter_.Inc(n);                                            \
  } while (0)

#define ERMINER_GAUGE_SET(name, v)                                          \
  do {                                                                      \
    static ::erminer::obs::Gauge& erminer_obs_gauge_ =                      \
        ::erminer::obs::MetricsRegistry::Global().GetGauge(name);           \
    erminer_obs_gauge_.Set(v);                                              \
  } while (0)

#define ERMINER_HISTOGRAM(name, v)                                          \
  do {                                                                      \
    static ::erminer::obs::Histogram& erminer_obs_hist_ =                   \
        ::erminer::obs::MetricsRegistry::Global().GetHistogram(name);       \
    erminer_obs_hist_.Observe(v);                                           \
  } while (0)

#endif  // ERMINER_OBS_METRICS_H_
