// Scoped trace spans serialized as Chrome trace-event JSON.
//
//   ERMINER_SPAN("enuminer/expand");   // RAII: records [ctor, dtor)
//
// Recording is off by default: a disarmed span costs one relaxed atomic
// load and two branches, so hot loops can stay instrumented permanently.
// When armed (TraceRecorder::Enable, driven by the --trace-json flags),
// every span end appends one complete event to the recording thread's own
// buffer — the thread-pool workers each own one, so recording never
// contends across threads — and Export() serializes all buffers as
//   {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,
//                    "pid":1,"tid":N}, ...]}
// loadable in chrome://tracing or https://ui.perfetto.dev. Events nest by
// interval containment per tid, which RAII scoping guarantees.
//
// Span names must be string literals (they are stored as const char*).
// Export is meant to run at quiescence (after the traced workload); spans
// still open at export time are simply absent from the output.

#ifndef ERMINER_OBS_TRACE_H_
#define ERMINER_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace erminer::obs {

struct TraceEvent {
  const char* name;  // string literal
  int64_t ts_us;     // microseconds since the recorder epoch
  int64_t dur_us;
};

class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Starts recording (idempotent). Clears previously recorded events and
  /// re-bases the epoch so timestamps start near zero.
  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Arms the per-thread active-span-name stack, independently of event
  /// recording: the JSON log sink (util/logging) reads CurrentSpanName() to
  /// correlate log records with trace spans even when no trace file is
  /// being written. Disarmed (the default), a span still costs only the one
  /// relaxed load it always did.
  void EnableSpanStack();
  void DisableSpanStack();
  bool span_stack_enabled() const {
    return span_stack_.load(std::memory_order_relaxed);
  }

  /// Innermost ERMINER_SPAN currently open on the calling thread, or
  /// nullptr (also when the span stack is disarmed).
  static const char* CurrentSpanName();
  static void PushSpan(const char* name);   // TraceSpan internals
  static void PopSpan();

  /// Async-signal-safe variant of CurrentSpanName: reads only the calling
  /// thread's fixed-depth atomic stack (no locks, no allocation), so the
  /// sampling profiler's SIGPROF handler can attribute a sample to the span
  /// it interrupted. Returns nullptr when no span is open or the stack was
  /// never touched on this thread.
  static const char* CurrentSpanNameSignalSafe();

  /// One thread's open-span stack, outermost first, snapshotted for the
  /// stall watchdog's artifacts. Entries are string literals; a snapshot
  /// racing a push/pop can be off by one frame, which is fine for a
  /// diagnostic ("where is every thread right now?").
  struct SpanStackSnapshot {
    uint32_t tid = 0;
    std::string thread_name;
    std::vector<const char*> names;  // outermost first
  };
  std::vector<SpanStackSnapshot> AllSpanStacks() const;

  /// Fixed-depth stack of open span names with atomic cells, so it can be
  /// read from the owning thread's SIGPROF handler (same-thread atomics)
  /// and, approximately, from the watchdog thread. depth may exceed
  /// kMaxDepth under pathological recursion; cells beyond it are simply not
  /// stored (push/pop stay balanced because both check the same bound).
  /// Public only so the thread-local registration in trace.cc can name it.
  struct SpanStack {
    static constexpr int kMaxDepth = 64;
    std::atomic<int> depth{0};
    std::atomic<const char*> names[kMaxDepth] = {};
  };

  /// Names the calling thread in the exported trace (metadata event). The
  /// thread pool labels its workers "pool-worker-N"; the main thread
  /// defaults to "main".
  void SetCurrentThreadName(const std::string& name);

  /// Appends one complete event for the calling thread. Called by TraceSpan;
  /// public for tests.
  void Record(const char* name, int64_t ts_us, int64_t dur_us);

  int64_t NowMicros() const;

  /// Chrome trace JSON; one event per line (tools/trace_stats.cc relies on
  /// this). Pass sort=true for deterministic output ordered by (tid, ts).
  std::string ToJson() const;
  bool WriteJsonFile(const std::string& path) const;

  size_t num_events() const;
  /// Drops all recorded events (buffers stay registered).
  void Clear();

 private:
  struct ThreadBuffer {
    uint32_t tid = 0;
    std::string name;
    mutable std::mutex mutex;  // writer vs. export
    std::vector<TraceEvent> events;
    SpanStack spans;
  };

  TraceRecorder();
  ThreadBuffer& LocalBuffer();

  std::atomic<bool> enabled_{false};
  std::atomic<bool> span_stack_{false};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;  // guards buffers_ registration and epoch_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  uint32_t next_tid_ = 0;
};

/// RAII span; see ERMINER_SPAN.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    TraceRecorder& rec = TraceRecorder::Global();
    if (rec.span_stack_enabled()) {
      TraceRecorder::PushSpan(name);
      pushed_ = true;
    }
    if (!rec.enabled()) return;
    name_ = name;
    start_us_ = rec.NowMicros();
  }
  ~TraceSpan() {
    if (pushed_) TraceRecorder::PopSpan();
    if (name_ == nullptr) return;
    TraceRecorder& rec = TraceRecorder::Global();
    if (!rec.enabled()) return;  // disabled mid-span: drop it
    rec.Record(name_, start_us_, rec.NowMicros() - start_us_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_us_ = 0;
  bool pushed_ = false;
};

}  // namespace erminer::obs

#define ERMINER_OBS_CONCAT_INNER(a, b) a##b
#define ERMINER_OBS_CONCAT(a, b) ERMINER_OBS_CONCAT_INNER(a, b)
#define ERMINER_SPAN(name) \
  ::erminer::obs::TraceSpan ERMINER_OBS_CONCAT(erminer_span_, __LINE__)(name)

#endif  // ERMINER_OBS_TRACE_H_
