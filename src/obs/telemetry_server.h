// Embedded HTTP telemetry endpoint: a minimal blocking-accept server on its
// own thread (standard library + POSIX sockets only, keeping src/obs
// dependency-free) that makes a running miner observable mid-flight:
//
//   GET /metrics       Prometheus text exposition of the metrics registry
//                      (counters/gauges/histograms with cumulative buckets)
//   GET /metrics.json  the same snapshot as --metrics-json would write
//   GET /trace.json    Chrome trace JSON of the spans recorded so far
//   GET /healthz       {"status","uptime_seconds","phase","cpu_seconds",
//                       "peak_rss_bytes","num_metrics"}
//   GET /profile?seconds=N&hz=H
//                      collapsed-stack CPU profile (obs/profiler.h),
//                      flamegraph-ready. When no continuous profiler is
//                      armed, runs an N-second burst at H hz (the request
//                      blocks for N seconds; the accept loop serves one
//                      connection at a time, so concurrent scrapes queue).
//                      When --profile-out armed one, returns its
//                      aggregate-so-far without disturbing it.
//
// The server is pull-only: every handler reads a snapshot and serializes it,
// so it never perturbs mining state — rules are bit-identical with the
// server on or off (tests/obs_server_test.cc proves it differentially).
// When no --telemetry-port is given nothing here runs and no socket is ever
// opened.
//
// One request per connection (Connection: close); scrape clients
// (Prometheus, curl, scripts/watch_run.py) are all one-shot, so keep-alive
// would only complicate shutdown.

#ifndef ERMINER_OBS_TELEMETRY_SERVER_H_
#define ERMINER_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

namespace erminer::obs {

/// Names the process's current high-level activity ("mine", "rl/train",
/// "repair", ...) for /healthz. Pass a string literal (stored as a pointer,
/// like span names). Thread-safe.
void SetPhase(const char* phase);
const char* CurrentPhase();

/// Adds (or overwrites) a runtime-resolved label on the erminer_build_info
/// gauge — facts not knowable at compile time, e.g. the dispatched SIMD
/// level (`simd="avx2"`, src/nn/simd.cc). Thread-safe; call before or
/// during serving.
void SetBuildLabel(const std::string& key, const std::string& value);
/// The extra labels as a pre-rendered `,key="value"...` suffix.
std::string BuildLabelSuffix();

struct TelemetryServerOptions {
  int port = 0;  // 0 = ephemeral; read the bound port back via port()
  /// Loopback by default: telemetry has no auth, so exposing it beyond the
  /// host is an explicit decision ("0.0.0.0" to scrape remotely).
  std::string bind_address = "127.0.0.1";
};

class TelemetryServer {
 public:
  TelemetryServer() = default;
  ~TelemetryServer() { Stop(); }

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Binds, listens and spawns the accept thread. Returns false (with
  /// *error set) on socket failure. Calling Start on a running server is an
  /// error.
  bool Start(const TelemetryServerOptions& options, std::string* error);

  /// Wakes the accept loop and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actually-bound port (resolves port 0 requests).
  int port() const { return port_; }

  /// Dispatches one request path (query string allowed, e.g.
  /// "/profile?seconds=1") to its response body + content type; public so
  /// tests can validate handlers without a socket. Returns false for
  /// unknown paths.
  static bool HandlePath(const std::string& path, std::string* body,
                         std::string* content_type);

  /// Process-wide instance the --telemetry-port flags start.
  static TelemetryServer& Global();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace erminer::obs

#endif  // ERMINER_OBS_TELEMETRY_SERVER_H_
