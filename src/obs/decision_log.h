// Decision-provenance event log: the algorithm-level companion to the
// metrics registry. Where metrics answer "how many candidates were pruned",
// the decision log answers "why was *this* candidate pruned" — it records
// every expansion, prune, emission, RL step and repaired cell as a compact,
// versioned, CRC-checked binary stream, so an emitted rule's whole decision
// path (lattice chain for EnuMiner/CTANE, episode trajectory with Q-values
// for RLMiner) and the cells it repaired can be replayed after the run
// (`erminer explain`, tools/decision_stats).
//
// Design constraints (the same ones as metrics.h / trace.h):
//   - Disarmed cost is one relaxed atomic load per call site; nothing is
//     allocated and no branch beyond the flag check runs.
//   - Armed recording appends to a per-thread buffer (registered once per
//     thread, written under a per-buffer mutex that only the flusher ever
//     contends), so miner hot loops never serialize on a global lock. A
//     buffer that outgrows its spill limit drains to the file early.
//   - The library is dependency-free (standard library + POSIX only): obs
//     sits *below* erminer_util, so the encoder and the CRC-32 live here
//     rather than reusing ckpt/serial.h — the framing conventions mirror
//     the ckpt layer (little-endian, magic + version header, CRC over every
//     record, truncation distinguishable from corruption) without a link
//     dependency on it.
//
// On-disk format, version 1 (all integers little-endian):
//   header:  u32 magic "ERDL" (0x4C445245), u32 version
//   record:  u8 type, u32 payload_len, payload bytes,
//            u32 CRC-32 over (type, payload_len, payload)
// Payload layouts per type are in decision_log.cc next to the encoders; a
// rule/state key is u32 count + count x i32. A file killed mid-write parses
// up to the last complete record (ParseDecisionLog reports `truncated`
// rather than an error), which is what makes the SIGINT/SIGTERM flush hook
// useful; a flipped byte fails the record CRC and parsing stops there with
// an error, never yielding a silently wrong event.

#ifndef ERMINER_OBS_DECISION_LOG_H_
#define ERMINER_OBS_DECISION_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace erminer::obs {

inline constexpr uint32_t kDecisionLogMagic = 0x4C445245u;  // "ERDL"
inline constexpr uint32_t kDecisionLogVersion = 1;

enum class DecisionEventType : uint8_t {
  kExpand = 1,  // a candidate admitted for evaluation (child of parent_key)
  kPrune = 2,   // a candidate/subtree cut, with the measure that decided it
  kEmit = 3,    // a rule entered the pool, with its full utility measures
  kRlStep = 4,  // one RLMiner env step: state key, Q-values, eps draw, reward
  kRlTrain = 5, // one DQN update, linking env steps to replay training
  kRepair = 6,  // one repaired cell: rule id, master tuple, old/new value
};

enum class DecisionMiner : uint8_t {
  kEnu = 0,
  kBeam = 1,
  kCtane = 2,
  kRl = 3,
};

enum class PruneReason : uint8_t {
  kSupport = 0,        // support below eta_s (measure: the support)
  kCertain = 1,        // subtree closed, fixes already certain (measure: f_c)
  kDuplicate = 2,      // key already discovered (no measure)
  kBeamWidth = 3,      // fell off the beam (measure: the node's utility)
  kConfidence = 4,     // CTANE group confidence below threshold (measure: min f_c)
  kMasterSupport = 5,  // CTANE master rows below eta_m (measure: the rows)
};

/// RlStep flag bits.
inline constexpr uint8_t kRlStepExplored = 1;   // the eps draw chose explore
inline constexpr uint8_t kRlStepInference = 2;  // inference, not training

/// One decoded event. Only the fields of its type are meaningful; the rest
/// keep their zero/default values (see the payload layouts in the .cc).
struct DecisionEvent {
  DecisionEventType type{};
  uint8_t miner = 0;   // DecisionMiner (expand/prune/emit)
  uint8_t reason = 0;  // PruneReason (prune)
  uint8_t flags = 0;   // kRlStep* bits (rl step)
  int32_t action = -1;         // expand/prune/rl step; CTANE packs p_bits here
  int32_t greedy_action = -1;  // rl step
  uint64_t rule_id = 0;        // emit/repair: the rule's provenance id
  uint64_t episode = 0;        // rl step/train + rl emits
  uint64_t step = 0;           // rl step/train + rl emits
  uint64_t row = 0;            // repair: input row
  int64_t master_row = -1;     // repair: master tuple id (-1 unknown)
  int32_t old_value = -1;      // repair: prior Y value code (-1 = NULL)
  int32_t new_value = -1;      // repair: predicted Y value code
  int64_t support = 0;         // emit
  double certainty = 0, quality = 0, utility = 0;  // emit
  double measure = 0;          // prune trigger value; repair score
  double epsilon = 0, q_chosen = 0, q_greedy = 0, reward = 0;  // rl step
  double loss = 0;             // rl train
  uint64_t replay_size = 0;    // rl train
  std::vector<int32_t> key;         // child/emitted/state key
  std::vector<int32_t> parent_key;  // expand/prune: the parent node's key
};

/// The process-wide decision log. All record methods are thread-safe and
/// cost one relaxed load when the log is not armed.
class DecisionLog {
 public:
  static DecisionLog& Global();

  /// The hot-path gate: call sites that would build vectors or run extra
  /// forward passes for an event guard on this before doing the work.
  static bool Armed() {
    return armed_flag_.load(std::memory_order_relaxed);
  }

  /// Arms the log: writes the header to `path` and registers a flush hook
  /// with the obs flush registry (first Open only), so a SIGINT/SIGTERM or
  /// exit drains the per-thread buffers before the process dies. Returns
  /// false with *error set if the file cannot be opened.
  bool Open(const std::string& path, std::string* error);

  /// Drains every thread buffer to the file (registration order) and
  /// fflushes. Safe to call at any time, from the flush registry included.
  void Flush();

  /// Flush + close; the log disarms. A later Open starts a new file.
  void Close();

  bool armed() const { return Armed(); }
  std::string path() const;

  // --- Recording (no-ops while disarmed) ---------------------------------
  void Expand(DecisionMiner miner, const std::vector<int32_t>& parent_key,
              int32_t action, const std::vector<int32_t>& key);
  void Prune(DecisionMiner miner, PruneReason reason,
             const std::vector<int32_t>& parent_key, int32_t action,
             double measure);
  void Emit(DecisionMiner miner, uint64_t rule_id,
            const std::vector<int32_t>& key, int64_t support, double certainty,
            double quality, double utility, uint64_t episode = 0,
            uint64_t step = 0);
  void RlStep(uint8_t flags, uint64_t episode, uint64_t step,
              const std::vector<int32_t>& state, int32_t action,
              int32_t greedy_action, double epsilon, double q_chosen,
              double q_greedy, double reward);
  void RlTrain(uint64_t step, uint64_t replay_size, double loss);
  void Repair(uint64_t rule_id, uint64_t row, int64_t master_row,
              int32_t old_value, int32_t new_value, double score);

  // --- Live summary (GET /decisions, scripts/watch_run.py) ---------------
  /// {"armed":...,"path":...,"events":{...},"emits":[...last tail...],
  ///  "prune_reasons":{...over the last tail prune events...}}.
  std::string SummaryJson(size_t tail) const;

  uint64_t events_recorded() const;
  uint64_t emits_recorded() const;
  uint64_t repairs_recorded() const;

 private:
  DecisionLog() = default;

  struct ThreadBuffer {
    std::mutex mutex;
    std::string bytes;  // whole encoded records only
  };

  ThreadBuffer& LocalBuffer();
  /// Appends one encoded record to the calling thread's buffer, spilling to
  /// the file when the buffer outgrows the spill limit.
  void Append(std::string_view record);
  /// Writes one buffer's bytes to the file under the file mutex. Requires
  /// the buffer's own mutex held by the caller.
  void DrainLocked(ThreadBuffer* buf);

  static std::atomic<bool> armed_flag_;

  mutable std::mutex registry_mutex_;  // buffers_ + next emit/prune rings
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;

  mutable std::mutex file_mutex_;  // file_, path_
  std::FILE* file_ = nullptr;
  std::string path_;

  // Live summary state (mutex-guarded rings + lock-free totals).
  struct EmitSummary {
    uint64_t rule_id;
    uint8_t miner;
    double utility;
  };
  mutable std::mutex summary_mutex_;
  std::deque<EmitSummary> recent_emits_;   // capped
  std::deque<uint8_t> recent_prunes_;      // PruneReason bytes, capped
  std::atomic<uint64_t> type_counts_[8] = {};
  std::atomic<uint64_t> dropped_{0};
};

/// Result of parsing a decision log. `events` holds every record up to the
/// first problem; `truncated` marks a clean prefix cut mid-record (a killed
/// writer — the events seen are all valid); a nonempty `error` marks real
/// corruption (bad magic/version, CRC mismatch, malformed payload).
struct DecisionLogContents {
  std::vector<DecisionEvent> events;
  uint32_t version = 0;
  bool truncated = false;
  std::string error;

  bool ok() const { return error.empty(); }
};

DecisionLogContents ParseDecisionLog(std::string_view data);
DecisionLogContents ReadDecisionLogFile(const std::string& path);

/// Encodes one event to its binary record form (header excluded) — the
/// writer uses this internally; tests use it to build corrupt inputs.
std::string EncodeDecisionEvent(const DecisionEvent& event);

/// The CRC-32 (IEEE 802.3, reflected) used by the record framing. Exposed
/// for tests that hand-build records.
uint32_t DecisionLogCrc32(const void* data, size_t n);

const char* DecisionEventTypeName(DecisionEventType type);
const char* DecisionMinerName(DecisionMiner miner);
const char* PruneReasonName(PruneReason reason);

}  // namespace erminer::obs

#endif  // ERMINER_OBS_DECISION_LOG_H_
