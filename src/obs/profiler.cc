#include "obs/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace erminer::obs {

void ProfilerHandleSample(Profiler* p);  // friend of Profiler

namespace {

/// The profiler the SIGPROF handler feeds; nullptr disarms the handler
/// without uninstalling it (see Stop: restoring SIG_DFL would kill the
/// process if one straggler signal were still pending).
std::atomic<Profiler*> g_active{nullptr};

/// The calling thread's claimed ring (Profiler::Ring*, type-erased because
/// Ring is private). Rings live for the rest of the process once allocated,
/// so a cached pointer stays valid across profiling sessions.
thread_local void* t_ring = nullptr;

void ProfilerHandleSampleActive();

extern "C" void ProfilerSigprofHandler(int /*sig*/, siginfo_t* /*info*/,
                                       void* /*ucontext*/) {
  const int saved_errno = errno;
  ProfilerHandleSampleActive();
  errno = saved_errno;
}

int ClampHz(int hz) { return std::max(1, std::min(hz, 1000)); }

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Profiler& Profiler::Global() {
  // Leaked: rings claimed by threads must outlive static destruction.
  static Profiler* profiler = new Profiler();
  return *profiler;
}

namespace {
void ProfilerHandleSampleActive() {
  Profiler* p = g_active.load(std::memory_order_acquire);
  if (p != nullptr) ProfilerHandleSample(p);
}
}  // namespace

void ProfilerHandleSample(Profiler* p) { p->HandleSample(); }

void Profiler::HandleSample() {
  // Async-signal-safe: no allocation, no locks; only same-thread TLS reads,
  // lock-free atomics and backtrace(3) (warmed up in Start).
  Ring* ring = static_cast<Ring*>(t_ring);
  if (ring == nullptr) {
    const uint32_t idx = rings_claimed_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= rings_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ring = rings_[idx];
    t_ring = ring;
  }
  const uint32_t head = ring->head.load(std::memory_order_relaxed);
  const uint32_t tail = ring->tail.load(std::memory_order_acquire);
  if (head - tail >= ring->slots.size()) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SampleRecord& rec = ring->slots[head & ring_mask_];
  const int n = backtrace(rec.frames, kMaxFrames);
  rec.depth = n > 0 ? n : 0;
  rec.truncated = n == kMaxFrames ? 1 : 0;
  rec.span = TraceRecorder::CurrentSpanNameSignalSafe();
  ring->head.store(head + 1, std::memory_order_release);
}

bool Profiler::Start(const ProfilerOptions& options, std::string* error) {
  std::lock_guard<std::mutex> control(control_mutex_);
  if (running()) {
    if (error != nullptr) *error = "profiler already running";
    return false;
  }
  options_ = options;
  options_.hz = ClampHz(options_.hz);

  // Force glibc to load its unwinder (the first backtrace call may dlopen
  // libgcc, which must never happen inside the signal handler).
  {
    void* warm[4];
    backtrace(warm, 4);
  }

  if (rings_.empty()) {
    const size_t cap = NextPow2(std::max<size_t>(16, options_.ring_capacity));
    ring_mask_ = static_cast<uint32_t>(cap - 1);
    const size_t nthreads = std::max<size_t>(1, options_.max_threads);
    rings_.reserve(nthreads);
    for (size_t i = 0; i < nthreads; ++i) {
      Ring* ring = new Ring();  // leaked with the singleton
      ring->slots.resize(cap);
      rings_.push_back(ring);
    }
  }
  // No handler is armed between sessions, so resetting rings cannot race a
  // producer.
  for (Ring* ring : rings_) {
    ring->tail.store(ring->head.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
  samples_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  truncated_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(aggregate_mutex_);
    aggregate_.clear();
  }

  // Samples without an open span render under "(no_span)"; arming the span
  // stack makes every instrumented region attributable.
  TraceRecorder::Global().EnableSpanStack();

  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_sigaction = ProfilerSigprofHandler;
  sa.sa_flags = SA_RESTART | SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGPROF, &sa, nullptr) != 0) {
    if (error != nullptr) {
      *error = std::string("sigaction(SIGPROF): ") + std::strerror(errno);
    }
    return false;
  }
  g_active.store(this, std::memory_order_release);

  itimerval timer;
  std::memset(&timer, 0, sizeof timer);
  const long period_us = std::max(1000000L / options_.hz, 1L);
  timer.it_interval.tv_sec = period_us / 1000000;
  timer.it_interval.tv_usec = period_us % 1000000;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_active.store(nullptr, std::memory_order_release);
    if (error != nullptr) {
      *error = std::string("setitimer(ITIMER_PROF): ") + std::strerror(errno);
    }
    return false;
  }

  stop_requested_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  drain_thread_ = std::thread([this] { DrainLoop(); });
  return true;
}

void Profiler::Stop() {
  std::lock_guard<std::mutex> control(control_mutex_);
  if (!running()) return;
  itimerval zero;
  std::memset(&zero, 0, sizeof zero);
  ::setitimer(ITIMER_PROF, &zero, nullptr);
  // The handler stays installed but inert (g_active == nullptr): restoring
  // SIG_DFL here would terminate the process if one last SIGPROF were still
  // in flight.
  g_active.store(nullptr, std::memory_order_release);
  stop_requested_.store(true, std::memory_order_relaxed);
  if (drain_thread_.joinable()) drain_thread_.join();
  DrainOnce();  // samples recorded between the last tick and the disarm
  running_.store(false, std::memory_order_release);
}

void Profiler::DrainLoop() {
  TraceRecorder::Global().SetCurrentThreadName("profiler-drain");
  // Keep the profiler out of its own profiles: with SIGPROF blocked here the
  // kernel delivers the tick to a thread doing real work instead.
  sigset_t block;
  sigemptyset(&block);
  sigaddset(&block, SIGPROF);
  pthread_sigmask(SIG_BLOCK, &block, nullptr);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    DrainOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

uint64_t Profiler::DrainOnce() {
  uint64_t drained = 0;
  uint64_t truncated = 0;
  uint64_t ring_dropped = 0;
  std::lock_guard<std::mutex> lk(aggregate_mutex_);
  const uint32_t claimed =
      std::min<uint32_t>(rings_claimed_.load(std::memory_order_acquire),
                         static_cast<uint32_t>(rings_.size()));
  std::string key;
  for (uint32_t i = 0; i < claimed; ++i) {
    Ring* ring = rings_[i];
    uint32_t tail = ring->tail.load(std::memory_order_relaxed);
    const uint32_t head = ring->head.load(std::memory_order_acquire);
    for (; tail != head; ++tail) {
      const SampleRecord& rec = ring->slots[tail & ring_mask_];
      key.assign(reinterpret_cast<const char*>(&rec.span), sizeof rec.span);
      key.append(reinterpret_cast<const char*>(rec.frames),
                 static_cast<size_t>(rec.depth) * sizeof(void*));
      ++aggregate_[key];
      ++drained;
      truncated += static_cast<uint64_t>(rec.truncated);
    }
    ring->tail.store(tail, std::memory_order_release);
    ring_dropped += ring->dropped.exchange(0, std::memory_order_relaxed);
  }
  samples_.fetch_add(drained, std::memory_order_relaxed);
  truncated_.fetch_add(truncated, std::memory_order_relaxed);
  dropped_.fetch_add(ring_dropped, std::memory_order_relaxed);
  if (drained > 0) ERMINER_COUNT("profiler/samples", drained);
  if (truncated > 0) ERMINER_COUNT("profiler/truncated_stacks", truncated);
  if (ring_dropped > 0) ERMINER_COUNT("profiler/dropped", ring_dropped);
  return drained;
}

namespace {

/// Frames from the signal delivery machinery itself, filtered out of the
/// rendered stacks (they sit between the leaf sample and the interrupted
/// code on every sample).
bool IsProfilerInternalFrame(const std::string& name) {
  return name.find("SigprofHandler") != std::string::npos ||
         name.find("Profiler::HandleSample") != std::string::npos ||
         name.find("ProfilerHandleSample") != std::string::npos ||
         name.find("__restore_rt") != std::string::npos ||
         name.find("backtrace") != std::string::npos;
}

void AppendSanitized(std::string* out, const std::string& frame) {
  for (char c : frame) {
    // ';' separates frames and ' ' separates the count in collapsed-stack
    // format; newlines would break line-oriented consumers.
    if (c == ';' || c == '\n' || c == '\r') {
      out->push_back(':');
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string Profiler::SymbolizeFrame(void* pc) const {
  auto it = symbol_cache_.find(pc);
  if (it != symbol_cache_.end()) return it->second;
  // backtrace records return addresses; step back one byte so a call as the
  // last instruction of a function resolves to that function, not the next.
  void* lookup = static_cast<char*>(pc) - 1;
  Dl_info info;
  std::memset(&info, 0, sizeof info);
  std::string name;
  if (::dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
  } else if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    char buf[128];
    std::snprintf(buf, sizeof buf, "%s+0x%zx", base,
                  reinterpret_cast<size_t>(pc) -
                      reinterpret_cast<size_t>(info.dli_fbase));
    name = buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%zx", reinterpret_cast<size_t>(pc));
    name = buf;
  }
  symbol_cache_.emplace(pc, name);
  return name;
}

std::string Profiler::CollapsedStacks() const {
  std::lock_guard<std::mutex> lk(aggregate_mutex_);
  // Distinct pc chains can symbolize to the same frame chain (inlining,
  // unresolved frames); merge them before rendering.
  std::map<std::string, uint64_t> lines;
  for (const auto& [key, count] : aggregate_) {
    const char* span = nullptr;
    std::memcpy(&span, key.data(), sizeof span);
    const size_t num_frames = (key.size() - sizeof span) / sizeof(void*);
    std::vector<std::string> frames;  // leaf first
    frames.reserve(num_frames);
    for (size_t i = 0; i < num_frames; ++i) {
      void* pc = nullptr;
      std::memcpy(&pc, key.data() + sizeof span + i * sizeof pc, sizeof pc);
      frames.push_back(SymbolizeFrame(pc));
    }
    // Trim the handler/trampoline prefix off the leaf end.
    size_t first = 0;
    while (first < frames.size() && IsProfilerInternalFrame(frames[first])) {
      ++first;
    }
    // glibc does not export __restore_rt, so the signal trampoline right
    // after the handler frames symbolizes as a bare "libc.so.6+0x..." —
    // trim that one too, but only in this position (a real unsymbolized
    // libc leaf elsewhere is kept).
    if (first > 0 && first < frames.size() &&
        frames[first].compare(0, 4, "libc") == 0 &&
        frames[first].find("+0x") != std::string::npos) {
      ++first;
    }
    std::string line;
    AppendSanitized(&line, span != nullptr ? span : "(no_span)");
    for (size_t i = frames.size(); i > first; --i) {
      line.push_back(';');
      AppendSanitized(&line, frames[i - 1]);
    }
    lines[line] += count;
  }
  std::string out;
  for (const auto& [line, count] : lines) {
    out += line;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

bool Profiler::WriteCollapsedFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << CollapsedStacks();
  return static_cast<bool>(os);
}

std::string ParseProfileOutSpec(const std::string& spec, int* hz) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) return spec;
  const std::string suffix = spec.substr(colon + 1);
  for (char c : suffix) {
    if (c < '0' || c > '9') return spec;  // a path like dir:name/prof.txt
  }
  if (hz != nullptr) *hz = ClampHz(std::atoi(suffix.c_str()));
  return spec.substr(0, colon);
}

}  // namespace erminer::obs
