// Deterministic fault injection for crash-safety tests.
//
// A fault point is a named place in the code (the RL train loop, the
// checkpoint writer, the manifest writer) where the process can be made to
// die exactly as a preemption or OOM kill would: with SIGKILL, no handlers,
// no flushing, no destructors. Arm one point per process, either via the
// environment,
//
//   ERMINER_FAULT=<point>:<n>    die on the n-th hit of <point> (n >= 1)
//
// or programmatically with ArmFault (tests fork a child and arm it there).
// Unarmed fault points cost one relaxed atomic load — they are compiled
// into release binaries so the tested binary is the shipped binary.
//
// The point names in use are listed in docs/checkpointing.md and returned
// by KnownFaultPoints() so the crash-resume harness can iterate them.

#ifndef ERMINER_OBS_FAULT_H_
#define ERMINER_OBS_FAULT_H_

#include <string>
#include <vector>

namespace erminer::obs {

/// Marks a fault point. If armed for `name` and this is the n-th hit, the
/// process raises SIGKILL (after one line to stderr). Thread-safe.
void FaultPoint(const char* name);

/// Arms a fault programmatically (overrides any earlier arming). `nth` is
/// 1-based: 1 kills at the first hit.
void ArmFault(const std::string& name, uint64_t nth);

/// Parses a spec of the environment form "<point>:<n>". Returns false (and
/// arms nothing) on a malformed spec.
bool ArmFaultFromSpec(const std::string& spec);

/// True if any fault is armed in this process.
bool FaultArmed();

/// Times the armed point has been hit so far (0 when unarmed).
uint64_t FaultHits();

/// Every fault point name compiled into the training/checkpoint path, in
/// execution order. The crash-resume test kills a run at each of these.
const std::vector<std::string>& KnownFaultPoints();

}  // namespace erminer::obs

#endif  // ERMINER_OBS_FAULT_H_
