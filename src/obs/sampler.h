// Periodic metrics sampler: a background thread snapshots the registry
// every interval_ms into a bounded ring buffer and (optionally) streams
// counter deltas as JSONL, turning end-of-run totals into true time series
// (episode return per minute, cache hit rate over the run, RSS growth).
//
// Stream format (--metrics-stream=FILE), one object per line, flushed per
// line so `tail -f` works and a crashed run keeps everything sampled so far:
//
//   {"t":12.003,"cpu_seconds":11.8,"rss_bytes":104857600,
//    "counters":{"enuminer/nodes_expanded":4113,...},   // deltas, non-zero
//    "gauges":{"rl/episode_return":1.25,...}}           // current values
//
// The sampler only reads snapshots — it never touches miner state, so
// results are bit-identical with sampling on or off.

#ifndef ERMINER_OBS_SAMPLER_H_
#define ERMINER_OBS_SAMPLER_H_

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace erminer::obs {

struct SamplerOptions {
  int interval_ms = 1000;
  /// Ring capacity: oldest samples are evicted first. ~512 one-second
  /// samples cover the last 8.5 minutes of a run at default settings.
  size_t ring_capacity = 512;
  /// Empty = keep samples in memory only (no JSONL stream).
  std::string stream_path;
};

struct Sample {
  double t_seconds = 0;  // since sampler start
  double cpu_seconds = 0;
  size_t rss_bytes = 0;
  MetricsSnapshot snapshot;
};

class Sampler {
 public:
  explicit Sampler(SamplerOptions options = {});
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Opens the stream file (if configured) and spawns the sampling thread.
  /// Returns false with *error set when the stream can't be opened.
  bool Start(std::string* error);

  /// Takes a final sample, joins the thread and closes the stream.
  /// Idempotent.
  void Stop();

  /// One synchronous sample tick. The background thread calls this on its
  /// schedule; tests call it directly for deterministic ring/stream
  /// contents (no Start needed).
  void SampleOnce();

  /// Ring contents, oldest first.
  std::vector<Sample> Samples() const;
  /// Total ticks taken, including samples already evicted from the ring.
  size_t num_samples_taken() const;
  const SamplerOptions& options() const { return options_; }
  bool running() const { return running_; }

 private:
  void Loop();
  /// Serializes `sample` relative to `prev` (counter deltas); exposed via
  /// SampleOnce writing to the stream.
  static std::string ToJsonLine(const Sample& sample,
                                const MetricsSnapshot& prev);

  SamplerOptions options_;
  std::chrono::steady_clock::time_point start_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;

  std::deque<Sample> ring_;
  size_t num_taken_ = 0;
  MetricsSnapshot last_streamed_;
  std::FILE* stream_ = nullptr;
};

}  // namespace erminer::obs

#endif  // ERMINER_OBS_SAMPLER_H_
