#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/timer.h"  // header-only (CpuSeconds/PeakRssBytes); no link dep

// Build provenance for the erminer_build_info gauge (standard Prometheus
// idiom: a constant-1 gauge whose labels carry the build facts).
#ifndef ERMINER_GIT_DESCRIBE
#define ERMINER_GIT_DESCRIBE "unknown"
#endif
#ifndef ERMINER_BUILD_TYPE
#define ERMINER_BUILD_TYPE "unknown"
#endif

namespace erminer::obs {

namespace {

std::atomic<const char*> g_phase{"idle"};

std::mutex& BuildLabelMutex() {
  static std::mutex* m = new std::mutex();
  return *m;
}
std::map<std::string, std::string>& BuildLabelMap() {
  static auto* labels = new std::map<std::string, std::string>();
  return *labels;
}

/// Clamped integer query parameter: "...?seconds=2&hz=200".
long QueryParam(const std::string& query, const char* key, long dflt,
                long lo, long hi) {
  const std::string needle = std::string(key) + "=";
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    if (query.compare(pos, needle.size(), needle) == 0) {
      const long v = std::atol(query.substr(pos + needle.size(),
                                            end - pos - needle.size())
                                   .c_str());
      return std::max(lo, std::min(v, hi));
    }
    pos = end + 1;
  }
  return dflt;
}

std::string HttpResponse(int status, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

void SetPhase(const char* phase) {
  g_phase.store(phase, std::memory_order_relaxed);
}

const char* CurrentPhase() {
  return g_phase.load(std::memory_order_relaxed);
}

void SetBuildLabel(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(BuildLabelMutex());
  BuildLabelMap()[key] = value;
}

std::string BuildLabelSuffix() {
  std::lock_guard<std::mutex> lock(BuildLabelMutex());
  std::string out;
  for (const auto& [key, value] : BuildLabelMap()) {
    out += "," + key + "=\"" + value + "\"";
  }
  return out;
}

TelemetryServer& TelemetryServer::Global() {
  static TelemetryServer* server = new TelemetryServer();
  return *server;
}

bool TelemetryServer::Start(const TelemetryServerOptions& options,
                            std::string* error) {
  auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };
  if (running()) {
    if (error != nullptr) *error = "telemetry server already running";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (error != nullptr) {
      *error = "bad bind address " + options.bind_address;
    }
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail("bind " + options.bind_address + ":" +
                std::to_string(options.port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail("listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  started_ = std::chrono::steady_clock::now();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void TelemetryServer::Stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() wakes the blocking accept (it returns EINVAL); the fd itself
  // is closed only after the thread has joined, so the accept loop never
  // races a reused descriptor.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void TelemetryServer::AcceptLoop() {
  TraceRecorder::Global().SetCurrentThreadName("telemetry-server");
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // shutdown() or a fatal socket error
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void TelemetryServer::ServeConnection(int fd) {
  // A stalled or malicious client must not wedge the single accept-loop
  // thread: bound both directions. 5 s receive covers any sane scrape
  // client; 30 s send covers a /profile burst response over a slow link.
  timeval rcv_timeout{};
  rcv_timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv_timeout,
               sizeof rcv_timeout);
  timeval snd_timeout{};
  snd_timeout.tv_sec = 30;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd_timeout,
               sizeof snd_timeout);
  // One small request; anything beyond 4 KiB is not a scrape we serve.
  char buf[4096];
  ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
  if (n <= 0) return;  // includes EAGAIN from a client that sent nothing
  buf[n] = '\0';
  ERMINER_COUNT("telemetry/requests", 1);
  // Request line: METHOD SP PATH SP VERSION.
  const char* sp1 = std::strchr(buf, ' ');
  const char* sp2 = sp1 != nullptr ? std::strchr(sp1 + 1, ' ') : nullptr;
  if (sp1 == nullptr || sp2 == nullptr ||
      std::strncmp(buf, "GET ", 4) != 0) {
    WriteAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n"));
    return;
  }
  // The query string stays attached; HandlePath splits it (the /profile
  // handler reads seconds/hz from it).
  std::string path(sp1 + 1, sp2);

  std::string body, content_type;
  if (!HandlePath(path, &body, &content_type)) {
    ERMINER_COUNT("telemetry/not_found", 1);
    WriteAll(fd, HttpResponse(404, "Not Found", "text/plain",
                              "unknown path " + path + "\n"));
    return;
  }
  WriteAll(fd, HttpResponse(200, "OK", content_type, body));
}

bool TelemetryServer::HandlePath(const std::string& path_and_query,
                                 std::string* body,
                                 std::string* content_type) {
  std::string path = path_and_query;
  std::string query;
  const size_t qmark = path.find('?');
  if (qmark != std::string::npos) {
    query = path.substr(qmark + 1);
    path.resize(qmark);
  }
  if (path == "/metrics") {
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    *body = snap.ToPrometheusText();
    // The phase is a label, not a registry value; append it so scrapers can
    // plot counters against what the process was doing at the time.
    *body += "# TYPE erminer_phase gauge\nerminer_phase{phase=\"";
    *body += CurrentPhase();
    *body += "\"} 1\n";
    // Build provenance (constant-1 info gauge, the Prometheus idiom for
    // joining build facts onto every other series).
    *body += "# TYPE erminer_build_info gauge\n"
             "erminer_build_info{git=\"" ERMINER_GIT_DESCRIBE
             "\",compiler=\"" __VERSION__
             "\",build_type=\"" ERMINER_BUILD_TYPE "\"";
    *body += BuildLabelSuffix();
    *body += "} 1\n";
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  }
  if (path == "/profile") {
    const long seconds = QueryParam(query, "seconds", 1, 1, 30);
    const long hz = QueryParam(query, "hz", 99, 1, 1000);
    Profiler& profiler = Profiler::Global();
    ERMINER_COUNT("telemetry/profile_requests", 1);
    if (profiler.running()) {
      // A continuous profiler (--profile-out) owns the timer; serve its
      // aggregate so far rather than restarting it.
      *body = "# continuous profile in progress; aggregate so far\n";
      *body += profiler.CollapsedStacks();
    } else {
      ProfilerOptions popts;
      popts.hz = static_cast<int>(hz);
      std::string error;
      if (!profiler.Start(popts, &error)) {
        *body = "profiler unavailable: " + error + "\n";
        *content_type = "text/plain";
        return true;
      }
      std::this_thread::sleep_for(std::chrono::seconds(seconds));
      profiler.Stop();
      *body = profiler.CollapsedStacks();
      if (body->empty()) {
        *body = "# no samples (process idle or blocked for the whole "
                "window; ITIMER_PROF ticks on CPU time)\n";
      }
    }
    *content_type = "text/plain";
    return true;
  }
  if (path == "/metrics.json") {
    *body = MetricsRegistry::Global().ToJson() + "\n";
    *content_type = "application/json";
    return true;
  }
  if (path == "/trace.json") {
    *body = TraceRecorder::Global().ToJson() + "\n";
    *content_type = "application/json";
    return true;
  }
  if (path == "/decisions") {
    // Live summary of the decision log (docs/observability.md): event
    // counts, prune-reason breakdown and the last-N rule emissions.
    const long tail = QueryParam(query, "tail", 32, 1, 4096);
    *body = DecisionLog::Global().SummaryJson(static_cast<size_t>(tail));
    *body += "\n";
    *content_type = "application/json";
    return true;
  }
  if (path == "/healthz" || path == "/") {
    const TelemetryServer& server = Global();
    const double uptime =
        server.running()
            ? std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - server.started_)
                  .count()
            : 0.0;
    char line[384];
    std::snprintf(line, sizeof line,
                  "{\"status\":\"ok\",\"uptime_seconds\":%.3f,"
                  "\"phase\":\"%s\",\"cpu_seconds\":%.3f,"
                  "\"peak_rss_bytes\":%zu,\"num_metrics\":%zu,"
                  "\"rules_emitted\":%llu,\"cells_repaired\":%llu}\n",
                  uptime, CurrentPhase(), CpuSeconds(), PeakRssBytes(),
                  MetricsRegistry::Global().num_metrics(),
                  static_cast<unsigned long long>(
                      MetricsRegistry::Global()
                          .GetCounter("miner/rules_emitted")
                          .value()),
                  static_cast<unsigned long long>(
                      MetricsRegistry::Global()
                          .GetCounter("repair/cells_repaired")
                          .value()));
    *body = line;
    *content_type = "application/json";
    return true;
  }
  return false;
}

}  // namespace erminer::obs
