#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"  // header-only (CpuSeconds/PeakRssBytes); no link dep

namespace erminer::obs {

namespace {

std::atomic<const char*> g_phase{"idle"};

std::string HttpResponse(int status, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

void SetPhase(const char* phase) {
  g_phase.store(phase, std::memory_order_relaxed);
}

const char* CurrentPhase() {
  return g_phase.load(std::memory_order_relaxed);
}

TelemetryServer& TelemetryServer::Global() {
  static TelemetryServer* server = new TelemetryServer();
  return *server;
}

bool TelemetryServer::Start(const TelemetryServerOptions& options,
                            std::string* error) {
  auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    return false;
  };
  if (running()) {
    if (error != nullptr) *error = "telemetry server already running";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (error != nullptr) {
      *error = "bad bind address " + options.bind_address;
    }
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail("bind " + options.bind_address + ":" +
                std::to_string(options.port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return fail("listen");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  started_ = std::chrono::steady_clock::now();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void TelemetryServer::Stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() wakes the blocking accept (it returns EINVAL); the fd itself
  // is closed only after the thread has joined, so the accept loop never
  // races a reused descriptor.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void TelemetryServer::AcceptLoop() {
  TraceRecorder::Global().SetCurrentThreadName("telemetry-server");
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // shutdown() or a fatal socket error
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void TelemetryServer::ServeConnection(int fd) {
  // One small request; anything beyond 4 KiB is not a scrape we serve.
  char buf[4096];
  ssize_t n = ::recv(fd, buf, sizeof buf - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  ERMINER_COUNT("telemetry/requests", 1);
  // Request line: METHOD SP PATH SP VERSION.
  const char* sp1 = std::strchr(buf, ' ');
  const char* sp2 = sp1 != nullptr ? std::strchr(sp1 + 1, ' ') : nullptr;
  if (sp1 == nullptr || sp2 == nullptr ||
      std::strncmp(buf, "GET ", 4) != 0) {
    WriteAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n"));
    return;
  }
  std::string path(sp1 + 1, sp2);
  size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  std::string body, content_type;
  if (!HandlePath(path, &body, &content_type)) {
    ERMINER_COUNT("telemetry/not_found", 1);
    WriteAll(fd, HttpResponse(404, "Not Found", "text/plain",
                              "unknown path " + path + "\n"));
    return;
  }
  WriteAll(fd, HttpResponse(200, "OK", content_type, body));
}

bool TelemetryServer::HandlePath(const std::string& path, std::string* body,
                                 std::string* content_type) {
  if (path == "/metrics") {
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    *body = snap.ToPrometheusText();
    // The phase is a label, not a registry value; append it so scrapers can
    // plot counters against what the process was doing at the time.
    *body += "# TYPE erminer_phase gauge\nerminer_phase{phase=\"";
    *body += CurrentPhase();
    *body += "\"} 1\n";
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  }
  if (path == "/metrics.json") {
    *body = MetricsRegistry::Global().ToJson() + "\n";
    *content_type = "application/json";
    return true;
  }
  if (path == "/trace.json") {
    *body = TraceRecorder::Global().ToJson() + "\n";
    *content_type = "application/json";
    return true;
  }
  if (path == "/healthz" || path == "/") {
    const TelemetryServer& server = Global();
    const double uptime =
        server.running()
            ? std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - server.started_)
                  .count()
            : 0.0;
    char line[256];
    std::snprintf(line, sizeof line,
                  "{\"status\":\"ok\",\"uptime_seconds\":%.3f,"
                  "\"phase\":\"%s\",\"cpu_seconds\":%.3f,"
                  "\"peak_rss_bytes\":%zu,\"num_metrics\":%zu}\n",
                  uptime, CurrentPhase(), CpuSeconds(), PeakRssBytes(),
                  MetricsRegistry::Global().num_metrics());
    *body = line;
    *content_type = "application/json";
    return true;
  }
  return false;
}

}  // namespace erminer::obs
