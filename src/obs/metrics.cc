#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace erminer::obs {

namespace {

/// Default decade grid for histograms registered without explicit bounds:
/// 1e-6, 1e-5, ..., 1e3 (covers sub-microsecond timings through seconds,
/// and typical loss magnitudes).
std::vector<double> DefaultBounds() {
  std::vector<double> b;
  for (int e = -6; e <= 3; ++e) {
    double v = 1.0;
    for (int i = 0; i < (e < 0 ? -e : e); ++i) v *= 10.0;
    b.push_back(e < 0 ? 1.0 / v : v);
  }
  return b;
}

void AtomicAddDouble(std::atomic<double>* a, double d) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

/// JSON numbers: counters print as integers, doubles with enough precision
/// to round-trip typical values; NaN/inf (never produced by our metrics,
/// but cheap to guard) print as 0.
std::string JsonDouble(double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultBounds();
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  // First bucket whose upper bound admits v; the overflow bucket otherwise.
  size_t b = std::upper_bound(bounds_.begin(), bounds_.end(), v) -
             bounds_.begin();
  if (b > 0 && bounds_[b - 1] == v) b -= 1;  // inclusive upper bounds
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, v);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so instrumented code in static destructors stays safe.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lk(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData d;
    d.bounds = h->bounds();
    d.buckets = h->bucket_counts();
    d.count = h->count();
    d.sum = h->sum();
    snap.histograms[name] = std::move(d);
  }
  return snap;
}

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << ToJson() << "\n";
  return static_cast<bool>(os);
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

double MetricsSnapshot::HistogramData::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < target) continue;
    // The overflow bucket has no upper bound; clamp to the last finite one.
    if (b >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double lo = b == 0 ? std::min(0.0, bounds[0]) : bounds[b - 1];
    const double hi = bounds[b];
    const double frac = (target - before) / static_cast<double>(buckets[b]);
    return lo + (hi - lo) * frac;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot d = *this;
  for (auto& [name, v] : d.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) v = v >= it->second ? v - it->second : v;
  }
  for (auto& [name, h] : d.histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) continue;
    const HistogramData& e = it->second;
    if (h.count < e.count || h.buckets.size() != e.buckets.size()) continue;
    for (size_t i = 0; i < h.buckets.size(); ++i) h.buckets[i] -= e.buckets[i];
    h.count -= e.count;
    h.sum -= e.sum;
  }
  return d;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, name);
    out += ":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, name);
    out += ":" + JsonDouble(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, name);
    out += ":{\"bounds\":[";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ",";
      out += JsonDouble(h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(h.buckets[i]);
    }
    out += "],\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + JsonDouble(h.sum);
    out += ",\"p50\":" + JsonDouble(h.Quantile(0.50));
    out += ",\"p90\":" + JsonDouble(h.Quantile(0.90));
    out += ",\"p99\":" + JsonDouble(h.Quantile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  // Prometheus metric names admit [a-zA-Z0-9_:] only; our registry names
  // use "<subsystem>/<event>", so "/" (and any other byte) maps to "_".
  auto prom_name = [](const std::string& name) {
    std::string out = "erminer_";
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      out.push_back(ok ? c : '_');
    }
    return out;
  };
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + JsonDouble(v) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      const std::string le =
          b < h.bounds.size() ? JsonDouble(h.bounds[b]) : "+Inf";
      out += p + "_bucket{le=\"" + le + "\"} " + std::to_string(cumulative) +
             "\n";
    }
    out += p + "_sum " + JsonDouble(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsSnapshot::CountersJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (v == 0) continue;
    if (!first) out += ",";
    first = false;
    AppendQuoted(&out, name);
    out += ":" + std::to_string(v);
  }
  out += "}";
  return out;
}

}  // namespace erminer::obs
