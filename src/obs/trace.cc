#include "obs/trace.h"

#include <algorithm>
#include <fstream>

namespace erminer::obs {

namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s; ++s) {
    if (*s == '"' || *s == '\\') out->push_back('\\');
    out->push_back(*s);
  }
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  // Leaked: spans in static destructors (and pool workers shutting down
  // after main) must still find a live recorder.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  // The shared_ptr keeps the buffer alive in buffers_ after thread exit, so
  // events recorded by short-lived threads survive until export.
  thread_local std::shared_ptr<ThreadBuffer> local = [this] {
    auto buf = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lk(mutex_);
    buf->tid = next_tid_++;
    buf->name = buf->tid == 0 ? "main" : "";
    buffers_.push_back(buf);
    return buf;
  }();
  return *local;
}

void TraceRecorder::Enable() {
  Clear();
  {
    std::lock_guard<std::mutex> lk(mutex_);
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

namespace {
// The calling thread's span stack, resolved (and registered) on first push.
// A raw pointer into the thread's ThreadBuffer, which the recorder keeps
// alive forever via shared_ptr — so a SIGPROF handler can dereference it at
// any point after registration without synchronization beyond the cells'
// own atomics.
thread_local TraceRecorder::SpanStack* t_span_stack = nullptr;
}  // namespace

void TraceRecorder::EnableSpanStack() {
  span_stack_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::DisableSpanStack() {
  span_stack_.store(false, std::memory_order_relaxed);
}

const char* TraceRecorder::CurrentSpanName() {
  return CurrentSpanNameSignalSafe();
}

const char* TraceRecorder::CurrentSpanNameSignalSafe() {
  const SpanStack* s = t_span_stack;
  if (s == nullptr) return nullptr;
  int d = s->depth.load(std::memory_order_relaxed);
  if (d <= 0) return nullptr;
  if (d > SpanStack::kMaxDepth) d = SpanStack::kMaxDepth;
  return s->names[d - 1].load(std::memory_order_relaxed);
}

void TraceRecorder::PushSpan(const char* name) {
  SpanStack* s = t_span_stack;
  if (s == nullptr) {
    // First span on this thread: registering the buffer allocates and takes
    // the registry mutex, but only once per thread and never from a signal
    // context (spans are pushed from normal code).
    s = t_span_stack = &Global().LocalBuffer().spans;
  }
  const int d = s->depth.load(std::memory_order_relaxed);
  if (d < SpanStack::kMaxDepth) {
    s->names[d].store(name, std::memory_order_relaxed);
  }
  s->depth.store(d + 1, std::memory_order_release);
}

void TraceRecorder::PopSpan() {
  SpanStack* s = t_span_stack;
  if (s == nullptr) return;
  const int d = s->depth.load(std::memory_order_relaxed);
  if (d > 0) s->depth.store(d - 1, std::memory_order_release);
}

std::vector<TraceRecorder::SpanStackSnapshot> TraceRecorder::AllSpanStacks()
    const {
  std::vector<SpanStackSnapshot> out;
  std::lock_guard<std::mutex> lk(mutex_);
  out.reserve(buffers_.size());
  for (const auto& buf : buffers_) {
    SpanStackSnapshot snap;
    snap.tid = buf->tid;
    {
      std::lock_guard<std::mutex> blk(buf->mutex);
      snap.thread_name = buf->name;
    }
    int d = buf->spans.depth.load(std::memory_order_acquire);
    if (d > SpanStack::kMaxDepth) d = SpanStack::kMaxDepth;
    for (int i = 0; i < d; ++i) {
      const char* name = buf->spans.names[i].load(std::memory_order_relaxed);
      if (name != nullptr) snap.names.push_back(name);
    }
    if (!snap.names.empty()) out.push_back(std::move(snap));
  }
  return out;
}

void TraceRecorder::SetCurrentThreadName(const std::string& name) {
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lk(buf.mutex);
  buf.name = name;
}

void TraceRecorder::Record(const char* name, int64_t ts_us, int64_t dur_us) {
  ThreadBuffer& buf = LocalBuffer();
  std::lock_guard<std::mutex> lk(buf.mutex);
  buf.events.push_back(TraceEvent{name, ts_us, dur_us});
}

int64_t TraceRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::string TraceRecorder::ToJson() const {
  // Copy out under the locks, then serialize unlocked.
  struct Dump {
    uint32_t tid;
    std::string name;
    std::vector<TraceEvent> events;
  };
  std::vector<Dump> dumps;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    dumps.reserve(buffers_.size());
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> blk(buf->mutex);
      dumps.push_back(Dump{buf->tid, buf->name, buf->events});
    }
  }
  std::sort(dumps.begin(), dumps.end(),
            [](const Dump& a, const Dump& b) { return a.tid < b.tid; });

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const Dump& d : dumps) {
    if (!d.name.empty()) {
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
             std::to_string(d.tid) + ",\"args\":{\"name\":\"";
      AppendEscaped(&out, d.name.c_str());
      out += "\"}}";
    }
    // Buffers record in end order; sort by start so parents precede their
    // children, which keeps per-tid output deterministic and lets line
    // parsers recover nesting with a simple stack.
    std::vector<TraceEvent> events = d.events;
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                       return a.dur_us > b.dur_us;  // parent first
                     });
    for (const TraceEvent& e : events) {
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\":\"";
      AppendEscaped(&out, e.name);
      out += "\",\"ph\":\"X\",\"ts\":" + std::to_string(e.ts_us) +
             ",\"dur\":" + std::to_string(e.dur_us) +
             ",\"pid\":1,\"tid\":" + std::to_string(d.tid) + "}";
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceRecorder::WriteJsonFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << ToJson() << "\n";
  return static_cast<bool>(os);
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lk(mutex_);
  size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> blk(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lk(mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> blk(buf->mutex);
    buf->events.clear();
  }
}

}  // namespace erminer::obs
