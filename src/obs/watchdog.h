// Stall watchdog: turns a silent hang into an actionable artifact.
//
// A background thread fingerprints the process's observable activity —
// every metrics-registry counter and gauge (minus the observability
// plumbing's own: telemetry/, profiler/, watchdog/ — a stalled miner still
// gets scraped and sampled), the trace recorder's event count and the
// thread pool's executed-chunk counter — every check interval. When the
// fingerprint has not moved for `deadline_sec`, the watchdog:
//
//   1. snapshots every thread's open ERMINER_SPAN stack
//      (TraceRecorder::AllSpanStacks), i.e. where each thread sits,
//   2. captures a CPU profile burst (obs/profiler.h; if a continuous
//      profiler is already armed its aggregate-so-far is used instead —
//      note a fully *blocked* stall accrues no CPU samples, which is
//      itself diagnostic),
//   3. writes both to `<artifact_dir>/stall-<n>.txt`, and
//   4. logs a structured `stall` event (WARNING; --log-json makes it a
//      JSON record) and, when a run manifest is active, appends a stall
//      event to episodes.jsonl.
//
// One artifact per stall episode: after firing, the watchdog re-arms only
// once activity resumes, so a stuck-forever run produces exactly one
// artifact (plus at most `max_artifacts` across a run). Enabled with
// --watchdog-sec=N (CLI, bench, pipeline [obs] watchdog_sec); default off.
// The watchdog only reads snapshots — results are bit-identical with it
// armed or not.

#ifndef ERMINER_OBS_WATCHDOG_H_
#define ERMINER_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

namespace erminer::obs {

struct WatchdogOptions {
  /// Seconds without any activity before a stall fires. <= 0 disables.
  double deadline_sec = 0;
  /// Fingerprint cadence; 0 picks min(1s, deadline/4).
  double check_interval_sec = 0;
  /// Where stall-<n>.txt artifacts land (the CLI points this at --run-dir
  /// when one is configured).
  std::string artifact_dir = ".";
  /// Profile burst length/rate for the stall capture (skipped when a
  /// continuous profiler is already running).
  double burst_sec = 1.0;
  int burst_hz = 199;
  /// Hard cap on artifacts per run, so a flapping stall cannot fill a disk.
  int max_artifacts = 5;
};

class Watchdog {
 public:
  Watchdog() = default;
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Spawns the checker thread. Returns false (with *error set) when
  /// already running or the options disable it (deadline_sec <= 0).
  bool Start(const WatchdogOptions& options, std::string* error);

  /// Joins the checker thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }
  uint64_t checks_performed() const {
    return checks_.load(std::memory_order_relaxed);
  }

  /// Process-wide instance the --watchdog-sec flags start.
  static Watchdog& Global();

  /// The activity fingerprint (exposed for tests: equal fingerprints ==
  /// "no observable progress").
  static uint64_t ActivityFingerprint();

 private:
  void Loop();
  void HandleStall(double stalled_sec);

  WatchdogOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> checks_{0};
  int artifacts_written_ = 0;

  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace erminer::obs

#endif  // ERMINER_OBS_WATCHDOG_H_
