// Per-run artifact directory for RL training (and any long run):
//
//   <run-dir>/config.json     resolved options + seed + git describe,
//                             written when the manifest opens — so even an
//                             immediately-crashed run records what it was
//   <run-dir>/episodes.jsonl  one line per training episode, appended and
//                             flushed as each episode ends (TrainingLog
//                             publishes here via ActiveRunManifest()) — a
//                             SIGKILL mid-training leaves the partial stream
//   <run-dir>/summary.json    written once on clean completion; its absence
//                             marks an interrupted run
//
// The manifest is plumbing-free by design: RLMiner/TrainingLog don't take a
// manifest parameter — the CLI/bench/pipeline set the process-wide active
// manifest and the training loop publishes to it if present.

#ifndef ERMINER_OBS_RUN_MANIFEST_H_
#define ERMINER_OBS_RUN_MANIFEST_H_

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace erminer::obs {

/// `git describe --always --dirty` captured at configure time
/// (ERMINER_GIT_DESCRIBE compile definition); "unknown" outside a git
/// checkout.
const char* GitDescribe();

class RunManifest {
 public:
  /// Creates `dir` (parents included), writes config.json from `config`
  /// (flat string key/values — resolved flags, seed, command) and opens
  /// episodes.jsonl for appending. Returns null with *error set on I/O
  /// failure.
  static std::unique_ptr<RunManifest> Open(
      const std::string& dir,
      const std::map<std::string, std::string>& config, std::string* error);

  ~RunManifest();

  RunManifest(const RunManifest&) = delete;
  RunManifest& operator=(const RunManifest&) = delete;

  /// Appends one complete JSON object as a line to episodes.jsonl and
  /// flushes, so the line survives any later crash. Thread-safe.
  void AppendEpisode(const std::string& json_object);

  /// Appends a non-episode event line (e.g. a checkpoint record) to
  /// episodes.jsonl without counting it toward episodes_appended().
  /// Thread-safe.
  void AppendEvent(const std::string& json_object);

  /// Records a provenance fact (e.g. "resumed_from": path) and rewrites
  /// config.json with a "provenance" object, so a resumed run's lineage is
  /// on disk next to its options. Thread-safe.
  void SetProvenance(const std::string& key, const std::string& value);

  /// Writes summary.json (one JSON object). Call on clean completion only —
  /// an interrupted run is recognizable by the file's absence.
  bool WriteSummary(const std::string& json_object);

  const std::string& dir() const { return dir_; }
  size_t episodes_appended() const;

 private:
  explicit RunManifest(std::string dir) : dir_(std::move(dir)) {}

  /// Serializes config_ + provenance_ into config.json text and writes it.
  /// Requires mutex_ held.
  void WriteConfigLocked();

  std::string dir_;
  mutable std::mutex mutex_;
  std::FILE* episodes_ = nullptr;
  size_t episodes_appended_ = 0;
  std::map<std::string, std::string> config_;
  std::map<std::string, std::string> provenance_;
  long long created_unix_ms_ = 0;
};

/// Process-wide active manifest (null = none). Not owning: the setter keeps
/// ownership and must clear it before destroying the manifest.
void SetActiveRunManifest(RunManifest* manifest);
RunManifest* ActiveRunManifest();

}  // namespace erminer::obs

#endif  // ERMINER_OBS_RUN_MANIFEST_H_
