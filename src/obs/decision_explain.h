// Replaying one rule's decision path out of a decision log: the read-side
// companion to decision_log.h used by `erminer explain <rule-id>` and
// tools/decision_stats. Given a parsed log and a rule provenance id, the
// replay finds the rule's emission, reconstructs the chain of expansions
// that produced it (lattice path for EnuMiner/Beam/CTANE, tree path plus
// the episode's step trajectory for RLMiner), gathers the prune decisions
// taken along that chain, and lists the cells the rule repaired.

#ifndef ERMINER_OBS_DECISION_EXPLAIN_H_
#define ERMINER_OBS_DECISION_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/decision_log.h"

namespace erminer::obs {

struct DecisionPath {
  /// False when `rule_id` has no emit event in the log; `error` says so.
  bool found = false;
  std::string error;

  DecisionEvent emit;
  /// Expansion chain, root to emitted node. May stop short of the root when
  /// the log is truncated (the surviving prefix is still in order).
  std::vector<DecisionEvent> chain;
  /// Prune events whose parent node lies on the chain — the roads not
  /// taken at each step of the path.
  std::vector<DecisionEvent> prunes;
  /// RLMiner only: every RlStep of the episode that emitted the rule.
  std::vector<DecisionEvent> trajectory;
  /// Repair events attributed to this rule.
  std::vector<DecisionEvent> repairs;
};

/// Replays the decision path of `rule_id` from parsed log contents. The
/// first emit event carrying the id anchors the replay (re-emissions of the
/// same rule share one id by construction).
DecisionPath ReplayDecisionPath(const DecisionLogContents& log,
                                uint64_t rule_id);

/// Human-readable rendering of a replayed path (`erminer explain` output).
/// `max_prunes` / `max_repairs` cap the listed events (0 = unlimited).
std::string FormatDecisionPath(const DecisionPath& path,
                               size_t max_prunes = 12,
                               size_t max_repairs = 20);

/// "[3 17 42]" — the key rendering shared by the explain output.
std::string FormatDecisionKey(const std::vector<int32_t>& key);

}  // namespace erminer::obs

#endif  // ERMINER_OBS_DECISION_EXPLAIN_H_
