#include "rl/training_log.h"

#include <sstream>

#include "obs/metrics.h"
#include "obs/run_manifest.h"
#include "util/status.h"

namespace erminer {

void TrainingLog::BeginEpisode() {
  ERMINER_CHECK(!open_);
  open_ = true;
  current_ = EpisodeStats{};
  current_.episode = episodes_.size();
  loss_samples_ = 0;
  loss_sum_ = 0;
}

void TrainingLog::RecordStep(double reward, double loss) {
  ERMINER_CHECK(open_);
  current_.steps += 1;
  current_.total_reward += reward;
  if (loss != 0.0) {
    loss_sum_ += loss;
    loss_samples_ += 1;
  }
}

void TrainingLog::EndEpisode(size_t leaves) {
  ERMINER_CHECK(open_);
  open_ = false;
  current_.leaves = leaves;
  current_.mean_loss =
      loss_samples_ > 0 ? loss_sum_ / static_cast<double>(loss_samples_) : 0;
  // The log doubles as a consumer of the process-wide metrics registry, so
  // episode telemetry shows up in --metrics-json next to the search and
  // cache counters without a second plumbing path.
  ERMINER_COUNT("rl/episodes", 1);
  ERMINER_COUNT("rl/steps", current_.steps);
  ERMINER_COUNT("rl/leaves", current_.leaves);
  ERMINER_HISTOGRAM("rl/episode_return", current_.total_reward);
  if (loss_samples_ > 0) ERMINER_HISTOGRAM("rl/episode_loss", current_.mean_loss);
  // Last-episode gauges: the sampler and /metrics see per-episode curves
  // (return, length, loss) without reaching into RL internals.
  ERMINER_GAUGE_SET("rl/episode_return", current_.total_reward);
  ERMINER_GAUGE_SET("rl/episode_steps", static_cast<double>(current_.steps));
  ERMINER_GAUGE_SET("rl/mean_loss", current_.mean_loss);
  if (auto* manifest = obs::ActiveRunManifest()) {
    manifest->AppendEpisode(EpisodeJson(current_));
  }
  episodes_.push_back(current_);
}

std::string TrainingLog::EpisodeJson(const EpisodeStats& e) {
  std::ostringstream os;
  os << "{\"episode\":" << e.episode << ",\"steps\":" << e.steps
     << ",\"leaves\":" << e.leaves << ",\"total_reward\":" << e.total_reward
     << ",\"mean_loss\":" << e.mean_loss << "}";
  return os.str();
}

double TrainingLog::RecentMeanReturn(size_t window) const {
  if (episodes_.empty()) return 0;
  size_t n = std::min(window, episodes_.size());
  double sum = 0;
  for (size_t i = episodes_.size() - n; i < episodes_.size(); ++i) {
    sum += episodes_[i].total_reward;
  }
  return sum / static_cast<double>(n);
}

void TrainingLog::SaveState(ckpt::Writer* w) const {
  w->U64(episodes_.size());
  for (const EpisodeStats& e : episodes_) {
    w->U64(e.episode);
    w->U64(e.steps);
    w->U64(e.leaves);
    w->F64(e.total_reward);
    w->F64(e.mean_loss);
  }
}

Status TrainingLog::LoadState(ckpt::Reader* r) {
  uint64_t n = 0;
  ERMINER_RETURN_NOT_OK(r->U64(&n));
  std::vector<EpisodeStats> episodes(n);
  for (auto& e : episodes) {
    uint64_t episode = 0, steps = 0, leaves = 0;
    ERMINER_RETURN_NOT_OK(r->U64(&episode));
    ERMINER_RETURN_NOT_OK(r->U64(&steps));
    ERMINER_RETURN_NOT_OK(r->U64(&leaves));
    ERMINER_RETURN_NOT_OK(r->F64(&e.total_reward));
    ERMINER_RETURN_NOT_OK(r->F64(&e.mean_loss));
    e.episode = episode;
    e.steps = steps;
    e.leaves = leaves;
  }
  episodes_ = std::move(episodes);
  open_ = false;
  loss_samples_ = 0;
  loss_sum_ = 0;
  return Status::OK();
}

std::string TrainingLog::ToCsv() const {
  std::ostringstream os;
  os << "episode,steps,leaves,total_reward,mean_loss\n";
  for (const auto& e : episodes_) {
    os << e.episode << "," << e.steps << "," << e.leaves << ","
       << e.total_reward << "," << e.mean_loss << "\n";
  }
  return os.str();
}

}  // namespace erminer
