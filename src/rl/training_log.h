// Per-episode training telemetry: episode return, length, TD loss and the
// number of valid rules (leaves) found. Used by the learning-curve bench
// and exportable as CSV for plotting.

#ifndef ERMINER_RL_TRAINING_LOG_H_
#define ERMINER_RL_TRAINING_LOG_H_

#include <string>
#include <vector>

#include "ckpt/serial.h"

namespace erminer {

struct EpisodeStats {
  size_t episode = 0;
  size_t steps = 0;
  size_t leaves = 0;        // valid rules found in this episode's tree
  double total_reward = 0;
  double mean_loss = 0;     // mean TD loss over the episode's updates
};

class TrainingLog {
 public:
  void BeginEpisode();
  void RecordStep(double reward, double loss);
  void EndEpisode(size_t leaves);

  const std::vector<EpisodeStats>& episodes() const { return episodes_; }
  bool empty() const { return episodes_.empty(); }

  /// Mean episode return over the last `window` episodes.
  double RecentMeanReturn(size_t window = 20) const;

  /// "episode,steps,leaves,total_reward,mean_loss" rows with a header.
  std::string ToCsv() const;

  /// One episode as the JSON object appended to a run manifest's
  /// episodes.jsonl (see obs/run_manifest.h).
  static std::string EpisodeJson(const EpisodeStats& e);

  /// Checkpoint support: the completed-episode history. An episode in
  /// progress at save time is dropped — checkpoints are taken at episode
  /// boundaries (or best-effort on SIGTERM), and the resumed run re-runs
  /// that episode from its start anyway.
  void SaveState(ckpt::Writer* w) const;
  Status LoadState(ckpt::Reader* r);

 private:
  std::vector<EpisodeStats> episodes_;
  bool open_ = false;
  EpisodeStats current_;
  size_t loss_samples_ = 0;
  double loss_sum_ = 0;
};

}  // namespace erminer

#endif  // ERMINER_RL_TRAINING_LOG_H_
