// Exploration schedules.

#ifndef ERMINER_RL_SCHEDULE_H_
#define ERMINER_RL_SCHEDULE_H_

#include <algorithm>
#include <cstddef>

namespace erminer {

/// Linear decay from `start` to `end` over the first `decay_fraction` of
/// `total_steps`, then constant at `end`.
class LinearSchedule {
 public:
  LinearSchedule(double start, double end, size_t total_steps,
                 double decay_fraction = 0.6)
      : start_(start),
        end_(end),
        decay_steps_(std::max<size_t>(
            1, static_cast<size_t>(static_cast<double>(total_steps) *
                                   decay_fraction))) {}

  double Value(size_t step) const {
    if (step >= decay_steps_) return end_;
    double frac = static_cast<double>(step) /
                  static_cast<double>(decay_steps_);
    return start_ + (end_ - start_) * frac;
  }

 private:
  double start_;
  double end_;
  size_t decay_steps_;
};

}  // namespace erminer

#endif  // ERMINER_RL_SCHEDULE_H_
