#include "rl/incremental_miner.h"

#include <sstream>

namespace erminer {

IncrementalMiner::IncrementalMiner(const Corpus* reference,
                                   const Options& options)
    : options_(options) {
  ERMINER_CHECK(reference != nullptr);
  ActionSpaceOptions aopts;
  aopts.support_threshold = options_.rl.base.support_threshold;
  aopts.max_classes_per_attr = options_.rl.base.max_classes_per_attr;
  aopts.include_negations = options_.rl.base.include_negations;
  space_ =
      std::make_shared<ActionSpace>(ActionSpace::Build(*reference, aopts));
}

MineResult IncrementalMiner::Mine(const Corpus& corpus) {
  RlMiner miner(&corpus, options_.rl, space_);
  if (rounds_ == 0) {
    miner.Train();
  } else {
    std::istringstream in(weights_);
    ERMINER_CHECK_OK(miner.LoadAgent(in));
    size_t steps = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(
               options_.rl.train_steps) * options_.fine_tune_fraction));
    miner.Train(steps);
  }
  MineResult result = miner.Infer();
  result.train_seconds = miner.last_train_seconds();
  result.seconds = result.train_seconds + result.inference_seconds;

  std::ostringstream out;
  ERMINER_CHECK_OK(miner.SaveAgent(out));
  weights_ = out.str();
  ++rounds_;
  return result;
}

}  // namespace erminer
