#include "rl/replay_buffer.h"

namespace erminer {

void SaveTransition(const Transition& t, ckpt::Writer* w) {
  w->Vec(t.state);
  w->I32(t.action);
  w->F32(t.reward);
  w->Vec(t.next_state);
  w->Vec(t.next_mask);
  w->U8(t.done ? 1 : 0);
}

Status LoadTransition(ckpt::Reader* r, Transition* t) {
  ERMINER_RETURN_NOT_OK(r->Vec(&t->state));
  ERMINER_RETURN_NOT_OK(r->I32(&t->action));
  ERMINER_RETURN_NOT_OK(r->F32(&t->reward));
  ERMINER_RETURN_NOT_OK(r->Vec(&t->next_state));
  ERMINER_RETURN_NOT_OK(r->Vec(&t->next_mask));
  uint8_t done = 0;
  ERMINER_RETURN_NOT_OK(r->U8(&done));
  t->done = done != 0;
  return Status::OK();
}

void ReplayBuffer::Add(Transition t) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(t));
  } else {
    buffer_[next_] = std::move(t);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<const Transition*> ReplayBuffer::Sample(size_t batch,
                                                    Rng* rng) const {
  ERMINER_CHECK(!buffer_.empty());
  std::vector<const Transition*> out;
  out.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    out.push_back(&buffer_[rng->NextUint64(buffer_.size())]);
  }
  return out;
}

void ReplayBuffer::SaveState(ckpt::Writer* w) const {
  w->U64(next_);
  w->U64(buffer_.size());
  for (const Transition& t : buffer_) SaveTransition(t, w);
}

Status ReplayBuffer::LoadState(ckpt::Reader* r) {
  uint64_t next = 0, n = 0;
  ERMINER_RETURN_NOT_OK(r->U64(&next));
  ERMINER_RETURN_NOT_OK(r->U64(&n));
  if (n > capacity_ || next >= capacity_) {
    return Status::InvalidArgument(
        "replay buffer state does not fit capacity " +
        std::to_string(capacity_) + ": size " + std::to_string(n) +
        ", write position " + std::to_string(next) +
        " (was the checkpoint written with a different replay_capacity?)");
  }
  std::vector<Transition> buffer(n);
  for (auto& t : buffer) ERMINER_RETURN_NOT_OK(LoadTransition(r, &t));
  next_ = next;
  buffer_ = std::move(buffer);
  return Status::OK();
}

}  // namespace erminer
