#include "rl/replay_buffer.h"

namespace erminer {

void ReplayBuffer::Add(Transition t) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(t));
  } else {
    buffer_[next_] = std::move(t);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<const Transition*> ReplayBuffer::Sample(size_t batch,
                                                    Rng* rng) const {
  ERMINER_CHECK(!buffer_.empty());
  std::vector<const Transition*> out;
  out.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    out.push_back(&buffer_[rng->NextUint64(buffer_.size())]);
  }
  return out;
}

}  // namespace erminer
