// RLMiner (Alg. 3): DQN-guided editing-rule discovery, plus RLMiner-ft
// (Sec. V-D3) which fine-tunes a trained agent on enriched data instead of
// re-training from scratch.

#ifndef ERMINER_RL_RL_MINER_H_
#define ERMINER_RL_RL_MINER_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "ckpt/checkpoint.h"
#include "ckpt/serial.h"
#include "core/environment.h"
#include "core/miner.h"
#include "rl/dqn.h"
#include "rl/schedule.h"
#include "rl/training_log.h"

namespace erminer {

struct RlMinerOptions {
  MinerOptions base;
  /// Training transitions N (paper: 5000 fixed steps, Sec. V-D4).
  size_t train_steps = 5000;
  DqnOptions dqn;
  double stop_reward = 0.01;      // theta
  double invalid_reward = -0.01;
  double eps_start = 1.0;
  double eps_end = 0.05;
  double eps_decay_fraction = 0.6;
  /// Safety cap on a single episode (the queue-driven walk normally ends
  /// well before this).
  size_t max_episode_steps = 2000;
  /// Inference budget: the first episode is purely greedy; if it ends with
  /// fewer than K distinct rules collected, further episodes run with this
  /// small epsilon until the budget is spent (the paper reports ~150
  /// inference steps to mine the top-K rules).
  size_t max_inference_steps = 600;
  double inference_epsilon = 0.1;
  uint64_t seed = 17;

  /// Exploration is stratified by action type: with probability epsilon the
  /// miner first picks a type (LHS pair / pattern condition / stop) by these
  /// weights, then uniformly within it. Plain uniform exploration would
  /// almost never grow LHS pairs, since pattern actions outnumber them by
  /// orders of magnitude.
  double explore_lhs_weight = 0.45;
  double explore_pattern_weight = 0.45;
  double explore_stop_weight = 0.10;
  /// Ablation: false = plain uniform exploration over allowed actions.
  bool stratified_explore = true;

  /// Ablation toggles forwarded to the environment (see EnvOptions).
  bool normalize_utility = true;
  bool frontier_bonus = true;
  bool use_global_mask = true;
  bool reuse_rewards = true;

  /// Crash-safe training snapshots (src/ckpt). Disabled unless
  /// checkpoint.dir is set.
  ckpt::CheckpointOptions checkpoint;
  /// Resume source: "" (fresh start), "latest" (newest loadable snapshot in
  /// checkpoint.dir, falling back to a fresh start when none exists), or an
  /// explicit snapshot path (load errors are then fatal).
  std::string resume;
};

class RlMiner {
 public:
  /// If `space` is null, an ActionSpace is built from the corpus (with
  /// prefix merging on). Passing a shared space built from a *full* corpus
  /// keeps network dimensions stable across incremental corpora, enabling
  /// fine-tuning.
  RlMiner(const Corpus* corpus, const RlMinerOptions& options,
          std::shared_ptr<const ActionSpace> space = nullptr);

  ~RlMiner();

  /// Runs `steps` training transitions (0 = options.train_steps). May be
  /// called repeatedly; epsilon continues decaying over the cumulative
  /// budget of the first call's horizon.
  void Train(size_t steps = 0);

  /// One greedy episode; returns the top-K non-redundant rules from the
  /// episode's leaves, topped up from the global pool if short.
  MineResult Infer();

  /// Train-from-scratch convenience: Train() then Infer(), with timing.
  MineResult Mine();

  /// Fine-tuning entry point: load pretrained weights, then call
  /// Train(few_steps) + Infer().
  /// Loading pretrained weights marks the miner as fine-tuning: subsequent
  /// Train() calls explore at the epsilon floor instead of restarting the
  /// decay schedule (which would wipe out the transferred policy).
  Status SaveAgent(std::ostream& os) const { return agent_->SaveWeights(os); }
  Status LoadAgent(std::istream& is) {
    ERMINER_RETURN_NOT_OK(agent_->LoadWeights(is));
    agent_loaded_ = true;
    return Status::OK();
  }

  /// Applies options.resume (no-op when empty). Called implicitly by
  /// Train()/Mine() on first use; call it explicitly to surface load errors
  /// as a Status instead of a fatal check. With resume="latest", corrupt
  /// snapshots are skipped with a warning and an empty/corrupt-only
  /// directory degrades to a fresh start.
  Status Resume();

  /// Full mutable training state (counters, exploration RNG, agent, episode
  /// log, environment pool) as a checkpoint payload.
  Status SaveState(ckpt::Writer* w) const;
  Status LoadState(ckpt::Reader* r);

  /// Writes a snapshot of the current state for the current episode count
  /// via the configured CheckpointManager. Requires checkpointing enabled.
  Result<std::string> WriteCheckpoint();

  /// Path of the snapshot this miner resumed from; empty for a fresh start.
  const std::string& resumed_from() const { return resumed_from_; }

  const ActionSpace& space() const { return *space_; }
  const Environment& env() const { return env_; }
  DqnAgent& agent() { return *agent_; }
  /// Per-episode training telemetry (return, length, loss, leaves).
  const TrainingLog& training_log() const { return log_; }
  size_t steps_done() const { return steps_done_; }
  size_t episodes_done() const { return episodes_done_; }
  double last_train_seconds() const { return last_train_seconds_; }
  double last_inference_seconds() const { return last_inference_seconds_; }

 private:
  /// The inference walk (rl/dqn_policy.h) reaches through the miner for the
  /// agent, the environment and the step/log helpers below.
  friend class DqnGreedyPolicy;

  /// Masked epsilon-greedy with type-stratified exploration (see
  /// RlMinerOptions::explore_*_weight). `explored`, when non-null, reports
  /// whether the epsilon draw chose exploration — the flag the decision log
  /// stamps on the step record.
  int32_t SelectTrainingAction(const RuleKey& state,
                               const std::vector<uint8_t>& mask,
                               double epsilon, bool* explored = nullptr);

  /// Records one RlStep decision-log event for the transition `sr` taken
  /// under `mask`. Only called while the log is armed; the extra Q-value
  /// forward consumes no RNG, so armed runs stay bit-identical.
  void LogRlStep(const Environment::StepResult& sr,
                 const std::vector<uint8_t>& mask, uint8_t flags,
                 double epsilon);

  /// First-use resume hook for Train()/Mine(); fatal on a bad explicit
  /// resume path (call Resume() directly for Status propagation).
  void EnsureResumed();

  /// Best-effort cadence checkpoint; a write failure logs a warning and
  /// training continues (the run is degraded, not dead).
  void MaybeCheckpoint(bool force);

  const Corpus* corpus_;
  RlMinerOptions options_;
  std::shared_ptr<const ActionSpace> space_;
  RuleEvaluator evaluator_;
  Environment env_;
  std::unique_ptr<DqnAgent> agent_;
  LinearSchedule eps_;
  Rng explore_rng_;
  TrainingLog log_;
  size_t steps_done_ = 0;
  size_t episodes_done_ = 0;
  bool agent_loaded_ = false;
  double last_train_seconds_ = 0;
  double last_inference_seconds_ = 0;
  ckpt::CheckpointManager ckpt_mgr_;
  bool resume_attempted_ = false;
  std::string resumed_from_;
  /// Episode count of the newest snapshot written, to skip redundant
  /// end-of-training writes. size_t(-1) = none yet.
  size_t last_ckpt_episode_ = static_cast<size_t>(-1);
};

}  // namespace erminer

#endif  // ERMINER_RL_RL_MINER_H_
