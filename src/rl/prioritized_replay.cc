#include "rl/prioritized_replay.h"

#include <algorithm>
#include <cmath>

namespace erminer {

SumTree::SumTree(size_t capacity) : capacity_(capacity) {
  ERMINER_CHECK(capacity_ > 0);
  // 1-based heap: root at 1, leaves at [capacity, 2*capacity). With a
  // capacity of 1 the root IS the single leaf.
  nodes_.assign(std::max<size_t>(2, 2 * capacity_), 0.0);
}

void SumTree::Set(size_t index, double weight) {
  ERMINER_CHECK(index < capacity_);
  ERMINER_CHECK(weight >= 0.0);
  size_t i = index + capacity_;
  double delta = weight - nodes_[i];
  while (i >= 1) {
    nodes_[i] += delta;
    i /= 2;
  }
}

double SumTree::Get(size_t index) const {
  ERMINER_CHECK(index < capacity_);
  return nodes_[index + capacity_];
}

size_t SumTree::FindPrefix(double prefix) const {
  size_t i = 1;
  while (i < capacity_) {
    size_t left = 2 * i;
    if (prefix < nodes_[left]) {
      i = left;
    } else {
      prefix -= nodes_[left];
      i = left + 1;
    }
  }
  return i - capacity_;
}

PrioritizedReplay::PrioritizedReplay(size_t capacity, double alpha,
                                     double beta, double eps)
    : capacity_(capacity),
      alpha_(alpha),
      beta_(beta),
      eps_(eps),
      tree_(capacity) {
  ERMINER_CHECK(capacity_ > 0);
}

void PrioritizedReplay::Add(Transition t) {
  size_t slot;
  if (buffer_.size() < capacity_) {
    slot = buffer_.size();
    buffer_.push_back(std::move(t));
  } else {
    slot = next_;
    buffer_[next_] = std::move(t);
  }
  next_ = (next_ + 1) % capacity_;
  tree_.Set(slot, max_priority_);
}

PrioritizedSample PrioritizedReplay::Sample(size_t batch, Rng* rng) const {
  ERMINER_CHECK(!buffer_.empty());
  PrioritizedSample out;
  out.indices.reserve(batch);
  out.transitions.reserve(batch);
  out.weights.reserve(batch);
  const double total = tree_.Total();
  ERMINER_CHECK(total > 0.0);
  const double n = static_cast<double>(buffer_.size());
  double max_w = 0.0;
  for (size_t i = 0; i < batch; ++i) {
    size_t idx = tree_.FindPrefix(rng->NextDouble() * total);
    idx = std::min(idx, buffer_.size() - 1);  // guard empty tail slots
    double p = tree_.Get(idx) / total;
    double w = std::pow(1.0 / (n * std::max(p, 1e-12)), beta_);
    out.indices.push_back(idx);
    out.transitions.push_back(&buffer_[idx]);
    out.weights.push_back(static_cast<float>(w));
    max_w = std::max(max_w, w);
  }
  if (max_w > 0) {
    for (auto& w : out.weights) {
      w = static_cast<float>(w / max_w);
    }
  }
  return out;
}

void PrioritizedReplay::UpdatePriorities(
    const std::vector<size_t>& indices,
    const std::vector<float>& abs_td_errors) {
  ERMINER_CHECK(indices.size() == abs_td_errors.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    ERMINER_CHECK(indices[i] < buffer_.size());
    double p = std::pow(static_cast<double>(abs_td_errors[i]) + eps_, alpha_);
    tree_.Set(indices[i], p);
    max_priority_ = std::max(max_priority_, p);
  }
}

}  // namespace erminer
