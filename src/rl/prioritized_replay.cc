#include "rl/prioritized_replay.h"

#include <algorithm>
#include <cmath>

namespace erminer {

SumTree::SumTree(size_t capacity) : capacity_(capacity) {
  ERMINER_CHECK(capacity_ > 0);
  // 1-based heap: root at 1, leaves at [capacity, 2*capacity). With a
  // capacity of 1 the root IS the single leaf.
  nodes_.assign(std::max<size_t>(2, 2 * capacity_), 0.0);
}

void SumTree::Set(size_t index, double weight) {
  ERMINER_CHECK(index < capacity_);
  ERMINER_CHECK(weight >= 0.0);
  size_t i = index + capacity_;
  double delta = weight - nodes_[i];
  while (i >= 1) {
    nodes_[i] += delta;
    i /= 2;
  }
}

double SumTree::Get(size_t index) const {
  ERMINER_CHECK(index < capacity_);
  return nodes_[index + capacity_];
}

void SumTree::SaveState(ckpt::Writer* w) const {
  w->U64(capacity_);
  w->Vec(nodes_);
}

Status SumTree::LoadState(ckpt::Reader* r) {
  uint64_t capacity = 0;
  ERMINER_RETURN_NOT_OK(r->U64(&capacity));
  if (capacity != capacity_) {
    return Status::InvalidArgument(
        "sum tree capacity mismatch: expected " + std::to_string(capacity_) +
        ", checkpoint has " + std::to_string(capacity));
  }
  std::vector<double> nodes;
  ERMINER_RETURN_NOT_OK(r->Vec(&nodes));
  if (nodes.size() != nodes_.size()) {
    return Status::InvalidArgument(
        "sum tree node count mismatch: expected " +
        std::to_string(nodes_.size()) + ", checkpoint has " +
        std::to_string(nodes.size()));
  }
  nodes_ = std::move(nodes);
  return Status::OK();
}

size_t SumTree::FindPrefix(double prefix) const {
  size_t i = 1;
  while (i < capacity_) {
    size_t left = 2 * i;
    if (prefix < nodes_[left]) {
      i = left;
    } else {
      prefix -= nodes_[left];
      i = left + 1;
    }
  }
  return i - capacity_;
}

PrioritizedReplay::PrioritizedReplay(size_t capacity, double alpha,
                                     double beta, double eps)
    : capacity_(capacity),
      alpha_(alpha),
      beta_(beta),
      eps_(eps),
      tree_(capacity) {
  ERMINER_CHECK(capacity_ > 0);
}

void PrioritizedReplay::Add(Transition t) {
  size_t slot;
  if (buffer_.size() < capacity_) {
    slot = buffer_.size();
    buffer_.push_back(std::move(t));
  } else {
    slot = next_;
    buffer_[next_] = std::move(t);
  }
  next_ = (next_ + 1) % capacity_;
  tree_.Set(slot, max_priority_);
}

PrioritizedSample PrioritizedReplay::Sample(size_t batch, Rng* rng) const {
  ERMINER_CHECK(!buffer_.empty());
  PrioritizedSample out;
  out.indices.reserve(batch);
  out.transitions.reserve(batch);
  out.weights.reserve(batch);
  const double total = tree_.Total();
  ERMINER_CHECK(total > 0.0);
  const double n = static_cast<double>(buffer_.size());
  double max_w = 0.0;
  for (size_t i = 0; i < batch; ++i) {
    size_t idx = tree_.FindPrefix(rng->NextDouble() * total);
    idx = std::min(idx, buffer_.size() - 1);  // guard empty tail slots
    double p = tree_.Get(idx) / total;
    double w = std::pow(1.0 / (n * std::max(p, 1e-12)), beta_);
    out.indices.push_back(idx);
    out.transitions.push_back(&buffer_[idx]);
    out.weights.push_back(static_cast<float>(w));
    max_w = std::max(max_w, w);
  }
  if (max_w > 0) {
    for (auto& w : out.weights) {
      w = static_cast<float>(w / max_w);
    }
  }
  return out;
}

void PrioritizedReplay::UpdatePriorities(
    const std::vector<size_t>& indices,
    const std::vector<float>& abs_td_errors) {
  ERMINER_CHECK(indices.size() == abs_td_errors.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    ERMINER_CHECK(indices[i] < buffer_.size());
    double p = std::pow(static_cast<double>(abs_td_errors[i]) + eps_, alpha_);
    tree_.Set(indices[i], p);
    max_priority_ = std::max(max_priority_, p);
  }
}

void PrioritizedReplay::SaveState(ckpt::Writer* w) const {
  w->F64(max_priority_);
  w->U64(next_);
  w->U64(buffer_.size());
  for (const Transition& t : buffer_) SaveTransition(t, w);
  tree_.SaveState(w);
}

Status PrioritizedReplay::LoadState(ckpt::Reader* r) {
  double max_priority = 0;
  uint64_t next = 0, n = 0;
  ERMINER_RETURN_NOT_OK(r->F64(&max_priority));
  ERMINER_RETURN_NOT_OK(r->U64(&next));
  ERMINER_RETURN_NOT_OK(r->U64(&n));
  if (n > capacity_ || next >= capacity_) {
    return Status::InvalidArgument(
        "prioritized replay state does not fit capacity " +
        std::to_string(capacity_) + ": size " + std::to_string(n) +
        ", write position " + std::to_string(next) +
        " (was the checkpoint written with a different replay_capacity?)");
  }
  std::vector<Transition> buffer(n);
  for (auto& t : buffer) ERMINER_RETURN_NOT_OK(LoadTransition(r, &t));
  ERMINER_RETURN_NOT_OK(tree_.LoadState(r));
  max_priority_ = max_priority;
  next_ = next;
  buffer_ = std::move(buffer);
  return Status::OK();
}

}  // namespace erminer
