// Uniform experience replay (DQN, Mnih et al. [26]).
//
// States are stored sparsely as rule keys (the set of hot indices of the
// one-hot state vector) — the value network densifies them per batch.

#ifndef ERMINER_RL_REPLAY_BUFFER_H_
#define ERMINER_RL_REPLAY_BUFFER_H_

#include <cstdint>
#include <vector>

#include "ckpt/serial.h"
#include "core/action_space.h"
#include "util/random.h"

namespace erminer {

struct Transition {
  RuleKey state;
  int32_t action = 0;
  float reward = 0;
  RuleKey next_state;
  /// Mask of the next state, needed for the masked bootstrap max (Eq. 13
  /// applies to the target network too).
  std::vector<uint8_t> next_mask;
  bool done = false;
};

/// Transition (de)serialization shared by the uniform and prioritized
/// buffers' checkpoint support.
void SaveTransition(const Transition& t, ckpt::Writer* w);
Status LoadTransition(ckpt::Reader* r, Transition* t);

class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t capacity) : capacity_(capacity) {
    ERMINER_CHECK(capacity_ > 0);
  }

  void Add(Transition t);

  size_t size() const { return buffer_.size(); }
  size_t capacity() const { return capacity_; }

  /// Uniform sample with replacement; requires size() > 0.
  std::vector<const Transition*> Sample(size_t batch, Rng* rng) const;

  /// Checkpoint support: contents plus the ring-buffer write position, so a
  /// restored buffer evicts in exactly the original order.
  void SaveState(ckpt::Writer* w) const;
  Status LoadState(ckpt::Reader* r);

 private:
  size_t capacity_;
  size_t next_ = 0;  // ring-buffer write position
  std::vector<Transition> buffer_;
};

}  // namespace erminer

#endif  // ERMINER_RL_REPLAY_BUFFER_H_
