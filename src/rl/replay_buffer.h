// Uniform experience replay (DQN, Mnih et al. [26]).
//
// States are stored sparsely as rule keys (the set of hot indices of the
// one-hot state vector) — the value network densifies them per batch.

#ifndef ERMINER_RL_REPLAY_BUFFER_H_
#define ERMINER_RL_REPLAY_BUFFER_H_

#include <cstdint>
#include <vector>

#include "core/action_space.h"
#include "util/random.h"

namespace erminer {

struct Transition {
  RuleKey state;
  int32_t action = 0;
  float reward = 0;
  RuleKey next_state;
  /// Mask of the next state, needed for the masked bootstrap max (Eq. 13
  /// applies to the target network too).
  std::vector<uint8_t> next_mask;
  bool done = false;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t capacity) : capacity_(capacity) {
    ERMINER_CHECK(capacity_ > 0);
  }

  void Add(Transition t);

  size_t size() const { return buffer_.size(); }
  size_t capacity() const { return capacity_; }

  /// Uniform sample with replacement; requires size() > 0.
  std::vector<const Transition*> Sample(size_t batch, Rng* rng) const;

 private:
  size_t capacity_;
  size_t next_ = 0;  // ring-buffer write position
  std::vector<Transition> buffer_;
};

}  // namespace erminer

#endif  // ERMINER_RL_REPLAY_BUFFER_H_
