// Proportional prioritized experience replay (Schaul et al., 2016) — one of
// the "DQN variants" the paper's Sec. III-C.5 alludes to. Transitions are
// sampled with probability proportional to priority^alpha (priority = |TD
// error| + eps), with importance-sampling weights correcting the bias.

#ifndef ERMINER_RL_PRIORITIZED_REPLAY_H_
#define ERMINER_RL_PRIORITIZED_REPLAY_H_

#include <vector>

#include "rl/replay_buffer.h"
#include "util/random.h"

namespace erminer {

/// A fixed-capacity sum tree: leaf i holds a non-negative weight; sampling
/// draws a prefix-sum query in O(log n).
class SumTree {
 public:
  explicit SumTree(size_t capacity);

  void Set(size_t index, double weight);
  double Get(size_t index) const;
  double Total() const { return nodes_[1]; }
  size_t capacity() const { return capacity_; }

  /// The leaf whose cumulative range contains `prefix` in [0, Total()).
  size_t FindPrefix(double prefix) const;

  /// Checkpoint support. The FULL node array is saved, not just the leaves:
  /// internal sums accumulate incremental `+= delta` updates and drift (in
  /// the last ulps) from sums rebuilt bottom-up, and FindPrefix compares
  /// against the internal nodes — a rebuilt tree could route a prefix query
  /// to a different leaf and break bit-identical resume.
  void SaveState(ckpt::Writer* w) const;
  Status LoadState(ckpt::Reader* r);

 private:
  size_t capacity_;
  std::vector<double> nodes_;  // 1-based heap layout folded into index math
};

struct PrioritizedSample {
  std::vector<size_t> indices;
  std::vector<const Transition*> transitions;
  /// Normalized importance-sampling weights (max weight = 1).
  std::vector<float> weights;
};

class PrioritizedReplay {
 public:
  PrioritizedReplay(size_t capacity, double alpha = 0.6, double beta = 0.4,
                    double eps = 1e-3);

  void Add(Transition t);

  size_t size() const { return buffer_.size(); }

  /// Samples `batch` transitions proportionally to priority^alpha.
  /// Requires size() > 0.
  PrioritizedSample Sample(size_t batch, Rng* rng) const;

  /// Updates the priorities of previously sampled transitions from their
  /// new absolute TD errors.
  void UpdatePriorities(const std::vector<size_t>& indices,
                        const std::vector<float>& abs_td_errors);

  /// Checkpoint support: contents, write position, max priority and the
  /// exact sum-tree bits.
  void SaveState(ckpt::Writer* w) const;
  Status LoadState(ckpt::Reader* r);

 private:
  size_t capacity_;
  double alpha_;
  double beta_;
  double eps_;
  double max_priority_ = 1.0;  // priority^alpha of new transitions
  size_t next_ = 0;
  std::vector<Transition> buffer_;
  SumTree tree_;
};

}  // namespace erminer

#endif  // ERMINER_RL_PRIORITIZED_REPLAY_H_
