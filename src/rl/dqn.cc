#include "rl/dqn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace erminer {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/// Batch-element grain for the per-transition loops below. Default batches
/// (32) stay single-chunk — bit-identical to the serial loops — while large
/// ablation batches split deterministically.
constexpr size_t kBatchGrain = 64;

/// argmax over allowed actions of a Q row; returns -1 if nothing allowed.
int32_t MaskedArgmax(const float* q, const std::vector<uint8_t>& mask,
                     size_t n) {
  int32_t best = -1;
  float best_q = kNegInf;
  for (size_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    if (best < 0 || q[i] > best_q) {
      best = static_cast<int32_t>(i);
      best_q = q[i];
    }
  }
  return best;
}

}  // namespace

DqnAgent::DqnAgent(size_t state_dim, size_t num_actions,
                   const DqnOptions& options)
    : state_dim_(state_dim),
      num_actions_(num_actions),
      options_(options),
      rng_(options.seed),
      optimizer_(options.learning_rate),
      replay_(options.replay_capacity) {
  std::vector<size_t> dims;
  dims.push_back(state_dim_);
  for (size_t h : options_.hidden) dims.push_back(h);
  if (options_.dueling) {
    // The trunk ends at the last hidden width; V/A heads hang off it.
    online_ = std::make_unique<DuelingQNetwork>(dims, num_actions_, &rng_);
    target_ = std::make_unique<DuelingQNetwork>(dims, num_actions_, &rng_);
  } else {
    dims.push_back(num_actions_);
    online_ = std::make_unique<MlpQNetwork>(dims, &rng_);
    target_ = std::make_unique<MlpQNetwork>(dims, &rng_);
  }
  target_->CopyWeightsFrom(*online_);
  if (options_.prioritized) {
    prioritized_ = std::make_unique<PrioritizedReplay>(
        options_.replay_capacity, options_.per_alpha, options_.per_beta);
  }
}

void DqnAgent::BuildKeys(const std::vector<const RuleKey*>& states) {
  if (options_.sparse_state) {
    // Rule keys are already strictly ascending index lists — exactly the
    // encoding the sparse kernels consume (AddRow validates).
    sparse_scratch_.Clear(state_dim_);
    for (const RuleKey* key : states) {
      sparse_scratch_.AddRow(key->data(), key->size());
    }
    return;
  }
  dense_scratch_.Resize(states.size(), state_dim_);
  dense_scratch_.Fill(0.0f);
  float* px = dense_scratch_.data().data();
  GlobalPool().ParallelFor(
      0, states.size(), kBatchGrain, [&](size_t bb, size_t be) {
        for (size_t b = bb; b < be; ++b) {
          for (int32_t i : *states[b]) {
            ERMINER_CHECK(i >= 0 && static_cast<size_t>(i) < state_dim_);
            px[b * state_dim_ + static_cast<size_t>(i)] = 1.0f;
          }
        }
      });
}

void DqnAgent::BuildStates(const std::vector<const Transition*>& batch,
                           bool next) {
  if (options_.sparse_state) {
    sparse_scratch_.Clear(state_dim_);
    for (const Transition* t : batch) {
      const RuleKey& key = next ? t->next_state : t->state;
      sparse_scratch_.AddRow(key.data(), key.size());
    }
    return;
  }
  dense_scratch_.Resize(batch.size(), state_dim_);
  dense_scratch_.Fill(0.0f);
  float* px = dense_scratch_.data().data();
  // Each batch element writes only its own row.
  GlobalPool().ParallelFor(
      0, batch.size(), kBatchGrain, [&](size_t bb, size_t be) {
        for (size_t b = bb; b < be; ++b) {
          const RuleKey& key = next ? batch[b]->next_state : batch[b]->state;
          for (int32_t i : key) {
            px[b * state_dim_ + static_cast<size_t>(i)] = 1.0f;
          }
        }
      });
}

const Tensor& DqnAgent::ForwardBuilt(QNetwork* net) {
  return options_.sparse_state ? net->ForwardSparse(sparse_scratch_)
                               : net->Forward(dense_scratch_);
}

int32_t DqnAgent::Act(const RuleKey& state, const std::vector<uint8_t>& mask,
                      double epsilon) {
  ERMINER_CHECK(mask.size() == num_actions_);
  if (epsilon > 0.0 && rng_.NextBernoulli(epsilon)) {
    // Uniform over allowed actions.
    std::vector<int32_t> allowed;
    for (size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) allowed.push_back(static_cast<int32_t>(i));
    }
    ERMINER_CHECK(!allowed.empty());
    return allowed[rng_.NextUint64(allowed.size())];
  }
  BuildKeys({&state});
  const Tensor& q = ForwardBuilt(online_.get());
  int32_t a = MaskedArgmax(q.data().data(), mask, num_actions_);
  ERMINER_CHECK(a >= 0);
  return a;
}

std::vector<float> DqnAgent::QValues(const RuleKey& state) {
  BuildKeys({&state});
  return ForwardBuilt(online_.get()).data();
}

Tensor DqnAgent::QValuesBatch(const std::vector<const RuleKey*>& states) {
  BuildKeys(states);
  return ForwardBuilt(online_.get());
}

std::vector<int32_t> DqnAgent::ActGreedyBatch(
    const std::vector<const RuleKey*>& states,
    const std::vector<const std::vector<uint8_t>*>& masks) {
  ERMINER_CHECK(states.size() == masks.size());
  BuildKeys(states);
  const Tensor& q = ForwardBuilt(online_.get());
  std::vector<int32_t> actions(states.size());
  for (size_t b = 0; b < states.size(); ++b) {
    ERMINER_CHECK(masks[b]->size() == num_actions_);
    actions[b] = MaskedArgmax(q.data().data() + b * num_actions_, *masks[b],
                              num_actions_);
    ERMINER_CHECK(actions[b] >= 0);
  }
  return actions;
}

float DqnAgent::TrainStep() {
  if (replay_size() < std::max(options_.min_replay, options_.batch_size)) {
    ERMINER_COUNT("dqn/steps_skipped", 1);
    return 0.0f;
  }
  ERMINER_SPAN("dqn/train_step");
  ERMINER_COUNT("dqn/train_steps", 1);
  std::vector<const Transition*> batch;
  PrioritizedSample per;
  std::vector<float> is_weights;
  if (prioritized_) {
    per = prioritized_->Sample(options_.batch_size, &rng_);
    batch = per.transitions;
    is_weights = per.weights;
  } else {
    batch = replay_.Sample(options_.batch_size, &rng_);
    is_weights.assign(batch.size(), 1.0f);
  }
  const size_t bsz = batch.size();

  // Bootstrap targets from the target network with the next-state mask.
  // Plain DQN takes the target net's own masked argmax; double DQN selects
  // the action with the online net and evaluates it with the target net.
  // The next-state batch is staged once and fed to both networks; their
  // outputs live in per-network buffers, so both rows survive until the
  // targets loop has consumed them.
  BuildStates(batch, /*next=*/true);
  const Tensor& next_q = ForwardBuilt(target_.get());
  const float* pnext_q = next_q.data().data();
  const float* pselector = pnext_q;
  if (options_.double_dqn) {
    pselector = ForwardBuilt(online_.get()).data().data();
  }
  targets_.resize(bsz);
  GlobalPool().ParallelFor(0, bsz, kBatchGrain, [&](size_t bb, size_t be) {
    for (size_t b = bb; b < be; ++b) {
      float boot = 0.0f;
      if (!batch[b]->done) {
        int32_t a = MaskedArgmax(pselector + b * num_actions_,
                                 batch[b]->next_mask, num_actions_);
        if (a >= 0) {
          boot = options_.gamma *
                 pnext_q[b * num_actions_ + static_cast<size_t>(a)];
        }
      }
      targets_[b] = batch[b]->reward + boot;
    }
  });

  // Forward the online net and backprop Huber gradients at the chosen
  // actions only, weighted by the importance-sampling corrections. This
  // rebuild of the state scratch is the one Backward reads on the sparse
  // path, so it must stay staged with the *current* states from here on.
  BuildStates(batch, /*next=*/false);
  const Tensor& q = ForwardBuilt(online_.get());
  const float* pq = q.data().data();
  dq_.Resize(bsz, num_actions_);
  dq_.Fill(0.0f);
  float* pdq = dq_.data().data();
  abs_td_.resize(bsz);
  const float inv_b = 1.0f / static_cast<float>(bsz);
  // dq/abs_td writes are per-element; the scalar loss is an ordered
  // reduction so it sums in the same order for every thread count.
  float loss = GlobalPool().ParallelReduce(
      0, bsz, kBatchGrain, 0.0f,
      [&](size_t bb, size_t be) {
        float part = 0.0f;
        for (size_t b = bb; b < be; ++b) {
          const size_t a = static_cast<size_t>(batch[b]->action);
          ERMINER_CHECK(a < num_actions_);
          const float diff = pq[b * num_actions_ + a] - targets_[b];
          abs_td_[b] = std::fabs(diff);
          part += is_weights[b] * HuberLoss(diff, options_.huber_delta) * inv_b;
          pdq[b * num_actions_ + a] =
              is_weights[b] * HuberGrad(diff, options_.huber_delta) * inv_b;
        }
        return part;
      },
      [](float* acc, float part) { *acc += part; });
  online_->ZeroGrad();
  online_->Backward(dq_);
  optimizer_.Step(online_->Parameters(), online_->Gradients());
  ERMINER_GAUGE_SET("nn/workspace_bytes",
                    static_cast<int64_t>(online_->WorkspaceBytes()));
  if (prioritized_) prioritized_->UpdatePriorities(per.indices, abs_td_);
  ++updates_done_;
  if (updates_done_ % options_.target_sync_every == 0) {
    target_->CopyWeightsFrom(*online_);
    ERMINER_COUNT("dqn/target_syncs", 1);
  }
  ERMINER_HISTOGRAM("dqn/loss", loss);
  return loss;
}

Status DqnAgent::LoadWeights(std::istream& is) {
  ERMINER_RETURN_NOT_OK(online_->LoadFrom(is));
  target_->CopyWeightsFrom(*online_);
  return Status::OK();
}

namespace {

/// A QNetwork's weights as a length-prefixed blob (the networks' own binary
/// stream format nested inside the checkpoint payload).
Status SaveNetworkBlob(const QNetwork& net, ckpt::Writer* w) {
  std::ostringstream oss;
  ERMINER_RETURN_NOT_OK(net.Save(oss));
  w->Bytes(oss.str());
  return Status::OK();
}

Status LoadNetworkBlob(ckpt::Reader* r, QNetwork* net) {
  std::string blob;
  ERMINER_RETURN_NOT_OK(r->Bytes(&blob));
  std::istringstream iss(blob);
  return net->LoadFrom(iss);
}

}  // namespace

Status DqnAgent::SaveState(ckpt::Writer* w) const {
  ERMINER_RETURN_NOT_OK(SaveNetworkBlob(*online_, w));
  ERMINER_RETURN_NOT_OK(SaveNetworkBlob(*target_, w));
  optimizer_.SaveState(w);
  ckpt::SaveRng(rng_, w);
  w->U64(updates_done_);
  w->U8(prioritized_ ? 1 : 0);
  if (prioritized_) {
    prioritized_->SaveState(w);
  } else {
    replay_.SaveState(w);
  }
  return Status::OK();
}

Status DqnAgent::LoadState(ckpt::Reader* r) {
  ERMINER_RETURN_NOT_OK(LoadNetworkBlob(r, online_.get()));
  ERMINER_RETURN_NOT_OK(LoadNetworkBlob(r, target_.get()));
  ERMINER_RETURN_NOT_OK(optimizer_.LoadState(r));
  ERMINER_RETURN_NOT_OK(ckpt::LoadRng(r, &rng_));
  uint64_t updates = 0;
  ERMINER_RETURN_NOT_OK(r->U64(&updates));
  uint8_t prioritized = 0;
  ERMINER_RETURN_NOT_OK(r->U8(&prioritized));
  if ((prioritized != 0) != (prioritized_ != nullptr)) {
    return Status::InvalidArgument(
        std::string("replay buffer kind mismatch: checkpoint was written ") +
        (prioritized ? "with" : "without") + " prioritized replay but this "
        "agent is configured " + (prioritized_ ? "with" : "without") + " it");
  }
  if (prioritized_) {
    ERMINER_RETURN_NOT_OK(prioritized_->LoadState(r));
  } else {
    ERMINER_RETURN_NOT_OK(replay_.LoadState(r));
  }
  updates_done_ = updates;
  return Status::OK();
}

}  // namespace erminer
