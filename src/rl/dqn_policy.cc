#include "rl/dqn_policy.h"

#include <utility>
#include <vector>

#include "obs/decision_log.h"
#include "rl/rl_miner.h"

namespace erminer {

void DqnGreedyPolicy::Run(search::SearchEngine& engine) {
  RlMiner& m = miner_;
  Environment& env = m.env_;
  const RlMinerOptions& o = m.options_;
  // First a purely greedy episode; if it ends before K distinct rules are
  // in the pool (an undertrained or stop-happy policy), keep mining with a
  // small exploration epsilon until the inference budget is spent.
  std::vector<ScoredRule> first_leaves;
  bool first = true;
  while (first || (total_steps_ < o.max_inference_steps &&
                   env.global_pool().size() < o.base.k)) {
    env.Reset();
    const double eps = first ? 0.0 : o.inference_epsilon;
    size_t episode_steps = 0;
    while (!env.done() && episode_steps < o.max_episode_steps &&
           total_steps_ < o.max_inference_steps) {
      std::vector<uint8_t> mask = env.CurrentMask();
      bool explored = false;
      int32_t action =
          eps > 0.0 ? m.SelectTrainingAction(env.current_state(), mask, eps,
                                             &explored)
                    : m.agent_->ActGreedy(env.current_state(), mask);
      Environment::StepResult sr = env.Step(action);
      if (obs::DecisionLog::Armed()) {
        m.LogRlStep(sr, mask,
                    static_cast<uint8_t>(obs::kRlStepInference |
                                         (explored ? obs::kRlStepExplored
                                                   : 0)),
                    eps);
      }
      ++episode_steps;
      ++total_steps_;
    }
    if (first) first_leaves = env.leaves();  // the greedy episode's leaves
    first = false;
  }
  // The greedy episode's leaves first; top up from the cross-episode pool
  // so a short greedy walk still returns K rules.
  for (ScoredRule& sr : first_leaves) engine.PushPool(std::move(sr));
  for (const ScoredRule& sr : env.global_pool()) engine.PushPool(sr);
}

}  // namespace erminer
