#include "rl/rl_miner.h"

#include <signal.h>

#include <atomic>

#include "ckpt/snapshot.h"
#include "obs/decision_log.h"
#include "obs/fault.h"
#include "obs/flush.h"
#include "obs/metrics.h"
#include "obs/run_manifest.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "rl/dqn_policy.h"
#include "util/logging.h"
#include "util/timer.h"

namespace erminer {

namespace {

/// The miner currently inside Train(), for the best-effort final checkpoint
/// on SIGTERM/SIGINT (registered with the obs flush registry). Set for the
/// duration of a checkpointed training loop only, so an exit after clean
/// completion doesn't write a redundant snapshot. Signals are deferred to
/// episode boundaries (ScopedSignalDeferral below), so the snapshot the
/// flush handler writes is coherent and episode-aligned — resuming from it
/// is bit-identical, exactly like a cadence checkpoint.
std::atomic<RlMiner*> g_signal_ckpt_miner{nullptr};

void SignalCheckpointFlush() {
  RlMiner* miner = g_signal_ckpt_miner.exchange(nullptr);
  if (miner == nullptr) return;
  Result<std::string> written = miner->WriteCheckpoint();
  if (!written.ok()) {
    ERMINER_LOG(WARNING) << "best-effort signal checkpoint failed: "
                         << written.status().ToString();
  }
}

/// Defers SIGINT/SIGTERM to episode boundaries while a checkpointed train
/// loop runs. The episode body executes with the signals blocked; Poll()
/// opens a delivery window at each boundary (POSIX guarantees a pending
/// unblocked signal is delivered before the unblocking call returns), so
/// the flush handler that serializes this miner always observes a
/// complete, coherent state with no pool worker mid-write. Workers keep
/// these signals blocked for their whole lifetime (util/thread_pool.cc),
/// which pins handler execution to the training thread.
class ScopedSignalDeferral {
 public:
  explicit ScopedSignalDeferral(bool active) : active_(active) {
    if (!active_) return;
    sigset_t set = TrainSignals();
    pthread_sigmask(SIG_BLOCK, &set, &old_);
  }
  ~ScopedSignalDeferral() {
    if (active_) pthread_sigmask(SIG_SETMASK, &old_, nullptr);
  }

  /// The episode-boundary delivery window.
  void Poll() {
    if (!active_) return;
    pthread_sigmask(SIG_SETMASK, &old_, nullptr);
    sigset_t set = TrainSignals();
    pthread_sigmask(SIG_BLOCK, &set, nullptr);
  }

 private:
  static sigset_t TrainSignals() {
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGINT);
    sigaddset(&set, SIGTERM);
    return set;
  }

  bool active_;
  sigset_t old_{};
};

}  // namespace

namespace {

EnvOptions EnvOptionsFrom(const RlMinerOptions& o) {
  EnvOptions e;
  e.k = o.base.k;
  e.support_threshold = o.base.support_threshold;
  e.stop_reward = o.stop_reward;
  e.invalid_reward = o.invalid_reward;
  e.normalize_utility = o.normalize_utility;
  e.frontier_bonus = o.frontier_bonus;
  e.use_global_mask = o.use_global_mask;
  e.reuse_rewards = o.reuse_rewards;
  e.batch_eval = o.base.batch_eval;
  return e;
}

std::shared_ptr<const ActionSpace> SpaceOrBuild(
    const Corpus* corpus, const RlMinerOptions& options,
    std::shared_ptr<const ActionSpace> space) {
  if (space != nullptr) return space;
  ActionSpaceOptions aopts;
  aopts.support_threshold = options.base.support_threshold;
  aopts.max_classes_per_attr = options.base.max_classes_per_attr;
  aopts.prefix_merge = true;
  aopts.include_negations = options.base.include_negations;
  return std::make_shared<ActionSpace>(ActionSpace::Build(*corpus, aopts));
}

}  // namespace

RlMiner::RlMiner(const Corpus* corpus, const RlMinerOptions& options,
                 std::shared_ptr<const ActionSpace> space)
    : corpus_(corpus),
      options_(options),
      space_(SpaceOrBuild(corpus, options, std::move(space))),
      evaluator_(corpus),
      env_(corpus, space_.get(), &evaluator_, EnvOptionsFrom(options)),
      eps_(options.eps_start, options.eps_end, options.train_steps,
           options.eps_decay_fraction),
      explore_rng_(options.seed ^ 0xE8A10u),
      ckpt_mgr_(options.checkpoint) {
  evaluator_.cache().set_refine_enabled(options_.base.refine);
  DqnOptions dopts = options_.dqn;
  dopts.seed = options_.seed;
  agent_ = std::make_unique<DqnAgent>(space_->state_dim(),
                                      space_->num_actions(), dopts);
}

RlMiner::~RlMiner() {
  // Defuse the signal-checkpoint hook if it still points at this miner.
  RlMiner* expected = this;
  g_signal_ckpt_miner.compare_exchange_strong(expected, nullptr);
}

int32_t RlMiner::SelectTrainingAction(const RuleKey& state,
                                      const std::vector<uint8_t>& mask,
                                      double epsilon, bool* explored) {
  const bool explore = explore_rng_.NextBernoulli(epsilon);
  if (explored != nullptr) *explored = explore;
  if (!explore) {
    return agent_->ActGreedy(state, mask);
  }
  if (!options_.stratified_explore) {
    std::vector<int32_t> allowed;
    for (size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) allowed.push_back(static_cast<int32_t>(i));
    }
    return allowed[explore_rng_.NextUint64(allowed.size())];
  }
  std::vector<int32_t> lhs_allowed, pattern_allowed;
  for (int32_t i = 0; i < space_->stop_action(); ++i) {
    if (!mask[static_cast<size_t>(i)]) continue;
    (space_->IsLhsAction(i) ? lhs_allowed : pattern_allowed).push_back(i);
  }
  std::vector<double> weights = {
      lhs_allowed.empty() ? 0.0 : options_.explore_lhs_weight,
      pattern_allowed.empty() ? 0.0 : options_.explore_pattern_weight,
      options_.explore_stop_weight};
  switch (explore_rng_.NextWeighted(weights)) {
    case 0:
      return lhs_allowed[explore_rng_.NextUint64(lhs_allowed.size())];
    case 1:
      return pattern_allowed[explore_rng_.NextUint64(pattern_allowed.size())];
    default:
      return space_->stop_action();
  }
}

void RlMiner::LogRlStep(const Environment::StepResult& sr,
                        const std::vector<uint8_t>& mask, uint8_t flags,
                        double epsilon) {
  // A pure forward over the pre-step state: what the greedy policy would
  // have done, and the Q-values behind the chosen action. Same tie-break as
  // DqnAgent::ActGreedy (lowest allowed index on equal Q).
  std::vector<float> q = agent_->QValues(sr.state);
  int32_t greedy = -1;
  float greedy_q = 0.0f;
  for (size_t i = 0; i < q.size() && i < mask.size(); ++i) {
    if (!mask[i]) continue;
    if (greedy < 0 || q[i] > greedy_q) {
      greedy = static_cast<int32_t>(i);
      greedy_q = q[i];
    }
  }
  const double q_chosen =
      sr.action >= 0 && static_cast<size_t>(sr.action) < q.size()
          ? static_cast<double>(q[static_cast<size_t>(sr.action)])
          : 0.0;
  obs::DecisionLog::Global().RlStep(
      flags, env_.episode_index(), env_.step_index(), sr.state, sr.action,
      greedy, epsilon, q_chosen, static_cast<double>(greedy_q),
      static_cast<double>(sr.reward));
}

void RlMiner::Train(size_t steps) {
  EnsureResumed();
  if (steps == 0) steps = options_.train_steps;
  ERMINER_SPAN("rl/train");
  obs::SetPhase("rl/train");
  if (options_.checkpoint.enabled()) {
    // Best-effort final snapshot when a SIGTERM/SIGINT lands mid-training.
    static bool hook_registered = []() {
      obs::RegisterFlush(&SignalCheckpointFlush);
      return true;
    }();
    (void)hook_registered;
    g_signal_ckpt_miner.store(this);
  }
  ScopedSignalDeferral signal_deferral(options_.checkpoint.enabled());
  Timer timer;
  const size_t end = steps_done_ + steps;
  while (steps_done_ < end) {
    ERMINER_SPAN("rl/episode");
    obs::FaultPoint("train/episode_begin");
    env_.Reset();
    ++episodes_done_;
    log_.BeginEpisode();
    size_t episode_steps = 0;
    while (!env_.done() && steps_done_ < end &&
           episode_steps < options_.max_episode_steps) {
      std::vector<uint8_t> mask = env_.CurrentMask();
      const double eps =
          agent_loaded_ ? options_.eps_end : eps_.Value(steps_done_);
      bool explored = false;
      int32_t action =
          SelectTrainingAction(env_.current_state(), mask, eps, &explored);
      Environment::StepResult sr = env_.Step(action);
      if (obs::DecisionLog::Armed()) {
        LogRlStep(sr, mask, explored ? obs::kRlStepExplored : 0, eps);
      }
      agent_->Observe({std::move(sr.state), sr.action, sr.reward,
                       std::move(sr.next_state), std::move(sr.next_mask),
                       sr.done});
      float loss = agent_->TrainStep();
      log_.RecordStep(sr.reward, loss);
      ++steps_done_;
      ++episode_steps;
      if (obs::DecisionLog::Armed()) {
        obs::DecisionLog::Global().RlTrain(steps_done_, agent_->replay_size(),
                                           static_cast<double>(loss));
      }
    }
    log_.EndEpisode(env_.leaves().size());
    ERMINER_GAUGE_SET("rl/replay_size",
                      static_cast<double>(agent_->replay_size()));
    obs::FaultPoint("train/episode_end");
    MaybeCheckpoint(/*force=*/false);
    signal_deferral.Poll();
  }
  // End-of-training snapshot, so a later --resume=latest restarts at the
  // trained state even when the cadence didn't land on the last episode.
  MaybeCheckpoint(/*force=*/true);
  g_signal_ckpt_miner.store(nullptr);
  last_train_seconds_ = timer.Seconds();
}

MineResult RlMiner::Infer() {
  obs::SetPhase("rl/infer");
  Timer timer;
  // The greedy-first episode loop lives in DqnGreedyPolicy; the engine
  // wraps it in the "rl/infer" span, runs the top-K non-redundant
  // selection over the pooled rules and fills the node/evaluation
  // counters — the same finalization path as every other miner.
  DqnGreedyPolicy policy(*this);
  MineResult result = env_.engine().Mine(policy);
  ERMINER_COUNT("rl/inference_steps", policy.total_steps());
  result.inference_steps = policy.total_steps();
  last_inference_seconds_ = timer.Seconds();
  result.inference_seconds = last_inference_seconds_;
  result.seconds = last_inference_seconds_;
  return result;
}

MineResult RlMiner::Mine() {
  EnsureResumed();
  // A resumed run trains only the remaining part of the original horizon,
  // so interrupted + resumed ends at the same cumulative step count (and,
  // at episode boundaries, the same state bit-for-bit) as an uninterrupted
  // run.
  const size_t remaining =
      options_.train_steps > steps_done_ ? options_.train_steps - steps_done_
                                         : 0;
  if (remaining > 0) {
    Train(remaining);
  } else {
    last_train_seconds_ = 0;
  }
  MineResult result = Infer();
  result.train_seconds = last_train_seconds_;
  result.seconds = last_train_seconds_ + last_inference_seconds_;
  return result;
}

void RlMiner::EnsureResumed() {
  if (resume_attempted_) return;
  ERMINER_CHECK_OK(Resume());
}

Status RlMiner::Resume() {
  if (resume_attempted_) return Status::OK();
  resume_attempted_ = true;
  const std::string& spec = options_.resume;
  if (spec.empty()) return Status::OK();
  std::string payload;
  std::string path;
  if (spec == "latest") {
    if (!options_.checkpoint.enabled()) {
      return Status::InvalidArgument(
          "resume=latest requires a checkpoint directory");
    }
    std::vector<std::string> skipped;
    Result<std::string> latest = ckpt::CheckpointManager::LoadLatest(
        options_.checkpoint.dir, &path, &skipped);
    for (const std::string& s : skipped) {
      ERMINER_LOG(WARNING) << "skipping unloadable snapshot " << s;
    }
    if (!latest.ok()) {
      if (latest.status().code() == StatusCode::kNotFound) {
        ERMINER_LOG(INFO) << "resume=latest: no loadable snapshot in "
                          << options_.checkpoint.dir
                          << ", starting fresh";
        return Status::OK();
      }
      return latest.status();
    }
    payload = std::move(latest).ValueOrDie();
  } else {
    ERMINER_ASSIGN_OR_RETURN(payload, ckpt::ReadSnapshotFile(spec));
    path = spec;
  }
  ckpt::Reader reader(payload);
  ERMINER_RETURN_NOT_OK(LoadState(&reader));
  resumed_from_ = path;
  last_ckpt_episode_ = episodes_done_;
  ERMINER_LOG(INFO) << "resumed from " << path << " (episode "
                    << episodes_done_ << ", step " << steps_done_ << ")";
  if (auto* manifest = obs::ActiveRunManifest()) {
    manifest->SetProvenance("resumed_from", path);
    manifest->SetProvenance("resumed_at_episode",
                            std::to_string(episodes_done_));
  }
  return Status::OK();
}

Status RlMiner::SaveState(ckpt::Writer* w) const {
  w->U64(steps_done_);
  w->U64(episodes_done_);
  w->U8(agent_loaded_ ? 1 : 0);
  ckpt::SaveRng(explore_rng_, w);
  ERMINER_RETURN_NOT_OK(agent_->SaveState(w));
  log_.SaveState(w);
  env_.SavePersistent(w);
  return Status::OK();
}

Status RlMiner::LoadState(ckpt::Reader* r) {
  uint64_t steps = 0, episodes = 0;
  uint8_t agent_loaded = 0;
  ERMINER_RETURN_NOT_OK(r->U64(&steps));
  ERMINER_RETURN_NOT_OK(r->U64(&episodes));
  ERMINER_RETURN_NOT_OK(r->U8(&agent_loaded));
  ERMINER_RETURN_NOT_OK(ckpt::LoadRng(r, &explore_rng_));
  ERMINER_RETURN_NOT_OK(agent_->LoadState(r));
  ERMINER_RETURN_NOT_OK(log_.LoadState(r));
  ERMINER_RETURN_NOT_OK(env_.LoadPersistent(r));
  if (!r->AtEnd()) {
    return Status::InvalidArgument(
        "checkpoint payload has " + std::to_string(r->remaining()) +
        " trailing bytes — written by an incompatible configuration?");
  }
  steps_done_ = steps;
  episodes_done_ = episodes;
  agent_loaded_ = agent_loaded != 0;
  return Status::OK();
}

Result<std::string> RlMiner::WriteCheckpoint() {
  if (!options_.checkpoint.enabled()) {
    return Status::FailedPrecondition("checkpointing is not enabled");
  }
  ckpt::Writer writer;
  ERMINER_RETURN_NOT_OK(SaveState(&writer));
  ERMINER_ASSIGN_OR_RETURN(std::string path,
                           ckpt_mgr_.Write(episodes_done_, writer.buffer()));
  last_ckpt_episode_ = episodes_done_;
  ERMINER_COUNT("rl/checkpoints_written", 1);
  ERMINER_GAUGE_SET("rl/last_checkpoint_episode",
                    static_cast<double>(episodes_done_));
  if (auto* manifest = obs::ActiveRunManifest()) {
    std::string event = "{\"event\":\"checkpoint\",\"episode\":" +
                        std::to_string(episodes_done_) +
                        ",\"steps\":" + std::to_string(steps_done_) +
                        ",\"path\":\"" + path + "\"}";
    manifest->AppendEvent(event);
  }
  return path;
}

void RlMiner::MaybeCheckpoint(bool force) {
  if (!options_.checkpoint.enabled()) return;
  const bool due = force ? last_ckpt_episode_ != episodes_done_
                         : ckpt_mgr_.DueAtEpisode(episodes_done_);
  if (!due) return;
  Result<std::string> written = WriteCheckpoint();
  if (!written.ok()) {
    ERMINER_LOG(WARNING) << "checkpoint write failed at episode "
                         << episodes_done_ << ": "
                         << written.status().ToString();
    return;
  }
  obs::FaultPoint("train/after_checkpoint");
}

}  // namespace erminer
