#include "rl/rl_miner.h"

#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace erminer {

namespace {

EnvOptions EnvOptionsFrom(const RlMinerOptions& o) {
  EnvOptions e;
  e.k = o.base.k;
  e.support_threshold = o.base.support_threshold;
  e.stop_reward = o.stop_reward;
  e.invalid_reward = o.invalid_reward;
  e.normalize_utility = o.normalize_utility;
  e.frontier_bonus = o.frontier_bonus;
  e.use_global_mask = o.use_global_mask;
  e.reuse_rewards = o.reuse_rewards;
  return e;
}

std::shared_ptr<const ActionSpace> SpaceOrBuild(
    const Corpus* corpus, const RlMinerOptions& options,
    std::shared_ptr<const ActionSpace> space) {
  if (space != nullptr) return space;
  ActionSpaceOptions aopts;
  aopts.support_threshold = options.base.support_threshold;
  aopts.max_classes_per_attr = options.base.max_classes_per_attr;
  aopts.prefix_merge = true;
  aopts.include_negations = options.base.include_negations;
  return std::make_shared<ActionSpace>(ActionSpace::Build(*corpus, aopts));
}

}  // namespace

RlMiner::RlMiner(const Corpus* corpus, const RlMinerOptions& options,
                 std::shared_ptr<const ActionSpace> space)
    : corpus_(corpus),
      options_(options),
      space_(SpaceOrBuild(corpus, options, std::move(space))),
      evaluator_(corpus),
      env_(corpus, space_.get(), &evaluator_, EnvOptionsFrom(options)),
      eps_(options.eps_start, options.eps_end, options.train_steps,
           options.eps_decay_fraction),
      explore_rng_(options.seed ^ 0xE8A10u) {
  evaluator_.cache().set_refine_enabled(options_.base.refine);
  DqnOptions dopts = options_.dqn;
  dopts.seed = options_.seed;
  agent_ = std::make_unique<DqnAgent>(space_->state_dim(),
                                      space_->num_actions(), dopts);
}

int32_t RlMiner::SelectTrainingAction(const RuleKey& state,
                                      const std::vector<uint8_t>& mask,
                                      double epsilon) {
  if (!explore_rng_.NextBernoulli(epsilon)) {
    return agent_->ActGreedy(state, mask);
  }
  if (!options_.stratified_explore) {
    std::vector<int32_t> allowed;
    for (size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) allowed.push_back(static_cast<int32_t>(i));
    }
    return allowed[explore_rng_.NextUint64(allowed.size())];
  }
  std::vector<int32_t> lhs_allowed, pattern_allowed;
  for (int32_t i = 0; i < space_->stop_action(); ++i) {
    if (!mask[static_cast<size_t>(i)]) continue;
    (space_->IsLhsAction(i) ? lhs_allowed : pattern_allowed).push_back(i);
  }
  std::vector<double> weights = {
      lhs_allowed.empty() ? 0.0 : options_.explore_lhs_weight,
      pattern_allowed.empty() ? 0.0 : options_.explore_pattern_weight,
      options_.explore_stop_weight};
  switch (explore_rng_.NextWeighted(weights)) {
    case 0:
      return lhs_allowed[explore_rng_.NextUint64(lhs_allowed.size())];
    case 1:
      return pattern_allowed[explore_rng_.NextUint64(pattern_allowed.size())];
    default:
      return space_->stop_action();
  }
}

void RlMiner::Train(size_t steps) {
  if (steps == 0) steps = options_.train_steps;
  ERMINER_SPAN("rl/train");
  obs::SetPhase("rl/train");
  Timer timer;
  const size_t end = steps_done_ + steps;
  while (steps_done_ < end) {
    ERMINER_SPAN("rl/episode");
    env_.Reset();
    ++episodes_done_;
    log_.BeginEpisode();
    size_t episode_steps = 0;
    while (!env_.done() && steps_done_ < end &&
           episode_steps < options_.max_episode_steps) {
      std::vector<uint8_t> mask = env_.CurrentMask();
      const double eps =
          agent_loaded_ ? options_.eps_end : eps_.Value(steps_done_);
      int32_t action = SelectTrainingAction(env_.current_state(), mask, eps);
      Environment::StepResult sr = env_.Step(action);
      agent_->Observe({std::move(sr.state), sr.action, sr.reward,
                       std::move(sr.next_state), std::move(sr.next_mask),
                       sr.done});
      float loss = agent_->TrainStep();
      log_.RecordStep(sr.reward, loss);
      ++steps_done_;
      ++episode_steps;
    }
    log_.EndEpisode(env_.leaves().size());
    ERMINER_GAUGE_SET("rl/replay_size",
                      static_cast<double>(agent_->replay_size()));
  }
  last_train_seconds_ = timer.Seconds();
}

MineResult RlMiner::Infer() {
  ERMINER_SPAN("rl/infer");
  obs::SetPhase("rl/infer");
  Timer timer;
  MineResult result;
  // First a purely greedy episode; if it ends before K distinct rules are
  // in the pool (an undertrained or stop-happy policy), keep mining with a
  // small exploration epsilon until the inference budget is spent.
  std::vector<ScoredRule> pool;
  size_t total_steps = 0;
  bool first = true;
  while (first || (total_steps < options_.max_inference_steps &&
                   env_.global_pool().size() < options_.base.k)) {
    env_.Reset();
    const double eps = first ? 0.0 : options_.inference_epsilon;
    size_t episode_steps = 0;
    while (!env_.done() && episode_steps < options_.max_episode_steps &&
           total_steps < options_.max_inference_steps) {
      std::vector<uint8_t> mask = env_.CurrentMask();
      int32_t action = eps > 0.0
                           ? SelectTrainingAction(env_.current_state(), mask,
                                                  eps)
                           : agent_->ActGreedy(env_.current_state(), mask);
      env_.Step(action);
      ++episode_steps;
      ++total_steps;
    }
    if (first) pool = env_.leaves();  // the greedy episode's own leaves
    first = false;
  }
  // The greedy episode's leaves first; top up from the cross-episode pool
  // so a short greedy walk still returns K rules.
  for (const auto& sr : env_.global_pool()) pool.push_back(sr);
  result.rules = SelectTopKNonRedundant(std::move(pool), options_.base.k);
  ERMINER_COUNT("rl/inference_steps", total_steps);
  result.inference_steps = total_steps;
  result.nodes_explored = env_.total_nodes();
  result.rule_evaluations = evaluator_.num_evaluations();
  last_inference_seconds_ = timer.Seconds();
  result.inference_seconds = last_inference_seconds_;
  result.seconds = last_inference_seconds_;
  return result;
}

MineResult RlMiner::Mine() {
  Train();
  MineResult result = Infer();
  result.train_seconds = last_train_seconds_;
  result.seconds = last_train_seconds_ + last_inference_seconds_;
  return result;
}

}  // namespace erminer
