// Masked deep Q-network agent (Sec. III-C.5, IV-C).
//
// The online network estimates Q(s, a) for every action; the rule-mask layer
// (Eq. 13) assigns -inf to disallowed actions before the greedy argmax —
// both when acting and when bootstrapping through the target network.

#ifndef ERMINER_RL_DQN_H_
#define ERMINER_RL_DQN_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "nn/optimizer.h"
#include "nn/q_network.h"
#include "nn/sparse.h"
#include "rl/prioritized_replay.h"
#include "rl/replay_buffer.h"
#include "util/random.h"

namespace erminer {

struct DqnOptions {
  std::vector<size_t> hidden = {128, 128};
  float learning_rate = 1e-3f;
  float gamma = 0.95f;
  size_t batch_size = 64;
  size_t replay_capacity = 20000;
  /// Minimum transitions before updates begin.
  size_t min_replay = 200;
  /// Target-network hard sync cadence (in updates).
  size_t target_sync_every = 100;
  float huber_delta = 1.0f;
  uint64_t seed = 17;

  /// Double DQN (van Hasselt et al.): select the bootstrap action with the
  /// online network, evaluate it with the target network.
  bool double_dqn = false;
  /// Dueling architecture (Wang et al.): Q = V + A - mean(A).
  bool dueling = false;
  /// Prioritized experience replay (proportional variant).
  bool prioritized = false;
  double per_alpha = 0.6;
  double per_beta = 0.4;

  /// Feed rule-key states to the network as sparse one-hot index lists
  /// instead of densified rows. Bit-identical Q-values, gradients and rules
  /// either way (the sparse kernels replicate the dense zero-skip
  /// accumulation order); the sparse path skips the O(batch * state_dim)
  /// densify + first-layer scan entirely. Off is kept for A/B benchmarks.
  bool sparse_state = true;
};

class DqnAgent {
 public:
  DqnAgent(size_t state_dim, size_t num_actions, const DqnOptions& options);

  /// Masked epsilon-greedy action. At least the stop action must be allowed.
  int32_t Act(const RuleKey& state, const std::vector<uint8_t>& mask,
              double epsilon);

  /// Masked greedy action (inference).
  int32_t ActGreedy(const RuleKey& state, const std::vector<uint8_t>& mask) {
    return Act(state, mask, 0.0);
  }

  /// Q-values of one state (pre-mask), for inspection and tests.
  std::vector<float> QValues(const RuleKey& state);

  /// Q-values of many states in ONE forward pass: the densified feature
  /// rows are stacked into a single matrix, so the network's matmuls run
  /// once over the whole batch. Row b equals QValues(*states[b]) bitwise —
  /// every matmul row is an independent dot product.
  Tensor QValuesBatch(const std::vector<const RuleKey*>& states);

  /// Masked greedy actions for many states from one batched forward;
  /// element b equals ActGreedy(*states[b], *masks[b]) exactly.
  std::vector<int32_t> ActGreedyBatch(
      const std::vector<const RuleKey*>& states,
      const std::vector<const std::vector<uint8_t>*>& masks);

  void Observe(Transition t) {
    if (prioritized_) {
      prioritized_->Add(std::move(t));
    } else {
      replay_.Add(std::move(t));
    }
  }

  /// One TD(0) update from a replay batch; no-op until min_replay is met.
  /// Returns the batch Huber loss (0 when skipped).
  float TrainStep();

  size_t updates_done() const { return updates_done_; }
  size_t state_dim() const { return state_dim_; }
  size_t num_actions() const { return num_actions_; }
  size_t replay_size() const {
    return prioritized_ ? prioritized_->size() : replay_.size();
  }

  /// Weight (de)serialization for fine-tuning.
  Status SaveWeights(std::ostream& os) const { return online_->Save(os); }
  Status LoadWeights(std::istream& is);

  /// Full mutable agent state for checkpointing: online AND target weights
  /// (they differ between hard syncs), Adam moments, the RNG stream, the
  /// replay buffer (uniform or prioritized, whichever is active) and the
  /// update counter. Restoring it resumes training bit-identically.
  Status SaveState(ckpt::Writer* w) const;
  Status LoadState(ckpt::Reader* r);

 private:
  /// Stages a batch of states into the reused encoding scratch
  /// (sparse_scratch_ or dense_scratch_, per options_.sparse_state).
  void BuildStates(const std::vector<const Transition*>& batch, bool next);
  void BuildKeys(const std::vector<const RuleKey*>& states);
  /// Forward pass of `net` over the staged scratch. The sparse scratch must
  /// stay untouched until any matching Backward (it is rebuilt with the
  /// current states right before the online forward in TrainStep).
  const Tensor& ForwardBuilt(QNetwork* net);

  size_t state_dim_;
  size_t num_actions_;
  DqnOptions options_;
  Rng rng_;
  std::unique_ptr<QNetwork> online_;
  std::unique_ptr<QNetwork> target_;
  Adam optimizer_;
  ReplayBuffer replay_;
  std::unique_ptr<PrioritizedReplay> prioritized_;  // set when enabled
  size_t updates_done_ = 0;

  // Reused per-call scratch (zero steady-state allocations).
  nn::SparseRows sparse_scratch_;
  Tensor dense_scratch_;
  Tensor dq_;
  std::vector<float> targets_;
  std::vector<float> abs_td_;
};

}  // namespace erminer

#endif  // ERMINER_RL_DQN_H_
