// IncrementalMiner: first-class RLMiner-ft (Sec. V-D3).
//
// Wraps the machinery the incremental experiments need: the action space is
// built ONCE from a reference ("full") corpus so the value network's
// dimensions never change, the first Mine() trains from scratch, and every
// later Mine() on an enriched corpus transfers the previous agent's weights
// and fine-tunes with a fraction of the steps.
//
// The reference corpus must share dictionaries with every corpus passed to
// Mine() — use Corpus::TruncateRows views of one full corpus, which is how
// gradually-revealed data is modeled here.

#ifndef ERMINER_RL_INCREMENTAL_MINER_H_
#define ERMINER_RL_INCREMENTAL_MINER_H_

#include <memory>
#include <string>

#include "rl/rl_miner.h"

namespace erminer {

class IncrementalMiner {
 public:
  struct Options {
    RlMinerOptions rl;
    /// Fine-tune budget as a fraction of rl.train_steps (paper: much
    /// smaller than from-scratch training).
    double fine_tune_fraction = 0.2;
  };

  /// `reference` provides the action space (typically the full corpus).
  IncrementalMiner(const Corpus* reference, const Options& options);

  /// Mines `corpus` (a dictionary-compatible view). The first call trains
  /// from scratch; later calls fine-tune the carried-over agent.
  MineResult Mine(const Corpus& corpus);

  size_t rounds() const { return rounds_; }
  const ActionSpace& space() const { return *space_; }

 private:
  Options options_;
  std::shared_ptr<const ActionSpace> space_;
  std::string weights_;  // serialized agent carried across rounds
  size_t rounds_ = 0;
};

}  // namespace erminer

#endif  // ERMINER_RL_INCREMENTAL_MINER_H_
