// DqnGreedyPolicy: RLMiner's inference walk as a search::ExpansionPolicy.
//
// The other policies (src/search/policies.h) expand lattice nodes through
// the engine's frontier; this one drives the trained agent through the RL
// environment instead — a purely greedy first episode, then small-epsilon
// top-up episodes until K distinct rules are pooled or the inference budget
// is spent — and hands the collected rules to the engine's pool, so the
// final top-K selection, the MineResult counters and all decision-log
// emission go through the same SearchEngine::Mine path as every other
// miner.

#ifndef ERMINER_RL_DQN_POLICY_H_
#define ERMINER_RL_DQN_POLICY_H_

#include <cstddef>

#include "search/search_engine.h"

namespace erminer {

class RlMiner;

class DqnGreedyPolicy : public search::ExpansionPolicy {
 public:
  explicit DqnGreedyPolicy(RlMiner& miner) : miner_(miner) {}

  const char* mine_span() const override { return "rl/infer"; }
  void Run(search::SearchEngine& engine) override;

  /// Environment steps the walk consumed ("rl/inference_steps").
  size_t total_steps() const { return total_steps_; }

 private:
  RlMiner& miner_;
  size_t total_steps_ = 0;
};

}  // namespace erminer

#endif  // ERMINER_RL_DQN_POLICY_H_
