#include "data/table.h"

#include <sstream>
#include <unordered_set>

namespace erminer {

StringTable StringTable::SelectRows(const std::vector<size_t>& ids) const {
  StringTable out;
  out.schema = schema;
  out.rows.reserve(ids.size());
  for (size_t id : ids) {
    ERMINER_CHECK(id < rows.size());
    out.rows.push_back(rows[id]);
  }
  return out;
}

Status StringTable::Validate() const {
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != schema.size()) {
      std::ostringstream os;
      os << "row " << r << " has " << rows[r].size() << " cells, schema has "
         << schema.size();
      return Status::InvalidArgument(os.str());
    }
  }
  return Status::OK();
}

Result<Table> Table::Encode(const StringTable& raw,
                            std::vector<std::shared_ptr<Domain>> domains) {
  ERMINER_RETURN_NOT_OK(raw.Validate());
  if (domains.size() != raw.schema.size()) {
    return Status::InvalidArgument("domains/schema width mismatch");
  }
  for (const auto& d : domains) {
    if (d == nullptr) return Status::InvalidArgument("null domain");
  }
  Table t;
  t.schema_ = raw.schema;
  t.num_rows_ = raw.num_rows();
  t.domains_ = std::move(domains);
  t.columns_.assign(raw.num_cols(), {});
  for (size_t c = 0; c < raw.num_cols(); ++c) {
    t.columns_[c].resize(raw.num_rows());
    Domain* dom = t.domains_[c].get();
    for (size_t r = 0; r < raw.num_rows(); ++r) {
      t.columns_[c][r] = dom->GetOrAdd(raw.rows[r][c]);
    }
  }
  return t;
}

Result<Table> Table::EncodeFresh(const StringTable& raw) {
  std::vector<std::shared_ptr<Domain>> domains;
  domains.reserve(raw.num_cols());
  for (size_t c = 0; c < raw.num_cols(); ++c) {
    domains.push_back(std::make_shared<Domain>());
  }
  return Encode(raw, std::move(domains));
}

StringTable Table::Decode() const {
  StringTable out;
  out.schema = schema_;
  out.rows.assign(num_rows_, std::vector<std::string>(num_cols()));
  for (size_t c = 0; c < num_cols(); ++c) {
    for (size_t r = 0; r < num_rows_; ++r) {
      out.rows[r][c] = domains_[c]->ValueOrNull(columns_[c][r]);
    }
  }
  return out;
}

Table Table::Head(size_t n) const {
  Table t;
  t.schema_ = schema_;
  t.num_rows_ = std::min(n, num_rows_);
  t.domains_ = domains_;
  t.columns_.reserve(columns_.size());
  for (const auto& col : columns_) {
    t.columns_.emplace_back(col.begin(),
                            col.begin() + static_cast<long>(t.num_rows_));
  }
  return t;
}

size_t Table::DistinctCount(size_t col) const {
  std::unordered_set<ValueCode> seen;
  for (ValueCode v : column(col)) {
    if (v != kNullCode) seen.insert(v);
  }
  return seen.size();
}

size_t Table::NullCount(size_t col) const {
  size_t n = 0;
  for (ValueCode v : column(col)) n += (v == kNullCode);
  return n;
}

}  // namespace erminer
