// Column statistics and dependency diagnostics.
//
// Profiles a table: per-column distinct counts, null rates, entropies and
// top values, plus pairwise normalized mutual information — the signal that
// tells a user (or a miner heuristic) which attributes plausibly determine
// the repair target. Surfaced through `erminer profile` in the CLI.

#ifndef ERMINER_DATA_STATS_H_
#define ERMINER_DATA_STATS_H_

#include <string>
#include <vector>

#include "data/table.h"

namespace erminer {

struct ColumnStats {
  std::string name;
  size_t num_rows = 0;
  size_t num_nulls = 0;
  size_t num_distinct = 0;
  /// Shannon entropy (bits) of the non-null value distribution.
  double entropy = 0;
  /// Up to `top_k` most frequent values with their counts.
  std::vector<std::pair<std::string, size_t>> top_values;
};

/// Profile of one column. `top_k` limits top_values.
ColumnStats ComputeColumnStats(const Table& table, size_t col,
                               size_t top_k = 5);

/// Normalized mutual information I(A;B) / H(B) in [0, 1]: how much knowing
/// A determines B. 1 means A functionally determines B on the non-null
/// rows; 0 means independence. Asymmetric on purpose (determination, not
/// association).
double NormalizedMutualInformation(const Table& table, size_t a, size_t b);

struct DependencySignal {
  size_t determinant;  // column index
  double nmi;          // NMI(determinant -> target)
};

/// All columns ranked by how strongly they determine `target`.
std::vector<DependencySignal> RankDeterminants(const Table& table,
                                               size_t target);

}  // namespace erminer

#endif  // ERMINER_DATA_STATS_H_
