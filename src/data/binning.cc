#include "data/binning.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace erminer {

std::optional<double> ParseNumeric(const std::string& s) {
  if (s.empty()) return std::nullopt;
  const char* begin = s.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  // Reject trailing garbage (allow trailing spaces).
  while (*end == ' ') ++end;
  if (*end != '\0') return std::nullopt;
  return v;
}

namespace {
std::string BinLabel(int bin, const std::vector<double>& edges) {
  char buf[96];
  const int k = static_cast<int>(edges.size());
  if (k == 0) return "[all)";
  if (bin == 0) {
    std::snprintf(buf, sizeof(buf), "(-inf,%.4g)", edges[0]);
  } else if (bin == k) {
    std::snprintf(buf, sizeof(buf), "[%.4g,+inf)", edges[k - 1]);
  } else {
    std::snprintf(buf, sizeof(buf), "[%.4g,%.4g)", edges[bin - 1], edges[bin]);
  }
  return buf;
}
}  // namespace

Discretizer Discretizer::Fit(const std::vector<std::string>& samples,
                             int n_split) {
  Discretizer d;
  if (n_split <= 1) n_split = 2;
  std::vector<double> nums;
  nums.reserve(samples.size());
  for (const auto& s : samples) {
    if (auto v = ParseNumeric(s)) nums.push_back(*v);
  }
  if (nums.empty()) return d;  // no-op
  std::sort(nums.begin(), nums.end());
  // Equal-frequency interior cut points; deduplicate to avoid empty bins.
  for (int i = 1; i < n_split; ++i) {
    size_t pos = (nums.size() * static_cast<size_t>(i)) / n_split;
    if (pos >= nums.size()) pos = nums.size() - 1;
    double e = nums[pos];
    if (d.edges_.empty() || e > d.edges_.back()) d.edges_.push_back(e);
  }
  const int bins = static_cast<int>(d.edges_.size()) + 1;
  d.labels_.reserve(bins);
  for (int b = 0; b < bins; ++b) d.labels_.push_back(BinLabel(b, d.edges_));
  return d;
}

std::string Discretizer::Apply(const std::string& value) const {
  if (labels_.empty()) return value;
  auto v = ParseNumeric(value);
  if (!v) return value;
  // First bin whose upper edge exceeds v.
  size_t bin =
      std::upper_bound(edges_.begin(), edges_.end(), *v) - edges_.begin();
  return labels_[bin];
}

Status DiscretizeJointly(std::vector<StringTable*> tables,
                         const std::vector<ContinuousBinding>& bindings,
                         int n_split) {
  for (const auto& binding : bindings) {
    if (binding.column_per_table.size() != tables.size()) {
      return Status::InvalidArgument("binding width != number of tables");
    }
    std::vector<std::string> samples;
    for (size_t t = 0; t < tables.size(); ++t) {
      int col = binding.column_per_table[t];
      if (col < 0) continue;
      if (static_cast<size_t>(col) >= tables[t]->num_cols()) {
        return Status::OutOfRange("binding column out of range");
      }
      for (const auto& row : tables[t]->rows) {
        samples.push_back(row[static_cast<size_t>(col)]);
      }
    }
    Discretizer d = Discretizer::Fit(samples, n_split);
    for (size_t t = 0; t < tables.size(); ++t) {
      int col = binding.column_per_table[t];
      if (col < 0) continue;
      for (auto& row : tables[t]->rows) {
        auto& cell = row[static_cast<size_t>(col)];
        cell = d.Apply(cell);
      }
      // After discretization the attribute behaves as discrete.
      auto attrs = tables[t]->schema.attributes();
      attrs[static_cast<size_t>(col)].kind = AttributeKind::kDiscrete;
      tables[t]->schema = Schema(std::move(attrs));
    }
  }
  return Status::OK();
}

}  // namespace erminer
