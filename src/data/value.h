// Cell value representation.
//
// Every cell in an encoded Table is a ValueCode: an index into the column's
// Domain dictionary, or kNullCode for a missing value. Matched input/master
// columns share one Domain (see data/corpus.h), so cross-table equality of
// cell values is plain integer equality.

#ifndef ERMINER_DATA_VALUE_H_
#define ERMINER_DATA_VALUE_H_

#include <cstdint>

namespace erminer {

using ValueCode = int32_t;

/// Code reserved for missing values (NULL). Never present in a Domain.
inline constexpr ValueCode kNullCode = -1;

/// The canonical external spelling of a missing value. CSV readers and the
/// error injector produce it; encoders map it to kNullCode.
inline constexpr const char* kNullToken = "";

}  // namespace erminer

#endif  // ERMINER_DATA_VALUE_H_
