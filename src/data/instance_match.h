// Instance-based schema matching.
//
// Sec. II-C assumes the match M between R and R_m is given by an external
// schema-matching step [28, 33]. Name equality (SchemaMatch::ByName) covers
// curated schemas; this module provides the instance-based alternative —
// matching columns by the overlap of their VALUE sets — which works when
// column names differ across sources (e.g. "ZIP" vs "Postcode").

#ifndef ERMINER_DATA_INSTANCE_MATCH_H_
#define ERMINER_DATA_INSTANCE_MATCH_H_

#include <vector>

#include "data/schema_match.h"
#include "data/table.h"

namespace erminer {

struct InstanceMatchOptions {
  /// Minimum containment score for a pair to be matched. The score of
  /// (A, A_m) is |values(A) ∩ values(A_m)| / min(|values(A)|, |values(A_m)|)
  /// — containment rather than Jaccard, because the input's dirty values
  /// inflate its value set.
  double min_score = 0.5;
  /// Cap on distinct values sampled per column (largest-frequency first
  /// would need counts; we simply take the first N distinct seen).
  size_t max_values_per_column = 10000;
  /// Greedy one-to-one assignment (best score first). If false, every pair
  /// above the threshold is kept (M(A) may then have several elements).
  bool one_to_one = true;
};

/// Score matrix entry, exposed for diagnostics and tests.
struct MatchCandidate {
  int input_col;
  int master_col;
  double score;
};

/// All candidate pairs with score >= min_score, best first.
std::vector<MatchCandidate> ScoreMatches(const StringTable& input,
                                         const StringTable& master,
                                         const InstanceMatchOptions& opts);

/// Builds the match M from value overlap.
SchemaMatch MatchByValues(const StringTable& input, const StringTable& master,
                          const InstanceMatchOptions& opts = {});

}  // namespace erminer

#endif  // ERMINER_DATA_INSTANCE_MATCH_H_
