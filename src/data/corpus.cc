#include "data/corpus.h"

#include <numeric>

#include "data/binning.h"

namespace erminer {

namespace {

/// Union-find over the combined column space (input columns first).
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<Corpus> Corpus::Build(StringTable input, StringTable master,
                             const SchemaMatch& match, int y_input,
                             int y_master, const CorpusOptions& opts) {
  ERMINER_RETURN_NOT_OK(input.Validate());
  ERMINER_RETURN_NOT_OK(master.Validate());
  const size_t w_in = input.num_cols();
  const size_t w_m = master.num_cols();
  if (match.input_width() != w_in) {
    return Status::InvalidArgument("match width != input schema width");
  }
  if (y_input < 0 || static_cast<size_t>(y_input) >= w_in ||
      y_master < 0 || static_cast<size_t>(y_master) >= w_m) {
    return Status::OutOfRange("target attribute index out of range");
  }
  for (size_t a = 0; a < w_in; ++a) {
    for (int am : match.Matches(static_cast<int>(a))) {
      if (am < 0 || static_cast<size_t>(am) >= w_m) {
        return Status::OutOfRange("match references master column " +
                                  std::to_string(am));
      }
    }
  }

  // Group matched columns into shared-domain components.
  UnionFind uf(w_in + w_m);
  for (size_t a = 0; a < w_in; ++a) {
    for (int am : match.Matches(static_cast<int>(a))) {
      uf.Union(a, w_in + static_cast<size_t>(am));
    }
  }
  uf.Union(static_cast<size_t>(y_input), w_in + static_cast<size_t>(y_master));

  // Discretize continuous attributes jointly per component.
  std::vector<StringTable*> tables = {&input, &master};
  std::vector<ContinuousBinding> bindings;
  std::vector<bool> master_done(w_m, false);
  for (size_t a = 0; a < w_in; ++a) {
    bool continuous = input.schema.attribute(a).kind ==
                      AttributeKind::kContinuous;
    ContinuousBinding b;
    b.column_per_table = {static_cast<int>(a), -1};
    for (size_t am = 0; am < w_m; ++am) {
      if (uf.Find(a) == uf.Find(w_in + am)) {
        continuous = continuous || master.schema.attribute(am).kind ==
                                       AttributeKind::kContinuous;
        b.column_per_table[1] = static_cast<int>(am);
        master_done[am] = true;
        break;  // one representative master column per binding
      }
    }
    if (continuous) bindings.push_back(b);
  }
  for (size_t am = 0; am < w_m; ++am) {
    if (!master_done[am] &&
        master.schema.attribute(am).kind == AttributeKind::kContinuous) {
      ContinuousBinding b;
      b.column_per_table = {-1, static_cast<int>(am)};
      bindings.push_back(b);
    }
  }
  ERMINER_RETURN_NOT_OK(DiscretizeJointly(tables, bindings, opts.n_split));

  // One Domain per union-find component.
  std::vector<std::shared_ptr<Domain>> component_domain(w_in + w_m);
  auto domain_of = [&](size_t col) {
    size_t root = uf.Find(col);
    if (component_domain[root] == nullptr) {
      component_domain[root] = std::make_shared<Domain>();
    }
    return component_domain[root];
  };
  std::vector<std::shared_ptr<Domain>> in_domains(w_in);
  std::vector<std::shared_ptr<Domain>> m_domains(w_m);
  for (size_t a = 0; a < w_in; ++a) in_domains[a] = domain_of(a);
  for (size_t am = 0; am < w_m; ++am) m_domains[am] = domain_of(w_in + am);

  Corpus corpus;
  ERMINER_ASSIGN_OR_RETURN(corpus.input_,
                           Table::Encode(input, std::move(in_domains)));
  ERMINER_ASSIGN_OR_RETURN(corpus.master_,
                           Table::Encode(master, std::move(m_domains)));
  corpus.match_ = match;
  corpus.y_input_ = y_input;
  corpus.y_master_ = y_master;
  corpus.options_ = opts;
  return corpus;
}

Corpus Corpus::TruncateRows(size_t n_input, size_t n_master) const {
  Corpus out;
  out.input_ = input_.Head(n_input);
  out.master_ = master_.Head(n_master);
  out.match_ = match_;
  out.y_input_ = y_input_;
  out.y_master_ = y_master_;
  out.options_ = options_;
  if (!labels_.empty()) {
    out.labels_.assign(labels_.begin(),
                       labels_.begin() +
                           static_cast<long>(out.input_.num_rows()));
  }
  return out;
}

Status Corpus::SetLabels(const std::vector<std::string>& truths) {
  if (truths.size() != input_.num_rows()) {
    return Status::InvalidArgument("labels size != input rows");
  }
  labels_.resize(truths.size());
  Domain* dom = y_domain().get();
  for (size_t i = 0; i < truths.size(); ++i) {
    labels_[i] = dom->GetOrAdd(truths[i]);
  }
  return Status::OK();
}

}  // namespace erminer
