#include "data/stats.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/hash.h"

namespace erminer {

namespace {

double EntropyOfCounts(const std::unordered_map<ValueCode, size_t>& counts,
                       size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  const double n = static_cast<double>(total);
  for (const auto& [v, c] : counts) {
    double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

ColumnStats ComputeColumnStats(const Table& table, size_t col, size_t top_k) {
  ColumnStats s;
  s.name = table.schema().attribute(col).name;
  s.num_rows = table.num_rows();
  std::unordered_map<ValueCode, size_t> counts;
  for (ValueCode v : table.column(col)) {
    if (v == kNullCode) {
      ++s.num_nulls;
    } else {
      ++counts[v];
    }
  }
  s.num_distinct = counts.size();
  s.entropy = EntropyOfCounts(counts, s.num_rows - s.num_nulls);
  std::vector<std::pair<ValueCode, size_t>> sorted(counts.begin(),
                                                   counts.end());
  std::sort(sorted.begin(), sorted.end(), [&](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return table.domain(col)->value(a.first) <
           table.domain(col)->value(b.first);
  });
  for (size_t i = 0; i < sorted.size() && i < top_k; ++i) {
    s.top_values.emplace_back(table.domain(col)->value(sorted[i].first),
                              sorted[i].second);
  }
  return s;
}

double NormalizedMutualInformation(const Table& table, size_t a, size_t b) {
  std::unordered_map<ValueCode, size_t> ca, cb;
  std::unordered_map<std::vector<ValueCode>, size_t, VectorHash> cab;
  size_t n = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    ValueCode va = table.at(r, a);
    ValueCode vb = table.at(r, b);
    if (va == kNullCode || vb == kNullCode) continue;
    ++n;
    ++ca[va];
    ++cb[vb];
    ++cab[{va, vb}];
  }
  if (n == 0) return 0.0;
  const double dn = static_cast<double>(n);
  double h_b = EntropyOfCounts(cb, n);
  if (h_b <= 1e-12) return 1.0;  // constant target is trivially determined
  double mi = 0.0;
  for (const auto& [key, c] : cab) {
    double pxy = static_cast<double>(c) / dn;
    double px = static_cast<double>(ca[key[0]]) / dn;
    double py = static_cast<double>(cb[key[1]]) / dn;
    mi += pxy * std::log2(pxy / (px * py));
  }
  double nmi = mi / h_b;
  return std::clamp(nmi, 0.0, 1.0);
}

std::vector<DependencySignal> RankDeterminants(const Table& table,
                                               size_t target) {
  std::vector<DependencySignal> out;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (c == target) continue;
    out.push_back({c, NormalizedMutualInformation(table, c, target)});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const DependencySignal& x, const DependencySignal& y) {
                     return x.nmi > y.nmi;
                   });
  return out;
}

}  // namespace erminer
