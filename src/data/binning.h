// Discretization of continuous attributes into N_split ranges (Sec. IV-A).
//
// The paper encodes continuous attributes as N_split range buckets rather
// than individual values. A Discretizer learns quantile edges from the union
// of master and input values so both tables bucket identically, then rewrites
// cells to range labels like "[17.0,28.0)".

#ifndef ERMINER_DATA_BINNING_H_
#define ERMINER_DATA_BINNING_H_

#include <optional>
#include <string>
#include <vector>

#include "data/table.h"
#include "util/status.h"

namespace erminer {

class Discretizer {
 public:
  /// Learns `n_split` equal-frequency bin edges from the given samples.
  /// Non-numeric strings are ignored; if no numeric value is seen the
  /// discretizer becomes a no-op.
  static Discretizer Fit(const std::vector<std::string>& samples, int n_split);

  /// Maps one value to its range label. Null/non-numeric values pass through
  /// unchanged (a typo in a numeric field stays a distinct dirty value).
  std::string Apply(const std::string& value) const;

  int num_bins() const { return static_cast<int>(labels_.size()); }
  const std::vector<double>& edges() const { return edges_; }

 private:
  // edges_ has num_bins-1 interior cut points (sorted). Bin i covers
  // (-inf, e0), [e0, e1), ..., [e_last, +inf).
  std::vector<double> edges_;
  std::vector<std::string> labels_;
};

/// Attempts to parse a decimal number; returns nullopt for non-numeric text.
std::optional<double> ParseNumeric(const std::string& s);

/// Fits a Discretizer per continuous column over `tables` jointly, then
/// rewrites those columns in place in every table. Tables must share the
/// column's meaning at the given indices; `columns[i]` lists, per table, the
/// column index of this attribute (-1 if the table lacks it).
struct ContinuousBinding {
  std::vector<int> column_per_table;  // parallel to `tables`, -1 = absent
};

Status DiscretizeJointly(std::vector<StringTable*> tables,
                         const std::vector<ContinuousBinding>& bindings,
                         int n_split);

}  // namespace erminer

#endif  // ERMINER_DATA_BINNING_H_
