// Domain: a bidirectional string <-> ValueCode dictionary for one attribute
// (possibly shared by several matched attributes across tables).

#ifndef ERMINER_DATA_DOMAIN_H_
#define ERMINER_DATA_DOMAIN_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/value.h"
#include "util/status.h"

namespace erminer {

class Domain {
 public:
  Domain() = default;

  /// Returns the code of `value`, inserting it if absent.
  /// The empty string (kNullToken) always encodes to kNullCode and is never
  /// inserted.
  ValueCode GetOrAdd(std::string_view value);

  /// Returns the code of `value`, or kNullCode if absent (or null token).
  ValueCode Lookup(std::string_view value) const;

  /// The string for a code. Requires 0 <= code < size().
  const std::string& value(ValueCode code) const {
    ERMINER_CHECK(code >= 0 && static_cast<size_t>(code) < values_.size());
    return values_[static_cast<size_t>(code)];
  }

  /// The string for a code, mapping kNullCode to kNullToken.
  std::string ValueOrNull(ValueCode code) const {
    return code == kNullCode ? std::string(kNullToken) : value(code);
  }

  size_t size() const { return values_.size(); }

  /// All values, in code order.
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, ValueCode> index_;
};

}  // namespace erminer

#endif  // ERMINER_DATA_DOMAIN_H_
