// Corpus: the encoded (input D, master D_m, match M, target (Y, Y_m)) bundle
// every miner operates on.
//
// Invariant: matched attribute pairs (including the target pair) share one
// Domain, so `t[X] = t_m[X_m]` and `t_m[Y_m] = truth` reduce to integer
// comparisons of ValueCodes. Continuous attributes are discretized into
// N_split ranges jointly over both tables before encoding (Sec. IV-A).

#ifndef ERMINER_DATA_CORPUS_H_
#define ERMINER_DATA_CORPUS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/schema_match.h"
#include "data/table.h"
#include "util/status.h"

namespace erminer {

struct CorpusOptions {
  /// Number of ranges for each continuous attribute (paper's N_split).
  int n_split = 5;
};

class Corpus {
 public:
  /// Builds a corpus. `y_input` / `y_master` give the target attribute pair
  /// (Y, Y_m); they are treated as matched even if absent from `match`.
  static Result<Corpus> Build(StringTable input, StringTable master,
                              const SchemaMatch& match, int y_input,
                              int y_master, const CorpusOptions& opts = {});

  const Table& input() const { return input_; }
  const Table& master() const { return master_; }
  const SchemaMatch& match() const { return match_; }
  int y_input() const { return y_input_; }
  int y_master() const { return y_master_; }
  const CorpusOptions& options() const { return options_; }

  /// The shared dictionary of the target pair.
  const std::shared_ptr<Domain>& y_domain() const {
    return input_.domain(static_cast<size_t>(y_input_));
  }

  /// Optional labelled truths D_l for the input's Y column (one per input
  /// row; kNullToken = unlabelled cell). Encoded with the target domain.
  Status SetLabels(const std::vector<std::string>& truths);
  bool has_labels() const { return !labels_.empty(); }
  const std::vector<ValueCode>& labels() const { return labels_; }

  /// The label used by the Quality measure for row `r`: the true value if
  /// labels were provided, otherwise the (possibly dirty) input value itself
  /// (Sec. II-B3 approximate quality).
  ValueCode QualityLabel(size_t r) const {
    if (!labels_.empty()) return labels_[r];
    return input_.at(r, static_cast<size_t>(y_input_));
  }

  /// A corpus over the first `n_input` / `n_master` rows, sharing this
  /// corpus's dictionaries (so ValueCodes, and hence an ActionSpace built on
  /// the full corpus, remain valid). Labels are truncated accordingly.
  Corpus TruncateRows(size_t n_input, size_t n_master) const;

 private:
  Table input_;
  Table master_;
  SchemaMatch match_;
  int y_input_ = -1;
  int y_master_ = -1;
  CorpusOptions options_;
  std::vector<ValueCode> labels_;
};

}  // namespace erminer

#endif  // ERMINER_DATA_CORPUS_H_
