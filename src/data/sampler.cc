#include "data/sampler.h"

#include <algorithm>

namespace erminer {

StringTable SampleRows(const StringTable& table, size_t k, Rng* rng) {
  k = std::min(k, table.num_rows());
  auto ids = rng->SampleWithoutReplacement(table.num_rows(), k);
  return table.SelectRows(ids);
}

std::pair<StringTable, StringTable> SplitRows(const StringTable& table,
                                              size_t k, Rng* rng) {
  k = std::min(k, table.num_rows());
  std::vector<size_t> ids(table.num_rows());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  rng->Shuffle(&ids);
  std::vector<size_t> first(ids.begin(), ids.begin() + static_cast<long>(k));
  std::vector<size_t> rest(ids.begin() + static_cast<long>(k), ids.end());
  return {table.SelectRows(first), table.SelectRows(rest)};
}

StringTable SampleWithDuplicateRate(const StringTable& master_source,
                                    const StringTable& other_source,
                                    size_t n, double d_percent, Rng* rng) {
  ERMINER_CHECK(master_source.schema.size() == other_source.schema.size());
  StringTable out;
  out.schema = master_source.schema;
  out.rows.reserve(n);
  const double p = std::clamp(d_percent / 100.0, 0.0, 1.0);
  for (size_t i = 0; i < n; ++i) {
    const bool from_master =
        !master_source.rows.empty() &&
        (other_source.rows.empty() || rng->NextBernoulli(p));
    const StringTable& src = from_master ? master_source : other_source;
    size_t r = static_cast<size_t>(rng->NextUint64(src.num_rows()));
    out.rows.push_back(src.rows[r]);
  }
  return out;
}

}  // namespace erminer
