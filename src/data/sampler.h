// Row sampling helpers used by the dataset split protocols of Sec. V-A1.

#ifndef ERMINER_DATA_SAMPLER_H_
#define ERMINER_DATA_SAMPLER_H_

#include <utility>

#include "data/table.h"
#include "util/random.h"

namespace erminer {

/// Uniform sample of `k` distinct rows (k clamped to the table size).
StringTable SampleRows(const StringTable& table, size_t k, Rng* rng);

/// Disjoint random split into (first k, remaining) after a shuffle.
std::pair<StringTable, StringTable> SplitRows(const StringTable& table,
                                              size_t k, Rng* rng);

/// Duplicate-rate sampling (Fig. 7): builds an input of `n` rows of which
/// ~d_percent% are drawn (with replacement) from `master_source` rows and the
/// rest from `other_source` rows.
StringTable SampleWithDuplicateRate(const StringTable& master_source,
                                    const StringTable& other_source,
                                    size_t n, double d_percent, Rng* rng);

}  // namespace erminer

#endif  // ERMINER_DATA_SAMPLER_H_
