#include "data/schema_match.h"

#include <algorithm>

#include "util/string_util.h"

namespace erminer {

const std::vector<int> SchemaMatch::kEmpty = {};

void SchemaMatch::AddPair(int a, int a_m) {
  ERMINER_CHECK(a >= 0 && static_cast<size_t>(a) < input_to_master_.size());
  ERMINER_CHECK(a_m >= 0);
  auto& v = input_to_master_[static_cast<size_t>(a)];
  if (std::find(v.begin(), v.end(), a_m) == v.end()) v.push_back(a_m);
}

const std::vector<int>& SchemaMatch::Matches(int a) const {
  if (a < 0 || static_cast<size_t>(a) >= input_to_master_.size()) {
    return kEmpty;
  }
  return input_to_master_[static_cast<size_t>(a)];
}

size_t SchemaMatch::num_pairs() const {
  size_t n = 0;
  for (const auto& v : input_to_master_) n += v.size();
  return n;
}

bool SchemaMatch::Contains(int a, int a_m) const {
  const auto& v = Matches(a);
  return std::find(v.begin(), v.end(), a_m) != v.end();
}

SchemaMatch SchemaMatch::ByName(const Schema& input, const Schema& master) {
  SchemaMatch m(input.size());
  for (size_t a = 0; a < input.size(); ++a) {
    const std::string name = ToLower(input.attribute(a).name);
    for (size_t am = 0; am < master.size(); ++am) {
      if (ToLower(master.attribute(am).name) == name) {
        m.AddPair(static_cast<int>(a), static_cast<int>(am));
      }
    }
  }
  return m;
}

}  // namespace erminer
