#include "data/instance_match.h"

#include <algorithm>
#include <unordered_set>

namespace erminer {

namespace {

std::vector<std::unordered_set<std::string>> ColumnValueSets(
    const StringTable& table, size_t cap) {
  std::vector<std::unordered_set<std::string>> sets(table.num_cols());
  for (const auto& row : table.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].empty()) continue;
      if (sets[c].size() >= cap) continue;
      sets[c].insert(row[c]);
    }
  }
  return sets;
}

}  // namespace

std::vector<MatchCandidate> ScoreMatches(const StringTable& input,
                                         const StringTable& master,
                                         const InstanceMatchOptions& opts) {
  auto in_sets = ColumnValueSets(input, opts.max_values_per_column);
  auto ms_sets = ColumnValueSets(master, opts.max_values_per_column);
  std::vector<MatchCandidate> out;
  for (size_t a = 0; a < in_sets.size(); ++a) {
    if (in_sets[a].empty()) continue;
    for (size_t am = 0; am < ms_sets.size(); ++am) {
      if (ms_sets[am].empty()) continue;
      // Iterate over the smaller set for the intersection.
      const auto& small =
          in_sets[a].size() <= ms_sets[am].size() ? in_sets[a] : ms_sets[am];
      const auto& large =
          in_sets[a].size() <= ms_sets[am].size() ? ms_sets[am] : in_sets[a];
      size_t inter = 0;
      for (const auto& v : small) inter += large.count(v);
      double score =
          static_cast<double>(inter) / static_cast<double>(small.size());
      if (score >= opts.min_score) {
        out.push_back({static_cast<int>(a), static_cast<int>(am), score});
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const MatchCandidate& x, const MatchCandidate& y) {
                     return x.score > y.score;
                   });
  return out;
}

SchemaMatch MatchByValues(const StringTable& input, const StringTable& master,
                          const InstanceMatchOptions& opts) {
  SchemaMatch match(input.num_cols());
  std::vector<bool> in_used(input.num_cols(), false);
  std::vector<bool> ms_used(master.num_cols(), false);
  for (const MatchCandidate& cand : ScoreMatches(input, master, opts)) {
    if (opts.one_to_one) {
      if (in_used[static_cast<size_t>(cand.input_col)] ||
          ms_used[static_cast<size_t>(cand.master_col)]) {
        continue;
      }
      in_used[static_cast<size_t>(cand.input_col)] = true;
      ms_used[static_cast<size_t>(cand.master_col)] = true;
    }
    match.AddPair(cand.input_col, cand.master_col);
  }
  return match;
}

}  // namespace erminer
