// Relation schema: named attributes with a discrete/continuous kind.

#ifndef ERMINER_DATA_SCHEMA_H_
#define ERMINER_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace erminer {

enum class AttributeKind {
  kDiscrete,    // categorical: each distinct string is its own value
  kContinuous,  // numeric: discretized into N_split ranges before mining
};

struct Attribute {
  std::string name;
  AttributeKind kind = AttributeKind::kDiscrete;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  /// Convenience: all-discrete schema from names.
  static Schema FromNames(const std::vector<std::string>& names);

  size_t size() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const {
    ERMINER_CHECK(i < attributes_.size());
    return attributes_[i];
  }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute with this name, or -1 if absent.
  int IndexOf(const std::string& name) const;

  void Add(Attribute attr) { attributes_.push_back(std::move(attr)); }

  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace erminer

#endif  // ERMINER_DATA_SCHEMA_H_
