#include "data/domain.h"

namespace erminer {

ValueCode Domain::GetOrAdd(std::string_view value) {
  if (value.empty()) return kNullCode;
  auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  ValueCode code = static_cast<ValueCode>(values_.size());
  values_.emplace_back(value);
  index_.emplace(values_.back(), code);
  return code;
}

ValueCode Domain::Lookup(std::string_view value) const {
  if (value.empty()) return kNullCode;
  auto it = index_.find(std::string(value));
  return it == index_.end() ? kNullCode : it->second;
}

}  // namespace erminer
