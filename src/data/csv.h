// RFC-4180-ish CSV reading/writing for StringTable.
//
// Supports quoted fields with embedded commas, quotes ("" escape) and
// newlines. The first record is the header; all attributes are read as
// discrete (callers may re-kind columns afterwards).

#ifndef ERMINER_DATA_CSV_H_
#define ERMINER_DATA_CSV_H_

#include <string>
#include <string_view>

#include "data/table.h"
#include "util/status.h"

namespace erminer {

/// Parses CSV text into a StringTable. Empty fields become kNullToken.
Result<StringTable> ParseCsv(std::string_view text);

/// Reads and parses a CSV file.
Result<StringTable> ReadCsvFile(const std::string& path);

/// Serializes with quoting where needed. Includes the header record.
std::string ToCsv(const StringTable& table);

/// Writes CSV to a file.
Status WriteCsvFile(const StringTable& table, const std::string& path);

}  // namespace erminer

#endif  // ERMINER_DATA_CSV_H_
