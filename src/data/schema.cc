#include "data/schema.h"

#include <sstream>

namespace erminer {

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const auto& n : names) attrs.push_back({n, AttributeKind::kDiscrete});
  return Schema(std::move(attrs));
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) os << ", ";
    os << attributes_[i].name;
    if (attributes_[i].kind == AttributeKind::kContinuous) os << ":num";
  }
  os << ")";
  return os.str();
}

}  // namespace erminer
