// The schema match M between input schema R and master schema R_m
// (Sec. II-C). M(A) is the set of master attributes matched to input
// attribute A; the paper assumes M is given, and we additionally provide a
// simple name-based auto-matcher.

#ifndef ERMINER_DATA_SCHEMA_MATCH_H_
#define ERMINER_DATA_SCHEMA_MATCH_H_

#include <string>
#include <vector>

#include "data/schema.h"
#include "util/status.h"

namespace erminer {

class SchemaMatch {
 public:
  SchemaMatch() = default;
  explicit SchemaMatch(size_t input_width)
      : input_to_master_(input_width) {}

  /// Declares that input attribute `a` matches master attribute `a_m`.
  void AddPair(int a, int a_m);

  /// M(A): master attribute indices matched to input attribute `a`
  /// (possibly empty).
  const std::vector<int>& Matches(int a) const;

  size_t input_width() const { return input_to_master_.size(); }

  /// Total number of (A, A_m) pairs, i.e. sum over A of |M(A)|.
  size_t num_pairs() const;

  /// True if some pair (a, a_m) is declared.
  bool Contains(int a, int a_m) const;

  /// Name-based matcher: pairs attributes whose lower-cased names are equal.
  static SchemaMatch ByName(const Schema& input, const Schema& master);

 private:
  std::vector<std::vector<int>> input_to_master_;
  static const std::vector<int> kEmpty;
};

}  // namespace erminer

#endif  // ERMINER_DATA_SCHEMA_MATCH_H_
