// StringTable: raw row-major relation of strings (the datagen/CSV boundary).
// Table: column-major dictionary-encoded relation used by all miners.

#ifndef ERMINER_DATA_TABLE_H_
#define ERMINER_DATA_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "data/domain.h"
#include "data/schema.h"
#include "data/value.h"
#include "util/status.h"

namespace erminer {

/// A raw relation: schema + row-major string cells. Missing values are the
/// empty string (kNullToken).
struct StringTable {
  Schema schema;
  std::vector<std::vector<std::string>> rows;

  size_t num_rows() const { return rows.size(); }
  size_t num_cols() const { return schema.size(); }

  /// Returns a copy restricted to the given row ids (in order).
  StringTable SelectRows(const std::vector<size_t>& ids) const;

  /// Validates that every row has schema.size() cells.
  Status Validate() const;
};

/// A dictionary-encoded, column-major relation. Each column references a
/// Domain that may be shared with columns of other tables (see Corpus).
class Table {
 public:
  Table() = default;

  /// Encodes `raw` with the given per-column domains (adding new values).
  /// `domains.size()` must equal the schema width.
  static Result<Table> Encode(const StringTable& raw,
                              std::vector<std::shared_ptr<Domain>> domains);

  /// Encodes with fresh private domains.
  static Result<Table> EncodeFresh(const StringTable& raw);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return columns_.size(); }

  ValueCode at(size_t row, size_t col) const {
    ERMINER_CHECK(col < columns_.size() && row < num_rows_);
    return columns_[col][row];
  }
  void set(size_t row, size_t col, ValueCode code) {
    ERMINER_CHECK(col < columns_.size() && row < num_rows_);
    columns_[col][row] = code;
  }

  const std::vector<ValueCode>& column(size_t col) const {
    ERMINER_CHECK(col < columns_.size());
    return columns_[col];
  }

  const std::shared_ptr<Domain>& domain(size_t col) const {
    ERMINER_CHECK(col < domains_.size());
    return domains_[col];
  }

  /// Decodes a single cell back to its string (kNullToken for nulls).
  std::string CellString(size_t row, size_t col) const {
    return domains_[col]->ValueOrNull(at(row, col));
  }

  /// Full decode, mostly for tests and debugging.
  StringTable Decode() const;

  /// Prefix copy with the first `n` rows, sharing this table's domains.
  /// Used for incremental-discovery experiments where dictionaries (and so
  /// all ValueCodes) must stay stable while data grows.
  Table Head(size_t n) const;

  /// Number of distinct non-null codes appearing in a column.
  size_t DistinctCount(size_t col) const;

  /// Count of nulls in a column.
  size_t NullCount(size_t col) const;

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<std::vector<ValueCode>> columns_;
  std::vector<std::shared_ptr<Domain>> domains_;
};

}  // namespace erminer

#endif  // ERMINER_DATA_TABLE_H_
