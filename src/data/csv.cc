#include "data/csv.h"

#include <fstream>
#include <sstream>

namespace erminer {

namespace {

bool NeedsQuoting(const std::string& field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const std::string& field, std::string* out) {
  if (!NeedsQuoting(field)) {
    out->append(field);
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<StringTable> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    record.push_back(field);
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (field.empty() && !field_started) {
          in_quotes = true;
          field_started = true;
        } else {
          field.push_back(c);  // Lenient: quote inside unquoted field.
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // Tolerate CRLF.
      case '\n':
        end_record();
        break;
      default:
        field.push_back(c);
        field_started = true;
        break;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted field");
  if (field_started || !field.empty() || !record.empty()) end_record();

  if (records.empty()) return Status::InvalidArgument("empty CSV");

  StringTable t;
  t.schema = Schema::FromNames(records[0]);
  t.rows.assign(records.begin() + 1, records.end());
  ERMINER_RETURN_NOT_OK(t.Validate());
  return t;
}

Result<StringTable> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseCsv(ss.str());
}

std::string ToCsv(const StringTable& table) {
  std::string out;
  for (size_t c = 0; c < table.schema.size(); ++c) {
    if (c > 0) out.push_back(',');
    AppendField(table.schema.attribute(c).name, &out);
  }
  out.push_back('\n');
  for (const auto& row : table.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(',');
      AppendField(row[c], &out);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const StringTable& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << ToCsv(table);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace erminer
