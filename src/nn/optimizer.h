// SGD and Adam optimizers over a parameter/gradient tensor list.

#ifndef ERMINER_NN_OPTIMIZER_H_
#define ERMINER_NN_OPTIMIZER_H_

#include <vector>

#include "ckpt/serial.h"
#include "nn/tensor.h"

namespace erminer {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update from `grads` to `params` (parallel lists).
  virtual void Step(const std::vector<Tensor*>& params,
                    const std::vector<Tensor*>& grads) = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr) : lr_(lr) {}
  void Step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;

 private:
  float lr_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void Step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;

  /// Mutable optimizer state (step count + first/second moments), for
  /// checkpointing. Hyperparameters (lr, betas, eps) come from config.
  void SaveState(ckpt::Writer* w) const;
  Status LoadState(ckpt::Reader* r);

  long steps() const { return t_; }

 private:
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<std::vector<float>> m_, v_;  // lazily sized to params
};

}  // namespace erminer

#endif  // ERMINER_NN_OPTIMIZER_H_
