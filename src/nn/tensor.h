// A minimal dense 2-D float tensor plus the linear-algebra entry points the
// value network needs. Row-major storage; shape checks via ERMINER_CHECK at
// these entry points, then raw-pointer dispatch through the runtime-selected
// SIMD kernel table (nn/kernels.h) and the deterministic parallel launches
// (nn/kernel_launch.h).

#ifndef ERMINER_NN_TENSOR_H_
#define ERMINER_NN_TENSOR_H_

#include <vector>

#include "util/status.h"

namespace erminer {

class Tensor {
 public:
  Tensor() = default;
  Tensor(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Tensor FromData(size_t rows, size_t cols, std::vector<float> data) {
    ERMINER_CHECK(data.size() == rows * cols);
    Tensor t;
    t.rows_ = rows;
    t.cols_ = cols;
    t.data_ = std::move(data);
    return t;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float at(size_t r, size_t c) const {
    ERMINER_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float& at(size_t r, size_t c) {
    ERMINER_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Re-shapes in place, preserving capacity (no shrink): the per-Mlp
  /// activation tensors are resized every batch without reallocating once
  /// they reach their high-water size. Contents are unspecified after a
  /// shape change; callers Fill() when they need zeros.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A(BxK) * B(KxN).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A^T * B, A:(KxM) B:(KxN) -> (MxN).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C = A * B^T, A:(MxK) B:(NxK) -> (MxN).
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// y += row-broadcast bias (bias is 1xN).
void AddBiasInPlace(Tensor* y, const Tensor& bias);

/// Element-wise ReLU; ReluBackward zeroes grad where the forward input was
/// non-positive.
Tensor Relu(const Tensor& x);
Tensor ReluBackward(const Tensor& x, const Tensor& grad);

/// Sum over rows -> 1xN (bias gradient).
Tensor SumRows(const Tensor& x);

/// a += s * b (same shape).
void Axpy(float s, const Tensor& b, Tensor* a);

}  // namespace erminer

#endif  // ERMINER_NN_TENSOR_H_
