// Dueling network head (Wang et al., 2016): Q(s,a) = V(s) + A(s,a) −
// mean_a A(s,a). One of the DQN-variant architectures Sec. III-C.5 alludes
// to. The trunk is a shared ReLU MLP; the two linear heads and the
// aggregation have explicit backward passes.
//
// Like Mlp, Forward returns a reference into per-instance buffers (valid
// until the next Forward*) and ForwardSparse feeds the trunk the one-hot
// index-list encoding — bit-identical to the dense path.

#ifndef ERMINER_NN_DUELING_H_
#define ERMINER_NN_DUELING_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "nn/mlp.h"
#include "nn/sparse.h"
#include "nn/workspace.h"

namespace erminer {

/// A drop-in alternative to a plain Mlp for Q-value estimation.
class DuelingNet {
 public:
  /// trunk_dims = {input, hidden...}; heads map the last hidden width to
  /// 1 (value) and num_actions (advantage).
  DuelingNet(std::vector<size_t> trunk_dims, size_t num_actions, Rng* rng);

  /// Q-values, [batch, num_actions]; valid until the next Forward* call.
  const Tensor& Forward(const Tensor& x);
  /// One-hot fast path; `x` must outlive the matching Backward.
  const Tensor& ForwardSparse(const nn::SparseRows& x);

  const Tensor& output() const { return q_; }

  /// dL/dQ -> gradients of trunk and heads.
  void Backward(const Tensor& dq);

  void ZeroGrad();
  std::vector<Tensor*> Parameters();
  std::vector<Tensor*> Gradients();
  void CopyWeightsFrom(const DuelingNet& other);

  size_t input_dim() const { return trunk_dims_.front(); }
  size_t num_actions() const { return num_actions_; }

  size_t WorkspaceBytes() const { return trunk_->WorkspaceBytes() + ws_.bytes(); }

  Status Save(std::ostream& os) const;
  static Result<DuelingNet> Load(std::istream& is);

 private:
  /// Heads + aggregation over the trunk's (pre-ReLU) output.
  const Tensor& FinishForward();

  std::vector<size_t> trunk_dims_;
  size_t num_actions_;
  std::unique_ptr<Mlp> trunk_;       // input -> feature (ReLU applied here)
  std::unique_ptr<Linear> value_;    // feature -> 1
  std::unique_ptr<Linear> advantage_;  // feature -> num_actions

  // Per-batch buffers, reused across calls.
  Tensor feat_;                      // relu(trunk output)
  Tensor v_, a_, q_;                 // value, advantage, aggregated Q
  Tensor dv_, da_, df_, dfa_;        // backward scratch
  nn::Workspace ws_;                 // head gradient reductions
};

}  // namespace erminer

#endif  // ERMINER_NN_DUELING_H_
