// Scalar kernel table: the reference implementation every SIMD level must
// match bit-for-bit. These loops are the original src/nn inner loops,
// verbatim — the differential test compares the vector tables against this
// one, and this one against the pre-overhaul history via the repo's golden
// tests.

#include "nn/kernels.h"

#include <cmath>

namespace erminer::nn {

namespace {

void MatMulRows(const float* a, const float* b, float* c, size_t k, size_t n,
                size_t rb, size_t re) {
  for (size_t i = rb; i < re; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;  // one-hot inputs make this a big win
      const float* brow = b + p * n;
      float* crow = c + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTaChunk(const float* a, const float* b, float* c, size_t m,
                   size_t n, size_t pb, size_t pe) {
  for (size_t p = pb; p < pe; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulTbtRows(const float* a, const float* bt, float* c, size_t k,
                   size_t n, size_t rb, size_t re) {
  // Accumulating in memory instead of a register keeps the identical RN
  // operation sequence per element: acc_{p+1} = rn(acc_p + rn(a*b)).
  for (size_t i = rb; i < re; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    for (size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = bt + p * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void AddRow(float* y, const float* w, size_t n) {
  for (size_t j = 0; j < n; ++j) y[j] += w[j];
}

void Axpy(float* a, const float* b, float s, size_t n) {
  for (size_t j = 0; j < n; ++j) a[j] += s * b[j];
}

void Relu(float* y, const float* x, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    float v = x[j];
    if (v < 0.0f) v = 0.0f;
    y[j] = v;
  }
}

void ReluBwd(float* g, const float* x, const float* grad, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    g[j] = (x[j] <= 0.0f) ? 0.0f : grad[j];
  }
}

void SumRowsChunk(const float* x, float* acc, size_t cols, size_t rb,
                  size_t re) {
  for (size_t r = rb; r < re; ++r) {
    const float* row = x + r * cols;
    for (size_t c = 0; c < cols; ++c) acc[c] += row[c];
  }
}

void Adam(float* p, const float* g, float* m, float* v, size_t n, float beta1,
          float beta2, float lr, float eps, float bc1, float bc2) {
  for (size_t j = 0; j < n; ++j) {
    const float gj = g[j];
    m[j] = beta1 * m[j] + (1.0f - beta1) * gj;
    v[j] = beta2 * v[j] + (1.0f - beta2) * gj * gj;
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    p[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

}  // namespace

const KernelOps kScalarOps = {
    MatMulRows, MatMulTaChunk, MatMulTbtRows, AddRow, Axpy,
    Relu,       ReluBwd,       SumRowsChunk,  Adam,
};

}  // namespace erminer::nn
