// SSE2 kernel table (baseline on x86-64, so this TU needs no extra arch
// flags). Lanes run over the output-column dimension j only, 4 floats wide,
// with separate MULPS + ADDPS — never FMA — so every output element sees
// the exact scalar operation sequence and the results are bit-identical to
// kernels_scalar.cc. Scalar tails reuse the same per-element expressions.
//
// Sign/NaN edge cases the lane ops were chosen for:
//   - relu: MAXPS(zero, x) returns the *second* operand when x is NaN or
//     when both compare equal (so -0.0f passes through), matching
//     `if (v < 0.0f) v = 0.0f`.
//   - relu_bwd: CMPNLEPS(x, zero) is true for x > 0 and for NaN x — the
//     complement of `x <= 0.0f` — and ANDPS with the mask yields +0.0f
//     where the scalar writes 0.0f.
//   - adam: SQRTPS and DIVPS are correctly rounded, hence scalar-identical.

#include "nn/kernels.h"

#include <emmintrin.h>

#include <cmath>

namespace erminer::nn {

namespace {

constexpr size_t kW = 4;

inline void AddScaledRow(float* c, const float* b, float av, size_t n) {
  const __m128 vs = _mm_set1_ps(av);
  size_t j = 0;
  for (; j + kW <= n; j += kW) {
    const __m128 prod = _mm_mul_ps(vs, _mm_loadu_ps(b + j));
    _mm_storeu_ps(c + j, _mm_add_ps(_mm_loadu_ps(c + j), prod));
  }
  for (; j < n; ++j) c[j] += av * b[j];
}

void MatMulRows(const float* a, const float* b, float* c, size_t k, size_t n,
                size_t rb, size_t re) {
  for (size_t i = rb; i < re; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      AddScaledRow(c + i * n, b + p * n, av, n);
    }
  }
}

void MatMulTaChunk(const float* a, const float* b, float* c, size_t m,
                   size_t n, size_t pb, size_t pe) {
  for (size_t p = pb; p < pe; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      AddScaledRow(c + i * n, brow, av, n);
    }
  }
}

void MatMulTbtRows(const float* a, const float* bt, float* c, size_t k,
                   size_t n, size_t rb, size_t re) {
  for (size_t i = rb; i < re; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    for (size_t p = 0; p < k; ++p) {
      AddScaledRow(crow, bt + p * n, arow[p], n);  // no zero skip here
    }
  }
}

void AddRow(float* y, const float* w, size_t n) {
  size_t j = 0;
  for (; j + kW <= n; j += kW) {
    _mm_storeu_ps(y + j, _mm_add_ps(_mm_loadu_ps(y + j), _mm_loadu_ps(w + j)));
  }
  for (; j < n; ++j) y[j] += w[j];
}

void Axpy(float* a, const float* b, float s, size_t n) {
  AddScaledRow(a, b, s, n);
}

void Relu(float* y, const float* x, size_t n) {
  const __m128 zero = _mm_setzero_ps();
  size_t j = 0;
  for (; j + kW <= n; j += kW) {
    _mm_storeu_ps(y + j, _mm_max_ps(zero, _mm_loadu_ps(x + j)));
  }
  for (; j < n; ++j) {
    float v = x[j];
    if (v < 0.0f) v = 0.0f;
    y[j] = v;
  }
}

void ReluBwd(float* g, const float* x, const float* grad, size_t n) {
  const __m128 zero = _mm_setzero_ps();
  size_t j = 0;
  for (; j + kW <= n; j += kW) {
    const __m128 keep = _mm_cmpnle_ps(_mm_loadu_ps(x + j), zero);
    _mm_storeu_ps(g + j, _mm_and_ps(keep, _mm_loadu_ps(grad + j)));
  }
  for (; j < n; ++j) g[j] = (x[j] <= 0.0f) ? 0.0f : grad[j];
}

void SumRowsChunk(const float* x, float* acc, size_t cols, size_t rb,
                  size_t re) {
  for (size_t r = rb; r < re; ++r) AddRow(acc, x + r * cols, cols);
}

void Adam(float* p, const float* g, float* m, float* v, size_t n, float beta1,
          float beta2, float lr, float eps, float bc1, float bc2) {
  const __m128 vb1 = _mm_set1_ps(beta1);
  const __m128 vb2 = _mm_set1_ps(beta2);
  const __m128 v1mb1 = _mm_set1_ps(1.0f - beta1);
  const __m128 v1mb2 = _mm_set1_ps(1.0f - beta2);
  const __m128 vlr = _mm_set1_ps(lr);
  const __m128 veps = _mm_set1_ps(eps);
  const __m128 vbc1 = _mm_set1_ps(bc1);
  const __m128 vbc2 = _mm_set1_ps(bc2);
  size_t j = 0;
  for (; j + kW <= n; j += kW) {
    const __m128 gj = _mm_loadu_ps(g + j);
    const __m128 mj = _mm_add_ps(_mm_mul_ps(vb1, _mm_loadu_ps(m + j)),
                                 _mm_mul_ps(v1mb1, gj));
    const __m128 vj = _mm_add_ps(_mm_mul_ps(vb2, _mm_loadu_ps(v + j)),
                                 _mm_mul_ps(_mm_mul_ps(v1mb2, gj), gj));
    _mm_storeu_ps(m + j, mj);
    _mm_storeu_ps(v + j, vj);
    const __m128 mhat = _mm_div_ps(mj, vbc1);
    const __m128 vhat = _mm_div_ps(vj, vbc2);
    const __m128 denom = _mm_add_ps(_mm_sqrt_ps(vhat), veps);
    const __m128 upd = _mm_div_ps(_mm_mul_ps(vlr, mhat), denom);
    _mm_storeu_ps(p + j, _mm_sub_ps(_mm_loadu_ps(p + j), upd));
  }
  for (; j < n; ++j) {
    const float gj = g[j];
    m[j] = beta1 * m[j] + (1.0f - beta1) * gj;
    v[j] = beta2 * v[j] + (1.0f - beta2) * gj * gj;
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    p[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

}  // namespace

const KernelOps kSse2Ops = {
    MatMulRows, MatMulTaChunk, MatMulTbtRows, AddRow, Axpy,
    Relu,       ReluBwd,       SumRowsChunk,  Adam,
};

}  // namespace erminer::nn
