// QNetwork: the interface DqnAgent trains through, with adapters for the
// plain MLP head and the dueling head. Keeps the agent agnostic of the
// architecture variant.

#ifndef ERMINER_NN_Q_NETWORK_H_
#define ERMINER_NN_Q_NETWORK_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "nn/dueling.h"
#include "nn/mlp.h"

namespace erminer {

namespace internal {
inline std::string DimsToString(const std::vector<size_t>& dims) {
  std::string s = "[";
  for (size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(dims[i]);
  }
  s += "]";
  return s;
}
}  // namespace internal

class QNetwork {
 public:
  virtual ~QNetwork() = default;
  /// Q-values for a dense input batch; the reference stays valid until the
  /// next Forward* call on the same network.
  virtual const Tensor& Forward(const Tensor& x) = 0;
  /// Q-values for a batch of one-hot index rows (the sparse fast path;
  /// bit-identical to Forward on the densified rows). `x` must outlive the
  /// matching Backward.
  virtual const Tensor& ForwardSparse(const nn::SparseRows& x) = 0;
  virtual void Backward(const Tensor& dout) = 0;
  /// High-water scratch-arena bytes (nn/workspace_bytes gauge).
  virtual size_t WorkspaceBytes() const = 0;
  virtual void ZeroGrad() = 0;
  virtual std::vector<Tensor*> Parameters() = 0;
  virtual std::vector<Tensor*> Gradients() = 0;
  /// Requires `other` to be the same architecture and shape.
  virtual void CopyWeightsFrom(const QNetwork& other) = 0;
  virtual Status Save(std::ostream& os) const = 0;
  /// Loads weights into this network; shape must match.
  virtual Status LoadFrom(std::istream& is) = 0;
};

class MlpQNetwork : public QNetwork {
 public:
  MlpQNetwork(std::vector<size_t> dims, Rng* rng)
      : net_(std::move(dims), rng) {}

  const Tensor& Forward(const Tensor& x) override { return net_.Forward(x); }
  const Tensor& ForwardSparse(const nn::SparseRows& x) override {
    return net_.ForwardSparse(x);
  }
  void Backward(const Tensor& dout) override { net_.Backward(dout); }
  size_t WorkspaceBytes() const override { return net_.WorkspaceBytes(); }
  void ZeroGrad() override { net_.ZeroGrad(); }
  std::vector<Tensor*> Parameters() override { return net_.Parameters(); }
  std::vector<Tensor*> Gradients() override { return net_.Gradients(); }

  void CopyWeightsFrom(const QNetwork& other) override {
    const auto* o = dynamic_cast<const MlpQNetwork*>(&other);
    ERMINER_CHECK(o != nullptr);
    net_.CopyWeightsFrom(o->net_);
  }

  Status Save(std::ostream& os) const override { return net_.Save(os); }

  Status LoadFrom(std::istream& is) override {
    ERMINER_ASSIGN_OR_RETURN(Mlp loaded, Mlp::Load(is));
    if (loaded.dims() != net_.dims()) {
      return Status::InvalidArgument(
          "MLP weight dims mismatch: expected " +
          internal::DimsToString(net_.dims()) + ", got " +
          internal::DimsToString(loaded.dims()));
    }
    net_.CopyWeightsFrom(loaded);
    return Status::OK();
  }

 private:
  Mlp net_;
};

class DuelingQNetwork : public QNetwork {
 public:
  DuelingQNetwork(std::vector<size_t> trunk_dims, size_t num_actions,
                  Rng* rng)
      : net_(std::move(trunk_dims), num_actions, rng) {}

  const Tensor& Forward(const Tensor& x) override { return net_.Forward(x); }
  const Tensor& ForwardSparse(const nn::SparseRows& x) override {
    return net_.ForwardSparse(x);
  }
  void Backward(const Tensor& dout) override { net_.Backward(dout); }
  size_t WorkspaceBytes() const override { return net_.WorkspaceBytes(); }
  void ZeroGrad() override { net_.ZeroGrad(); }
  std::vector<Tensor*> Parameters() override { return net_.Parameters(); }
  std::vector<Tensor*> Gradients() override { return net_.Gradients(); }

  void CopyWeightsFrom(const QNetwork& other) override {
    const auto* o = dynamic_cast<const DuelingQNetwork*>(&other);
    ERMINER_CHECK(o != nullptr);
    net_.CopyWeightsFrom(o->net_);
  }

  Status Save(std::ostream& os) const override { return net_.Save(os); }

  Status LoadFrom(std::istream& is) override {
    ERMINER_ASSIGN_OR_RETURN(DuelingNet loaded, DuelingNet::Load(is));
    if (loaded.input_dim() != net_.input_dim() ||
        loaded.num_actions() != net_.num_actions()) {
      return Status::InvalidArgument(
          "dueling weight dims mismatch: expected input_dim=" +
          std::to_string(net_.input_dim()) +
          " num_actions=" + std::to_string(net_.num_actions()) +
          ", got input_dim=" + std::to_string(loaded.input_dim()) +
          " num_actions=" + std::to_string(loaded.num_actions()));
    }
    net_.CopyWeightsFrom(loaded);
    return Status::OK();
  }

 private:
  DuelingNet net_;
};

}  // namespace erminer

#endif  // ERMINER_NN_Q_NETWORK_H_
