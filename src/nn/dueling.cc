#include "nn/dueling.h"

#include <istream>
#include <ostream>

#include "nn/kernels.h"

namespace erminer {

DuelingNet::DuelingNet(std::vector<size_t> trunk_dims, size_t num_actions,
                       Rng* rng)
    : trunk_dims_(std::move(trunk_dims)), num_actions_(num_actions) {
  ERMINER_CHECK(trunk_dims_.size() >= 2);
  ERMINER_CHECK(num_actions_ >= 1);
  trunk_ = std::make_unique<Mlp>(trunk_dims_, rng);
  value_ = std::make_unique<Linear>(trunk_dims_.back(), 1, rng);
  advantage_ =
      std::make_unique<Linear>(trunk_dims_.back(), num_actions_, rng);
}

const Tensor& DuelingNet::Forward(const Tensor& x) {
  trunk_->Forward(x);  // pre-ReLU feature, cached inside the trunk
  return FinishForward();
}

const Tensor& DuelingNet::ForwardSparse(const nn::SparseRows& x) {
  trunk_->ForwardSparse(x);
  return FinishForward();
}

const Tensor& DuelingNet::FinishForward() {
  const nn::KernelOps& ops = nn::Ops();
  const Tensor& trunk_out = trunk_->output();
  const size_t bsz = trunk_out.rows();
  const size_t fdim = trunk_out.cols();
  feat_.Resize(bsz, fdim);
  ops.relu(feat_.data().data(), trunk_out.data().data(), bsz * fdim);
  v_.Resize(bsz, 1);
  a_.Resize(bsz, num_actions_);
  value_->ForwardInto(feat_.data().data(), bsz, v_.data().data());
  advantage_->ForwardInto(feat_.data().data(), bsz, a_.data().data());
  q_.Resize(bsz, num_actions_);
  const float* pv = v_.data().data();
  const float* pa = a_.data().data();
  float* pq = q_.data().data();
  for (size_t b = 0; b < bsz; ++b) {
    const float* arow = pa + b * num_actions_;
    float* qrow = pq + b * num_actions_;
    float mean = 0.0f;
    for (size_t i = 0; i < num_actions_; ++i) mean += arow[i];
    mean /= static_cast<float>(num_actions_);
    for (size_t i = 0; i < num_actions_; ++i) {
      qrow[i] = pv[b] + arow[i] - mean;
    }
  }
  return q_;
}

void DuelingNet::Backward(const Tensor& dq) {
  ERMINER_CHECK(dq.cols() == num_actions_);
  const size_t bsz = dq.rows();
  ERMINER_CHECK(bsz == feat_.rows());
  const size_t fdim = feat_.cols();
  ws_.Reset();
  dv_.Resize(bsz, 1);
  da_.Resize(bsz, num_actions_);
  const float* pdq = dq.data().data();
  float* pdv = dv_.data().data();
  float* pda = da_.data().data();
  for (size_t b = 0; b < bsz; ++b) {
    const float* dqrow = pdq + b * num_actions_;
    float* darow = pda + b * num_actions_;
    float sum = 0.0f;
    for (size_t i = 0; i < num_actions_; ++i) sum += dqrow[i];
    pdv[b] = sum;
    const float mean_grad = sum / static_cast<float>(num_actions_);
    for (size_t i = 0; i < num_actions_; ++i) {
      darow[i] = dqrow[i] - mean_grad;
    }
  }
  df_.Resize(bsz, fdim);
  dfa_.Resize(bsz, fdim);
  value_->Backward(feat_.data().data(), pdv, bsz, df_.data().data(), &ws_);
  advantage_->Backward(feat_.data().data(), pda, bsz, dfa_.data().data(),
                       &ws_);
  const nn::KernelOps& ops = nn::Ops();
  ops.axpy(df_.data().data(), dfa_.data().data(), 1.0f, bsz * fdim);
  // In-place ReLU mask against the trunk's cached pre-activation.
  ops.relu_bwd(df_.data().data(), trunk_->output().data().data(),
               df_.data().data(), bsz * fdim);
  trunk_->Backward(df_);
}

void DuelingNet::ZeroGrad() {
  trunk_->ZeroGrad();
  value_->ZeroGrad();
  advantage_->ZeroGrad();
}

std::vector<Tensor*> DuelingNet::Parameters() {
  std::vector<Tensor*> out = trunk_->Parameters();
  out.push_back(&value_->weight());
  out.push_back(&value_->bias());
  out.push_back(&advantage_->weight());
  out.push_back(&advantage_->bias());
  return out;
}

std::vector<Tensor*> DuelingNet::Gradients() {
  std::vector<Tensor*> out = trunk_->Gradients();
  out.push_back(&value_->weight_grad());
  out.push_back(&value_->bias_grad());
  out.push_back(&advantage_->weight_grad());
  out.push_back(&advantage_->bias_grad());
  return out;
}

void DuelingNet::CopyWeightsFrom(const DuelingNet& other) {
  ERMINER_CHECK(trunk_dims_ == other.trunk_dims_);
  ERMINER_CHECK(num_actions_ == other.num_actions_);
  trunk_->CopyWeightsFrom(*other.trunk_);
  value_->weight() = other.value_->weight();
  value_->bias() = other.value_->bias();
  advantage_->weight() = other.advantage_->weight();
  advantage_->bias() = other.advantage_->bias();
}

namespace {
constexpr uint32_t kDuelMagic = 0x4455454c;  // "DUEL"

void WriteTensor(std::ostream& os, const Tensor& t) {
  os.write(reinterpret_cast<const char*>(t.data().data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
}
void ReadTensor(std::istream& is, Tensor* t) {
  is.read(reinterpret_cast<char*>(t->data().data()),
          static_cast<std::streamsize>(t->size() * sizeof(float)));
}
}  // namespace

Status DuelingNet::Save(std::ostream& os) const {
  uint32_t magic = kDuelMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  uint64_t na = num_actions_;
  os.write(reinterpret_cast<const char*>(&na), sizeof(na));
  ERMINER_RETURN_NOT_OK(trunk_->Save(os));
  WriteTensor(os, value_->weight());
  WriteTensor(os, value_->bias());
  WriteTensor(os, advantage_->weight());
  WriteTensor(os, advantage_->bias());
  if (!os) return Status::IoError("failed writing dueling weights");
  return Status::OK();
}

Result<DuelingNet> DuelingNet::Load(std::istream& is) {
  uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is || magic != kDuelMagic) {
    return Status::IoError("bad dueling weight file magic");
  }
  uint64_t na = 0;
  is.read(reinterpret_cast<char*>(&na), sizeof(na));
  if (!is || na == 0 || na > (1u << 24)) {
    return Status::IoError("bad dueling action count");
  }
  ERMINER_ASSIGN_OR_RETURN(Mlp trunk, Mlp::Load(is));
  Rng rng(0);
  DuelingNet net(trunk.dims(), static_cast<size_t>(na), &rng);
  net.trunk_->CopyWeightsFrom(trunk);
  ReadTensor(is, &net.value_->weight());
  ReadTensor(is, &net.value_->bias());
  ReadTensor(is, &net.advantage_->weight());
  ReadTensor(is, &net.advantage_->bias());
  if (!is) return Status::IoError("truncated dueling weight file");
  return net;
}

}  // namespace erminer
