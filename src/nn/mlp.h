// Linear layer and MLP with explicit backpropagation (no autograd).
//
// The value network of Sec. IV-C is an MLP: state one-hot -> hidden ReLU
// stack -> linear head producing one Q-value per action. Forward caches the
// per-layer inputs so Backward can accumulate gradients; a subsequent
// optimizer step consumes Parameters()/Gradients().
//
// Parallelism: Forward/Backward fan minibatch work across the global thread
// pool through the tensor kernels (MatMul and friends). The gradient
// reductions over the batch dimension (MatMulTransA for dW, SumRows for db)
// accumulate per-chunk partial buffers that are summed in fixed chunk
// order, so gradients — and therefore trained weights — are bit-identical
// for every `--threads` setting. See docs/parallelism.md.

#ifndef ERMINER_NN_MLP_H_
#define ERMINER_NN_MLP_H_

#include <iosfwd>
#include <vector>

#include "nn/tensor.h"
#include "util/random.h"
#include "util/status.h"

namespace erminer {

class Linear {
 public:
  /// He-uniform initialization.
  Linear(size_t in, size_t out, Rng* rng);

  /// y = x W + b. `x` is cached for Backward.
  Tensor Forward(const Tensor& x);

  /// Given dL/dy, accumulates dW/db and returns dL/dx.
  Tensor Backward(const Tensor& dy);

  void ZeroGrad();

  size_t in_dim() const { return weight_.rows(); }
  size_t out_dim() const { return weight_.cols(); }

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  Tensor& weight_grad() { return dweight_; }
  Tensor& bias_grad() { return dbias_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  Tensor weight_;   // [in, out]
  Tensor bias_;     // [1, out]
  Tensor dweight_;
  Tensor dbias_;
  Tensor last_input_;
};

class Mlp {
 public:
  /// dims = {input, hidden..., output}; ReLU between all but the last layer.
  Mlp(std::vector<size_t> dims, Rng* rng);

  Tensor Forward(const Tensor& x);
  /// dL/d(output) -> accumulates all layer gradients.
  void Backward(const Tensor& dout);
  void ZeroGrad();

  /// Flat views for the optimizer (weights and biases interleaved per layer).
  std::vector<Tensor*> Parameters();
  std::vector<Tensor*> Gradients();

  /// Hard copy of another MLP's weights (target-network sync). Dims must
  /// match.
  void CopyWeightsFrom(const Mlp& other);

  const std::vector<size_t>& dims() const { return dims_; }

  /// Binary (de)serialization for fine-tuning (RLMiner-ft).
  Status Save(std::ostream& os) const;
  static Result<Mlp> Load(std::istream& is);

 private:
  std::vector<size_t> dims_;
  std::vector<Linear> layers_;
  std::vector<Tensor> pre_activations_;  // cached per Forward
};

}  // namespace erminer

#endif  // ERMINER_NN_MLP_H_
