// Linear layer and MLP with explicit backpropagation (no autograd).
//
// The value network of Sec. IV-C is an MLP: state one-hot -> hidden ReLU
// stack -> linear head producing one Q-value per action. Forward caches the
// per-layer inputs so Backward can accumulate gradients; a subsequent
// optimizer step consumes Parameters()/Gradients().
//
// Two input encodings feed layer 0:
//   - dense:  Forward(Tensor) — the general path (tests, arbitrary inputs);
//   - sparse: ForwardSparse(SparseRows) — one-hot rule-state rows as index
//     lists. Layer 0 gathers W rows at the active indices (forward) and
//     scatters dy outer products into dW rows (backward), in the exact
//     accumulation order of the dense kernels' zero-skip loops, so both
//     encodings produce bit-identical outputs and gradients.
//
// Memory: activations (pre_/act_/out_) are member tensors resized per batch
// and all gradient scratch comes from a per-Mlp Workspace arena, so a
// steady-state TrainStep performs zero heap allocations. Forward returns a
// const reference into the instance; it stays valid until the next Forward
// on the same instance. A ForwardSparse caller must keep its SparseRows
// alive until the matching Backward.
//
// Parallelism: Forward/Backward fan minibatch work across the global thread
// pool through the kernel launches (nn/kernel_launch.h). The gradient
// reductions over the batch dimension accumulate per-chunk partial buffers
// that are summed in fixed chunk order, so gradients — and therefore
// trained weights — are bit-identical for every `--threads` setting and
// every ERMINER_SIMD level. See docs/parallelism.md and docs/perf.md.

#ifndef ERMINER_NN_MLP_H_
#define ERMINER_NN_MLP_H_

#include <iosfwd>
#include <vector>

#include "nn/sparse.h"
#include "nn/tensor.h"
#include "nn/workspace.h"
#include "util/random.h"
#include "util/status.h"

namespace erminer {

class Linear {
 public:
  /// He-uniform initialization.
  Linear(size_t in, size_t out, Rng* rng);

  /// y (batch x out) = x (batch x in) W + b; overwrites y.
  void ForwardInto(const float* x, size_t batch, float* y) const;
  /// Same, with x as one-hot index rows.
  void ForwardSparseInto(const nn::SparseRows& x, float* y) const;

  /// Given the layer input x and dL/dy, accumulates dW/db and, when dx is
  /// non-null, writes dL/dx (batch x in). Scratch comes from `ws`.
  void Backward(const float* x, const float* dy, size_t batch, float* dx,
                nn::Workspace* ws);
  /// Same for a one-hot input (no dx: layer 0 never needs one).
  void BackwardSparse(const nn::SparseRows& x, const float* dy,
                      nn::Workspace* ws);

  void ZeroGrad();

  size_t in_dim() const { return weight_.rows(); }
  size_t out_dim() const { return weight_.cols(); }

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  Tensor& weight_grad() { return dweight_; }
  Tensor& bias_grad() { return dbias_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  Tensor weight_;   // [in, out]
  Tensor bias_;     // [1, out]
  Tensor dweight_;
  Tensor dbias_;
};

class Mlp {
 public:
  /// dims = {input, hidden..., output}; ReLU between all but the last layer.
  Mlp(std::vector<size_t> dims, Rng* rng);

  /// Returns the network output, valid until the next Forward* call on this
  /// instance. The input is copied into a member so Backward can use it.
  const Tensor& Forward(const Tensor& x);
  /// One-hot fast path: stores a pointer to `x`, which must outlive the
  /// matching Backward. Bit-identical to Forward on the densified rows.
  const Tensor& ForwardSparse(const nn::SparseRows& x);

  /// The last Forward* result (same reference Forward returned).
  const Tensor& output() const { return out_; }

  /// dL/d(output) -> accumulates all layer gradients.
  void Backward(const Tensor& dout);
  void ZeroGrad();

  /// Flat views for the optimizer (weights and biases interleaved per layer).
  std::vector<Tensor*> Parameters();
  std::vector<Tensor*> Gradients();

  /// Hard copy of another MLP's weights (target-network sync). Dims must
  /// match.
  void CopyWeightsFrom(const Mlp& other);

  const std::vector<size_t>& dims() const { return dims_; }

  /// High-water mark of the gradient scratch arena, for the
  /// nn/workspace_bytes gauge.
  size_t WorkspaceBytes() const { return ws_.bytes(); }

  /// Binary (de)serialization for fine-tuning (RLMiner-ft).
  Status Save(std::ostream& os) const;
  static Result<Mlp> Load(std::istream& is);

 private:
  /// Layers 1..L-1 plus the inter-layer ReLUs, after layer 0 has written
  /// into pre_[0] (or out_ for a single-layer net).
  const Tensor& FinishForward(size_t batch);

  std::vector<size_t> dims_;
  std::vector<Linear> layers_;

  // Per-batch activation state, reused across calls (Resize keeps capacity).
  Tensor input_;                      // dense input copy (dense path only)
  const nn::SparseRows* sparse_input_ = nullptr;  // sparse path only
  std::vector<Tensor> pre_;           // pre-ReLU per hidden layer
  std::vector<Tensor> act_;           // post-ReLU per hidden layer
  Tensor out_;                        // network output
  Tensor ga_, gb_;                    // backward ping-pong gradient buffers
  nn::Workspace ws_;                  // gradient reduction scratch
};

}  // namespace erminer

#endif  // ERMINER_NN_MLP_H_
