// AVX2 kernel table — the 8-wide twin of kernels_sse2.cc; see the header
// comment there for the lane-op/NaN reasoning. This TU is compiled with
// -mavx2 -mno-fma -ffp-contract=off (src/nn/CMakeLists.txt): the separate
// VMULPS + VADDPS must never be contracted into VFMADD, which rounds once
// instead of twice and would break bit-identity with the scalar kernels.

#include "nn/kernels.h"

#include <immintrin.h>

#include <cmath>

namespace erminer::nn {

namespace {

constexpr size_t kW = 8;

inline void AddScaledRow(float* c, const float* b, float av, size_t n) {
  const __m256 vs = _mm256_set1_ps(av);
  size_t j = 0;
  for (; j + kW <= n; j += kW) {
    const __m256 prod = _mm256_mul_ps(vs, _mm256_loadu_ps(b + j));
    _mm256_storeu_ps(c + j, _mm256_add_ps(_mm256_loadu_ps(c + j), prod));
  }
  for (; j < n; ++j) c[j] += av * b[j];
}

void MatMulRows(const float* a, const float* b, float* c, size_t k, size_t n,
                size_t rb, size_t re) {
  for (size_t i = rb; i < re; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      if (av == 0.0f) continue;
      AddScaledRow(c + i * n, b + p * n, av, n);
    }
  }
}

void MatMulTaChunk(const float* a, const float* b, float* c, size_t m,
                   size_t n, size_t pb, size_t pe) {
  for (size_t p = pb; p < pe; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      AddScaledRow(c + i * n, brow, av, n);
    }
  }
}

void MatMulTbtRows(const float* a, const float* bt, float* c, size_t k,
                   size_t n, size_t rb, size_t re) {
  for (size_t i = rb; i < re; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (size_t j = 0; j < n; ++j) crow[j] = 0.0f;
    for (size_t p = 0; p < k; ++p) {
      AddScaledRow(crow, bt + p * n, arow[p], n);  // no zero skip here
    }
  }
}

void AddRow(float* y, const float* w, size_t n) {
  size_t j = 0;
  for (; j + kW <= n; j += kW) {
    _mm256_storeu_ps(
        y + j, _mm256_add_ps(_mm256_loadu_ps(y + j), _mm256_loadu_ps(w + j)));
  }
  for (; j < n; ++j) y[j] += w[j];
}

void Axpy(float* a, const float* b, float s, size_t n) {
  AddScaledRow(a, b, s, n);
}

void Relu(float* y, const float* x, size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + kW <= n; j += kW) {
    _mm256_storeu_ps(y + j, _mm256_max_ps(zero, _mm256_loadu_ps(x + j)));
  }
  for (; j < n; ++j) {
    float v = x[j];
    if (v < 0.0f) v = 0.0f;
    y[j] = v;
  }
}

void ReluBwd(float* g, const float* x, const float* grad, size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  size_t j = 0;
  for (; j + kW <= n; j += kW) {
    const __m256 keep =
        _mm256_cmp_ps(_mm256_loadu_ps(x + j), zero, _CMP_NLE_UQ);
    _mm256_storeu_ps(g + j, _mm256_and_ps(keep, _mm256_loadu_ps(grad + j)));
  }
  for (; j < n; ++j) g[j] = (x[j] <= 0.0f) ? 0.0f : grad[j];
}

void SumRowsChunk(const float* x, float* acc, size_t cols, size_t rb,
                  size_t re) {
  for (size_t r = rb; r < re; ++r) AddRow(acc, x + r * cols, cols);
}

void Adam(float* p, const float* g, float* m, float* v, size_t n, float beta1,
          float beta2, float lr, float eps, float bc1, float bc2) {
  const __m256 vb1 = _mm256_set1_ps(beta1);
  const __m256 vb2 = _mm256_set1_ps(beta2);
  const __m256 v1mb1 = _mm256_set1_ps(1.0f - beta1);
  const __m256 v1mb2 = _mm256_set1_ps(1.0f - beta2);
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 veps = _mm256_set1_ps(eps);
  const __m256 vbc1 = _mm256_set1_ps(bc1);
  const __m256 vbc2 = _mm256_set1_ps(bc2);
  size_t j = 0;
  for (; j + kW <= n; j += kW) {
    const __m256 gj = _mm256_loadu_ps(g + j);
    const __m256 mj = _mm256_add_ps(_mm256_mul_ps(vb1, _mm256_loadu_ps(m + j)),
                                    _mm256_mul_ps(v1mb1, gj));
    const __m256 vj =
        _mm256_add_ps(_mm256_mul_ps(vb2, _mm256_loadu_ps(v + j)),
                      _mm256_mul_ps(_mm256_mul_ps(v1mb2, gj), gj));
    _mm256_storeu_ps(m + j, mj);
    _mm256_storeu_ps(v + j, vj);
    const __m256 mhat = _mm256_div_ps(mj, vbc1);
    const __m256 vhat = _mm256_div_ps(vj, vbc2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
    const __m256 upd = _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom);
    _mm256_storeu_ps(p + j, _mm256_sub_ps(_mm256_loadu_ps(p + j), upd));
  }
  for (; j < n; ++j) {
    const float gj = g[j];
    m[j] = beta1 * m[j] + (1.0f - beta1) * gj;
    v[j] = beta2 * v[j] + (1.0f - beta2) * gj * gj;
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    p[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

}  // namespace

const KernelOps kAvx2Ops = {
    MatMulRows, MatMulTaChunk, MatMulTbtRows, AddRow, Axpy,
    Relu,       ReluBwd,       SumRowsChunk,  Adam,
};

}  // namespace erminer::nn
