#include "nn/loss.h"

#include <cmath>

namespace erminer {

float HuberLoss(float diff, float delta) {
  float a = std::fabs(diff);
  if (a <= delta) return 0.5f * diff * diff;
  return delta * (a - 0.5f * delta);
}

float HuberGrad(float diff, float delta) {
  if (diff > delta) return delta;
  if (diff < -delta) return -delta;
  return diff;
}

std::pair<float, Tensor> MseLoss(const Tensor& pred, const Tensor& target) {
  ERMINER_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  Tensor grad(pred.rows(), pred.cols());
  float loss = 0.0f;
  const float inv_n = 1.0f / static_cast<float>(pred.size());
  for (size_t i = 0; i < pred.size(); ++i) {
    float d = pred.data()[i] - target.data()[i];
    loss += d * d;
    grad.data()[i] = 2.0f * d * inv_n;
  }
  return {loss * inv_n, grad};
}

}  // namespace erminer
