// SparseRows: a batch of one-hot/multi-hot input rows stored as index
// lists (CSR layout without values — every stored entry is an implicit
// 1.0f). This is the native encoding of the DQN's RuleKey states: a rule
// key IS its ascending action-index list, so building a SparseRows batch
// is a couple of memcpys instead of the batch x state_dim zero-fill the
// dense Densify path needed.
//
// Invariants (checked once at AddRow, the kernel entry point — the kernels
// then index raw): indices within a row are strictly ascending and < cols.
// Ascending order is what makes the sparse forward gather bit-identical to
// the dense kernel's `a == 0.0f`-skip accumulation order (docs/perf.md).

#ifndef ERMINER_NN_SPARSE_H_
#define ERMINER_NN_SPARSE_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace erminer::nn {

class SparseRows {
 public:
  /// Empties the batch and (re)sets the dense column count. Keeps capacity.
  void Clear(size_t cols) {
    cols_ = cols;
    offsets_.assign(1, 0);
    indices_.clear();
  }

  /// Appends one row holding ones at `idx[0..n)`; strictly ascending,
  /// each in [0, cols).
  void AddRow(const int32_t* idx, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      ERMINER_CHECK(idx[i] >= 0 && static_cast<size_t>(idx[i]) < cols_);
      ERMINER_CHECK(i == 0 || idx[i] > idx[i - 1]);
      indices_.push_back(idx[i]);
    }
    offsets_.push_back(indices_.size());
  }

  size_t rows() const { return offsets_.size() - 1; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return indices_.size(); }

  const int32_t* row(size_t r) const { return indices_.data() + offsets_[r]; }
  size_t row_nnz(size_t r) const { return offsets_[r + 1] - offsets_[r]; }

 private:
  size_t cols_ = 0;
  std::vector<int32_t> indices_;
  std::vector<size_t> offsets_{0};
};

}  // namespace erminer::nn

#endif  // ERMINER_NN_SPARSE_H_
