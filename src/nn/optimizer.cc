#include "nn/optimizer.h"

#include <cmath>

namespace erminer {

void Sgd::Step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  ERMINER_CHECK(params.size() == grads.size());
  for (size_t i = 0; i < params.size(); ++i) {
    ERMINER_CHECK(params[i]->size() == grads[i]->size());
    for (size_t j = 0; j < params[i]->size(); ++j) {
      params[i]->data()[j] -= lr_ * grads[i]->data()[j];
    }
  }
}

void Adam::Step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads) {
  ERMINER_CHECK(params.size() == grads.size());
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params[i]->size(), 0.0f);
      v_[i].assign(params[i]->size(), 0.0f);
    }
  }
  ERMINER_CHECK(m_.size() == params.size());
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    ERMINER_CHECK(params[i]->size() == grads[i]->size());
    ERMINER_CHECK(params[i]->size() == m_[i].size());
    for (size_t j = 0; j < params[i]->size(); ++j) {
      const float g = grads[i]->data()[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      params[i]->data()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::SaveState(ckpt::Writer* w) const {
  w->I64(t_);
  w->U64(m_.size());
  for (const auto& m : m_) w->Vec(m);
  w->U64(v_.size());
  for (const auto& v : v_) w->Vec(v);
}

Status Adam::LoadState(ckpt::Reader* r) {
  int64_t t = 0;
  ERMINER_RETURN_NOT_OK(r->I64(&t));
  uint64_t nm = 0;
  ERMINER_RETURN_NOT_OK(r->U64(&nm));
  std::vector<std::vector<float>> m(nm);
  for (auto& mi : m) ERMINER_RETURN_NOT_OK(r->Vec(&mi));
  uint64_t nv = 0;
  ERMINER_RETURN_NOT_OK(r->U64(&nv));
  if (nv != nm) {
    return Status::InvalidArgument(
        "Adam state corrupt: " + std::to_string(nm) + " first-moment vs " +
        std::to_string(nv) + " second-moment tensors");
  }
  std::vector<std::vector<float>> v(nv);
  for (auto& vi : v) ERMINER_RETURN_NOT_OK(r->Vec(&vi));
  t_ = static_cast<long>(t);
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

}  // namespace erminer
