#include "nn/optimizer.h"

#include <cmath>

#include "nn/kernels.h"

namespace erminer {

void Sgd::Step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  ERMINER_CHECK(params.size() == grads.size());
  const nn::KernelOps& ops = nn::Ops();
  for (size_t i = 0; i < params.size(); ++i) {
    ERMINER_CHECK(params[i]->size() == grads[i]->size());
    // p += (-lr) * g: bit-identical to p -= lr * g (negation is exact and
    // RN addition commutes with the sign flip of one operand).
    ops.axpy(params[i]->data().data(), grads[i]->data().data(), -lr_,
             params[i]->size());
  }
}

void Adam::Step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads) {
  ERMINER_CHECK(params.size() == grads.size());
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params[i]->size(), 0.0f);
      v_[i].assign(params[i]->size(), 0.0f);
    }
  }
  ERMINER_CHECK(m_.size() == params.size());
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const nn::KernelOps& ops = nn::Ops();
  for (size_t i = 0; i < params.size(); ++i) {
    ERMINER_CHECK(params[i]->size() == grads[i]->size());
    ERMINER_CHECK(params[i]->size() == m_[i].size());
    ops.adam(params[i]->data().data(), grads[i]->data().data(),
             m_[i].data(), v_[i].data(), params[i]->size(), beta1_, beta2_,
             lr_, eps_, bc1, bc2);
  }
}

void Adam::SaveState(ckpt::Writer* w) const {
  w->I64(t_);
  w->U64(m_.size());
  for (const auto& m : m_) w->Vec(m);
  w->U64(v_.size());
  for (const auto& v : v_) w->Vec(v);
}

Status Adam::LoadState(ckpt::Reader* r) {
  int64_t t = 0;
  ERMINER_RETURN_NOT_OK(r->I64(&t));
  uint64_t nm = 0;
  ERMINER_RETURN_NOT_OK(r->U64(&nm));
  std::vector<std::vector<float>> m(nm);
  for (auto& mi : m) ERMINER_RETURN_NOT_OK(r->Vec(&mi));
  uint64_t nv = 0;
  ERMINER_RETURN_NOT_OK(r->U64(&nv));
  if (nv != nm) {
    return Status::InvalidArgument(
        "Adam state corrupt: " + std::to_string(nm) + " first-moment vs " +
        std::to_string(nv) + " second-moment tensors");
  }
  std::vector<std::vector<float>> v(nv);
  for (auto& vi : v) ERMINER_RETURN_NOT_OK(r->Vec(&vi));
  t_ = static_cast<long>(t);
  m_ = std::move(m);
  v_ = std::move(v);
  return Status::OK();
}

}  // namespace erminer
