#include "nn/optimizer.h"

#include <cmath>

namespace erminer {

void Sgd::Step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  ERMINER_CHECK(params.size() == grads.size());
  for (size_t i = 0; i < params.size(); ++i) {
    ERMINER_CHECK(params[i]->size() == grads[i]->size());
    for (size_t j = 0; j < params[i]->size(); ++j) {
      params[i]->data()[j] -= lr_ * grads[i]->data()[j];
    }
  }
}

void Adam::Step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads) {
  ERMINER_CHECK(params.size() == grads.size());
  if (m_.empty()) {
    m_.resize(params.size());
    v_.resize(params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      m_[i].assign(params[i]->size(), 0.0f);
      v_[i].assign(params[i]->size(), 0.0f);
    }
  }
  ERMINER_CHECK(m_.size() == params.size());
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params.size(); ++i) {
    ERMINER_CHECK(params[i]->size() == grads[i]->size());
    ERMINER_CHECK(params[i]->size() == m_[i].size());
    for (size_t j = 0; j < params[i]->size(); ++j) {
      const float g = grads[i]->data()[j];
      m_[i][j] = beta1_ * m_[i][j] + (1.0f - beta1_) * g;
      v_[i][j] = beta2_ * v_[i][j] + (1.0f - beta2_) * g * g;
      const float mhat = m_[i][j] / bc1;
      const float vhat = v_[i][j] / bc2;
      params[i]->data()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace erminer
