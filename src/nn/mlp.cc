#include "nn/mlp.h"

#include <cmath>
#include <istream>
#include <ostream>

namespace erminer {

Linear::Linear(size_t in, size_t out, Rng* rng)
    : weight_(in, out),
      bias_(1, out, 0.0f),
      dweight_(in, out, 0.0f),
      dbias_(1, out, 0.0f) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in));
  for (float& w : weight_.data()) {
    w = static_cast<float>((rng->NextDouble() * 2.0 - 1.0) * bound);
  }
}

Tensor Linear::Forward(const Tensor& x) {
  ERMINER_CHECK(x.cols() == weight_.rows());
  last_input_ = x;
  Tensor y = MatMul(x, weight_);
  AddBiasInPlace(&y, bias_);
  return y;
}

Tensor Linear::Backward(const Tensor& dy) {
  ERMINER_CHECK(dy.cols() == weight_.cols());
  ERMINER_CHECK(last_input_.rows() == dy.rows());
  Axpy(1.0f, MatMulTransA(last_input_, dy), &dweight_);
  Axpy(1.0f, SumRows(dy), &dbias_);
  return MatMulTransB(dy, weight_);
}

void Linear::ZeroGrad() {
  dweight_.Fill(0.0f);
  dbias_.Fill(0.0f);
}

Mlp::Mlp(std::vector<size_t> dims, Rng* rng) : dims_(std::move(dims)) {
  ERMINER_CHECK(dims_.size() >= 2);
  layers_.reserve(dims_.size() - 1);
  for (size_t i = 0; i + 1 < dims_.size(); ++i) {
    layers_.emplace_back(dims_[i], dims_[i + 1], rng);
  }
}

Tensor Mlp::Forward(const Tensor& x) {
  pre_activations_.clear();
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      pre_activations_.push_back(h);  // cache pre-ReLU for backward
      h = Relu(h);
    }
  }
  return h;
}

void Mlp::Backward(const Tensor& dout) {
  ERMINER_CHECK(pre_activations_.size() + 1 == layers_.size());
  Tensor g = dout;
  for (size_t i = layers_.size(); i-- > 0;) {
    g = layers_[i].Backward(g);
    if (i > 0) g = ReluBackward(pre_activations_[i - 1], g);
  }
}

void Mlp::ZeroGrad() {
  for (auto& l : layers_) l.ZeroGrad();
}

std::vector<Tensor*> Mlp::Parameters() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    out.push_back(&l.weight());
    out.push_back(&l.bias());
  }
  return out;
}

std::vector<Tensor*> Mlp::Gradients() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    out.push_back(&l.weight_grad());
    out.push_back(&l.bias_grad());
  }
  return out;
}

void Mlp::CopyWeightsFrom(const Mlp& other) {
  ERMINER_CHECK(dims_ == other.dims_);
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].weight() = other.layers_[i].weight();
    layers_[i].bias() = other.layers_[i].bias();
  }
}

namespace {
constexpr uint32_t kMagic = 0x45524d4c;  // "ERML"
}  // namespace

Status Mlp::Save(std::ostream& os) const {
  uint32_t magic = kMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  uint32_t n_dims = static_cast<uint32_t>(dims_.size());
  os.write(reinterpret_cast<const char*>(&n_dims), sizeof(n_dims));
  for (size_t d : dims_) {
    uint64_t v = d;
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  for (const auto& l : layers_) {
    os.write(reinterpret_cast<const char*>(l.weight().data().data()),
             static_cast<std::streamsize>(l.weight().size() * sizeof(float)));
    os.write(reinterpret_cast<const char*>(l.bias().data().data()),
             static_cast<std::streamsize>(l.bias().size() * sizeof(float)));
  }
  if (!os) return Status::IoError("failed writing MLP weights");
  return Status::OK();
}

Result<Mlp> Mlp::Load(std::istream& is) {
  uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is || magic != kMagic) {
    return Status::IoError("bad MLP weight file magic");
  }
  uint32_t n_dims = 0;
  is.read(reinterpret_cast<char*>(&n_dims), sizeof(n_dims));
  if (!is || n_dims < 2 || n_dims > 64) {
    return Status::IoError("bad MLP dim count");
  }
  std::vector<size_t> dims(n_dims);
  for (auto& d : dims) {
    uint64_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    d = static_cast<size_t>(v);
  }
  Rng rng(0);
  Mlp mlp(dims, &rng);
  for (auto& l : mlp.layers_) {
    is.read(reinterpret_cast<char*>(l.weight().data().data()),
            static_cast<std::streamsize>(l.weight().size() * sizeof(float)));
    is.read(reinterpret_cast<char*>(l.bias().data().data()),
            static_cast<std::streamsize>(l.bias().size() * sizeof(float)));
  }
  if (!is) return Status::IoError("truncated MLP weight file");
  return mlp;
}

}  // namespace erminer
