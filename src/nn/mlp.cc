#include "nn/mlp.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "nn/kernel_launch.h"
#include "nn/kernels.h"

namespace erminer {

Linear::Linear(size_t in, size_t out, Rng* rng)
    : weight_(in, out),
      bias_(1, out, 0.0f),
      dweight_(in, out, 0.0f),
      dbias_(1, out, 0.0f) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in));
  for (float& w : weight_.data()) {
    w = static_cast<float>((rng->NextDouble() * 2.0 - 1.0) * bound);
  }
}

void Linear::ForwardInto(const float* x, size_t batch, float* y) const {
  const size_t in = weight_.rows(), out = weight_.cols();
  std::fill(y, y + batch * out, 0.0f);
  nn::MatMulInto(x, weight_.data().data(), y, batch, in, out);
  const nn::KernelOps& ops = nn::Ops();
  const float* pb = bias_.data().data();
  for (size_t r = 0; r < batch; ++r) ops.add_row(y + r * out, pb, out);
}

void Linear::ForwardSparseInto(const nn::SparseRows& x, float* y) const {
  ERMINER_CHECK(x.cols() == weight_.rows());
  nn::SparseLinearForwardInto(x, weight_.data().data(), bias_.data().data(),
                              y, weight_.cols());
}

void Linear::Backward(const float* x, const float* dy, size_t batch,
                      float* dx, nn::Workspace* ws) {
  const size_t in = weight_.rows(), out = weight_.cols();
  const nn::KernelOps& ops = nn::Ops();
  // dW += x^T dy, reduced over the batch in deterministic chunk order. The
  // delta is materialized first and merged with one axpy so the += into the
  // accumulated gradient associates exactly as it always has.
  float* delta = ws->AllocZero(in * out);
  nn::MatMulTransAInto(x, dy, delta, batch, in, out, ws);
  ops.axpy(dweight_.data().data(), delta, 1.0f, in * out);
  // db += column sums of dy.
  float* dsum = ws->AllocZero(out);
  nn::SumRowsInto(dy, dsum, batch, out, ws);
  ops.axpy(dbias_.data().data(), dsum, 1.0f, out);
  if (dx != nullptr) {
    nn::MatMulTransBInto(dy, weight_.data().data(), dx, batch, out, in, ws);
  }
}

void Linear::BackwardSparse(const nn::SparseRows& x, const float* dy,
                            nn::Workspace* ws) {
  ERMINER_CHECK(x.cols() == weight_.rows());
  const size_t out = weight_.cols();
  const size_t batch = x.rows();
  nn::SparseMatMulTransAAcc(x, dy, dweight_.data().data(), out, ws);
  float* dsum = ws->AllocZero(out);
  nn::SumRowsInto(dy, dsum, batch, out, ws);
  nn::Ops().axpy(dbias_.data().data(), dsum, 1.0f, out);
}

void Linear::ZeroGrad() {
  dweight_.Fill(0.0f);
  dbias_.Fill(0.0f);
}

Mlp::Mlp(std::vector<size_t> dims, Rng* rng) : dims_(std::move(dims)) {
  ERMINER_CHECK(dims_.size() >= 2);
  layers_.reserve(dims_.size() - 1);
  for (size_t i = 0; i + 1 < dims_.size(); ++i) {
    layers_.emplace_back(dims_[i], dims_[i + 1], rng);
  }
  pre_.resize(layers_.size() - 1);
  act_.resize(layers_.size() - 1);
}

const Tensor& Mlp::Forward(const Tensor& x) {
  ERMINER_CHECK(x.cols() == dims_.front());
  input_ = x;  // member copy so Backward outlives the caller's tensor
  sparse_input_ = nullptr;
  const size_t batch = x.rows();
  Tensor& y0 = layers_.size() == 1 ? out_ : pre_[0];
  y0.Resize(batch, dims_[1]);
  layers_[0].ForwardInto(input_.data().data(), batch, y0.data().data());
  return FinishForward(batch);
}

const Tensor& Mlp::ForwardSparse(const nn::SparseRows& x) {
  ERMINER_CHECK(x.cols() == dims_.front());
  sparse_input_ = &x;
  const size_t batch = x.rows();
  Tensor& y0 = layers_.size() == 1 ? out_ : pre_[0];
  y0.Resize(batch, dims_[1]);
  layers_[0].ForwardSparseInto(x, y0.data().data());
  return FinishForward(batch);
}

const Tensor& Mlp::FinishForward(size_t batch) {
  const nn::KernelOps& ops = nn::Ops();
  // Hidden layers: relu(pre_[i]) -> act_[i], then layer i+1 forward into
  // pre_[i+1], or out_ when i+1 is the head.
  for (size_t i = 0; i + 1 < layers_.size(); ++i) {
    act_[i].Resize(batch, dims_[i + 1]);
    ops.relu(act_[i].data().data(), pre_[i].data().data(),
             batch * dims_[i + 1]);
    Tensor& y = (i + 2 == dims_.size() - 1) ? out_ : pre_[i + 1];
    y.Resize(batch, dims_[i + 2]);
    layers_[i + 1].ForwardInto(act_[i].data().data(), batch, y.data().data());
  }
  return out_;
}

void Mlp::Backward(const Tensor& dout) {
  ERMINER_CHECK(dout.rows() == out_.rows() && dout.cols() == out_.cols());
  const size_t batch = dout.rows();
  ws_.Reset();
  ga_ = dout;
  Tensor* g = &ga_;
  Tensor* gnext = &gb_;
  for (size_t i = layers_.size(); i-- > 0;) {
    if (i == 0) {
      if (sparse_input_ != nullptr) {
        layers_[0].BackwardSparse(*sparse_input_, g->data().data(), &ws_);
      } else {
        ERMINER_CHECK(input_.rows() == batch);
        layers_[0].Backward(input_.data().data(), g->data().data(), batch,
                            nullptr, &ws_);
      }
      break;
    }
    gnext->Resize(batch, dims_[i]);
    layers_[i].Backward(act_[i - 1].data().data(), g->data().data(), batch,
                        gnext->data().data(), &ws_);
    // In-place ReLU mask: g[j] = pre > 0 ? g[j] : 0 (aliasing is fine — each
    // element is read before it is written).
    nn::Ops().relu_bwd(gnext->data().data(), pre_[i - 1].data().data(),
                       gnext->data().data(), batch * dims_[i]);
    std::swap(g, gnext);
  }
}

void Mlp::ZeroGrad() {
  for (auto& l : layers_) l.ZeroGrad();
}

std::vector<Tensor*> Mlp::Parameters() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    out.push_back(&l.weight());
    out.push_back(&l.bias());
  }
  return out;
}

std::vector<Tensor*> Mlp::Gradients() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    out.push_back(&l.weight_grad());
    out.push_back(&l.bias_grad());
  }
  return out;
}

void Mlp::CopyWeightsFrom(const Mlp& other) {
  ERMINER_CHECK(dims_ == other.dims_);
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].weight() = other.layers_[i].weight();
    layers_[i].bias() = other.layers_[i].bias();
  }
}

namespace {
constexpr uint32_t kMagic = 0x45524d4c;  // "ERML"
}  // namespace

Status Mlp::Save(std::ostream& os) const {
  uint32_t magic = kMagic;
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  uint32_t n_dims = static_cast<uint32_t>(dims_.size());
  os.write(reinterpret_cast<const char*>(&n_dims), sizeof(n_dims));
  for (size_t d : dims_) {
    uint64_t v = d;
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  for (const auto& l : layers_) {
    os.write(reinterpret_cast<const char*>(l.weight().data().data()),
             static_cast<std::streamsize>(l.weight().size() * sizeof(float)));
    os.write(reinterpret_cast<const char*>(l.bias().data().data()),
             static_cast<std::streamsize>(l.bias().size() * sizeof(float)));
  }
  if (!os) return Status::IoError("failed writing MLP weights");
  return Status::OK();
}

Result<Mlp> Mlp::Load(std::istream& is) {
  uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!is || magic != kMagic) {
    return Status::IoError("bad MLP weight file magic");
  }
  uint32_t n_dims = 0;
  is.read(reinterpret_cast<char*>(&n_dims), sizeof(n_dims));
  if (!is || n_dims < 2 || n_dims > 64) {
    return Status::IoError("bad MLP dim count");
  }
  std::vector<size_t> dims(n_dims);
  for (auto& d : dims) {
    uint64_t v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    d = static_cast<size_t>(v);
  }
  Rng rng(0);
  Mlp mlp(dims, &rng);
  for (auto& l : mlp.layers_) {
    is.read(reinterpret_cast<char*>(l.weight().data().data()),
            static_cast<std::streamsize>(l.weight().size() * sizeof(float)));
    is.read(reinterpret_cast<char*>(l.bias().data().data()),
            static_cast<std::streamsize>(l.bias().size() * sizeof(float)));
  }
  if (!is) return Status::IoError("truncated MLP weight file");
  return mlp;
}

}  // namespace erminer
