#include "nn/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "nn/kernels.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "util/status.h"

namespace erminer::nn {

namespace {

std::atomic<const KernelOps*> g_ops{nullptr};
std::atomic<int> g_level{-1};

const KernelOps* TableFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kSse2:
      return &kSse2Ops;
    case SimdLevel::kAvx2:
      return &kAvx2Ops;
    case SimdLevel::kOff:
      break;
  }
  return &kScalarOps;
}

/// Repoints the dispatch table and records the decision on the observability
/// surfaces: the nn/simd_level gauge (0=off 1=sse2 2=avx2) and the
/// erminer_build_info{simd="..."} label on /metrics.
void Publish(SimdLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  g_ops.store(TableFor(level), std::memory_order_release);
  ERMINER_GAUGE_SET("nn/simd_level", static_cast<int>(level));
  obs::SetBuildLabel("simd", SimdLevelName(level));
}

/// ERMINER_SIMD pins the level; unset picks the highest the CPU supports.
/// An explicit-but-unsupported (or unknown) value is a hard error so a
/// pinned CI configuration can never silently measure the wrong kernels.
SimdLevel Resolve() {
  const char* env = std::getenv("ERMINER_SIMD");
  if (env != nullptr && *env != '\0') {
    SimdLevel level;
    if (std::strcmp(env, "off") == 0) {
      level = SimdLevel::kOff;
    } else if (std::strcmp(env, "sse2") == 0) {
      level = SimdLevel::kSse2;
    } else if (std::strcmp(env, "avx2") == 0) {
      level = SimdLevel::kAvx2;
    } else {
      std::fprintf(stderr,
                   "ERMINER_SIMD=%s: unknown level (off|sse2|avx2)\n", env);
      std::exit(2);
    }
    if (!SimdLevelSupported(level)) {
      std::fprintf(stderr, "ERMINER_SIMD=%s: level not supported by this "
                   "CPU\n", env);
      std::exit(2);
    }
    return level;
  }
  if (SimdLevelSupported(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  if (SimdLevelSupported(SimdLevel::kSse2)) return SimdLevel::kSse2;
  return SimdLevel::kOff;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kOff:
      break;
  }
  return "off";
}

bool SimdLevelSupported(SimdLevel level) {
  if (level == SimdLevel::kOff) return true;
#if defined(__x86_64__) || defined(__i386__)
  switch (level) {
    case SimdLevel::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case SimdLevel::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimdLevel::kOff:
      break;
  }
#endif
  return false;
}

SimdLevel ActiveSimdLevel() {
  static std::once_flag once;
  std::call_once(once, [] { Publish(Resolve()); });
  return static_cast<SimdLevel>(g_level.load(std::memory_order_relaxed));
}

void SetSimdLevel(SimdLevel level) {
  ERMINER_CHECK(SimdLevelSupported(level));
  ActiveSimdLevel();  // force first-use resolution so Publish orders cleanly
  Publish(level);
}

const KernelOps& Ops() {
  const KernelOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    ActiveSimdLevel();
    ops = g_ops.load(std::memory_order_acquire);
  }
  return *ops;
}

}  // namespace erminer::nn
