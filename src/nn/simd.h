// Runtime SIMD dispatch for the NN kernels (docs/perf.md, "NN kernels").
//
// Three implementations of the same kernel table are compiled — scalar,
// SSE2 and AVX2 — and one is selected at first use: the highest level both
// supported by the CPU and allowed by the ERMINER_SIMD environment variable
// (`off`, `sse2` or `avx2`; unset means "highest supported"). Setting a
// level the CPU lacks is a hard error, not a silent downgrade, so a pinned
// CI configuration can never measure the wrong kernels.
//
// Every level computes bit-identical results: the vector lanes run over the
// output-column dimension only, with separate multiply and add (no FMA), so
// each output element sees the exact scalar sequence of float operations.
// tests/nn_kernel_differential_test.cc enforces this across levels and
// thread counts.

#ifndef ERMINER_NN_SIMD_H_
#define ERMINER_NN_SIMD_H_

namespace erminer::nn {

enum class SimdLevel : int { kOff = 0, kSse2 = 1, kAvx2 = 2 };

/// "off", "sse2" or "avx2".
const char* SimdLevelName(SimdLevel level);

/// True if the running CPU can execute kernels at `level`.
bool SimdLevelSupported(SimdLevel level);

/// The level the kernel table currently dispatches to. Resolved once from
/// ERMINER_SIMD + CPU support on first call (exits with an error if the
/// variable names an unknown or unsupported level).
SimdLevel ActiveSimdLevel();

/// Re-points the dispatch table (tests and benches compare levels within
/// one process). Dies if the level is unsupported. Not thread-safe against
/// concurrent kernel launches; call between complete operations only.
void SetSimdLevel(SimdLevel level);

}  // namespace erminer::nn

#endif  // ERMINER_NN_SIMD_H_
