#include "nn/tensor.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace erminer {

namespace {

/// Rows per chunk targeting ~32k flops of work each, so tiny tensors (every
/// unit-test net, single-row inference) stay single-chunk — which both
/// avoids pool overhead and keeps their results bit-identical to the
/// pre-pool serial kernels. The grain depends only on the shapes, never on
/// the thread count, so results are identical for any pool size.
constexpr size_t kChunkFlops = 32768;

size_t RowGrain(size_t row_cost) {
  return std::max<size_t>(1, kChunkFlops / std::max<size_t>(1, row_cost));
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ERMINER_CHECK(a.cols() == b.rows());
  Tensor c(a.rows(), b.cols(), 0.0f);
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // Output rows are independent (each reads one row of A), so the
  // row-parallel split is bit-identical to serial for any grain.
  GlobalPool().ParallelFor(0, m, RowGrain(k * n), [&](size_t rb, size_t re) {
    for (size_t i = rb; i < re; ++i) {
      for (size_t p = 0; p < k; ++p) {
        const float av = pa[i * k + p];
        if (av == 0.0f) continue;  // one-hot inputs make this a big win
        const float* brow = pb + p * n;
        float* crow = pc + i * n;
        for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  ERMINER_CHECK(a.rows() == b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  // This kernel reduces over k (the minibatch dimension in gradient
  // computations): per-chunk partial products are the "per-thread gradient
  // buffers", merged below in fixed chunk order so the float sums associate
  // identically for every thread count.
  return GlobalPool().ParallelReduce(
      0, k, RowGrain(m * n), Tensor(m, n, 0.0f),
      [&](size_t pb_begin, size_t pb_end) {
        Tensor part(m, n, 0.0f);
        float* pc = part.data().data();
        for (size_t p = pb_begin; p < pb_end; ++p) {
          const float* arow = pa + p * m;
          const float* brow = pb + p * n;
          for (size_t i = 0; i < m; ++i) {
            const float av = arow[i];
            if (av == 0.0f) continue;
            float* crow = pc + i * n;
            for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
        return part;
      },
      [](Tensor* acc, const Tensor& part) { Axpy(1.0f, part, acc); });
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  ERMINER_CHECK(a.cols() == b.cols());
  Tensor c(a.rows(), b.rows(), 0.0f);
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  GlobalPool().ParallelFor(0, m, RowGrain(k * n), [&](size_t rb, size_t re) {
    for (size_t i = rb; i < re; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (size_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        float acc = 0.0f;
        for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = acc;
      }
    }
  });
  return c;
}

void AddBiasInPlace(Tensor* y, const Tensor& bias) {
  ERMINER_CHECK(bias.rows() == 1 && bias.cols() == y->cols());
  for (size_t r = 0; r < y->rows(); ++r) {
    for (size_t c = 0; c < y->cols(); ++c) {
      y->at(r, c) += bias.at(0, c);
    }
  }
}

Tensor Relu(const Tensor& x) {
  Tensor y = x;
  for (float& v : y.data()) {
    if (v < 0.0f) v = 0.0f;
  }
  return y;
}

Tensor ReluBackward(const Tensor& x, const Tensor& grad) {
  ERMINER_CHECK(x.rows() == grad.rows() && x.cols() == grad.cols());
  Tensor g = grad;
  for (size_t i = 0; i < g.size(); ++i) {
    if (x.data()[i] <= 0.0f) g.data()[i] = 0.0f;
  }
  return g;
}

Tensor SumRows(const Tensor& x) {
  const size_t rows = x.rows(), cols = x.cols();
  const float* px = x.data().data();
  // Ordered reduction over rows: the bias gradient sums identically for
  // every thread count (single chunk — and old-serial-identical — for the
  // minibatch sizes the DQN uses).
  return GlobalPool().ParallelReduce(
      0, rows, RowGrain(cols), Tensor(1, cols, 0.0f),
      [&](size_t rb, size_t re) {
        Tensor part(1, cols, 0.0f);
        float* ps = part.data().data();
        for (size_t r = rb; r < re; ++r) {
          const float* row = px + r * cols;
          for (size_t c = 0; c < cols; ++c) ps[c] += row[c];
        }
        return part;
      },
      [](Tensor* acc, const Tensor& part) { Axpy(1.0f, part, acc); });
}

void Axpy(float s, const Tensor& b, Tensor* a) {
  ERMINER_CHECK(a->rows() == b.rows() && a->cols() == b.cols());
  for (size_t i = 0; i < a->size(); ++i) {
    a->data()[i] += s * b.data()[i];
  }
}

}  // namespace erminer
