#include "nn/tensor.h"

namespace erminer {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ERMINER_CHECK(a.cols() == b.rows());
  Tensor c(a.rows(), b.cols(), 0.0f);
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      if (av == 0.0f) continue;  // one-hot inputs make this a big win
      const float* brow = pb + p * n;
      float* crow = pc + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  ERMINER_CHECK(a.rows() == b.rows());
  Tensor c(a.cols(), b.cols(), 0.0f);
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (size_t p = 0; p < k; ++p) {
    const float* arow = pa + p * m;
    const float* brow = pb + p * n;
    for (size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  ERMINER_CHECK(a.cols() == b.cols());
  Tensor c(a.rows(), b.rows(), 0.0f);
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

void AddBiasInPlace(Tensor* y, const Tensor& bias) {
  ERMINER_CHECK(bias.rows() == 1 && bias.cols() == y->cols());
  for (size_t r = 0; r < y->rows(); ++r) {
    for (size_t c = 0; c < y->cols(); ++c) {
      y->at(r, c) += bias.at(0, c);
    }
  }
}

Tensor Relu(const Tensor& x) {
  Tensor y = x;
  for (float& v : y.data()) {
    if (v < 0.0f) v = 0.0f;
  }
  return y;
}

Tensor ReluBackward(const Tensor& x, const Tensor& grad) {
  ERMINER_CHECK(x.rows() == grad.rows() && x.cols() == grad.cols());
  Tensor g = grad;
  for (size_t i = 0; i < g.size(); ++i) {
    if (x.data()[i] <= 0.0f) g.data()[i] = 0.0f;
  }
  return g;
}

Tensor SumRows(const Tensor& x) {
  Tensor s(1, x.cols(), 0.0f);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      s.at(0, c) += x.at(r, c);
    }
  }
  return s;
}

void Axpy(float s, const Tensor& b, Tensor* a) {
  ERMINER_CHECK(a->rows() == b.rows() && a->cols() == b.cols());
  for (size_t i = 0; i < a->size(); ++i) {
    a->data()[i] += s * b.data()[i];
  }
}

}  // namespace erminer
