#include "nn/tensor.h"

#include "nn/kernel_launch.h"
#include "nn/kernels.h"
#include "nn/workspace.h"

namespace erminer {

namespace {

/// Scratch for the convenience (Tensor-returning) entry points. The hot
/// paths (Mlp, DuelingNetwork) carry their own per-instance Workspace and
/// call the *Into launches directly; this one only serves standalone users
/// like the unit tests.
nn::Workspace& LocalWorkspace() {
  static thread_local nn::Workspace ws;
  ws.Reset();
  return ws;
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ERMINER_CHECK(a.cols() == b.rows());
  Tensor c(a.rows(), b.cols(), 0.0f);
  nn::MatMulInto(a.data().data(), b.data().data(), c.data().data(), a.rows(),
                 a.cols(), b.cols());
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  ERMINER_CHECK(a.rows() == b.rows());
  Tensor out(a.cols(), b.cols(), 0.0f);
  nn::MatMulTransAInto(a.data().data(), b.data().data(), out.data().data(),
                       a.rows(), a.cols(), b.cols(), &LocalWorkspace());
  return out;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  ERMINER_CHECK(a.cols() == b.cols());
  Tensor c(a.rows(), b.rows(), 0.0f);
  nn::MatMulTransBInto(a.data().data(), b.data().data(), c.data().data(),
                       a.rows(), a.cols(), b.rows(), &LocalWorkspace());
  return c;
}

void AddBiasInPlace(Tensor* y, const Tensor& bias) {
  ERMINER_CHECK(bias.rows() == 1 && bias.cols() == y->cols());
  const nn::KernelOps& ops = nn::Ops();
  float* py = y->data().data();
  const float* pb = bias.data().data();
  const size_t cols = y->cols();
  for (size_t r = 0; r < y->rows(); ++r) {
    ops.add_row(py + r * cols, pb, cols);
  }
}

Tensor Relu(const Tensor& x) {
  Tensor y(x.rows(), x.cols());
  nn::Ops().relu(y.data().data(), x.data().data(), x.size());
  return y;
}

Tensor ReluBackward(const Tensor& x, const Tensor& grad) {
  ERMINER_CHECK(x.rows() == grad.rows() && x.cols() == grad.cols());
  Tensor g(x.rows(), x.cols());
  nn::Ops().relu_bwd(g.data().data(), x.data().data(), grad.data().data(),
                     x.size());
  return g;
}

Tensor SumRows(const Tensor& x) {
  Tensor out(1, x.cols(), 0.0f);
  nn::SumRowsInto(x.data().data(), out.data().data(), x.rows(), x.cols(),
                  &LocalWorkspace());
  return out;
}

void Axpy(float s, const Tensor& b, Tensor* a) {
  ERMINER_CHECK(a->rows() == b.rows() && a->cols() == b.cols());
  nn::Ops().axpy(a->data().data(), b.data().data(), s, a->size());
}

}  // namespace erminer
