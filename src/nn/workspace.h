// A slot-pool arena for NN kernel temporaries (gradient deltas, transposed
// weight copies, per-chunk reduction partials).
//
// Usage pattern: one Workspace per network; each top-level operation calls
// Reset() and then Alloc()s its temporaries in a fixed order. Slots are
// handed out in call order and keep their heap buffers across Reset cycles,
// so after the first pass through an operation sequence the arena performs
// zero allocations — buffers grow monotonically to the high-water mark of
// each slot position. Buffers handed out earlier in a cycle stay valid when
// later slots grow (each slot owns its own heap block).
//
// Not thread-safe: Alloc/Reset run on the calling thread. Parallel kernels
// receive disjoint slices of one slab Alloc'd before the parallel region.

#ifndef ERMINER_NN_WORKSPACE_H_
#define ERMINER_NN_WORKSPACE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace erminer::nn {

class Workspace {
 public:
  /// A float buffer with at least n elements; contents unspecified.
  float* Alloc(size_t n) {
    if (next_f_ == fslots_.size()) fslots_.emplace_back();
    std::vector<float>& slot = fslots_[next_f_++];
    if (slot.size() < n) slot.resize(n);
    return slot.data();
  }

  /// A float buffer with the first n elements set to +0.0f.
  float* AllocZero(size_t n) {
    float* p = Alloc(n);
    std::fill(p, p + n, 0.0f);
    return p;
  }

  /// An int32 buffer with at least n elements; contents unspecified.
  int32_t* AllocI(size_t n) {
    if (next_i_ == islots_.size()) islots_.emplace_back();
    std::vector<int32_t>& slot = islots_[next_i_++];
    if (slot.size() < n) slot.resize(n);
    return slot.data();
  }

  /// Rewinds to the first slot; keeps every buffer.
  void Reset() {
    next_f_ = 0;
    next_i_ = 0;
  }

  /// Total heap bytes currently held by the arena.
  size_t bytes() const {
    size_t b = 0;
    for (const auto& s : fslots_) b += s.capacity() * sizeof(float);
    for (const auto& s : islots_) b += s.capacity() * sizeof(int32_t);
    return b;
  }

 private:
  std::vector<std::vector<float>> fslots_;
  std::vector<std::vector<int32_t>> islots_;
  size_t next_f_ = 0;
  size_t next_i_ = 0;
};

}  // namespace erminer::nn

#endif  // ERMINER_NN_WORKSPACE_H_
