// Deterministic parallel launches over the SIMD kernel table (kernels.h).
//
// This layer owns the decomposition contract of docs/parallelism.md for the
// NN: chunk boundaries depend only on shapes (RowGrain targets ~32k flops
// per chunk), per-chunk partials merge in ascending chunk order on the
// calling thread, and the sparse launches replicate the dense launches'
// exact chunk structure — so every function here is bit-identical across
// --threads values, SIMD levels, and the sparse/dense encodings.
//
// Shape checks happen in the callers (which still hold Tensor/SparseRows
// shapes); buffers here are raw row-major floats. Every launch bumps the
// nn/kernel_flops counter with its nominal flop count (2mkn for GEMMs,
// 2*nnz*n for the sparse path — the counter is how a BENCH_JSON record
// shows the sparse encoding's arithmetic saving).

#ifndef ERMINER_NN_KERNEL_LAUNCH_H_
#define ERMINER_NN_KERNEL_LAUNCH_H_

#include <cstddef>

namespace erminer::nn {

class SparseRows;
class Workspace;

/// c (m x n, pre-zeroed) += a (m x k) * b (k x n).
void MatMulInto(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n);

/// out (m x n, pre-zeroed) += a (k x m)^T * b (k x n), reduced over the k
/// batch rows in deterministic chunk order.
void MatMulTransAInto(const float* a, const float* b, float* out, size_t k,
                      size_t m, size_t n, Workspace* ws);

/// c (m x n) = a (m x k) * b (n x k)^T; overwrites c. `ws` holds the
/// transposed copy of b (an exact bit copy, so this is float-op-free).
void MatMulTransBInto(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n, Workspace* ws);

/// out (1 x cols, pre-zeroed) += column sums of x (rows x cols), reduced in
/// deterministic chunk order.
void SumRowsInto(const float* x, float* out, size_t rows, size_t cols,
                 Workspace* ws);

/// y (x.rows() x n) = one_hot(x) * w (x.cols() x n) + bias (1 x n);
/// overwrites y. Gathers w rows in ascending index order — the dense
/// kernel's zero-skip accumulation order.
void SparseLinearForwardInto(const SparseRows& x, const float* w,
                             const float* bias, float* y, size_t n);

/// dw (x.cols() x n) += one_hot(x)^T * dy (x.rows() x n). Bit-identical to
/// MatMulTransAInto over the densified batch followed by a += merge: the
/// scatter walks each touched w-row's batch contributions in ascending
/// order, flushing partial sums at the dense launch's exact batch-chunk
/// boundaries before merging into dw.
void SparseMatMulTransAAcc(const SparseRows& x, const float* dy, float* dw,
                           size_t n, Workspace* ws);

}  // namespace erminer::nn

#endif  // ERMINER_NN_KERNEL_LAUNCH_H_
