// The per-SIMD-level kernel table behind the NN hot loops.
//
// Each entry is a raw-pointer inner loop over contiguous row-major data;
// the deterministic parallel decomposition (which rows / which batch chunk)
// happens above this layer, in kernel_launch.cc, so the same table serves
// every --threads value. All three implementations (kernels_scalar.cc,
// kernels_sse2.cc, kernels_avx2.cc) compute bit-identical results — the
// vector variants lane over the output-column dimension j with separate
// mul+add (never FMA), which preserves the scalar per-element operation
// sequence exactly. Zero-skip semantics are part of the contract: matmul
// and matmul_ta skip `a == 0.0f` terms (the one-hot fast path the scalar
// kernels always had), matmul_tbt does not — changing either would change
// bits under Inf/NaN operands.
//
// Bounds are the caller's job (ERMINER_CHECK at the kernel_launch entry
// points); these loops index raw floats.

#ifndef ERMINER_NN_KERNELS_H_
#define ERMINER_NN_KERNELS_H_

#include <cstddef>

namespace erminer::nn {

struct KernelOps {
  /// c[i,:] += a[i,p] * b[p,:] for output rows i in [rb, re); a is (m x k),
  /// b is (k x n), c is (m x n). Skips a[i,p] == 0.0f terms.
  void (*matmul_rows)(const float* a, const float* b, float* c, size_t k,
                      size_t n, size_t rb, size_t re);

  /// One batch chunk of C += A^T B: c(m x n) += a[p,:]^T b[p,:] over batch
  /// rows p in [pb, pe); a is (k x m), b is (k x n). Skips a[p,i] == 0.0f.
  void (*matmul_ta_chunk)(const float* a, const float* b, float* c, size_t m,
                          size_t n, size_t pb, size_t pe);

  /// c[i,:] = sum_p a[i,p] * bt[p,:] for rows i in [rb, re); a is (m x k),
  /// bt is (k x n) — B already transposed so lanes run over contiguous j.
  /// No zero skip (the original dot-product kernel had none). Zeroes c rows.
  void (*matmul_tbt_rows)(const float* a, const float* bt, float* c, size_t k,
                          size_t n, size_t rb, size_t re);

  /// y[j] += w[j].
  void (*add_row)(float* y, const float* w, size_t n);

  /// a[j] += s * b[j].
  void (*axpy)(float* a, const float* b, float s, size_t n);

  /// y[j] = x[j] clamped below at +0.0f (NaN and -0.0f pass through,
  /// matching `if (v < 0.0f) v = 0.0f`).
  void (*relu)(float* y, const float* x, size_t n);

  /// g[j] = (x[j] <= 0.0f) ? 0.0f : grad[j]; NaN x keeps grad.
  void (*relu_bwd)(float* g, const float* x, const float* grad, size_t n);

  /// acc[j] += x[r,j] over rows r in [rb, re); x is (rows x cols).
  void (*sum_rows_chunk)(const float* x, float* acc, size_t cols, size_t rb,
                         size_t re);

  /// One Adam update over n elements, in the exact scalar operation order:
  ///   m = b1*m + (1-b1)*g;  v = b2*v + ((1-b2)*g)*g;
  ///   p -= (lr * (m/bc1)) / (sqrt(v/bc2) + eps).
  void (*adam)(float* p, const float* g, float* m, float* v, size_t n,
               float beta1, float beta2, float lr, float eps, float bc1,
               float bc2);
};

extern const KernelOps kScalarOps;  // kernels_scalar.cc
extern const KernelOps kSse2Ops;    // kernels_sse2.cc
extern const KernelOps kAvx2Ops;    // kernels_avx2.cc

/// The table for the active SIMD level (simd.h).
const KernelOps& Ops();

}  // namespace erminer::nn

#endif  // ERMINER_NN_KERNELS_H_
