#include "nn/kernel_launch.h"

#include <algorithm>

#include "nn/kernels.h"
#include "nn/sparse.h"
#include "nn/workspace.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace erminer::nn {

namespace {

/// Rows per chunk targeting ~32k flops of work each, so tiny tensors (every
/// unit-test net, single-row inference) stay single-chunk — which both
/// avoids pool overhead and keeps their results bit-identical to the
/// pre-pool serial kernels. The grain depends only on the shapes, never on
/// the thread count, so results are identical for any pool size. This is
/// the same rule the dense kernels have used since the thread-pool PR; the
/// sparse launches reuse it so their chunk boundaries match exactly.
constexpr size_t kChunkFlops = 32768;

size_t RowGrain(size_t row_cost) {
  return std::max<size_t>(1, kChunkFlops / std::max<size_t>(1, row_cost));
}

void CountFlops(size_t flops) { ERMINER_COUNT("nn/kernel_flops", flops); }

}  // namespace

void MatMulInto(const float* a, const float* b, float* c, size_t m, size_t k,
                size_t n) {
  CountFlops(2 * m * k * n);
  const KernelOps& ops = Ops();
  // Output rows are independent (each reads one row of A), so the
  // row-parallel split is bit-identical to serial for any grain.
  GlobalPool().ParallelFor(0, m, RowGrain(k * n),
                           [&](size_t rb, size_t re) {
                             ops.matmul_rows(a, b, c, k, n, rb, re);
                           });
}

void MatMulTransAInto(const float* a, const float* b, float* out, size_t k,
                      size_t m, size_t n, Workspace* ws) {
  CountFlops(2 * k * m * n);
  const KernelOps& ops = Ops();
  // Reduces over k (the minibatch dimension in gradient computations):
  // per-chunk partial products are the "per-thread gradient buffers",
  // merged below in fixed chunk order so the float sums associate
  // identically for every thread count.
  const size_t grain = RowGrain(m * n);
  const size_t chunks = ThreadPool::NumChunksFor(k, grain);
  if (chunks <= 1) {
    ops.matmul_ta_chunk(a, b, out, m, n, 0, k);
    return;
  }
  float* parts = ws->AllocZero(chunks * m * n);
  GlobalPool().ParallelForChunks(0, k, grain,
                                 [&](size_t c, size_t pb, size_t pe) {
                                   ops.matmul_ta_chunk(a, b, parts + c * m * n,
                                                       m, n, pb, pe);
                                 });
  for (size_t c = 0; c < chunks; ++c) {
    ops.axpy(out, parts + c * m * n, 1.0f, m * n);
  }
}

void MatMulTransBInto(const float* a, const float* b, float* c, size_t m,
                      size_t k, size_t n, Workspace* ws) {
  CountFlops(2 * m * k * n);
  const KernelOps& ops = Ops();
  // Transpose b (n x k) -> bt (k x n): a bit-exact copy that turns the
  // kernel's inner dimension contiguous. Accumulating c[i,j] over ascending
  // p through bt is the identical RN operation sequence the original
  // register dot product performed.
  float* bt = ws->Alloc(k * n);
  for (size_t j = 0; j < n; ++j) {
    const float* brow = b + j * k;
    for (size_t p = 0; p < k; ++p) bt[p * n + j] = brow[p];
  }
  GlobalPool().ParallelFor(0, m, RowGrain(k * n),
                           [&](size_t rb, size_t re) {
                             ops.matmul_tbt_rows(a, bt, c, k, n, rb, re);
                           });
}

void SumRowsInto(const float* x, float* out, size_t rows, size_t cols,
                 Workspace* ws) {
  CountFlops(rows * cols);
  const KernelOps& ops = Ops();
  // Ordered reduction over rows: the bias gradient sums identically for
  // every thread count (single chunk — and old-serial-identical — for the
  // minibatch sizes the DQN uses).
  const size_t grain = RowGrain(cols);
  const size_t chunks = ThreadPool::NumChunksFor(rows, grain);
  if (chunks <= 1) {
    ops.sum_rows_chunk(x, out, cols, 0, rows);
    return;
  }
  float* parts = ws->AllocZero(chunks * cols);
  GlobalPool().ParallelForChunks(0, rows, grain,
                                 [&](size_t c, size_t rb, size_t re) {
                                   ops.sum_rows_chunk(x, parts + c * cols,
                                                      cols, rb, re);
                                 });
  for (size_t c = 0; c < chunks; ++c) ops.axpy(out, parts + c * cols, 1.0f, cols);
}

void SparseLinearForwardInto(const SparseRows& x, const float* w,
                             const float* bias, float* y, size_t n) {
  CountFlops(2 * x.nnz() * n + x.rows() * n);
  const KernelOps& ops = Ops();
  const size_t rows = x.rows();
  // Mirrors the dense forward's grain (row cost k*n with k = state_dim);
  // rows are independent so the split never affects bits.
  GlobalPool().ParallelFor(
      0, rows, RowGrain(x.cols() * n), [&](size_t rb, size_t re) {
        for (size_t r = rb; r < re; ++r) {
          float* yrow = y + r * n;
          std::fill(yrow, yrow + n, 0.0f);
          const int32_t* idx = x.row(r);
          const size_t cnt = x.row_nnz(r);
          // Ascending index order == the dense kernel's zero-skip order;
          // 1.0f * w == w bitwise, so add_row is the exact same update.
          for (size_t t = 0; t < cnt; ++t) {
            ops.add_row(yrow, w + static_cast<size_t>(idx[t]) * n, n);
          }
          ops.add_row(yrow, bias, n);
        }
      });
}

void SparseMatMulTransAAcc(const SparseRows& x, const float* dy, float* dw,
                           size_t n, Workspace* ws) {
  CountFlops(2 * x.nnz() * n);
  const KernelOps& ops = Ops();
  const size_t batch = x.rows();
  const size_t m = x.cols();
  const size_t nnz = x.nnz();
  if (batch == 0 || nnz == 0) return;

  // The dense launch chunks the batch with grain RowGrain(m*n) and merges
  // per-chunk partials in ascending order; replicate those boundaries.
  const size_t grain_k = RowGrain(m * n);

  // Invert the CSR batch: for each touched w-row, the ascending list of
  // contributing batch rows. Counting sort over the touched set — O(m)
  // index scratch, no per-call allocation after warmup.
  int32_t* cnt = ws->AllocI(m);
  std::fill(cnt, cnt + m, 0);
  const int32_t* all = x.row(0);
  for (size_t t = 0; t < nnz; ++t) ++cnt[all[t]];
  int32_t* touched = ws->AllocI(nnz);
  int32_t* pos = ws->AllocI(m);
  size_t num_touched = 0;
  int32_t cum = 0;
  for (size_t i = 0; i < m; ++i) {
    if (cnt[i] == 0) continue;
    touched[num_touched++] = static_cast<int32_t>(i);
    pos[i] = cum;
    cum += cnt[i];
  }
  int32_t* start = ws->AllocI(num_touched + 1);
  {
    size_t t = 0;
    int32_t c = 0;
    for (size_t i = 0; i < m; ++i) {
      if (cnt[i] == 0) continue;
      start[t++] = c;
      c += cnt[i];
    }
    start[num_touched] = c;
  }
  int32_t* plist = ws->AllocI(nnz);
  for (size_t p = 0; p < batch; ++p) {
    const int32_t* idx = x.row(p);
    const size_t rn = x.row_nnz(p);
    for (size_t t = 0; t < rn; ++t) {
      plist[pos[idx[t]]++] = static_cast<int32_t>(p);
    }
  }

  // Touched w-rows are disjoint, so the row split never affects bits; a
  // per-chunk (row_acc, chunk_tmp) pair of scratch rows comes from one
  // slab carved before the parallel region.
  const size_t rgrain = RowGrain(2 * (nnz / num_touched + 1) * n);
  const size_t rchunks = ThreadPool::NumChunksFor(num_touched, rgrain);
  float* slab = ws->Alloc(rchunks * 2 * n);
  GlobalPool().ParallelForChunks(
      0, num_touched, rgrain, [&](size_t c, size_t tb, size_t te) {
        float* row_acc = slab + c * 2 * n;
        float* tmp = row_acc + n;
        for (size_t t = tb; t < te; ++t) {
          const size_t i = static_cast<size_t>(touched[t]);
          // row_acc accumulates the dense launch's merged delta row:
          // per-batch-chunk partial sums (ascending p within a chunk),
          // merged in ascending chunk order. Untouched chunks contribute
          // exact +0.0 rows in the dense merge, so skipping them is
          // bit-identical.
          std::fill(row_acc, row_acc + n, 0.0f);
          size_t cur_chunk = static_cast<size_t>(-1);
          bool tmp_open = false;
          for (int32_t q = start[t]; q < start[t + 1]; ++q) {
            const size_t p = static_cast<size_t>(plist[q]);
            const size_t ck = p / grain_k;
            if (ck != cur_chunk) {
              if (tmp_open) ops.add_row(row_acc, tmp, n);
              std::fill(tmp, tmp + n, 0.0f);
              tmp_open = true;
              cur_chunk = ck;
            }
            // one-hot value 1.0f: 1.0f * dy == dy bitwise.
            ops.add_row(tmp, dy + p * n, n);
          }
          if (tmp_open) ops.add_row(row_acc, tmp, n);
          // dw += 1.0f * delta, restricted to rows where delta is nonzero
          // (elsewhere dw + 0.0f == dw bitwise: gradients never hold -0.0).
          ops.add_row(dw + i * n, row_acc, n);
        }
      });
}

}  // namespace erminer::nn
