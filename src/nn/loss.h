// Loss functions for the TD update.

#ifndef ERMINER_NN_LOSS_H_
#define ERMINER_NN_LOSS_H_

#include <utility>

#include "nn/tensor.h"

namespace erminer {

/// Huber (smooth-L1) value and derivative for residual `diff` = pred - target.
float HuberLoss(float diff, float delta = 1.0f);
float HuberGrad(float diff, float delta = 1.0f);

/// Mean squared error over matching tensors; returns (loss, dL/dpred).
std::pair<float, Tensor> MseLoss(const Tensor& pred, const Tensor& target);

}  // namespace erminer

#endif  // ERMINER_NN_LOSS_H_
