// Regenerates Figure 2: the utility function's shape — linear in
// Certainty (+ Quality), log-squared saturating in Support.

#include "core/measures.h"

#include "bench_util.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  (void)BenchFlags::Parse(argc, argv);
  std::printf("== Figure 2(a): Utility vs Certainty (S = 1000, Q = 0) ==\n");
  TablePrinter a({"certainty", "utility"});
  for (double c = 0.0; c <= 1.0001; c += 0.1) {
    a.AddRow({FormatDouble(c, 1), FormatDouble(UtilityOf(1000, c, 0), 2)});
  }
  a.Print();

  std::printf("\n== Figure 2(b): Utility vs Support (C = 1, Q = 0) ==\n");
  TablePrinter b({"support", "utility", "marginal gain"});
  double prev = 0;
  for (long s : {1L, 2L, 5L, 10L, 50L, 100L, 500L, 1000L, 5000L, 10000L,
                 40000L}) {
    double u = UtilityOf(s, 1.0, 0.0);
    b.AddRow({std::to_string(s), FormatDouble(u, 2),
              FormatDouble(u - prev, 2)});
    prev = u;
  }
  b.Print();

  std::printf("\n== Figure 2 (joint surface): rows = support, cols = C+Q ==\n");
  TablePrinter c({"S \\ C+Q", "0.25", "0.50", "1.00", "1.50", "2.00"});
  for (long s : {10L, 100L, 1000L, 10000L}) {
    std::vector<std::string> row = {std::to_string(s)};
    for (double cq : {0.25, 0.5, 1.0, 1.5, 2.0}) {
      row.push_back(FormatDouble(UtilityOf(s, cq, 0.0), 1));
    }
    c.AddRow(row);
  }
  c.Print();
  return 0;
}
