// Regenerates Table II: statistics on rule length — LHS and pattern counts
// (mean +- std, max/min) of the K rules discovered by CTANE, EnuMiner and
// RLMiner on each dataset, aggregated over repeated trials.

#include "bench_util.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t trials = flags.TrialsOr(2);
  std::printf("== Table II: statistics on rule length (%s scale, %zu "
              "trials) ==\n",
              flags.full ? "paper" : "bench", trials);

  TablePrinter table({"Dataset", "Method", "# LHS (mean+-std)",
                      "# LHS (max/min)", "# Pattern (mean+-std)",
                      "# Pattern (max/min)"});
  const Method methods[] = {Method::kCtane, Method::kEnuMiner,
                            Method::kRlMiner};
  for (const std::string& name : DatasetNames()) {
    const DatasetSpec& spec = SpecByName(name);
    for (Method m : methods) {
      std::vector<double> lhs_mean, lhs_std, pat_mean, pat_std;
      size_t lhs_max = 0, pat_max = 0;
      size_t lhs_min = SIZE_MAX, pat_min = SIZE_MAX;
      for (size_t t = 0; t < trials; ++t) {
        BenchSetup s = MakeSetup(spec, flags, t);
        TrialResult r = RunTrial(s.ds, m, s.options, s.rl).ValueOrDie();
        if (r.mine.rules.empty()) continue;
        lhs_mean.push_back(r.lengths.lhs_mean);
        lhs_std.push_back(r.lengths.lhs_std);
        pat_mean.push_back(r.lengths.pattern_mean);
        pat_std.push_back(r.lengths.pattern_std);
        lhs_max = std::max(lhs_max, r.lengths.lhs_max);
        lhs_min = std::min(lhs_min, r.lengths.lhs_min);
        pat_max = std::max(pat_max, r.lengths.pattern_max);
        pat_min = std::min(pat_min, r.lengths.pattern_min);
      }
      if (lhs_mean.empty()) {
        table.AddRow({name, MethodName(m), "-", "-", "-", "-"});
        continue;
      }
      table.AddRow(
          {name, MethodName(m),
           FormatDouble(Aggregate_(lhs_mean).mean, 2) + " +- " +
               FormatDouble(Aggregate_(lhs_std).mean, 2),
           std::to_string(lhs_max) + " / " + std::to_string(lhs_min),
           FormatDouble(Aggregate_(pat_mean).mean, 2) + " +- " +
               FormatDouble(Aggregate_(pat_std).mean, 2),
           std::to_string(pat_max) + " / " + std::to_string(pat_min)});
    }
  }
  table.Print();
  return 0;
}
