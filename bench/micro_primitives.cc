// google-benchmark micro-benchmarks for the primitives every miner is built
// on: master index construction, eval-column probing, rule evaluation, mask
// computation, cover refinement, and the value network's forward/backward.

#include <benchmark/benchmark.h>

#include "core/action_space.h"
#include "core/environment.h"
#include "core/mask.h"
#include "core/measures.h"
#include "datagen/generators.h"
#include "eval/experiment.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "rl/dqn.h"

namespace erminer {
namespace {

const Corpus& BenchCorpus() {
  static const Corpus* corpus = [] {
    GenOptions g;
    g.input_size = 2000;
    g.master_size = 800;
    g.seed = 99;
    auto ds = MakeAdult(g).ValueOrDie();
    return new Corpus(BuildCorpus(ds).ValueOrDie());
  }();
  return *corpus;
}

const ActionSpace& BenchSpace() {
  static const ActionSpace* space = [] {
    ActionSpaceOptions o;
    o.support_threshold = 20;
    return new ActionSpace(ActionSpace::Build(BenchCorpus(), {o}));
  }();
  return *space;
}

void BM_GroupIndexBuild(benchmark::State& state) {
  const Corpus& c = BenchCorpus();
  std::vector<int> xm;
  for (long i = 0; i < state.range(0); ++i) xm.push_back(static_cast<int>(i));
  for (auto _ : state) {
    GroupIndex idx = GroupIndex::Build(c.master(), xm, c.y_master());
    benchmark::DoNotOptimize(idx.num_groups());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.master().num_rows()));
}
BENCHMARK(BM_GroupIndexBuild)->Arg(1)->Arg(2)->Arg(4);

void BM_EvalColumnBuild(benchmark::State& state) {
  const Corpus& c = BenchCorpus();
  for (auto _ : state) {
    EvalCache cache(&c, 2);
    auto entry = cache.Get({{1, 0}, {2, 1}});
    benchmark::DoNotOptimize(entry.column->group.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.input().num_rows()));
}
BENCHMARK(BM_EvalColumnBuild);

void BM_RuleEvaluate(benchmark::State& state) {
  const Corpus& c = BenchCorpus();
  RuleEvaluator ev(&c);
  EditingRule rule;
  rule.y_input = c.y_input();
  rule.y_master = c.y_master();
  rule.AddLhs(1, 0);  // workclass
  rule.AddLhs(2, 1);  // education
  Cover cover = FullCover(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.Evaluate(rule, cover).support);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.input().num_rows()));
}
BENCHMARK(BM_RuleEvaluate);

void BM_CoverRefine(benchmark::State& state) {
  const Corpus& c = BenchCorpus();
  const ActionSpace& space = BenchSpace();
  Cover full = FullCover(c);
  const PatternItem& item = space.pattern_item(space.stop_action() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RefineCover(c, full, item)->size());
  }
}
BENCHMARK(BM_CoverRefine);

void BM_MaskCompute(benchmark::State& state) {
  const ActionSpace& space = BenchSpace();
  RuleKeySet discovered;
  RuleKey key = {0};
  for (int32_t i = 0; i < 50 && i < space.stop_action(); i += 3) {
    discovered.insert(KeyWith(key, i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMask(space, key, discovered).size());
  }
}
BENCHMARK(BM_MaskCompute);

void BM_MlpForward(benchmark::State& state) {
  Rng rng(1);
  const size_t dim = static_cast<size_t>(state.range(0));
  Mlp mlp({dim, 128, 128, dim + 1}, &rng);
  Tensor x(64, dim, 0.0f);
  for (size_t i = 0; i < 64; ++i) x.at(i, i % dim) = 1.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Forward(x).size());
  }
}
BENCHMARK(BM_MlpForward)->Arg(64)->Arg(256);

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(1);
  const size_t dim = static_cast<size_t>(state.range(0));
  Mlp mlp({dim, 128, 128, dim + 1}, &rng);
  Adam opt(1e-3f);
  Tensor x(64, dim, 0.0f);
  for (size_t i = 0; i < 64; ++i) x.at(i, i % dim) = 1.0f;
  for (auto _ : state) {
    Tensor out = mlp.Forward(x);
    mlp.ZeroGrad();
    mlp.Backward(out);
    opt.Step(mlp.Parameters(), mlp.Gradients());
  }
}
BENCHMARK(BM_MlpForwardBackward)->Arg(64)->Arg(256);

void BM_EnvStep(benchmark::State& state) {
  const Corpus& c = BenchCorpus();
  const ActionSpace& space = BenchSpace();
  RuleEvaluator ev(&c);
  EnvOptions opts;
  opts.support_threshold = 20;
  opts.k = 1000000;  // never terminate on leaves
  Environment env(&c, &space, &ev, opts);
  Rng rng(3);
  env.Reset();
  for (auto _ : state) {
    if (env.done()) env.Reset();
    auto mask = env.CurrentMask();
    std::vector<int32_t> allowed;
    for (int32_t a = 0; a < space.stop_action(); ++a) {
      if (mask[static_cast<size_t>(a)]) allowed.push_back(a);
    }
    int32_t action = allowed.empty()
                         ? space.stop_action()
                         : allowed[rng.NextUint64(allowed.size())];
    benchmark::DoNotOptimize(env.Step(action).reward);
  }
}
BENCHMARK(BM_EnvStep);

}  // namespace
}  // namespace erminer

BENCHMARK_MAIN();
