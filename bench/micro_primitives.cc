// google-benchmark micro-benchmarks for the primitives every miner is built
// on: master index construction, eval-column probing, rule evaluation, mask
// computation, cover refinement, and the value network's forward/backward.
//
// The NN benches below are registered in pairs along two axes that are
// bit-identical by construction (docs/perf.md, "NN kernels"):
//   - scalar vs SIMD: the `simd` arg pins the kernel dispatch level
//     (0=off, 1=sse2, 2=avx2); unsupported levels are skipped, not silently
//     downgraded, so a sweep never mislabels its timings.
//   - dense vs sparse: the `sparse` arg (or the *Sparse twin bench) feeds
//     the same one-hot batch as index lists instead of densified rows.
// The headline pair is BM_DqnTrainStep: {sparse=0,simd=off} is the old
// Densify + scalar-kernel train step, {sparse=1,simd=highest} is the new
// default path.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "core/action_space.h"
#include "core/environment.h"
#include "core/mask.h"
#include "core/measures.h"
#include "datagen/generators.h"
#include "eval/experiment.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/simd.h"
#include "nn/sparse.h"
#include "obs/metrics.h"
#include "rl/dqn.h"
#include "rl/replay_buffer.h"
#include "util/timer.h"

namespace erminer {
namespace {

const Corpus& BenchCorpus() {
  static const Corpus* corpus = [] {
    GenOptions g;
    g.input_size = 2000;
    g.master_size = 800;
    g.seed = 99;
    auto ds = MakeAdult(g).ValueOrDie();
    return new Corpus(BuildCorpus(ds).ValueOrDie());
  }();
  return *corpus;
}

const ActionSpace& BenchSpace() {
  static const ActionSpace* space = [] {
    ActionSpaceOptions o;
    o.support_threshold = 20;
    return new ActionSpace(ActionSpace::Build(BenchCorpus(), {o}));
  }();
  return *space;
}

void BM_GroupIndexBuild(benchmark::State& state) {
  const Corpus& c = BenchCorpus();
  std::vector<int> xm;
  for (long i = 0; i < state.range(0); ++i) xm.push_back(static_cast<int>(i));
  for (auto _ : state) {
    GroupIndex idx = GroupIndex::Build(c.master(), xm, c.y_master());
    benchmark::DoNotOptimize(idx.num_groups());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.master().num_rows()));
}
BENCHMARK(BM_GroupIndexBuild)->Arg(1)->Arg(2)->Arg(4);

/// A paper-scale master for the refinement pair below: the refinement
/// engine targets the per-row cost of repeated index builds, so measuring
/// it on the 800-row micro corpus would time group bookkeeping instead.
const Corpus& RefineBenchCorpus() {
  static const Corpus* corpus = [] {
    GenOptions g;
    g.input_size = 2000;
    g.master_size = 10000;
    g.seed = 99;
    auto ds = MakeAdult(g).ValueOrDie();
    return new Corpus(BuildCorpus(ds).ValueOrDie());
  }();
  return *corpus;
}

/// The first `depth` master columns, skipping the Y column, so scratch and
/// refined builds below group on exactly the same key.
std::vector<int> ChainCols(const Corpus& c, long depth) {
  std::vector<int> cols;
  for (int m = 0; cols.size() < static_cast<size_t>(depth); ++m) {
    if (m != c.y_master()) cols.push_back(m);
  }
  return cols;
}

/// Baseline for the refinement pair below: a depth-D index built from the
/// full master table.
void BM_GroupIndexScratchDepth(benchmark::State& state) {
  const Corpus& c = RefineBenchCorpus();
  const std::vector<int> xm = ChainCols(c, state.range(0));
  for (auto _ : state) {
    GroupIndex idx = GroupIndex::Build(c.master(), xm, c.y_master());
    benchmark::DoNotOptimize(idx.num_groups());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.master().num_rows()));
}
BENCHMARK(BM_GroupIndexScratchDepth)->Arg(2)->Arg(3)->Arg(4);

/// The same depth-D index derived from its depth-(D-1) parent by partition
/// refinement (docs/perf.md). The parent is built once outside the timed
/// loop — exactly the state a miner has when it extends a cached LHS.
/// Reported counters are obs registry deltas across the timed region.
void BM_GroupIndexRefineDepth(benchmark::State& state) {
  const Corpus& c = RefineBenchCorpus();
  const std::vector<int> xm = ChainCols(c, state.range(0));
  const std::vector<int> parent_cols(xm.begin(), xm.end() - 1);
  const GroupIndex parent =
      GroupIndex::Build(c.master(), parent_cols, c.y_master());
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    GroupIndex idx =
        GroupIndex::BuildRefined(c.master(), parent, xm, c.y_master());
    benchmark::DoNotOptimize(idx.num_groups());
  }
  obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  state.counters["refines"] =
      static_cast<double>(delta.counters["group_index/refines"]);
  state.counters["groups_built"] =
      static_cast<double>(delta.counters["group_index/groups_built"]);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.master().num_rows()));
}
BENCHMARK(BM_GroupIndexRefineDepth)->Arg(2)->Arg(3)->Arg(4);

void BM_EvalColumnBuild(benchmark::State& state) {
  const Corpus& c = BenchCorpus();
  for (auto _ : state) {
    EvalCache cache(&c, 2);
    auto entry = cache.Get({{1, 0}, {2, 1}});
    benchmark::DoNotOptimize(entry.column->group.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.input().num_rows()));
}
BENCHMARK(BM_EvalColumnBuild);

/// The same cache miss served through the parent-hint refinement path:
/// each iteration warms the parent entry untimed, then times the child
/// Get() that derives its index and EvalColumn from it.
void BM_EvalColumnRefine(benchmark::State& state) {
  const Corpus& c = BenchCorpus();
  const LhsPairs parent = {{1, 0}};
  const LhsPairs child = {{1, 0}, {2, 1}};
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  for (auto _ : state) {
    state.PauseTiming();
    EvalCache cache(&c, 2);
    cache.Get(parent);
    state.ResumeTiming();
    auto entry = cache.Get(child, &parent);
    benchmark::DoNotOptimize(entry.column->group.size());
  }
  obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  state.counters["refined"] =
      static_cast<double>(delta.counters["eval_cache/refined"]);
  state.counters["scratch"] =
      static_cast<double>(delta.counters["eval_cache/scratch"]);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.input().num_rows()));
}
BENCHMARK(BM_EvalColumnRefine);

/// A nursery corpus for the eval batching pair below: 8 matched attribute
/// pairs, enough distinct LHS keys for the width-64 sibling group (adult
/// tops out at 6 pairs).
const Corpus& WideLhsBenchCorpus() {
  static const Corpus* corpus = [] {
    GenOptions g;
    g.input_size = 2000;
    g.master_size = 800;
    g.seed = 99;
    auto ds = MakeNursery(g).ValueOrDie();
    return new Corpus(BuildCorpus(ds).ValueOrDie());
  }();
  return *corpus;
}

/// `n` distinct LHS keys over the corpus's matched attribute pairs —
/// subsets of increasing depth, the sibling-group shape the search engine
/// hands EvalCache::GetBatch. Pairs stay sorted, as Get/GetBatch require.
std::vector<LhsPairs> SiblingLhsKeys(const Corpus& c, size_t n) {
  LhsPairs pairs;
  for (size_t a = 0; a < c.input().num_cols(); ++a) {
    if (static_cast<int>(a) == c.y_input()) continue;
    for (int m : c.match().Matches(static_cast<int>(a))) {
      if (m == c.y_master()) continue;
      pairs.emplace_back(static_cast<int>(a), m);
    }
  }
  std::vector<LhsPairs> keys;
  for (size_t depth = 1; depth <= pairs.size() && keys.size() < n; ++depth) {
    std::vector<bool> sel(pairs.size(), false);
    std::fill(sel.begin(), sel.begin() + static_cast<long>(depth), true);
    do {
      LhsPairs lhs;
      for (size_t i = 0; i < pairs.size(); ++i) {
        if (sel[i]) lhs.push_back(pairs[i]);
      }
      keys.push_back(std::move(lhs));
    } while (keys.size() < n &&
             std::prev_permutation(sel.begin(), sel.end()));
  }
  return keys;
}

/// One BENCH_JSON record per run so scripts/bench_compare.py can gate the
/// per-call/batched pair across builds (it reads `_ns` timing keys).
void EmitEvalPairJson(const char* mode, size_t width, double per_key_ns) {
  std::printf(
      "BENCH_JSON {\"bench\":\"micro_eval\",\"mode\":\"%s\","
      "\"width\":%zu,\"per_key_ns\":%.1f}\n",
      mode, width, per_key_ns);
}

/// Baseline half of the batching pair (docs/perf.md): `width` sibling
/// cache misses served one Get() at a time — a lock/probe round-trip and a
/// pool submission per sibling, the engine's pre-batching inner loop.
void BM_EvalGetPerCall(benchmark::State& state) {
  const Corpus& c = WideLhsBenchCorpus();
  const size_t width = static_cast<size_t>(state.range(0));
  const std::vector<LhsPairs> keys = SiblingLhsKeys(c, width);
  if (keys.size() < width) {
    state.SkipWithError("corpus has too few matched pairs for this width");
    return;
  }
  Timer timer;
  for (auto _ : state) {
    EvalCache cache(&c, 2 * width);
    for (const LhsPairs& lhs : keys) {
      benchmark::DoNotOptimize(cache.Get(lhs).column->group.size());
    }
  }
  const double secs = timer.Seconds();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(width));
  EmitEvalPairJson("per_call", width,
                   secs / static_cast<double>(state.iterations()) /
                       static_cast<double>(width) * 1e9);
}
BENCHMARK(BM_EvalGetPerCall)->ArgName("width")->Arg(4)->Arg(16)->Arg(64);

/// Batched half: the same `width` misses resolved by one GetBatch — one
/// lock pass and one pool submission for the whole sibling group. Entries
/// are bit-identical to the per-call path (tests/search_engine_test.cc).
void BM_EvalBatch(benchmark::State& state) {
  const Corpus& c = WideLhsBenchCorpus();
  const size_t width = static_cast<size_t>(state.range(0));
  const std::vector<LhsPairs> keys = SiblingLhsKeys(c, width);
  if (keys.size() < width) {
    state.SkipWithError("corpus has too few matched pairs for this width");
    return;
  }
  std::vector<const LhsPairs*> key_ptrs;
  for (const LhsPairs& lhs : keys) key_ptrs.push_back(&lhs);
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  Timer timer;
  for (auto _ : state) {
    EvalCache cache(&c, 2 * width);
    std::vector<EvalCache::Entry> entries =
        cache.GetBatch(nullptr, key_ptrs);
    benchmark::DoNotOptimize(entries.front().column->group.size());
  }
  const double secs = timer.Seconds();
  obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  state.counters["batched"] =
      static_cast<double>(delta.counters["eval_cache/batched"]);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(width));
  EmitEvalPairJson("batched", width,
                   secs / static_cast<double>(state.iterations()) /
                       static_cast<double>(width) * 1e9);
}
BENCHMARK(BM_EvalBatch)->ArgName("width")->Arg(4)->Arg(16)->Arg(64);

void BM_RuleEvaluate(benchmark::State& state) {
  const Corpus& c = BenchCorpus();
  RuleEvaluator ev(&c);
  EditingRule rule;
  rule.y_input = c.y_input();
  rule.y_master = c.y_master();
  rule.AddLhs(1, 0);  // workclass
  rule.AddLhs(2, 1);  // education
  Cover cover = FullCover(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ev.Evaluate(rule, cover).support);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.input().num_rows()));
}
BENCHMARK(BM_RuleEvaluate);

void BM_CoverRefine(benchmark::State& state) {
  const Corpus& c = BenchCorpus();
  const ActionSpace& space = BenchSpace();
  Cover full = FullCover(c);
  const PatternItem& item = space.pattern_item(space.stop_action() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RefineCover(c, full, item)->size());
  }
}
BENCHMARK(BM_CoverRefine);

void BM_MaskCompute(benchmark::State& state) {
  const ActionSpace& space = BenchSpace();
  RuleKeySet discovered;
  RuleKey key = {0};
  for (int32_t i = 0; i < 50 && i < space.stop_action(); i += 3) {
    discovered.insert(KeyWith(key, i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMask(space, key, discovered).size());
  }
}
BENCHMARK(BM_MaskCompute);

/// Pins the kernel dispatch level named by a bench arg for the duration of
/// one benchmark run, restoring the previous level afterwards so later
/// benches (and the per-bench default) are unaffected. Skips — rather than
/// downgrades — when the CPU lacks the level, so a sweep's `simd` labels
/// are always truthful.
struct SimdArgScope {
  nn::SimdLevel prev;
  bool ok = false;
  SimdArgScope(benchmark::State& state, long level_arg)
      : prev(nn::ActiveSimdLevel()) {
    const auto level = static_cast<nn::SimdLevel>(level_arg);
    if (!nn::SimdLevelSupported(level)) {
      state.SkipWithError("SIMD level not supported by this CPU");
      return;
    }
    nn::SetSimdLevel(level);
    ok = true;
  }
  ~SimdArgScope() { nn::SetSimdLevel(prev); }
};

/// One-hot batch shared by the dense/sparse Mlp pairs below: row i lights
/// column i % dim, exactly what the pre-sparse bench fed Forward().
Tensor OneHotDense(size_t batch, size_t dim) {
  Tensor x(batch, dim, 0.0f);
  for (size_t i = 0; i < batch; ++i) x.at(i, i % dim) = 1.0f;
  return x;
}

nn::SparseRows OneHotSparse(size_t batch, size_t dim) {
  nn::SparseRows x;
  x.Clear(dim);
  for (size_t i = 0; i < batch; ++i) {
    const int32_t idx = static_cast<int32_t>(i % dim);
    x.AddRow(&idx, 1);
  }
  return x;
}

void BM_MlpForward(benchmark::State& state) {
  SimdArgScope simd(state, state.range(1));
  if (!simd.ok) return;
  Rng rng(1);
  const size_t dim = static_cast<size_t>(state.range(0));
  Mlp mlp({dim, 128, 128, dim + 1}, &rng);
  Tensor x = OneHotDense(64, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Forward(x).size());
  }
}
BENCHMARK(BM_MlpForward)
    ->ArgNames({"dim", "simd"})
    ->Args({64, 0})->Args({64, 1})->Args({64, 2})
    ->Args({256, 0})->Args({256, 1})->Args({256, 2});

/// Same batch as BM_MlpForward fed as index lists; the outputs are
/// bit-identical (tests/nn_kernel_differential_test.cc), only the first
/// layer's input scan disappears.
void BM_MlpForwardSparse(benchmark::State& state) {
  SimdArgScope simd(state, state.range(1));
  if (!simd.ok) return;
  Rng rng(1);
  const size_t dim = static_cast<size_t>(state.range(0));
  Mlp mlp({dim, 128, 128, dim + 1}, &rng);
  nn::SparseRows x = OneHotSparse(64, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.ForwardSparse(x).size());
  }
}
BENCHMARK(BM_MlpForwardSparse)
    ->ArgNames({"dim", "simd"})
    ->Args({64, 0})->Args({64, 1})->Args({64, 2})
    ->Args({256, 0})->Args({256, 1})->Args({256, 2});

void BM_MlpForwardBackward(benchmark::State& state) {
  SimdArgScope simd(state, state.range(1));
  if (!simd.ok) return;
  Rng rng(1);
  const size_t dim = static_cast<size_t>(state.range(0));
  Mlp mlp({dim, 128, 128, dim + 1}, &rng);
  Adam opt(1e-3f);
  Tensor x = OneHotDense(64, dim);
  for (auto _ : state) {
    Tensor out = mlp.Forward(x);
    mlp.ZeroGrad();
    mlp.Backward(out);
    opt.Step(mlp.Parameters(), mlp.Gradients());
  }
}
BENCHMARK(BM_MlpForwardBackward)
    ->ArgNames({"dim", "simd"})
    ->Args({64, 0})->Args({64, 1})->Args({64, 2})
    ->Args({256, 0})->Args({256, 1})->Args({256, 2});

void BM_MlpForwardBackwardSparse(benchmark::State& state) {
  SimdArgScope simd(state, state.range(1));
  if (!simd.ok) return;
  Rng rng(1);
  const size_t dim = static_cast<size_t>(state.range(0));
  Mlp mlp({dim, 128, 128, dim + 1}, &rng);
  Adam opt(1e-3f);
  nn::SparseRows x = OneHotSparse(64, dim);
  for (auto _ : state) {
    Tensor out = mlp.ForwardSparse(x);
    mlp.ZeroGrad();
    mlp.Backward(out);
    opt.Step(mlp.Parameters(), mlp.Gradients());
  }
}
BENCHMARK(BM_MlpForwardBackwardSparse)
    ->ArgNames({"dim", "simd"})
    ->Args({64, 0})->Args({64, 1})->Args({64, 2})
    ->Args({256, 0})->Args({256, 1})->Args({256, 2});

/// The whole DQN update — state encoding, three forwards, backward, Adam —
/// across the two overhaul axes. {sparse=0, simd=0} reproduces the
/// pre-overhaul train step (Densify + scalar kernels); {sparse=1,
/// simd=highest} is the shipped default. Rule keys average ~3 active
/// indices out of state_dim, the regime the miner actually trains in.
void BM_DqnTrainStep(benchmark::State& state) {
  SimdArgScope simd(state, state.range(1));
  if (!simd.ok) return;
  const size_t state_dim = 512;
  const size_t num_actions = state_dim + 1;
  DqnOptions o;
  o.sparse_state = state.range(0) != 0;
  o.batch_size = 64;
  o.min_replay = 64;
  o.target_sync_every = 50;
  o.seed = 11;
  DqnAgent agent(state_dim, num_actions, o);
  Rng rng(5);
  for (int t = 0; t < 256; ++t) {
    Transition tr;
    for (int32_t i = 0; i < static_cast<int32_t>(state_dim); ++i) {
      if (rng.NextUint64(state_dim) < 3) tr.state.push_back(i);
    }
    tr.next_state = tr.state;
    tr.action = static_cast<int32_t>(rng.NextUint64(num_actions));
    if (tr.action < static_cast<int32_t>(state_dim) &&
        (tr.next_state.empty() || tr.next_state.back() < tr.action)) {
      tr.next_state.push_back(tr.action);
    }
    tr.reward = static_cast<float>(rng.NextUint64(100)) * 0.01f;
    tr.next_mask.assign(num_actions, 1);
    tr.done = (t % 9 == 0);
    agent.Observe(std::move(tr));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.TrainStep());
  }
}
BENCHMARK(BM_DqnTrainStep)
    ->ArgNames({"sparse", "simd"})
    ->Args({0, 0})                      // pre-overhaul baseline
    ->Args({1, 0})                      // sparse encoding alone
    ->Args({0, 2})                      // SIMD alone (avx2)
    ->Args({1, 1})                      // sparse + sse2
    ->Args({1, 2});                     // shipped default (avx2)

void BM_EnvStep(benchmark::State& state) {
  const Corpus& c = BenchCorpus();
  const ActionSpace& space = BenchSpace();
  RuleEvaluator ev(&c);
  EnvOptions opts;
  opts.support_threshold = 20;
  opts.k = 1000000;  // never terminate on leaves
  Environment env(&c, &space, &ev, opts);
  Rng rng(3);
  env.Reset();
  for (auto _ : state) {
    if (env.done()) env.Reset();
    auto mask = env.CurrentMask();
    std::vector<int32_t> allowed;
    for (int32_t a = 0; a < space.stop_action(); ++a) {
      if (mask[static_cast<size_t>(a)]) allowed.push_back(a);
    }
    int32_t action = allowed.empty()
                         ? space.stop_action()
                         : allowed[rng.NextUint64(allowed.size())];
    benchmark::DoNotOptimize(env.Step(action).reward);
  }
}
BENCHMARK(BM_EnvStep);

}  // namespace
}  // namespace erminer

BENCHMARK_MAIN();
