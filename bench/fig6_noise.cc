// Regenerates Figure 6: F-measure and time cost of EnuMiner vs RLMiner on
// Adult while varying the injected noise rate (including noise 0, the
// paper's "no additional errors" data point).

#include "bench_util.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t trials = flags.TrialsOr(1);
  const DatasetSpec& spec = SpecByName("Adult");
  std::printf("== Figure 6: varying noise rate over Adult (%s scale, %zu "
              "trials) ==\n",
              flags.full ? "paper" : "bench", trials);

  TablePrinter table({"noise", "method", "Precision", "Recall", "F1",
                      "time (s)"});
  for (double noise : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    for (Method m : {Method::kEnuMiner, Method::kRlMiner}) {
      std::vector<double> p, r, f, secs;
      for (size_t t = 0; t < trials; ++t) {
        GenOptions gen;
        gen.noise_rate = noise;
        BenchSetup s = MakeSetup(spec, flags, t, gen);
        TrialResult tr = RunTrial(s.ds, m, s.options, s.rl).ValueOrDie();
        p.push_back(tr.repair.precision);
        r.push_back(tr.repair.recall);
        f.push_back(tr.repair.f1);
        secs.push_back(tr.mine.seconds);
      }
      table.AddRow({FormatDouble(noise, 2), MethodName(m),
                    MeanStd(Aggregate_(p)), MeanStd(Aggregate_(r)),
                    MeanStd(Aggregate_(f)),
                    FormatDouble(Aggregate_(secs).mean, 2)});
    }
  }
  table.Print();
  return 0;
}
