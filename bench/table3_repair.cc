// Regenerates Table III: repair precision / recall / F1 of CTANE, EnuMiner
// and RLMiner over the four datasets (weighted multi-class scores against
// ground truth, mean +- std over trials).

#include "bench_util.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t trials = flags.TrialsOr(2);
  std::printf("== Table III: repair results (%s scale, %zu trials) ==\n",
              flags.full ? "paper" : "bench", trials);

  TablePrinter table({"Dataset", "Method", "Precision", "Recall", "F1",
                      "mining time (s)"});
  const Method methods[] = {Method::kCtane, Method::kEnuMiner,
                            Method::kRlMiner};
  for (const std::string& name : DatasetNames()) {
    const DatasetSpec& spec = SpecByName(name);
    for (Method m : methods) {
      std::vector<double> p, r, f, secs;
      for (size_t t = 0; t < trials; ++t) {
        BenchSetup s = MakeSetup(spec, flags, t);
        TrialResult tr = RunTrial(s.ds, m, s.options, s.rl).ValueOrDie();
        p.push_back(tr.repair.precision);
        r.push_back(tr.repair.recall);
        f.push_back(tr.repair.f1);
        secs.push_back(tr.mine.seconds);
      }
      table.AddRow({name, MethodName(m), MeanStd(Aggregate_(p)),
                    MeanStd(Aggregate_(r)), MeanStd(Aggregate_(f)),
                    FormatDouble(Aggregate_(secs).mean, 2)});
    }
  }
  table.Print();
  return 0;
}
