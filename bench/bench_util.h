// Shared driver utilities for the per-table / per-figure bench binaries.
//
// Every binary runs at a scaled-down default so the whole suite finishes in
// minutes on one core, and accepts:
//   --full        paper-scale dataset sizes and training budgets
//   --no-refine   build every LHS index from scratch (disables the
//                 partition-refinement engine, docs/perf.md) — results are
//                 bit-identical either way; only the timings move
//   --trials=N    repetitions (mean +- std is reported)
//   --seed=N      base RNG seed
//   --threads=N   worker threads (0 = hardware concurrency, default 1);
//                 results are bit-identical for every N (docs/parallelism.md)
//   --metrics-json=FILE   dump the metrics registry on exit
//   --trace-json=FILE     record spans; write Chrome trace JSON on exit
//   --telemetry-port=P    live /metrics endpoint while the bench runs
//                         (P=0 picks a free port; printed to stderr)
//   --metrics-stream=FILE periodic JSONL counter-delta samples
//                         (interval: --sample-interval-ms, default 1000)
//   --log-json[=FILE]     structured JSON log records (default stderr)
//   --profile-out=FILE[:hz]  sampling CPU profiler (default 99 Hz);
//                         collapsed stacks written on exit
//   --decision-log=FILE   decision-provenance event log (expansions, prunes,
//                         emissions, RL steps, repairs) — replay with
//                         `erminer explain` / tools/decision_stats
//   --watchdog-sec=N      stall watchdog; artifacts land in the cwd
// Export files are flushed on SIGINT/SIGTERM too (obs/flush.h), so an
// interrupted sweep still leaves its artifacts.
// Support thresholds are scaled proportionally to the input size so the
// scaled runs exercise the same pruning regime as the paper's.

#ifndef ERMINER_BENCH_BENCH_UTIL_H_
#define ERMINER_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datagen/generators.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "nn/simd.h"
#include "obs/decision_log.h"
#include "obs/flush.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace erminer::bench {

/// Export paths registered by BenchFlags::Parse and flushed through
/// obs::FlushAll (atexit + SIGINT/SIGTERM, see obs/flush.h), so every bench
/// binary gets --metrics-json / --trace-json without per-binary shutdown
/// plumbing and an interrupted sweep still writes its files.
inline std::string& MetricsJsonPath() {
  static std::string* path = new std::string();
  return *path;
}
inline std::string& TraceJsonPath() {
  static std::string* path = new std::string();
  return *path;
}
inline std::string& ProfileOutPath() {
  static std::string* path = new std::string();
  return *path;
}

/// Process-wide sampler for --metrics-stream (leaked: benches exit via
/// main's return or a signal, and the stream is flushed per sample anyway).
inline obs::Sampler*& BenchSampler() {
  static obs::Sampler* sampler = nullptr;
  return sampler;
}

inline void ExportObsFiles() {
  if (!MetricsJsonPath().empty() &&
      !obs::MetricsRegistry::Global().WriteJsonFile(MetricsJsonPath())) {
    std::fprintf(stderr, "failed to write %s\n", MetricsJsonPath().c_str());
  }
  if (!TraceJsonPath().empty() &&
      !obs::TraceRecorder::Global().WriteJsonFile(TraceJsonPath())) {
    std::fprintf(stderr, "failed to write %s\n", TraceJsonPath().c_str());
  }
  if (!ProfileOutPath().empty()) {
    obs::Profiler::Global().Stop();  // idempotent; final drain first
    if (!obs::Profiler::Global().WriteCollapsedFile(ProfileOutPath())) {
      std::fprintf(stderr, "failed to write %s\n", ProfileOutPath().c_str());
    }
  }
}

struct BenchFlags {
  bool full = false;
  bool no_refine = false;  // build every LHS index from scratch
  bool no_batch_eval = false;  // per-child EvalCache::Get instead of GetBatch
  size_t trials = 0;       // 0 = per-bench default
  uint64_t seed = 7;
  long threads = 1;
  long telemetry_port = -1;  // -1 = no server
  long sample_interval_ms = 1000;
  std::string metrics_stream;
  int profile_hz = 99;
  std::string decision_log;  // decision-provenance event log path
  double watchdog_sec = 0;  // <= 0: watchdog off
  // Crash-safe RL training snapshots (docs/checkpointing.md); applied to
  // the RL options of every trial by MakeSetup.
  std::string checkpoint_dir;
  long checkpoint_every = 1;
  long checkpoint_keep = 3;
  std::string resume;  // "", "latest" or a snapshot path

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--full") == 0) {
        f.full = true;
      } else if (std::strcmp(a, "--no-refine") == 0) {
        f.no_refine = true;
      } else if (std::strcmp(a, "--no-batch-eval") == 0) {
        f.no_batch_eval = true;
      } else if (std::strncmp(a, "--trials=", 9) == 0) {
        f.trials = static_cast<size_t>(std::atoll(a + 9));
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        f.seed = static_cast<uint64_t>(std::atoll(a + 7));
      } else if (std::strncmp(a, "--threads=", 10) == 0) {
        f.threads = std::atol(a + 10);
      } else if (std::strncmp(a, "--metrics-json=", 15) == 0) {
        MetricsJsonPath() = a + 15;
      } else if (std::strncmp(a, "--trace-json=", 13) == 0) {
        TraceJsonPath() = a + 13;
      } else if (std::strncmp(a, "--telemetry-port=", 17) == 0) {
        f.telemetry_port = std::atol(a + 17);
      } else if (std::strncmp(a, "--sample-interval-ms=", 21) == 0) {
        f.sample_interval_ms = std::atol(a + 21);
      } else if (std::strncmp(a, "--metrics-stream=", 17) == 0) {
        f.metrics_stream = a + 17;
      } else if (std::strncmp(a, "--profile-out=", 14) == 0) {
        ProfileOutPath() = obs::ParseProfileOutSpec(a + 14, &f.profile_hz);
      } else if (std::strncmp(a, "--decision-log=", 15) == 0) {
        f.decision_log = a + 15;
      } else if (std::strncmp(a, "--watchdog-sec=", 15) == 0) {
        f.watchdog_sec = std::atof(a + 15);
      } else if (std::strncmp(a, "--checkpoint-dir=", 17) == 0) {
        f.checkpoint_dir = a + 17;
      } else if (std::strncmp(a, "--checkpoint-every=", 19) == 0) {
        f.checkpoint_every = std::atol(a + 19);
      } else if (std::strncmp(a, "--checkpoint-keep=", 18) == 0) {
        f.checkpoint_keep = std::atol(a + 18);
      } else if (std::strcmp(a, "--resume") == 0) {
        f.resume = "latest";
      } else if (std::strncmp(a, "--resume=", 9) == 0) {
        f.resume = a + 9;
        if (f.resume == "true") f.resume = "latest";
      } else if (std::strcmp(a, "--log-json") == 0) {
        EnableJsonLogSink();
      } else if (std::strncmp(a, "--log-json=", 11) == 0) {
        if (!EnableJsonLogSink(a + 11)) {
          std::fprintf(stderr, "cannot open --log-json file %s\n", a + 11);
          std::exit(2);
        }
      } else if (std::strcmp(a, "--help") == 0) {
        std::printf("flags: --full --no-refine --no-batch-eval --trials=N --seed=N "
                    "--threads=N --metrics-json=FILE --trace-json=FILE "
                    "--telemetry-port=P --metrics-stream=FILE "
                    "--sample-interval-ms=N --log-json[=FILE] "
                    "--profile-out=FILE[:hz] --decision-log=FILE "
                    "--watchdog-sec=N "
                    "--checkpoint-dir=DIR --checkpoint-every=N "
                    "--checkpoint-keep=N --resume[=latest|PATH]\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag %s (see --help)\n", a);
        std::exit(2);
      }
    }
    SetGlobalThreads(f.threads);
    if (!TraceJsonPath().empty()) obs::TraceRecorder::Global().Enable();
    if (!MetricsJsonPath().empty() || !TraceJsonPath().empty() ||
        !ProfileOutPath().empty() || !f.decision_log.empty()) {
      obs::RegisterFlush(ExportObsFiles);
      obs::InstallSignalFlushHandlers();
    }
    std::string error;
    if (!f.decision_log.empty() &&
        !obs::DecisionLog::Global().Open(f.decision_log, &error)) {
      std::fprintf(stderr, "decision log: %s\n", error.c_str());
      std::exit(2);
    }
    if (!ProfileOutPath().empty()) {
      obs::ProfilerOptions popts;
      popts.hz = f.profile_hz;
      if (!obs::Profiler::Global().Start(popts, &error)) {
        std::fprintf(stderr, "profiler: %s\n", error.c_str());
        std::exit(2);
      }
    }
    if (f.watchdog_sec > 0) {
      obs::WatchdogOptions wopts;
      wopts.deadline_sec = f.watchdog_sec;
      if (!obs::Watchdog::Global().Start(wopts, &error)) {
        std::fprintf(stderr, "watchdog: %s\n", error.c_str());
        std::exit(2);
      }
    }
    if (f.telemetry_port >= 0) {
      obs::TelemetryServerOptions sopts;
      sopts.port = static_cast<int>(f.telemetry_port);
      if (!obs::TelemetryServer::Global().Start(sopts, &error)) {
        std::fprintf(stderr, "telemetry server: %s\n", error.c_str());
        std::exit(2);
      }
      std::fprintf(stderr, "telemetry: http://127.0.0.1:%d/metrics\n",
                   obs::TelemetryServer::Global().port());
    }
    if (!f.metrics_stream.empty()) {
      obs::SamplerOptions sopts;
      sopts.interval_ms = static_cast<int>(f.sample_interval_ms);
      sopts.stream_path = f.metrics_stream;
      BenchSampler() = new obs::Sampler(sopts);
      if (!BenchSampler()->Start(&error)) {
        std::fprintf(stderr, "metrics sampler: %s\n", error.c_str());
        std::exit(2);
      }
    }
    return f;
  }

  size_t TrialsOr(size_t dflt) const { return trials > 0 ? trials : dflt; }
};

/// Emits one machine-readable result record on stdout, so sweeps over
/// --threads can be scraped and compared (timings are only comparable when
/// the thread count is recorded alongside them). `fields` is the inner part
/// of a JSON object, e.g. "\"n\":1000,\"secs\":1.23".
///
/// Every record also carries the process resource state (cumulative CPU
/// seconds, peak RSS) and a `metrics` object with the registry counters
/// that advanced since the previous record — so a BENCH_*.json trajectory
/// explains each point's wall time in node expansions, prune counts and
/// cache hits, not just its duration.
///
/// The active NN kernel dispatch level (`simd`) is recorded with every
/// point: timings from different kernel levels are not comparable, and
/// scripts/bench_compare.py refuses to diff logs whose levels disagree.
/// Results themselves are bit-identical at every level (docs/perf.md), so
/// `simd` never participates in identity checks. The registry delta already
/// carries nn/kernel_flops, so each point's wall time can be read against
/// the float work it did.
inline void BenchJson(const std::string& bench, const std::string& fields) {
  static obs::MetricsSnapshot last;  // zero at first record: totals
  obs::MetricsSnapshot now = obs::MetricsRegistry::Global().Snapshot();
  const std::string delta = now.DeltaSince(last).CountersJson();
  last = std::move(now);
  std::printf("BENCH_JSON {\"bench\":\"%s\",\"threads\":%zu,"
              "\"simd\":\"%s\",%s,"
              "\"cpu_seconds\":%.3f,\"peak_rss_bytes\":%zu,"
              "\"metrics\":%s}\n",
              bench.c_str(), GlobalPool().num_threads(),
              nn::SimdLevelName(nn::ActiveSimdLevel()), fields.c_str(),
              CpuSeconds(), PeakRssBytes(), delta.c_str());
}

/// Scaled-down dataset sizes per dataset name (paper sizes with --full).
struct ScaledSizes {
  size_t input;
  size_t master;
};

inline ScaledSizes SizesFor(const DatasetSpec& spec, bool full) {
  if (full) return {spec.default_input_size, spec.default_master_size};
  // ~1/10 of the paper scale, bounded below for statistical stability.
  auto scale = [](size_t n) { return std::max<size_t>(600, n / 10); };
  return {scale(spec.default_input_size), scale(spec.default_master_size)};
}

/// eta_s proportional to the actual input size (>= 10).
inline double ScaledSupportThreshold(const DatasetSpec& spec,
                                     size_t input_size) {
  double eta = spec.default_support_threshold *
               static_cast<double>(input_size) /
               static_cast<double>(spec.default_input_size);
  return std::max(eta, 10.0);
}

struct BenchSetup {
  GeneratedDataset ds;
  MinerOptions options;
  RlMinerOptions rl;
};

/// Generates one dataset trial with scaled thresholds and budgets.
inline BenchSetup MakeSetup(const DatasetSpec& spec, const BenchFlags& flags,
                            uint64_t trial, GenOptions gen = {}) {
  ScaledSizes sizes = SizesFor(spec, flags.full);
  if (gen.input_size == 0) gen.input_size = sizes.input;
  if (gen.master_size == 0) gen.master_size = sizes.master;
  gen.seed = flags.seed + 1000 * trial;
  BenchSetup s{GenerateDataset(spec, gen).ValueOrDie(), {}, {}};
  s.options = DefaultMinerOptions(s.ds);
  s.options.support_threshold = ScaledSupportThreshold(spec, gen.input_size);
  s.options.refine = !flags.no_refine;
  s.options.batch_eval = !flags.no_batch_eval;
  s.rl = DefaultRlOptions(s.ds, /*k=*/50, gen.seed);
  s.rl.base.support_threshold = s.options.support_threshold;
  s.rl.base.refine = !flags.no_refine;
  s.rl.base.batch_eval = !flags.no_batch_eval;
  s.rl.train_steps = flags.full ? 5000 : 1500;
  s.rl.checkpoint.dir = flags.checkpoint_dir;
  s.rl.checkpoint.every_episodes =
      static_cast<size_t>(std::max(0L, flags.checkpoint_every));
  s.rl.checkpoint.keep_last =
      static_cast<size_t>(std::max(1L, flags.checkpoint_keep));
  s.rl.resume = flags.resume;
  return s;
}

inline const DatasetSpec& SpecByName(const std::string& name) {
  static const DatasetSpec* specs = new DatasetSpec[4]{
      NurserySpec(), AdultSpec(), CovidSpec(), LocationSpec()};
  for (int i = 0; i < 4; ++i) {
    if (specs[i].name == name) return specs[i];
  }
  std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
  std::exit(2);
}

}  // namespace erminer::bench

#endif  // ERMINER_BENCH_BENCH_UTIL_H_
