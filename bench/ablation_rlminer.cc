// Ablation study for RLMiner's design choices (DESIGN.md, Sec. "Key design
// decisions"): reward normalization, the frontier bonus (Alg. 2 lines
// 15-16), the global rule mask (Alg. 1 lines 12-17), reward/measure reuse
// (Alg. 2 lines 5-14), and type-stratified exploration. Each variant turns
// exactly one mechanism off.
//
// Not a paper figure — an extra experiment justifying the implementation.

#include "bench_util.h"
#include "rl/rl_miner.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

namespace {

struct Variant {
  const char* name;
  void (*apply)(RlMinerOptions*);
};

const Variant kVariants[] = {
    {"full (paper config)", [](RlMinerOptions*) {}},
    {"no reward normalization",
     [](RlMinerOptions* o) { o->normalize_utility = false; }},
    {"no frontier bonus",
     [](RlMinerOptions* o) { o->frontier_bonus = false; }},
    {"no global mask",
     [](RlMinerOptions* o) { o->use_global_mask = false; }},
    {"no reward reuse",
     [](RlMinerOptions* o) { o->reuse_rewards = false; }},
    {"uniform exploration",
     [](RlMinerOptions* o) { o->stratified_explore = false; }},
    {"+ double DQN", [](RlMinerOptions* o) { o->dqn.double_dqn = true; }},
    {"+ dueling head", [](RlMinerOptions* o) { o->dqn.dueling = true; }},
    {"+ prioritized replay",
     [](RlMinerOptions* o) { o->dqn.prioritized = true; }},
    {"+ both variants",
     [](RlMinerOptions* o) {
       o->dqn.double_dqn = true;
       o->dqn.prioritized = true;
     }},
};

}  // namespace

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t trials = flags.TrialsOr(3);
  const DatasetSpec& spec = SpecByName("Covid");
  std::printf("== Ablation: RLMiner design choices over Covid (%s scale, "
              "%zu trials) ==\n",
              flags.full ? "paper" : "bench", trials);

  TablePrinter table({"variant", "F1", "top-rule utility", "rule evals",
                      "time (s)"});
  for (const Variant& variant : kVariants) {
    std::vector<double> f1, util, evals, secs;
    for (size_t t = 0; t < trials; ++t) {
      BenchSetup s = MakeSetup(spec, flags, t);
      variant.apply(&s.rl);
      s.rl.seed = flags.seed + t;
      Corpus corpus = BuildCorpus(s.ds).ValueOrDie();
      RlMiner miner(&corpus, s.rl);
      MineResult mine = miner.Mine();
      util.push_back(mine.rules.empty() ? 0.0
                                        : mine.rules[0].stats.utility);
      evals.push_back(static_cast<double>(mine.rule_evaluations));
      secs.push_back(mine.seconds);
      TrialResult tr = ScoreRules(corpus, s.ds, std::move(mine));
      f1.push_back(tr.repair.f1);
    }
    table.AddRow({variant.name, MeanStd(Aggregate_(f1)),
                  FormatDouble(Aggregate_(util).mean, 1),
                  FormatDouble(Aggregate_(evals).mean, 0),
                  FormatDouble(Aggregate_(secs).mean, 2)});
  }
  table.Print();
  return 0;
}
