// Sensitivity of K, the number of returned rules (the paper fixes K = 50):
// repair quality vs rule-set size for EnuMiner and RLMiner.

#include "bench_util.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const DatasetSpec& spec = SpecByName("Covid");
  std::printf("== Ablation: rule count K over Covid ==\n");

  TablePrinter table({"K", "method", "rules", "Precision", "Recall", "F1"});
  for (size_t k : {1u, 5u, 10u, 25u, 50u, 100u}) {
    for (Method m : {Method::kEnuMiner, Method::kRlMiner}) {
      BenchSetup s = MakeSetup(spec, flags, /*trial=*/0);
      s.options.k = k;
      s.rl.base.k = k;
      TrialResult tr = RunTrial(s.ds, m, s.options, s.rl).ValueOrDie();
      table.AddRow({std::to_string(k), MethodName(m),
                    std::to_string(tr.mine.rules.size()),
                    FormatDouble(tr.repair.precision, 3),
                    FormatDouble(tr.repair.recall, 3),
                    FormatDouble(tr.repair.f1, 3)});
    }
  }
  table.Print();
  return 0;
}
