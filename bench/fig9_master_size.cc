// Regenerates Figure 9: F-measure and time cost vs master data size over
// Adult (input fixed at the largest sweep point), for EnuMiner, EnuMinerH3
// and RLMiner.

#include "bench_util.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t trials = flags.TrialsOr(1);
  const DatasetSpec& spec = SpecByName("Adult");
  const size_t input = flags.full ? 40000 : 4000;
  std::vector<size_t> sweep =
      flags.full ? std::vector<size_t>{1000, 2000, 3000, 4000, 5000}
                 : std::vector<size_t>{200, 400, 600, 800, 1000};
  std::printf("== Figure 9: varying master data size over Adult (input=%zu, "
              "%zu trials) ==\n",
              input, trials);

  TablePrinter table({"master size", "method", "Precision", "Recall", "F1",
                      "time (s)"});
  for (size_t n : sweep) {
    for (Method m : {Method::kEnuMiner, Method::kEnuMinerH3,
                     Method::kRlMiner}) {
      std::vector<double> p, r, f, secs;
      for (size_t t = 0; t < trials; ++t) {
        GenOptions gen;
        gen.input_size = input;
        gen.master_size = n;
        BenchSetup s = MakeSetup(spec, flags, t, gen);
        TrialResult tr = RunTrial(s.ds, m, s.options, s.rl).ValueOrDie();
        p.push_back(tr.repair.precision);
        r.push_back(tr.repair.recall);
        f.push_back(tr.repair.f1);
        secs.push_back(tr.mine.seconds);
      }
      table.AddRow({std::to_string(n), MethodName(m),
                    MeanStd(Aggregate_(p)), MeanStd(Aggregate_(r)),
                    MeanStd(Aggregate_(f)),
                    FormatDouble(Aggregate_(secs).mean, 2)});
    }
  }
  table.Print();
  return 0;
}
