// Sensitivity of the support threshold eta_s (the paper fixes per-dataset
// defaults; this sweep shows the trade-off it controls): lower eta_s lets
// EnuMiner enumerate far more rules (time grows) and admits narrow rules,
// higher eta_s prunes towards general rules.

#include "bench_util.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const DatasetSpec& spec = SpecByName("Covid");
  std::printf("== Ablation: support threshold eta_s over Covid ==\n");

  BenchSetup base = MakeSetup(spec, flags, /*trial=*/0);
  const double eta0 = base.options.support_threshold;
  TablePrinter table({"eta_s", "method", "rules", "F1", "nodes", "time (s)"});
  for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    for (Method m : {Method::kEnuMiner, Method::kRlMiner}) {
      BenchSetup s = MakeSetup(spec, flags, /*trial=*/0);
      s.options.support_threshold = eta0 * mult;
      s.rl.base.support_threshold = eta0 * mult;
      TrialResult tr = RunTrial(s.ds, m, s.options, s.rl).ValueOrDie();
      table.AddRow({FormatDouble(eta0 * mult, 0), MethodName(m),
                    std::to_string(tr.mine.rules.size()),
                    FormatDouble(tr.repair.f1, 3),
                    std::to_string(tr.mine.nodes_explored),
                    FormatDouble(tr.mine.seconds, 2)});
    }
  }
  table.Print();
  return 0;
}
