// Shared driver for the incremental-discovery experiments (Figs. 10-11).
#include <sstream>

//
// The full dataset is generated once and the corpus is built once, so all
// dictionaries — and therefore the ActionSpace and the value network's
// dimensions — stay fixed while rows are revealed in stages. At each stage:
//   - EnuMinerH3 re-mines from scratch (the paper's heuristic baseline);
//   - RLMiner re-trains from scratch;
//   - RLMiner-ft fine-tunes the previous stage's agent with 1/5 the steps.

#ifndef ERMINER_BENCH_INCREMENTAL_UTIL_H_
#define ERMINER_BENCH_INCREMENTAL_UTIL_H_

#include "bench_util.h"
#include "core/enu_miner.h"
#include "rl/incremental_miner.h"
#include "rl/rl_miner.h"

namespace erminer::bench {

inline void RunIncrementalBench(const std::string& dataset, bool vary_input,
                                const BenchFlags& flags) {
  const DatasetSpec& spec = SpecByName(dataset);
  ScaledSizes sizes = SizesFor(spec, flags.full);
  GenOptions gen;
  gen.input_size = sizes.input;
  gen.master_size = sizes.master;
  gen.seed = flags.seed;
  GeneratedDataset full_ds = GenerateDataset(spec, gen).ValueOrDie();
  Corpus full_corpus = BuildCorpus(full_ds).ValueOrDie();

  RlMinerOptions rl = DefaultRlOptions(full_ds);
  rl.train_steps = flags.full ? 5000 : 1500;
  ActionSpaceOptions aopts;
  aopts.support_threshold = ScaledSupportThreshold(spec, sizes.input);
  auto space =
      std::make_shared<ActionSpace>(ActionSpace::Build(full_corpus, aopts));

  TablePrinter table({"stage", vary_input ? "input rows" : "master rows",
                      "method", "F1", "time (s)"});
  IncrementalMiner::Options inc_options;
  inc_options.rl = rl;
  inc_options.rl.seed = flags.seed + 100;
  inc_options.fine_tune_fraction = 0.2;
  IncrementalMiner ft_miner(&full_corpus, inc_options);

  const double fractions[] = {0.4, 0.6, 0.8, 1.0};
  for (int stage = 0; stage < 4; ++stage) {
    double frac = fractions[stage];
    size_t n_in = vary_input
                      ? static_cast<size_t>(frac * sizes.input)
                      : sizes.input;
    size_t n_ms = vary_input
                      ? sizes.master
                      : static_cast<size_t>(frac * sizes.master);
    Corpus corpus = full_corpus.TruncateRows(n_in, n_ms);
    GeneratedDataset ds = full_ds.HeadRows(n_in, n_ms);
    const double eta = ScaledSupportThreshold(spec, n_in);
    const std::string rows = std::to_string(vary_input ? n_in : n_ms);

    {  // EnuMinerH3 (re-run per stage)
      MinerOptions o = DefaultMinerOptions(ds);
      o.support_threshold = eta;
      MineResult mine = EnuMineH3(corpus, o);
      TrialResult tr = ScoreRules(corpus, ds, std::move(mine));
      table.AddRow({std::to_string(stage), rows, "EnuMinerH3",
                    FormatDouble(tr.repair.f1, 3),
                    FormatDouble(tr.mine.seconds, 2)});
    }
    {  // RLMiner from scratch
      RlMinerOptions o = rl;
      o.base.support_threshold = eta;
      o.seed = flags.seed + static_cast<uint64_t>(stage);
      RlMiner miner(&corpus, o, space);
      MineResult mine = miner.Mine();
      TrialResult tr = ScoreRules(corpus, ds, std::move(mine));
      table.AddRow({std::to_string(stage), rows, "RLMiner",
                    FormatDouble(tr.repair.f1, 3),
                    FormatDouble(tr.mine.seconds, 2)});
    }
    {  // RLMiner-ft: full training at stage 0, fine-tuning afterwards
      MineResult mine = ft_miner.Mine(corpus);
      double seconds = mine.seconds;
      TrialResult tr = ScoreRules(corpus, ds, std::move(mine));
      table.AddRow({std::to_string(stage), rows,
                    stage == 0 ? "RLMiner-ft (init)" : "RLMiner-ft",
                    FormatDouble(tr.repair.f1, 3),
                    FormatDouble(seconds, 2)});
    }
  }
  table.Print();
}

}  // namespace erminer::bench

#endif  // ERMINER_BENCH_INCREMENTAL_UTIL_H_
