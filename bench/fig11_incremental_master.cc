// Regenerates Figure 11: incremental master data over Adult — RLMiner-ft
// vs RLMiner from scratch vs EnuMinerH3, as master rows are revealed.

#include "incremental_util.h"

int main(int argc, char** argv) {
  auto flags = erminer::bench::BenchFlags::Parse(argc, argv);
  std::printf("== Figure 11: incremental master data over Adult (%s scale) "
              "==\n",
              flags.full ? "paper" : "bench");
  erminer::bench::RunIncrementalBench("Adult", /*vary_input=*/false, flags);
  return 0;
}
