// Regenerates Figure 12: RLMiner training time vs training steps — from
// scratch (a) and fine-tuned (b) — plus inference time and the number of
// greedy steps needed to mine the top-K rules.

#include <sstream>

#include "bench_util.h"
#include "rl/rl_miner.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const DatasetSpec& spec = SpecByName("Covid");
  BenchSetup s = MakeSetup(spec, flags, /*trial=*/0);
  Corpus corpus = BuildCorpus(s.ds).ValueOrDie();
  std::printf("== Figure 12: training and inference time of RLMiner over "
              "Covid (%s scale) ==\n",
              flags.full ? "paper" : "bench");

  const std::vector<size_t> step_sweep =
      flags.full ? std::vector<size_t>{1000, 2000, 3000, 4000, 5000}
                 : std::vector<size_t>{300, 600, 900, 1200, 1500};

  // (a) training from scratch; capture the 5000-step agent for (b).
  std::stringstream weights;
  TablePrinter a({"train steps", "train time (s)", "episodes",
                  "inference time (s)", "inference steps", "rules"});
  for (size_t steps : step_sweep) {
    RlMinerOptions o = s.rl;
    o.train_steps = steps;
    RlMiner miner(&corpus, o);
    miner.Train();
    MineResult r = miner.Infer();
    a.AddRow({std::to_string(steps),
              FormatDouble(miner.last_train_seconds(), 2),
              std::to_string(miner.episodes_done()),
              FormatDouble(r.inference_seconds, 3),
              std::to_string(r.inference_steps),
              std::to_string(r.rules.size())});
    BenchJson("fig12_training_time",
              "\"phase\":\"scratch\",\"steps\":" + std::to_string(steps) +
                  ",\"train_secs\":" +
                  FormatDouble(miner.last_train_seconds(), 3) +
                  ",\"infer_secs\":" + FormatDouble(r.inference_seconds, 3) +
                  ",\"rules\":" + std::to_string(r.rules.size()));
    if (steps == step_sweep.back()) {
      ERMINER_CHECK_OK(miner.SaveAgent(weights));
    }
  }
  std::printf("(a) training from scratch\n");
  a.Print();

  // (b) fine-tuning the trained agent with fewer steps.
  TablePrinter b({"fine-tune steps", "train time (s)", "inference time (s)",
                  "inference steps", "rules"});
  for (size_t steps : step_sweep) {
    size_t ft = steps / 5;
    RlMinerOptions o = s.rl;
    o.train_steps = steps;
    RlMiner miner(&corpus, o);
    std::stringstream copy(weights.str());
    ERMINER_CHECK_OK(miner.LoadAgent(copy));
    miner.Train(ft);
    MineResult r = miner.Infer();
    b.AddRow({std::to_string(ft),
              FormatDouble(miner.last_train_seconds(), 2),
              FormatDouble(r.inference_seconds, 3),
              std::to_string(r.inference_steps),
              std::to_string(r.rules.size())});
    BenchJson("fig12_training_time",
              "\"phase\":\"finetune\",\"steps\":" + std::to_string(ft) +
                  ",\"train_secs\":" +
                  FormatDouble(miner.last_train_seconds(), 3) +
                  ",\"infer_secs\":" + FormatDouble(r.inference_seconds, 3) +
                  ",\"rules\":" + std::to_string(r.rules.size()));
  }
  std::printf("\n(b) fine-tuning\n");
  b.Print();
  return 0;
}
