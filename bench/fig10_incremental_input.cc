// Regenerates Figure 10: incremental input data over Adult — RLMiner-ft
// (fine-tuning the previous agent) vs RLMiner from scratch vs EnuMinerH3,
// as input rows are revealed in stages.

#include "incremental_util.h"

int main(int argc, char** argv) {
  auto flags = erminer::bench::BenchFlags::Parse(argc, argv);
  std::printf("== Figure 10: incremental input data over Adult (%s scale) "
              "==\n",
              flags.full ? "paper" : "bench");
  erminer::bench::RunIncrementalBench("Adult", /*vary_input=*/true, flags);
  return 0;
}
