// Regenerates Figure 8: F-measure and time cost vs input data size over
// Adult, for EnuMiner, EnuMinerH3 and RLMiner. The paper sweeps 10k-40k;
// the bench scale sweeps 1k-4k (same 4-point shape).

#include "bench_util.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t trials = flags.TrialsOr(1);
  const DatasetSpec& spec = SpecByName("Adult");
  const size_t master = flags.full ? 5000 : 600;
  std::vector<size_t> sweep = flags.full
                                  ? std::vector<size_t>{10000, 20000, 30000,
                                                        40000}
                                  : std::vector<size_t>{1000, 2000, 3000,
                                                        4000};
  std::printf("== Figure 8: varying input data size over Adult (master=%zu, "
              "%zu trials) ==\n",
              master, trials);

  TablePrinter table({"input size", "method", "Precision", "Recall", "F1",
                      "time (s)"});
  for (size_t n : sweep) {
    for (Method m : {Method::kEnuMiner, Method::kEnuMinerH3,
                     Method::kRlMiner}) {
      std::vector<double> p, r, f, secs;
      for (size_t t = 0; t < trials; ++t) {
        GenOptions gen;
        gen.input_size = n;
        gen.master_size = master;
        BenchSetup s = MakeSetup(spec, flags, t, gen);
        TrialResult tr = RunTrial(s.ds, m, s.options, s.rl).ValueOrDie();
        p.push_back(tr.repair.precision);
        r.push_back(tr.repair.recall);
        f.push_back(tr.repair.f1);
        secs.push_back(tr.mine.seconds);
      }
      table.AddRow({std::to_string(n), MethodName(m),
                    MeanStd(Aggregate_(p)), MeanStd(Aggregate_(r)),
                    MeanStd(Aggregate_(f)),
                    FormatDouble(Aggregate_(secs).mean, 2)});
      BenchJson("fig8_input_size",
                "\"n\":" + std::to_string(n) + ",\"method\":\"" +
                    std::string(MethodName(m)) + "\",\"f1\":" +
                    FormatDouble(Aggregate_(f).mean, 4) + ",\"mine_secs\":" +
                    FormatDouble(Aggregate_(secs).mean, 3));
    }
  }
  table.Print();
  return 0;
}
