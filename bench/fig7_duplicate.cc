// Regenerates Figure 7: F-measure of EnuMiner vs RLMiner while varying the
// duplicate rate d% (fraction of input rows drawn from master entities).
// The paper fixes master = 5000 and input = 10000; the bench scale keeps
// the same 2:1 ratio.

#include "bench_util.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t trials = flags.TrialsOr(1);
  const DatasetSpec& spec = SpecByName("Adult");
  const size_t input = flags.full ? 10000 : 1500;
  const size_t master = flags.full ? 5000 : 750;
  std::printf("== Figure 7: varying duplicate rate over Adult "
              "(input=%zu, master=%zu, %zu trials) ==\n",
              input, master, trials);

  TablePrinter table({"d%", "method", "Precision", "Recall", "F1"});
  for (double d : {20.0, 40.0, 60.0, 80.0, 100.0}) {
    for (Method m : {Method::kEnuMiner, Method::kRlMiner}) {
      std::vector<double> p, r, f;
      for (size_t t = 0; t < trials; ++t) {
        GenOptions gen;
        gen.input_size = input;
        gen.master_size = master;
        gen.duplicate_percent = d;
        BenchSetup s = MakeSetup(spec, flags, t, gen);
        TrialResult tr = RunTrial(s.ds, m, s.options, s.rl).ValueOrDie();
        p.push_back(tr.repair.precision);
        r.push_back(tr.repair.recall);
        f.push_back(tr.repair.f1);
      }
      table.AddRow({FormatDouble(d, 0), MethodName(m),
                    MeanStd(Aggregate_(p)), MeanStd(Aggregate_(r)),
                    MeanStd(Aggregate_(f))});
    }
  }
  table.Print();
  return 0;
}
