// Learning-curve diagnostics (companion to Fig. 12): per-episode return,
// episode length, TD loss and rules found over the course of RLMiner
// training, bucketed into deciles of the training run. Shows the agent
// actually learning: returns rise, episodes shorten toward K-leaf walks.

#include "bench_util.h"
#include "rl/rl_miner.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const DatasetSpec& spec = SpecByName("Covid");
  BenchSetup s = MakeSetup(spec, flags, /*trial=*/0);
  s.rl.train_steps = flags.full ? 5000 : 2000;
  Corpus corpus = BuildCorpus(s.ds).ValueOrDie();
  std::printf("== Learning curve: RLMiner on Covid (%zu training steps) "
              "==\n",
              s.rl.train_steps);

  RlMiner miner(&corpus, s.rl);
  miner.Train();
  const auto& episodes = miner.training_log().episodes();
  ERMINER_CHECK(!episodes.empty());

  TablePrinter table({"decile", "episodes", "mean return", "mean length",
                      "mean leaves", "mean TD loss"});
  const size_t buckets = 10;
  for (size_t b = 0; b < buckets; ++b) {
    size_t lo = episodes.size() * b / buckets;
    size_t hi = episodes.size() * (b + 1) / buckets;
    if (hi <= lo) continue;
    double ret = 0, len = 0, leaves = 0, loss = 0;
    for (size_t i = lo; i < hi; ++i) {
      ret += episodes[i].total_reward;
      len += static_cast<double>(episodes[i].steps);
      leaves += static_cast<double>(episodes[i].leaves);
      loss += episodes[i].mean_loss;
    }
    double n = static_cast<double>(hi - lo);
    table.AddRow({std::to_string(b + 1), std::to_string(hi - lo),
                  FormatDouble(ret / n, 2), FormatDouble(len / n, 1),
                  FormatDouble(leaves / n, 1), FormatDouble(loss / n, 4)});
  }
  table.Print();
  std::printf("recent mean return (last 20 episodes): %.2f\n",
              miner.training_log().RecentMeanReturn());
  return 0;
}
