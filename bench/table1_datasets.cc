// Regenerates Table I: dataset summary (#A, #A_m, #input, #master), plus
// generation diagnostics (injected error counts, domain sizes).

#include "bench_util.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  std::printf("== Table I: dataset summary (%s scale) ==\n",
              flags.full ? "paper" : "bench");

  TablePrinter table({"Dataset", "# A", "# A_m", "# Input", "# Master",
                      "eta_s", "errors injected", "Y domain"});
  for (const std::string& name : DatasetNames()) {
    const DatasetSpec& spec = SpecByName(name);
    BenchSetup s = MakeSetup(spec, flags, /*trial=*/0);
    Corpus corpus = BuildCorpus(s.ds).ValueOrDie();
    table.AddRow({name, std::to_string(s.ds.input.num_cols()),
                  std::to_string(s.ds.master.num_cols()),
                  std::to_string(s.ds.input.num_rows()),
                  std::to_string(s.ds.master.num_rows()),
                  FormatDouble(s.options.support_threshold, 0),
                  std::to_string(s.ds.injection.num_errors),
                  std::to_string(corpus.y_domain()->size())});
  }
  table.Print();
  return 0;
}
