// Extra baseline: beam search vs EnuMiner vs RLMiner across the four
// datasets. Shows where a greedy utility-guided heuristic lands — cheaper
// than enumeration but blind to rules behind low-utility ancestors, the
// failure mode RLMiner's frontier bonus (Alg. 2) explicitly targets.

#include "bench_util.h"
#include "core/beam_miner.h"

using namespace erminer;         // NOLINT
using namespace erminer::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchFlags flags = BenchFlags::Parse(argc, argv);
  const size_t trials = flags.TrialsOr(1);
  std::printf("== Baseline: beam search vs EnuMiner vs RLMiner (%s scale, "
              "%zu trials) ==\n",
              flags.full ? "paper" : "bench", trials);

  TablePrinter table({"Dataset", "Method", "F1", "top utility", "nodes",
                      "time (s)"});
  for (const std::string& name : DatasetNames()) {
    const DatasetSpec& spec = SpecByName(name);
    for (int which = 0; which < 3; ++which) {
      std::vector<double> f1, util, nodes, secs;
      const char* label = which == 0 ? "BeamMiner"
                          : which == 1 ? "EnuMiner"
                                       : "RLMiner";
      for (size_t t = 0; t < trials; ++t) {
        BenchSetup s = MakeSetup(spec, flags, t);
        Corpus corpus = BuildCorpus(s.ds).ValueOrDie();
        MineResult mine;
        if (which == 0) {
          mine = BeamMine(corpus, s.options);
        } else if (which == 1) {
          mine = EnuMine(corpus, s.options);
        } else {
          RlMiner miner(&corpus, s.rl);
          mine = miner.Mine();
        }
        util.push_back(mine.rules.empty() ? 0
                                          : mine.rules[0].stats.utility);
        nodes.push_back(static_cast<double>(mine.nodes_explored));
        secs.push_back(mine.seconds);
        TrialResult tr = ScoreRules(corpus, s.ds, std::move(mine));
        f1.push_back(tr.repair.f1);
      }
      table.AddRow({name, label, MeanStd(Aggregate_(f1)),
                    FormatDouble(Aggregate_(util).mean, 1),
                    FormatDouble(Aggregate_(nodes).mean, 0),
                    FormatDouble(Aggregate_(secs).mean, 2)});
    }
  }
  table.Print();
  return 0;
}
