# Empty compiler generated dependencies file for covid_repair.
# This may be replaced when dependencies are built.
