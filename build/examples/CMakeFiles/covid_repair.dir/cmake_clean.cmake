file(REMOVE_RECURSE
  "CMakeFiles/covid_repair.dir/covid_repair.cpp.o"
  "CMakeFiles/covid_repair.dir/covid_repair.cpp.o.d"
  "covid_repair"
  "covid_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covid_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
