# Empty dependencies file for location_postcode.
# This may be replaced when dependencies are built.
