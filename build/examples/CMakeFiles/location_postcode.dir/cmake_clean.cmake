file(REMOVE_RECURSE
  "CMakeFiles/location_postcode.dir/location_postcode.cpp.o"
  "CMakeFiles/location_postcode.dir/location_postcode.cpp.o.d"
  "location_postcode"
  "location_postcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/location_postcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
