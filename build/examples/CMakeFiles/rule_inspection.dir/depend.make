# Empty dependencies file for rule_inspection.
# This may be replaced when dependencies are built.
