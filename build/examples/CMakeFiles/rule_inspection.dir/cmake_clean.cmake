file(REMOVE_RECURSE
  "CMakeFiles/rule_inspection.dir/rule_inspection.cpp.o"
  "CMakeFiles/rule_inspection.dir/rule_inspection.cpp.o.d"
  "rule_inspection"
  "rule_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
