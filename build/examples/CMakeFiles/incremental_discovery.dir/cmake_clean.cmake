file(REMOVE_RECURSE
  "CMakeFiles/incremental_discovery.dir/incremental_discovery.cpp.o"
  "CMakeFiles/incremental_discovery.dir/incremental_discovery.cpp.o.d"
  "incremental_discovery"
  "incremental_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
