# Empty compiler generated dependencies file for incremental_discovery.
# This may be replaced when dependencies are built.
