# Empty dependencies file for multi_attribute_cleaning.
# This may be replaced when dependencies are built.
