file(REMOVE_RECURSE
  "CMakeFiles/multi_attribute_cleaning.dir/multi_attribute_cleaning.cpp.o"
  "CMakeFiles/multi_attribute_cleaning.dir/multi_attribute_cleaning.cpp.o.d"
  "multi_attribute_cleaning"
  "multi_attribute_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_attribute_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
