file(REMOVE_RECURSE
  "CMakeFiles/erminer.dir/erminer_cli.cc.o"
  "CMakeFiles/erminer.dir/erminer_cli.cc.o.d"
  "erminer"
  "erminer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erminer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
