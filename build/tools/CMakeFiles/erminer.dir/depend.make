# Empty dependencies file for erminer.
# This may be replaced when dependencies are built.
