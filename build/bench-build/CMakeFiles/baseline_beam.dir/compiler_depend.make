# Empty compiler generated dependencies file for baseline_beam.
# This may be replaced when dependencies are built.
