file(REMOVE_RECURSE
  "../bench/baseline_beam"
  "../bench/baseline_beam.pdb"
  "CMakeFiles/baseline_beam.dir/baseline_beam.cc.o"
  "CMakeFiles/baseline_beam.dir/baseline_beam.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_beam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
