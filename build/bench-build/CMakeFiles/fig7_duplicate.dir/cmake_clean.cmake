file(REMOVE_RECURSE
  "../bench/fig7_duplicate"
  "../bench/fig7_duplicate.pdb"
  "CMakeFiles/fig7_duplicate.dir/fig7_duplicate.cc.o"
  "CMakeFiles/fig7_duplicate.dir/fig7_duplicate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_duplicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
