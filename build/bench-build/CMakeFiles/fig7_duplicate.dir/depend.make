# Empty dependencies file for fig7_duplicate.
# This may be replaced when dependencies are built.
