file(REMOVE_RECURSE
  "../bench/fig6_noise"
  "../bench/fig6_noise.pdb"
  "CMakeFiles/fig6_noise.dir/fig6_noise.cc.o"
  "CMakeFiles/fig6_noise.dir/fig6_noise.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
