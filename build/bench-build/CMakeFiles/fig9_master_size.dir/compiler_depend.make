# Empty compiler generated dependencies file for fig9_master_size.
# This may be replaced when dependencies are built.
