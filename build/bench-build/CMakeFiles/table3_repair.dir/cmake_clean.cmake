file(REMOVE_RECURSE
  "../bench/table3_repair"
  "../bench/table3_repair.pdb"
  "CMakeFiles/table3_repair.dir/table3_repair.cc.o"
  "CMakeFiles/table3_repair.dir/table3_repair.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
