file(REMOVE_RECURSE
  "../bench/ablation_k"
  "../bench/ablation_k.pdb"
  "CMakeFiles/ablation_k.dir/ablation_k.cc.o"
  "CMakeFiles/ablation_k.dir/ablation_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
