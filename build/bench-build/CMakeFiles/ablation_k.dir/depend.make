# Empty dependencies file for ablation_k.
# This may be replaced when dependencies are built.
