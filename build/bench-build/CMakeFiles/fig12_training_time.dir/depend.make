# Empty dependencies file for fig12_training_time.
# This may be replaced when dependencies are built.
