file(REMOVE_RECURSE
  "../bench/fig12_training_time"
  "../bench/fig12_training_time.pdb"
  "CMakeFiles/fig12_training_time.dir/fig12_training_time.cc.o"
  "CMakeFiles/fig12_training_time.dir/fig12_training_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_training_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
