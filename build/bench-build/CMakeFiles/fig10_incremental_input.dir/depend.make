# Empty dependencies file for fig10_incremental_input.
# This may be replaced when dependencies are built.
