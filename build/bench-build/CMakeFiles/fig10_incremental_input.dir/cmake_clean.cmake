file(REMOVE_RECURSE
  "../bench/fig10_incremental_input"
  "../bench/fig10_incremental_input.pdb"
  "CMakeFiles/fig10_incremental_input.dir/fig10_incremental_input.cc.o"
  "CMakeFiles/fig10_incremental_input.dir/fig10_incremental_input.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_incremental_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
