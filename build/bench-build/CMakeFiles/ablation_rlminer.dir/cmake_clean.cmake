file(REMOVE_RECURSE
  "../bench/ablation_rlminer"
  "../bench/ablation_rlminer.pdb"
  "CMakeFiles/ablation_rlminer.dir/ablation_rlminer.cc.o"
  "CMakeFiles/ablation_rlminer.dir/ablation_rlminer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rlminer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
