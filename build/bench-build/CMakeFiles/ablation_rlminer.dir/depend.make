# Empty dependencies file for ablation_rlminer.
# This may be replaced when dependencies are built.
