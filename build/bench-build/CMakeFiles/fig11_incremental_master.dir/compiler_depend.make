# Empty compiler generated dependencies file for fig11_incremental_master.
# This may be replaced when dependencies are built.
