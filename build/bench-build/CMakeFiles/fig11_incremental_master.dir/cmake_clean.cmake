file(REMOVE_RECURSE
  "../bench/fig11_incremental_master"
  "../bench/fig11_incremental_master.pdb"
  "CMakeFiles/fig11_incremental_master.dir/fig11_incremental_master.cc.o"
  "CMakeFiles/fig11_incremental_master.dir/fig11_incremental_master.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_incremental_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
