file(REMOVE_RECURSE
  "../bench/learning_curve"
  "../bench/learning_curve.pdb"
  "CMakeFiles/learning_curve.dir/learning_curve.cc.o"
  "CMakeFiles/learning_curve.dir/learning_curve.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learning_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
