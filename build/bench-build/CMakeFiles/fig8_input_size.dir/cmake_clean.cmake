file(REMOVE_RECURSE
  "../bench/fig8_input_size"
  "../bench/fig8_input_size.pdb"
  "CMakeFiles/fig8_input_size.dir/fig8_input_size.cc.o"
  "CMakeFiles/fig8_input_size.dir/fig8_input_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_input_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
