file(REMOVE_RECURSE
  "../bench/ablation_eta"
  "../bench/ablation_eta.pdb"
  "CMakeFiles/ablation_eta.dir/ablation_eta.cc.o"
  "CMakeFiles/ablation_eta.dir/ablation_eta.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
