# Empty compiler generated dependencies file for table2_rule_stats.
# This may be replaced when dependencies are built.
