# Empty dependencies file for domain_compress_test.
# This may be replaced when dependencies are built.
