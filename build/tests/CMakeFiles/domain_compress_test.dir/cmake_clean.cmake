file(REMOVE_RECURSE
  "CMakeFiles/domain_compress_test.dir/domain_compress_test.cc.o"
  "CMakeFiles/domain_compress_test.dir/domain_compress_test.cc.o.d"
  "domain_compress_test"
  "domain_compress_test.pdb"
  "domain_compress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
