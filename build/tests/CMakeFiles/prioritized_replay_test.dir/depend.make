# Empty dependencies file for prioritized_replay_test.
# This may be replaced when dependencies are built.
