file(REMOVE_RECURSE
  "CMakeFiles/prioritized_replay_test.dir/prioritized_replay_test.cc.o"
  "CMakeFiles/prioritized_replay_test.dir/prioritized_replay_test.cc.o.d"
  "prioritized_replay_test"
  "prioritized_replay_test.pdb"
  "prioritized_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prioritized_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
