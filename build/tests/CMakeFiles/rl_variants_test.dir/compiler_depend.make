# Empty compiler generated dependencies file for rl_variants_test.
# This may be replaced when dependencies are built.
