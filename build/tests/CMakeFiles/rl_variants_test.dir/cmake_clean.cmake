file(REMOVE_RECURSE
  "CMakeFiles/rl_variants_test.dir/rl_variants_test.cc.o"
  "CMakeFiles/rl_variants_test.dir/rl_variants_test.cc.o.d"
  "rl_variants_test"
  "rl_variants_test.pdb"
  "rl_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
