file(REMOVE_RECURSE
  "CMakeFiles/rl_miner_test.dir/rl_miner_test.cc.o"
  "CMakeFiles/rl_miner_test.dir/rl_miner_test.cc.o.d"
  "rl_miner_test"
  "rl_miner_test.pdb"
  "rl_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
