# Empty compiler generated dependencies file for rl_miner_test.
# This may be replaced when dependencies are built.
