file(REMOVE_RECURSE
  "CMakeFiles/rule_set_test.dir/rule_set_test.cc.o"
  "CMakeFiles/rule_set_test.dir/rule_set_test.cc.o.d"
  "rule_set_test"
  "rule_set_test.pdb"
  "rule_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
