file(REMOVE_RECURSE
  "CMakeFiles/cfd_miner_test.dir/cfd_miner_test.cc.o"
  "CMakeFiles/cfd_miner_test.dir/cfd_miner_test.cc.o.d"
  "cfd_miner_test"
  "cfd_miner_test.pdb"
  "cfd_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfd_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
