# Empty compiler generated dependencies file for cfd_miner_test.
# This may be replaced when dependencies are built.
