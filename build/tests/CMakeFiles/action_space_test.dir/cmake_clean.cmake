file(REMOVE_RECURSE
  "CMakeFiles/action_space_test.dir/action_space_test.cc.o"
  "CMakeFiles/action_space_test.dir/action_space_test.cc.o.d"
  "action_space_test"
  "action_space_test.pdb"
  "action_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/action_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
