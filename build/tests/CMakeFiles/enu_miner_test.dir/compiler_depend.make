# Empty compiler generated dependencies file for enu_miner_test.
# This may be replaced when dependencies are built.
