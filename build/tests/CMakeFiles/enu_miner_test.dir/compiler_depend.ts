# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for enu_miner_test.
