file(REMOVE_RECURSE
  "CMakeFiles/enu_miner_test.dir/enu_miner_test.cc.o"
  "CMakeFiles/enu_miner_test.dir/enu_miner_test.cc.o.d"
  "enu_miner_test"
  "enu_miner_test.pdb"
  "enu_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enu_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
