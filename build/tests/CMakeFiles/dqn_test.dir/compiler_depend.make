# Empty compiler generated dependencies file for dqn_test.
# This may be replaced when dependencies are built.
