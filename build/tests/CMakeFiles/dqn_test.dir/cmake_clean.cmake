file(REMOVE_RECURSE
  "CMakeFiles/dqn_test.dir/dqn_test.cc.o"
  "CMakeFiles/dqn_test.dir/dqn_test.cc.o.d"
  "dqn_test"
  "dqn_test.pdb"
  "dqn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
