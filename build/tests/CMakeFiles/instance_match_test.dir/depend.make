# Empty dependencies file for instance_match_test.
# This may be replaced when dependencies are built.
