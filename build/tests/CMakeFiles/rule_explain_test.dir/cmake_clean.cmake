file(REMOVE_RECURSE
  "CMakeFiles/rule_explain_test.dir/rule_explain_test.cc.o"
  "CMakeFiles/rule_explain_test.dir/rule_explain_test.cc.o.d"
  "rule_explain_test"
  "rule_explain_test.pdb"
  "rule_explain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_explain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
