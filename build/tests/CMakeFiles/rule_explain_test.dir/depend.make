# Empty dependencies file for rule_explain_test.
# This may be replaced when dependencies are built.
