file(REMOVE_RECURSE
  "CMakeFiles/incremental_miner_test.dir/incremental_miner_test.cc.o"
  "CMakeFiles/incremental_miner_test.dir/incremental_miner_test.cc.o.d"
  "incremental_miner_test"
  "incremental_miner_test.pdb"
  "incremental_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
