# Empty dependencies file for incremental_miner_test.
# This may be replaced when dependencies are built.
