file(REMOVE_RECURSE
  "CMakeFiles/parallel_stress_test.dir/parallel_stress_test.cc.o"
  "CMakeFiles/parallel_stress_test.dir/parallel_stress_test.cc.o.d"
  "parallel_stress_test"
  "parallel_stress_test.pdb"
  "parallel_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
