# Empty dependencies file for parallel_stress_test.
# This may be replaced when dependencies are built.
