file(REMOVE_RECURSE
  "CMakeFiles/beam_miner_test.dir/beam_miner_test.cc.o"
  "CMakeFiles/beam_miner_test.dir/beam_miner_test.cc.o.d"
  "beam_miner_test"
  "beam_miner_test.pdb"
  "beam_miner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
