# Empty dependencies file for beam_miner_test.
# This may be replaced when dependencies are built.
