file(REMOVE_RECURSE
  "CMakeFiles/training_log_test.dir/training_log_test.cc.o"
  "CMakeFiles/training_log_test.dir/training_log_test.cc.o.d"
  "training_log_test"
  "training_log_test.pdb"
  "training_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
