# Empty dependencies file for training_log_test.
# This may be replaced when dependencies are built.
