file(REMOVE_RECURSE
  "CMakeFiles/certain_fix_test.dir/certain_fix_test.cc.o"
  "CMakeFiles/certain_fix_test.dir/certain_fix_test.cc.o.d"
  "certain_fix_test"
  "certain_fix_test.pdb"
  "certain_fix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certain_fix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
