# Empty compiler generated dependencies file for multi_target_test.
# This may be replaced when dependencies are built.
