# Empty compiler generated dependencies file for dueling_test.
# This may be replaced when dependencies are built.
