file(REMOVE_RECURSE
  "CMakeFiles/dueling_test.dir/dueling_test.cc.o"
  "CMakeFiles/dueling_test.dir/dueling_test.cc.o.d"
  "dueling_test"
  "dueling_test.pdb"
  "dueling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dueling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
