# Empty compiler generated dependencies file for erminer_rl.
# This may be replaced when dependencies are built.
