file(REMOVE_RECURSE
  "liberminer_rl.a"
)
