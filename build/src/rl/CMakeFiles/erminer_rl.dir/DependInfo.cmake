
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/dqn.cc" "src/rl/CMakeFiles/erminer_rl.dir/dqn.cc.o" "gcc" "src/rl/CMakeFiles/erminer_rl.dir/dqn.cc.o.d"
  "/root/repo/src/rl/incremental_miner.cc" "src/rl/CMakeFiles/erminer_rl.dir/incremental_miner.cc.o" "gcc" "src/rl/CMakeFiles/erminer_rl.dir/incremental_miner.cc.o.d"
  "/root/repo/src/rl/prioritized_replay.cc" "src/rl/CMakeFiles/erminer_rl.dir/prioritized_replay.cc.o" "gcc" "src/rl/CMakeFiles/erminer_rl.dir/prioritized_replay.cc.o.d"
  "/root/repo/src/rl/replay_buffer.cc" "src/rl/CMakeFiles/erminer_rl.dir/replay_buffer.cc.o" "gcc" "src/rl/CMakeFiles/erminer_rl.dir/replay_buffer.cc.o.d"
  "/root/repo/src/rl/rl_miner.cc" "src/rl/CMakeFiles/erminer_rl.dir/rl_miner.cc.o" "gcc" "src/rl/CMakeFiles/erminer_rl.dir/rl_miner.cc.o.d"
  "/root/repo/src/rl/training_log.cc" "src/rl/CMakeFiles/erminer_rl.dir/training_log.cc.o" "gcc" "src/rl/CMakeFiles/erminer_rl.dir/training_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/erminer_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/erminer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/erminer_util.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/erminer_index.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/erminer_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
