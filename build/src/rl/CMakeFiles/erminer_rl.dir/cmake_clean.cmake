file(REMOVE_RECURSE
  "CMakeFiles/erminer_rl.dir/dqn.cc.o"
  "CMakeFiles/erminer_rl.dir/dqn.cc.o.d"
  "CMakeFiles/erminer_rl.dir/incremental_miner.cc.o"
  "CMakeFiles/erminer_rl.dir/incremental_miner.cc.o.d"
  "CMakeFiles/erminer_rl.dir/prioritized_replay.cc.o"
  "CMakeFiles/erminer_rl.dir/prioritized_replay.cc.o.d"
  "CMakeFiles/erminer_rl.dir/replay_buffer.cc.o"
  "CMakeFiles/erminer_rl.dir/replay_buffer.cc.o.d"
  "CMakeFiles/erminer_rl.dir/rl_miner.cc.o"
  "CMakeFiles/erminer_rl.dir/rl_miner.cc.o.d"
  "CMakeFiles/erminer_rl.dir/training_log.cc.o"
  "CMakeFiles/erminer_rl.dir/training_log.cc.o.d"
  "liberminer_rl.a"
  "liberminer_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erminer_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
