# Empty dependencies file for erminer_data.
# This may be replaced when dependencies are built.
