file(REMOVE_RECURSE
  "liberminer_data.a"
)
