
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/binning.cc" "src/data/CMakeFiles/erminer_data.dir/binning.cc.o" "gcc" "src/data/CMakeFiles/erminer_data.dir/binning.cc.o.d"
  "/root/repo/src/data/corpus.cc" "src/data/CMakeFiles/erminer_data.dir/corpus.cc.o" "gcc" "src/data/CMakeFiles/erminer_data.dir/corpus.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/data/CMakeFiles/erminer_data.dir/csv.cc.o" "gcc" "src/data/CMakeFiles/erminer_data.dir/csv.cc.o.d"
  "/root/repo/src/data/domain.cc" "src/data/CMakeFiles/erminer_data.dir/domain.cc.o" "gcc" "src/data/CMakeFiles/erminer_data.dir/domain.cc.o.d"
  "/root/repo/src/data/instance_match.cc" "src/data/CMakeFiles/erminer_data.dir/instance_match.cc.o" "gcc" "src/data/CMakeFiles/erminer_data.dir/instance_match.cc.o.d"
  "/root/repo/src/data/sampler.cc" "src/data/CMakeFiles/erminer_data.dir/sampler.cc.o" "gcc" "src/data/CMakeFiles/erminer_data.dir/sampler.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/data/CMakeFiles/erminer_data.dir/schema.cc.o" "gcc" "src/data/CMakeFiles/erminer_data.dir/schema.cc.o.d"
  "/root/repo/src/data/schema_match.cc" "src/data/CMakeFiles/erminer_data.dir/schema_match.cc.o" "gcc" "src/data/CMakeFiles/erminer_data.dir/schema_match.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/data/CMakeFiles/erminer_data.dir/stats.cc.o" "gcc" "src/data/CMakeFiles/erminer_data.dir/stats.cc.o.d"
  "/root/repo/src/data/table.cc" "src/data/CMakeFiles/erminer_data.dir/table.cc.o" "gcc" "src/data/CMakeFiles/erminer_data.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/erminer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
