file(REMOVE_RECURSE
  "CMakeFiles/erminer_data.dir/binning.cc.o"
  "CMakeFiles/erminer_data.dir/binning.cc.o.d"
  "CMakeFiles/erminer_data.dir/corpus.cc.o"
  "CMakeFiles/erminer_data.dir/corpus.cc.o.d"
  "CMakeFiles/erminer_data.dir/csv.cc.o"
  "CMakeFiles/erminer_data.dir/csv.cc.o.d"
  "CMakeFiles/erminer_data.dir/domain.cc.o"
  "CMakeFiles/erminer_data.dir/domain.cc.o.d"
  "CMakeFiles/erminer_data.dir/instance_match.cc.o"
  "CMakeFiles/erminer_data.dir/instance_match.cc.o.d"
  "CMakeFiles/erminer_data.dir/sampler.cc.o"
  "CMakeFiles/erminer_data.dir/sampler.cc.o.d"
  "CMakeFiles/erminer_data.dir/schema.cc.o"
  "CMakeFiles/erminer_data.dir/schema.cc.o.d"
  "CMakeFiles/erminer_data.dir/schema_match.cc.o"
  "CMakeFiles/erminer_data.dir/schema_match.cc.o.d"
  "CMakeFiles/erminer_data.dir/stats.cc.o"
  "CMakeFiles/erminer_data.dir/stats.cc.o.d"
  "CMakeFiles/erminer_data.dir/table.cc.o"
  "CMakeFiles/erminer_data.dir/table.cc.o.d"
  "liberminer_data.a"
  "liberminer_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erminer_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
