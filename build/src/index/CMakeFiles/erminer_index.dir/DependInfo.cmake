
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/eval_cache.cc" "src/index/CMakeFiles/erminer_index.dir/eval_cache.cc.o" "gcc" "src/index/CMakeFiles/erminer_index.dir/eval_cache.cc.o.d"
  "/root/repo/src/index/group_index.cc" "src/index/CMakeFiles/erminer_index.dir/group_index.cc.o" "gcc" "src/index/CMakeFiles/erminer_index.dir/group_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/erminer_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/erminer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
