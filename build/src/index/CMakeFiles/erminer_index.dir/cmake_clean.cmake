file(REMOVE_RECURSE
  "CMakeFiles/erminer_index.dir/eval_cache.cc.o"
  "CMakeFiles/erminer_index.dir/eval_cache.cc.o.d"
  "CMakeFiles/erminer_index.dir/group_index.cc.o"
  "CMakeFiles/erminer_index.dir/group_index.cc.o.d"
  "liberminer_index.a"
  "liberminer_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erminer_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
