file(REMOVE_RECURSE
  "liberminer_index.a"
)
