# Empty compiler generated dependencies file for erminer_index.
# This may be replaced when dependencies are built.
