file(REMOVE_RECURSE
  "liberminer_eval.a"
)
