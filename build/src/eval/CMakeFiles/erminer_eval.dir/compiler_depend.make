# Empty compiler generated dependencies file for erminer_eval.
# This may be replaced when dependencies are built.
