file(REMOVE_RECURSE
  "CMakeFiles/erminer_eval.dir/experiment.cc.o"
  "CMakeFiles/erminer_eval.dir/experiment.cc.o.d"
  "CMakeFiles/erminer_eval.dir/metrics.cc.o"
  "CMakeFiles/erminer_eval.dir/metrics.cc.o.d"
  "CMakeFiles/erminer_eval.dir/pipeline.cc.o"
  "CMakeFiles/erminer_eval.dir/pipeline.cc.o.d"
  "CMakeFiles/erminer_eval.dir/table.cc.o"
  "CMakeFiles/erminer_eval.dir/table.cc.o.d"
  "liberminer_eval.a"
  "liberminer_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erminer_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
