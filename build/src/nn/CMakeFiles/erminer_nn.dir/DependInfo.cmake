
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dueling.cc" "src/nn/CMakeFiles/erminer_nn.dir/dueling.cc.o" "gcc" "src/nn/CMakeFiles/erminer_nn.dir/dueling.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/erminer_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/erminer_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/erminer_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/erminer_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/erminer_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/erminer_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/nn/CMakeFiles/erminer_nn.dir/tensor.cc.o" "gcc" "src/nn/CMakeFiles/erminer_nn.dir/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/erminer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
