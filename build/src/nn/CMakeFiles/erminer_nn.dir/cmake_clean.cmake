file(REMOVE_RECURSE
  "CMakeFiles/erminer_nn.dir/dueling.cc.o"
  "CMakeFiles/erminer_nn.dir/dueling.cc.o.d"
  "CMakeFiles/erminer_nn.dir/loss.cc.o"
  "CMakeFiles/erminer_nn.dir/loss.cc.o.d"
  "CMakeFiles/erminer_nn.dir/mlp.cc.o"
  "CMakeFiles/erminer_nn.dir/mlp.cc.o.d"
  "CMakeFiles/erminer_nn.dir/optimizer.cc.o"
  "CMakeFiles/erminer_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/erminer_nn.dir/tensor.cc.o"
  "CMakeFiles/erminer_nn.dir/tensor.cc.o.d"
  "liberminer_nn.a"
  "liberminer_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erminer_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
