# Empty compiler generated dependencies file for erminer_nn.
# This may be replaced when dependencies are built.
