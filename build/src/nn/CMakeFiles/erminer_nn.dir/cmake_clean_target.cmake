file(REMOVE_RECURSE
  "liberminer_nn.a"
)
