
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/action_space.cc" "src/core/CMakeFiles/erminer_core.dir/action_space.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/action_space.cc.o.d"
  "/root/repo/src/core/beam_miner.cc" "src/core/CMakeFiles/erminer_core.dir/beam_miner.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/beam_miner.cc.o.d"
  "/root/repo/src/core/certain_fix.cc" "src/core/CMakeFiles/erminer_core.dir/certain_fix.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/certain_fix.cc.o.d"
  "/root/repo/src/core/cfd_miner.cc" "src/core/CMakeFiles/erminer_core.dir/cfd_miner.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/cfd_miner.cc.o.d"
  "/root/repo/src/core/domain_compress.cc" "src/core/CMakeFiles/erminer_core.dir/domain_compress.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/domain_compress.cc.o.d"
  "/root/repo/src/core/enu_miner.cc" "src/core/CMakeFiles/erminer_core.dir/enu_miner.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/enu_miner.cc.o.d"
  "/root/repo/src/core/environment.cc" "src/core/CMakeFiles/erminer_core.dir/environment.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/environment.cc.o.d"
  "/root/repo/src/core/mask.cc" "src/core/CMakeFiles/erminer_core.dir/mask.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/mask.cc.o.d"
  "/root/repo/src/core/measures.cc" "src/core/CMakeFiles/erminer_core.dir/measures.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/measures.cc.o.d"
  "/root/repo/src/core/multi_target.cc" "src/core/CMakeFiles/erminer_core.dir/multi_target.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/multi_target.cc.o.d"
  "/root/repo/src/core/repair.cc" "src/core/CMakeFiles/erminer_core.dir/repair.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/repair.cc.o.d"
  "/root/repo/src/core/rule.cc" "src/core/CMakeFiles/erminer_core.dir/rule.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/rule.cc.o.d"
  "/root/repo/src/core/rule_explain.cc" "src/core/CMakeFiles/erminer_core.dir/rule_explain.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/rule_explain.cc.o.d"
  "/root/repo/src/core/rule_io.cc" "src/core/CMakeFiles/erminer_core.dir/rule_io.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/rule_io.cc.o.d"
  "/root/repo/src/core/rule_set.cc" "src/core/CMakeFiles/erminer_core.dir/rule_set.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/rule_set.cc.o.d"
  "/root/repo/src/core/violations.cc" "src/core/CMakeFiles/erminer_core.dir/violations.cc.o" "gcc" "src/core/CMakeFiles/erminer_core.dir/violations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/erminer_index.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/erminer_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/erminer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
