# Empty dependencies file for erminer_core.
# This may be replaced when dependencies are built.
