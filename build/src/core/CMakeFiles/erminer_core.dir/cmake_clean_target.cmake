file(REMOVE_RECURSE
  "liberminer_core.a"
)
