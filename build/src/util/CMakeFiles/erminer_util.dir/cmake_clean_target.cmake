file(REMOVE_RECURSE
  "liberminer_util.a"
)
