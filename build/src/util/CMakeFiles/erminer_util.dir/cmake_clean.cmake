file(REMOVE_RECURSE
  "CMakeFiles/erminer_util.dir/config.cc.o"
  "CMakeFiles/erminer_util.dir/config.cc.o.d"
  "CMakeFiles/erminer_util.dir/logging.cc.o"
  "CMakeFiles/erminer_util.dir/logging.cc.o.d"
  "CMakeFiles/erminer_util.dir/random.cc.o"
  "CMakeFiles/erminer_util.dir/random.cc.o.d"
  "CMakeFiles/erminer_util.dir/status.cc.o"
  "CMakeFiles/erminer_util.dir/status.cc.o.d"
  "CMakeFiles/erminer_util.dir/string_util.cc.o"
  "CMakeFiles/erminer_util.dir/string_util.cc.o.d"
  "CMakeFiles/erminer_util.dir/thread_pool.cc.o"
  "CMakeFiles/erminer_util.dir/thread_pool.cc.o.d"
  "liberminer_util.a"
  "liberminer_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erminer_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
