# Empty compiler generated dependencies file for erminer_util.
# This may be replaced when dependencies are built.
