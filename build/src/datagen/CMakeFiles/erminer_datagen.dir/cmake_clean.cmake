file(REMOVE_RECURSE
  "CMakeFiles/erminer_datagen.dir/entity_pool.cc.o"
  "CMakeFiles/erminer_datagen.dir/entity_pool.cc.o.d"
  "CMakeFiles/erminer_datagen.dir/error_injector.cc.o"
  "CMakeFiles/erminer_datagen.dir/error_injector.cc.o.d"
  "CMakeFiles/erminer_datagen.dir/generators.cc.o"
  "CMakeFiles/erminer_datagen.dir/generators.cc.o.d"
  "CMakeFiles/erminer_datagen.dir/spec.cc.o"
  "CMakeFiles/erminer_datagen.dir/spec.cc.o.d"
  "liberminer_datagen.a"
  "liberminer_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erminer_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
