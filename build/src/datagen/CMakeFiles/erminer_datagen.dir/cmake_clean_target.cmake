file(REMOVE_RECURSE
  "liberminer_datagen.a"
)
