# Empty compiler generated dependencies file for erminer_datagen.
# This may be replaced when dependencies are built.
