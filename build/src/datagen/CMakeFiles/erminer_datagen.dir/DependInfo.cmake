
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/entity_pool.cc" "src/datagen/CMakeFiles/erminer_datagen.dir/entity_pool.cc.o" "gcc" "src/datagen/CMakeFiles/erminer_datagen.dir/entity_pool.cc.o.d"
  "/root/repo/src/datagen/error_injector.cc" "src/datagen/CMakeFiles/erminer_datagen.dir/error_injector.cc.o" "gcc" "src/datagen/CMakeFiles/erminer_datagen.dir/error_injector.cc.o.d"
  "/root/repo/src/datagen/generators.cc" "src/datagen/CMakeFiles/erminer_datagen.dir/generators.cc.o" "gcc" "src/datagen/CMakeFiles/erminer_datagen.dir/generators.cc.o.d"
  "/root/repo/src/datagen/spec.cc" "src/datagen/CMakeFiles/erminer_datagen.dir/spec.cc.o" "gcc" "src/datagen/CMakeFiles/erminer_datagen.dir/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/erminer_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/erminer_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
