// Domain example: incremental discovery with fine-tuning (Sec. V-D3).
// Registration data keeps arriving; instead of re-training RLMiner from
// scratch each night, RLMiner-ft reloads yesterday's agent, fine-tunes it
// briefly on the enriched corpus, and re-mines — at a fraction of the cost
// and with matching repair quality.
//
// Run: ./build/examples/incremental_discovery

#include <cstdio>
#include <sstream>

#include "core/repair.h"
#include "datagen/generators.h"
#include "eval/experiment.h"
#include "rl/rl_miner.h"

using namespace erminer;  // NOLINT: example brevity

int main() {
  GenOptions gen;
  gen.input_size = 2000;
  gen.master_size = 1000;
  gen.seed = 77;
  GeneratedDataset full_ds = MakeCovid(gen).ValueOrDie();
  Corpus full_corpus = BuildCorpus(full_ds).ValueOrDie();

  // The action space is built once, on the full corpus, so the value
  // network's dimensions stay fixed as rows are revealed.
  RlMinerOptions options = DefaultRlOptions(full_ds, /*k=*/25, /*seed=*/5);
  options.base.support_threshold = 60;
  options.train_steps = 2000;
  ActionSpaceOptions aopts;
  aopts.support_threshold = options.base.support_threshold;
  auto space = std::make_shared<ActionSpace>(
      ActionSpace::Build(full_corpus, aopts));

  std::stringstream weights;

  std::printf("%-6s %-12s %-14s %8s %9s\n", "day", "rows", "method", "F1",
              "time(s)");
  const double fractions[] = {0.5, 0.75, 1.0};
  for (int day = 0; day < 3; ++day) {
    size_t n = static_cast<size_t>(fractions[day] * 2000);
    Corpus corpus = full_corpus.TruncateRows(n, 1000);
    GeneratedDataset ds = full_ds.HeadRows(n, 1000);
    std::vector<ValueCode> truth = EncodeTruth(corpus, ds);

    auto score = [&](RlMiner* miner, const char* tag, double seconds) {
      MineResult result = miner->Infer();
      seconds += miner->last_inference_seconds();
      RuleEvaluator evaluator(&corpus);
      RepairOutcome repair = ApplyRules(&evaluator, result.rules);
      ClassificationReport r = WeightedPrf(truth, repair.prediction);
      std::printf("%-6d %-12zu %-14s %8.3f %9.2f\n", day, n, tag, r.f1,
                  seconds);
    };

    // Re-training from scratch every day.
    RlMiner scratch(&corpus, options, space);
    scratch.Train();
    score(&scratch, "scratch", scratch.last_train_seconds());

    // Fine-tuning yesterday's agent (day 0 trains fully and saves).
    RlMiner ft(&corpus, options, space);
    double seconds = 0;
    if (day == 0) {
      ft.Train();
    } else {
      std::stringstream in(weights.str());
      ERMINER_CHECK_OK(ft.LoadAgent(in));
      ft.Train(options.train_steps / 5);
    }
    seconds += ft.last_train_seconds();
    weights.str("");
    weights.clear();
    ERMINER_CHECK_OK(ft.SaveAgent(weights));
    score(&ft, day == 0 ? "ft (init)" : "fine-tune", seconds);
  }
  std::printf("\nFine-tuning reaches scratch-level F1 at ~1/5 the training "
              "steps once the\nagent has seen the initial corpus.\n");
  return 0;
}
