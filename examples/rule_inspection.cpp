// Domain example: presenting discovered rules to a data steward — prose
// explanations with sample fixes (ExplainRule), provable-error detection
// (DetectViolations), and the strict certain-fix census (ComputeCertainFixes)
// next to the certainty-weighted repair the evaluation uses.
//
// Run: ./build/examples/rule_inspection

#include <cstdio>

#include "core/certain_fix.h"
#include "core/enu_miner.h"
#include "core/rule_explain.h"
#include "core/violations.h"
#include "datagen/generators.h"
#include "eval/experiment.h"

using namespace erminer;  // NOLINT: example brevity

int main() {
  GenOptions gen;
  gen.input_size = 900;
  gen.master_size = 700;
  gen.noise_rate = 0.1;
  gen.seed = 4;
  GeneratedDataset ds = MakeCovid(gen).ValueOrDie();
  Corpus corpus = BuildCorpus(ds).ValueOrDie();

  MinerOptions options = DefaultMinerOptions(ds, /*k=*/8);
  options.support_threshold = 35;
  MineResult result = EnuMine(corpus, options);
  std::printf("mined %zu rules; explaining the top 3:\n\n",
              result.rules.size());

  RuleEvaluator evaluator(&corpus);
  for (size_t i = 0; i < result.rules.size() && i < 3; ++i) {
    RuleExplanation ex = ExplainRule(&evaluator, result.rules[i].rule, 3);
    std::printf("rule %zu: %s\n%s\n", i + 1,
                result.rules[i].rule.ToString(corpus).c_str(),
                FormatExplanation(ex).c_str());
  }

  // Error detection: cells that provably conflict with unanimous rules.
  ViolationReport violations = DetectViolations(&evaluator, result.rules);
  std::printf("violations (certainty-1 conflicts): %zu across %zu rows\n",
              violations.violations.size(), violations.num_flagged_rows);
  for (size_t i = 0; i < violations.violations.size() && i < 3; ++i) {
    const Violation& v = violations.violations[i];
    std::printf("  row %zu: '%s' contradicts expected '%s'\n", v.row,
                corpus.y_domain()->ValueOrNull(v.current).c_str(),
                corpus.y_domain()->ValueOrNull(v.expected).c_str());
  }

  // How many tuples admit a CERTAIN fix vs a best-effort vote?
  CertainFixOutcome certain = ComputeCertainFixes(&evaluator, result.rules);
  std::printf("\ncertain-fix census over %zu tuples:\n",
              corpus.input().num_rows());
  std::printf("  certain:     %zu\n", certain.num_certain);
  std::printf("  ambiguous:   %zu (rule returned several candidates)\n",
              certain.num_ambiguous);
  std::printf("  conflicting: %zu (rules disagree)\n",
              certain.num_conflicting);
  std::printf("  uncovered:   %zu\n", certain.num_uncovered);
  return 0;
}
