// Domain example: cleaning EVERY repairable attribute of a relation at
// once. The schemas are matched by value overlap (no shared column names
// needed), column statistics identify promising repair targets, and
// MineAllTargets runs EnuMiner once per matched attribute. Finally each
// attribute is repaired with its own rule set.
//
// Run: ./build/examples/multi_attribute_cleaning

#include <cstdio>

#include "core/enu_miner.h"
#include "core/multi_target.h"
#include "core/repair.h"
#include "data/instance_match.h"
#include "data/stats.h"
#include "datagen/generators.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "util/string_util.h"

using namespace erminer;  // NOLINT: example brevity

int main() {
  GenOptions gen;
  gen.input_size = 1200;
  gen.master_size = 900;
  gen.noise_rate = 0.12;
  gen.seed = 99;
  GeneratedDataset ds = MakeNursery(gen).ValueOrDie();

  // 1. Match schemas by value overlap (pretend the names were unknown).
  SchemaMatch match = MatchByValues(ds.input, ds.master);
  std::printf("instance matcher found %zu attribute pairs\n",
              match.num_pairs());

  // 2. Profile: which attributes have strong determinants (NMI) and are
  //    therefore promising repair targets?
  Table encoded = Table::EncodeFresh(ds.input).ValueOrDie();
  std::printf("\nstrongest dependency signal per attribute:\n");
  for (size_t c = 0; c < encoded.num_cols(); ++c) {
    auto ranked = RankDeterminants(encoded, c);
    if (ranked.empty()) continue;
    std::printf("  %-10s <- %-10s (NMI %.2f)\n",
                ds.input.schema.attribute(c).name.c_str(),
                ds.input.schema.attribute(ranked[0].determinant).name.c_str(),
                ranked[0].nmi);
  }

  // 3. Mine rules for every matched attribute.
  MinerFn miner = [](const Corpus& corpus) {
    MinerOptions o;
    o.k = 15;
    o.support_threshold = 60;
    return EnuMine(corpus, o);
  };
  auto targets =
      MineAllTargets(ds.input, ds.master, match, miner).ValueOrDie();

  // 4. Repair each target attribute with its own rule set and score it.
  TablePrinter table({"attribute", "rules", "precision", "recall", "F1"});
  for (const auto& tr : targets) {
    Corpus corpus = Corpus::Build(ds.input, ds.master, match, tr.y_input,
                                  tr.y_master)
                        .ValueOrDie();
    RuleEvaluator evaluator(&corpus);
    RepairOutcome repair = ApplyRules(&evaluator, tr.mine.rules);
    // Truth for this column from the clean input.
    std::vector<ValueCode> truth;
    Domain* dy = corpus.y_domain().get();
    for (const auto& row : ds.clean_input.rows) {
      truth.push_back(dy->GetOrAdd(row[static_cast<size_t>(tr.y_input)]));
    }
    ClassificationReport r = WeightedPrf(truth, repair.prediction);
    table.AddRow({tr.y_name, std::to_string(tr.mine.rules.size()),
                  FormatDouble(r.precision, 3), FormatDouble(r.recall, 3),
                  FormatDouble(r.f1, 3)});
  }
  std::printf("\nper-attribute repair quality:\n");
  table.Print();
  std::printf("\nAttributes with strong functional structure (class, "
              "finance) repair well;\nnear-independent ones cannot beat the "
              "majority candidate — exactly what\nthe NMI profile "
              "predicts.\n");
  return 0;
}
