// Domain example: the paper's motivating COVID-19 registration scenario
// (Example 1). Self-reported registration data contains typos and missing
// values; the national records (master data) cover only domestically
// infected patients. RLMiner must discover that the infection case is
// determined by (city, confirmed_date) — but only under the pattern
// overseas = "ovs0" (the paper's t_p[Overseas] = No) — and use it to repair
// the registrations without corrupting overseas cases.
//
// Run: ./build/examples/covid_repair

#include <cstdio>

#include "core/repair.h"
#include "datagen/generators.h"
#include "eval/experiment.h"
#include "rl/rl_miner.h"
#include "util/string_util.h"

using namespace erminer;  // NOLINT: example brevity

int main() {
  GenOptions gen;
  gen.input_size = 2500;   // paper's Covid-19 input size
  gen.master_size = 1824;  // paper's Covid-19 master size
  gen.noise_rate = 0.12;
  gen.seed = 2021;
  GeneratedDataset ds = MakeCovid(gen).ValueOrDie();
  Corpus corpus = BuildCorpus(ds).ValueOrDie();

  std::printf("Registration data: %zu rows (%zu cells perturbed); national "
              "records: %zu rows\n",
              ds.input.num_rows(), ds.injection.num_errors,
              ds.master.num_rows());

  RlMinerOptions options = DefaultRlOptions(ds, /*k=*/25, /*seed=*/3);
  options.base.support_threshold = 100;  // paper's default for Covid-19
  options.train_steps = 2500;
  RlMiner miner(&corpus, options);
  MineResult result = miner.Mine();
  std::printf("RLMiner trained for %zu steps (%.1fs), discovered %zu rules\n",
              miner.steps_done(), miner.last_train_seconds(),
              result.rules.size());

  // Does the rule set contain the paper's phi_1 -- (city, confirmed_date)
  // -> infection_case gated on "overseas"?
  int overseas = ds.input.schema.IndexOf("overseas");
  int city = ds.input.schema.IndexOf("city");
  int date = ds.input.schema.IndexOf("confirmed_date");
  bool found_phi1 = false;
  for (const auto& sr : result.rules) {
    if (sr.rule.HasLhsAttr(city) && sr.rule.HasLhsAttr(date) &&
        sr.rule.pattern.SpecifiesAttr(overseas)) {
      found_phi1 = true;
      std::printf("\nphi_1 recovered: %s\n  S=%ld C=%.3f Q=%+.3f U=%.1f\n",
                  sr.rule.ToString(corpus).c_str(), sr.stats.support,
                  sr.stats.certainty, sr.stats.quality, sr.stats.utility);
      break;
    }
  }
  if (!found_phi1) {
    std::printf("\nphi_1 not in the top rules this run; top rule is:\n  %s\n",
                result.rules.empty()
                    ? "(none)"
                    : result.rules[0].rule.ToString(corpus).c_str());
  }

  // Repair and score: overall, and split by overseas status to show the
  // pattern condition protecting overseas rows from bad fixes.
  RuleEvaluator evaluator(&corpus);
  RepairOutcome repair = ApplyRules(&evaluator, result.rules);
  std::vector<ValueCode> truth = EncodeTruth(corpus, ds);

  auto report = [&](const char* tag, const std::vector<uint8_t>* mask) {
    ClassificationReport r = WeightedPrf(truth, repair.prediction, mask);
    std::printf("  %-18s P=%.3f R=%.3f F1=%.3f (%zu rows, %zu predicted)\n",
                tag, r.precision, r.recall, r.f1, r.num_rows,
                r.num_predicted);
  };
  std::printf("\nRepair quality:\n");
  report("all rows", nullptr);

  std::vector<uint8_t> dirty_mask(truth.size(), 0);
  auto dirty = ds.YDirty();
  for (size_t i = 0; i < dirty.size(); ++i) dirty_mask[i] = dirty[i];
  report("dirty Y cells", &dirty_mask);

  std::vector<uint8_t> domestic(truth.size()), abroad(truth.size());
  for (size_t r = 0; r < ds.clean_input.num_rows(); ++r) {
    bool is_domestic =
        ds.clean_input.rows[r][static_cast<size_t>(overseas)] == "ovs0";
    domestic[r] = is_domestic;
    abroad[r] = !is_domestic;
  }
  report("domestic rows", &domestic);
  report("overseas rows", &abroad);
  std::printf("\nOverseas infections are absent from the master data, so "
              "rules without\nthe overseas pattern mis-repair them — the "
              "discovered pattern avoids that.\n");
  return 0;
}
