// Quickstart: generate a small Covid-like corpus, mine editing rules with
// RLMiner and EnuMiner, print the top rules, and repair the input data.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/enu_miner.h"
#include "core/repair.h"
#include "datagen/generators.h"
#include "eval/experiment.h"
#include "eval/table.h"
#include "rl/rl_miner.h"
#include "util/string_util.h"

using namespace erminer;  // NOLINT: example brevity

int main() {
  // 1. Generate a dirty input relation plus clean master data (schemas,
  //    split protocol and error model follow the paper's Covid-19 dataset).
  GenOptions gen;
  gen.input_size = 1200;
  gen.master_size = 900;
  gen.noise_rate = 0.1;
  gen.seed = 42;
  GeneratedDataset ds = MakeCovid(gen).ValueOrDie();
  std::printf("input: %zu rows x %zu attrs, master: %zu rows x %zu attrs\n",
              ds.input.num_rows(), ds.input.num_cols(),
              ds.master.num_rows(), ds.master.num_cols());

  // 2. Encode both relations into one Corpus (matched attributes share
  //    dictionaries; continuous attributes are binned).
  Corpus corpus = BuildCorpus(ds).ValueOrDie();

  // 3. Mine editing rules.
  MinerOptions options = DefaultMinerOptions(ds, /*k=*/10);
  options.support_threshold = 40;

  MineResult enu = EnuMine(corpus, options);
  std::printf("\nEnuMiner: %zu rules from %zu lattice nodes in %.2fs\n",
              enu.rules.size(), enu.nodes_explored, enu.seconds);

  RlMinerOptions rl_options = DefaultRlOptions(ds, /*k=*/10);
  rl_options.base.support_threshold = 40;
  rl_options.train_steps = 1500;
  RlMiner rl_miner(&corpus, rl_options);
  MineResult rl = rl_miner.Mine();
  std::printf("RLMiner:  %zu rules, train %.2fs + inference %.2fs\n",
              rl.rules.size(), rl.train_seconds, rl.inference_seconds);

  std::printf("\nTop RLMiner rules (S=support, C=certainty, Q=quality):\n");
  for (size_t i = 0; i < rl.rules.size() && i < 5; ++i) {
    const ScoredRule& r = rl.rules[i];
    std::printf("  U=%6.1f S=%5ld C=%.2f Q=%+.2f  %s\n", r.stats.utility,
                r.stats.support, r.stats.certainty, r.stats.quality,
                r.rule.ToString(corpus).c_str());
  }

  // 4. Repair the input's Y attribute with each rule set and score against
  //    the generator's ground truth.
  TablePrinter table({"method", "precision", "recall", "F1", "predicted"});
  for (auto& [name, result] : {std::pair<const char*, MineResult&>{
                                   "EnuMiner", enu},
                               {"RLMiner", rl}}) {
    TrialResult scored = ScoreRules(corpus, ds, std::move(result));
    table.AddRow({name, FormatDouble(scored.repair.precision, 3),
                  FormatDouble(scored.repair.recall, 3),
                  FormatDouble(scored.repair.f1, 3),
                  std::to_string(scored.repair.num_predicted)});
  }
  std::printf("\nRepair accuracy over all rows:\n");
  table.Print();
  return 0;
}
