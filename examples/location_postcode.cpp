// Domain example: filling missing postcodes in a store-location table from
// a government postcode registry (the paper's Location dataset, rule
// phi_2 = ((area_code, area_code), (County, County)) -> (Postcode,
// Postcode)). Also demonstrates CSV round-tripping of the repaired table
// and the comparison between EnuMiner and the CTANE baseline.
//
// Run: ./build/examples/location_postcode [output.csv]

#include <cstdio>

#include "core/cfd_miner.h"
#include "core/enu_miner.h"
#include "core/repair.h"
#include "data/csv.h"
#include "datagen/generators.h"
#include "eval/experiment.h"

using namespace erminer;  // NOLINT: example brevity

int main(int argc, char** argv) {
  GenOptions gen;
  gen.input_size = 2559;  // paper's Location sizes
  gen.master_size = 3430;
  gen.noise_rate = 0.15;  // the raw Location data is already quite dirty
  gen.seed = 8;
  GeneratedDataset ds = MakeLocation(gen).ValueOrDie();
  Corpus corpus = BuildCorpus(ds).ValueOrDie();

  int postcode = ds.input.schema.IndexOf("postcode");
  size_t missing = 0;
  for (const auto& row : ds.input.rows) {
    missing += row[static_cast<size_t>(postcode)].empty();
  }
  std::printf("store locations: %zu rows, %.1f%% missing postcodes; "
              "registry: %zu counties\n",
              ds.input.num_rows(),
              100.0 * static_cast<double>(missing) /
                  static_cast<double>(ds.input.num_rows()),
              ds.master.num_rows());

  MinerOptions options = DefaultMinerOptions(ds, /*k=*/20);
  MineResult enu = EnuMine(corpus, options);
  MineResult ctane = CfdMine(corpus, options);
  std::printf("EnuMiner found %zu rules; CTANE converted %zu CFDs\n",
              enu.rules.size(), ctane.rules.size());
  if (!enu.rules.empty()) {
    std::printf("top rule: %s\n", enu.rules[0].rule.ToString(corpus).c_str());
  }

  std::vector<ValueCode> truth = EncodeTruth(corpus, ds);
  RuleEvaluator evaluator(&corpus);
  for (auto& [name, mine] : {std::pair<const char*, MineResult&>{
                                 "EnuMiner", enu},
                             {"CTANE", ctane}}) {
    RepairOutcome repair = ApplyRules(&evaluator, mine.rules);
    ClassificationReport r = WeightedPrf(truth, repair.prediction);
    std::printf("  %-8s P=%.3f R=%.3f F1=%.3f\n", name, r.precision,
                r.recall, r.f1);
  }

  // Materialize the repaired table: fill missing postcodes with the
  // EnuMiner predictions and write it back out as CSV.
  RepairOutcome repair = ApplyRules(&evaluator, enu.rules);
  StringTable repaired = ds.input;
  Domain* dy = corpus.y_domain().get();
  size_t filled = 0;
  for (size_t r = 0; r < repaired.num_rows(); ++r) {
    auto& cell = repaired.rows[r][static_cast<size_t>(postcode)];
    if (cell.empty() && repair.prediction[r] != kNullCode) {
      cell = dy->value(repair.prediction[r]);
      ++filled;
    }
  }
  std::printf("filled %zu of %zu missing postcodes\n", filled, missing);
  if (argc > 1) {
    ERMINER_CHECK_OK(WriteCsvFile(repaired, argv[1]));
    std::printf("repaired table written to %s\n", argv[1]);
  }
  return 0;
}
