// Coverage for the small utilities: schedules, hashing, timer, logging.

#include <gtest/gtest.h>

#include "rl/schedule.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/timer.h"

namespace erminer {
namespace {

TEST(LinearScheduleTest, DecaysLinearlyThenFloors) {
  LinearSchedule s(1.0, 0.1, 1000, 0.5);  // decays over first 500 steps
  EXPECT_DOUBLE_EQ(s.Value(0), 1.0);
  EXPECT_NEAR(s.Value(250), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(s.Value(500), 0.1);
  EXPECT_DOUBLE_EQ(s.Value(999), 0.1);
  EXPECT_DOUBLE_EQ(s.Value(100000), 0.1);
}

TEST(LinearScheduleTest, ZeroTotalStepsSafe) {
  LinearSchedule s(1.0, 0.0, 0);
  EXPECT_DOUBLE_EQ(s.Value(5), 0.0);
}

TEST(HashTest, VectorHashDiscriminates) {
  VectorHash h;
  EXPECT_NE(h({1, 2, 3}), h({1, 2, 4}));
  EXPECT_NE(h({1, 2, 3}), h({3, 2, 1}));
  EXPECT_NE(h({}), h({0}));
  EXPECT_EQ(h({7, 8}), h({7, 8}));
}

TEST(HashTest, CombineOrderSensitive) {
  uint64_t a = 0, b = 0;
  HashCombine(&a, 1);
  HashCombine(&a, 2);
  HashCombine(&b, 2);
  HashCombine(&b, 1);
  EXPECT_NE(a, b);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + static_cast<double>(i);
  EXPECT_GT(t.Seconds(), 0.0);
  EXPECT_NEAR(t.Millis(), t.Seconds() * 1e3, t.Millis() * 0.5);
  double before = t.Seconds();
  t.Restart();
  EXPECT_LT(t.Seconds(), before + 1.0);
}

TEST(LoggingTest, LevelGatesOutput) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These must compile and be no-ops below the level (no crash, no output
  // assertions — stderr capture is not portable here).
  ERMINER_LOG(DEBUG) << "suppressed";
  ERMINER_LOG(INFO) << "suppressed";
  ERMINER_LOG(WARNING) << "suppressed";
  SetLogLevel(LogLevel::kNone);
  ERMINER_LOG(ERROR) << "also suppressed";
  SetLogLevel(original);
  EXPECT_EQ(GetLogLevel(), original);
}

}  // namespace
}  // namespace erminer
