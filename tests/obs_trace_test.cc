// Trace recorder + span export: disabled spans record nothing, enabled
// spans nest by interval containment, and the export is well-formed Chrome
// trace-event JSON (one event per line — the contract tools/trace_stats.cc
// builds on).

#include "obs/trace.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace erminer::obs {
namespace {

struct ParsedEvent {
  std::string name;
  std::string ph;
  int64_t ts = 0;
  int64_t dur = 0;
  int64_t tid = -1;
};

std::string JsonString(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  return line.substr(pos, line.find('"', pos) - pos);
}

int64_t JsonInt(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(line.c_str() + pos + needle.size(), nullptr, 10);
}

// Parses the one-event-per-line trace format. Fails the test on a
// structurally malformed export.
std::vector<ParsedEvent> ParseTrace(const std::string& json) {
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.find("\"displayTimeUnit\":\"ms\""),
            json.rfind("\"displayTimeUnit\""));
  std::vector<ParsedEvent> events;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("\"ph\"") == std::string::npos) continue;
    ParsedEvent e;
    e.name = JsonString(line, "name");
    e.ph = JsonString(line, "ph");
    e.ts = JsonInt(line, "ts");
    e.dur = JsonInt(line, "dur");
    e.tid = JsonInt(line, "tid");
    events.push_back(e);
  }
  return events;
}

TEST(TraceTest, DisabledRecordsNothing) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Disable();
  rec.Clear();
  {
    ERMINER_SPAN("obs_test/ignored");
  }
  EXPECT_EQ(rec.num_events(), 0u);
}

TEST(TraceTest, EnableClearsAndRecords) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable();
  {
    ERMINER_SPAN("obs_test/outer");
    ERMINER_SPAN("obs_test/inner");
  }
  EXPECT_EQ(rec.num_events(), 2u);
  rec.Enable();  // re-enabling rebases and clears
  EXPECT_EQ(rec.num_events(), 0u);
  rec.Disable();
}

// Busy-waits until the recorder clock advances by `us` microseconds, so the
// test spans get distinguishable timestamps and durations (the parent-first
// export order relies on dur being a tiebreak, which 0-length spans defeat).
void SpinMicros(int64_t us) {
  TraceRecorder& rec = TraceRecorder::Global();
  const int64_t until = rec.NowMicros() + us;
  while (rec.NowMicros() < until) {
  }
}

TEST(TraceTest, ExportIsWellFormedAndNested) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable();
  {
    ERMINER_SPAN("obs_test/parent");
    {
      ERMINER_SPAN("obs_test/child");
      SpinMicros(3);
    }
    {
      ERMINER_SPAN("obs_test/child");
      SpinMicros(3);
    }
  }
  rec.Disable();

  std::vector<ParsedEvent> events = ParseTrace(rec.ToJson());
  const ParsedEvent* parent = nullptr;
  std::vector<const ParsedEvent*> children;
  bool saw_thread_name = false;
  for (const ParsedEvent& e : events) {
    if (e.ph == "M") {
      saw_thread_name = true;
      continue;
    }
    ASSERT_EQ(e.ph, "X") << "only metadata and complete events expected";
    ASSERT_GE(e.ts, 0);
    ASSERT_GE(e.dur, 0);
    ASSERT_GE(e.tid, 0);
    if (e.name == "obs_test/parent") parent = &e;
    if (e.name == "obs_test/child") children.push_back(&e);
  }
  EXPECT_TRUE(saw_thread_name);
  ASSERT_NE(parent, nullptr);
  ASSERT_EQ(children.size(), 2u);
  for (const ParsedEvent* child : children) {
    // RAII scoping guarantees containment: child intervals lie inside the
    // parent's [ts, ts + dur].
    EXPECT_GE(child->ts, parent->ts);
    EXPECT_LE(child->ts + child->dur, parent->ts + parent->dur);
    EXPECT_EQ(child->tid, parent->tid);
  }
  // Per-tid ordering: parents precede children (ts asc, dur desc).
  EXPECT_LT(parent - events.data(), children[0] - events.data());
  rec.Clear();
}

TEST(TraceTest, DisableMidSpanDropsIt) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable();
  {
    ERMINER_SPAN("obs_test/dropped");
    rec.Disable();
  }
  EXPECT_EQ(rec.num_events(), 0u);
}

TEST(TraceTest, RecordDirect) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable();
  rec.Record("obs_test/manual", 10, 5);
  EXPECT_EQ(rec.num_events(), 1u);
  std::vector<ParsedEvent> events = ParseTrace(rec.ToJson());
  bool found = false;
  for (const ParsedEvent& e : events) {
    if (e.name != "obs_test/manual") continue;
    found = true;
    EXPECT_EQ(e.ts, 10);
    EXPECT_EQ(e.dur, 5);
  }
  EXPECT_TRUE(found);
  rec.Disable();
  rec.Clear();
}

}  // namespace
}  // namespace erminer::obs
