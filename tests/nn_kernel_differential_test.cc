// Differential proof of the NN kernel contract (docs/perf.md, "NN
// kernels"): every SIMD level (off/sse2/avx2), every thread count, and both
// state encodings (dense rows vs sparse index lists) compute bit-identical
// results — from a single kernel call all the way up to trained DQN weights
// and a checkpoint round-trip that switches SIMD level mid-training.
//
// Unsupported levels are skipped (GTEST_SKIP), so the test passes on any
// CPU; on x86-64 SSE2 is always available and the interesting comparisons
// always run.

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/serial.h"
#include "nn/kernels.h"
#include "nn/simd.h"
#include "rl/dqn.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace erminer {
namespace {

std::vector<nn::SimdLevel> SupportedLevels() {
  std::vector<nn::SimdLevel> levels = {nn::SimdLevel::kOff};
  if (nn::SimdLevelSupported(nn::SimdLevel::kSse2)) {
    levels.push_back(nn::SimdLevel::kSse2);
  }
  if (nn::SimdLevelSupported(nn::SimdLevel::kAvx2)) {
    levels.push_back(nn::SimdLevel::kAvx2);
  }
  return levels;
}

/// Restores serial execution and the CPU-default SIMD level on scope exit so
/// test order never leaks state.
struct EnvGuard {
  ~EnvGuard() {
    SetGlobalThreads(1);
    nn::SetSimdLevel(SupportedLevels().back());
  }
};

// ---------------------------------------------------------------------------
// Kernel-level: every table entry, on awkward values (negative zeros, exact
// zeros that trigger the skip path, magnitudes spanning 2^-30..2^30, lengths
// that exercise both full lanes and scalar tails).

std::vector<float> AwkwardBuffer(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n);
  for (auto& v : out) {
    const double u = rng.NextDouble();
    if (u < 0.08) {
      v = 0.0f;
    } else if (u < 0.12) {
      v = -0.0f;
    } else {
      const double mag = std::pow(2.0, (rng.NextDouble() * 60.0) - 30.0);
      v = static_cast<float>((rng.NextDouble() < 0.5 ? -1.0 : 1.0) * mag);
    }
  }
  return out;
}

TEST(KernelTableBitwise, AllOpsMatchScalarOnAwkwardValues) {
  const auto levels = SupportedLevels();
  if (levels.size() < 2) GTEST_SKIP() << "no SIMD level to compare";
  const nn::KernelOps& ref = nn::kScalarOps;
  // Lengths straddling lane widths: tails of every size for 4- and 8-wide.
  for (size_t n : {1u, 3u, 4u, 7u, 8u, 9u, 31u, 64u, 65u}) {
    const size_t m = 5, k = 6;
    const auto a = AwkwardBuffer(m * k, 1000 + n);
    const auto b = AwkwardBuffer(k * n, 2000 + n);
    const auto g = AwkwardBuffer(m * n, 3000 + n);
    for (nn::SimdLevel level : levels) {
      if (level == nn::SimdLevel::kOff) continue;
      const nn::KernelOps& ops = level == nn::SimdLevel::kSse2
                                     ? nn::kSse2Ops
                                     : nn::kAvx2Ops;
      SCOPED_TRACE(std::string(nn::SimdLevelName(level)) +
                   " n=" + std::to_string(n));
      auto CheckEq = [&](const std::vector<float>& x,
                         const std::vector<float>& y) {
        ASSERT_EQ(x.size(), y.size());
        ASSERT_EQ(0,
                  std::memcmp(x.data(), y.data(), x.size() * sizeof(float)));
      };

      {  // matmul_rows
        auto c1 = AwkwardBuffer(m * n, 4000 + n), c2 = c1;
        ref.matmul_rows(a.data(), b.data(), c1.data(), k, n, 0, m);
        ops.matmul_rows(a.data(), b.data(), c2.data(), k, n, 0, m);
        CheckEq(c1, c2);
      }
      {  // matmul_ta_chunk (a is k x m here)
        auto c1 = AwkwardBuffer(m * n, 5000 + n), c2 = c1;
        const auto at = AwkwardBuffer(k * m, 5500 + n);
        ref.matmul_ta_chunk(at.data(), b.data(), c1.data(), m, n, 0, k);
        ops.matmul_ta_chunk(at.data(), b.data(), c2.data(), m, n, 0, k);
        CheckEq(c1, c2);
      }
      {  // matmul_tbt_rows (bt is k x n)
        std::vector<float> c1(m * n, 7.0f), c2(m * n, -7.0f);  // overwritten
        ref.matmul_tbt_rows(a.data(), b.data(), c1.data(), k, n, 0, m);
        ops.matmul_tbt_rows(a.data(), b.data(), c2.data(), k, n, 0, m);
        CheckEq(c1, c2);
      }
      {  // add_row / axpy
        auto y1 = AwkwardBuffer(n, 6000 + n), y2 = y1;
        ref.add_row(y1.data(), b.data(), n);
        ops.add_row(y2.data(), b.data(), n);
        CheckEq(y1, y2);
        ref.axpy(y1.data(), b.data(), -1.25f, n);
        ops.axpy(y2.data(), b.data(), -1.25f, n);
        CheckEq(y1, y2);
      }
      {  // relu / relu_bwd
        std::vector<float> y1(m * n), y2(m * n);
        ref.relu(y1.data(), g.data(), m * n);
        ops.relu(y2.data(), g.data(), m * n);
        CheckEq(y1, y2);
        const auto grad = AwkwardBuffer(m * n, 7000 + n);
        ref.relu_bwd(y1.data(), g.data(), grad.data(), m * n);
        ops.relu_bwd(y2.data(), g.data(), grad.data(), m * n);
        CheckEq(y1, y2);
      }
      {  // sum_rows_chunk
        auto s1 = AwkwardBuffer(n, 8000 + n), s2 = s1;
        ref.sum_rows_chunk(g.data(), s1.data(), n, 0, m);
        ops.sum_rows_chunk(g.data(), s2.data(), n, 0, m);
        CheckEq(s1, s2);
      }
      {  // adam
        auto p1 = AwkwardBuffer(n, 9000 + n), p2 = p1;
        auto m1 = AwkwardBuffer(n, 9100 + n), m2 = m1;
        // Second moments must be non-negative (they are running means of
        // g^2); keep the sqrt argument in-domain as training would.
        auto v1 = AwkwardBuffer(n, 9200 + n);
        for (auto& v : v1) v = std::fabs(v);
        auto v2 = v1;
        const auto gr = AwkwardBuffer(n, 9300 + n);
        ref.adam(p1.data(), gr.data(), m1.data(), v1.data(), n, 0.9f, 0.999f,
                 1e-3f, 1e-8f, 0.1f, 0.01f);
        ops.adam(p2.data(), gr.data(), m2.data(), v2.data(), n, 0.9f, 0.999f,
                 1e-3f, 1e-8f, 0.1f, 0.01f);
        CheckEq(p1, p2);
        CheckEq(m1, m2);
        CheckEq(v1, v2);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Agent-level: a full DQN training scenario (forward, backward, Adam,
// target syncs, batched inference) must produce byte-identical weights and
// Q-values at every SIMD level, thread count, and state encoding.

struct ScenarioResult {
  std::string weights;        // online net serialized
  std::vector<float> qvalues; // probe-state Q rows, concatenated
  std::vector<int32_t> actions;
};

RuleKey MakeKey(Rng* rng, size_t state_dim) {
  RuleKey key;
  for (size_t i = 0; i < state_dim; ++i) {
    if (rng->NextDouble() < 0.15) key.push_back(static_cast<int32_t>(i));
  }
  return key;  // ascending by construction
}

DqnOptions ScenarioOptions(bool sparse, bool variants) {
  DqnOptions opt;
  opt.hidden = {48, 32};
  opt.batch_size = 16;
  opt.min_replay = 16;
  opt.target_sync_every = 7;
  opt.seed = 99;
  opt.sparse_state = sparse;
  if (variants) {
    opt.double_dqn = true;
    opt.dueling = true;
    opt.prioritized = true;
  }
  return opt;
}

void FeedTransitions(DqnAgent* agent, size_t count, size_t state_dim,
                     size_t num_actions, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    Transition t;
    t.state = MakeKey(&rng, state_dim);
    t.next_state = MakeKey(&rng, state_dim);
    t.action = static_cast<int32_t>(rng.NextUint64(num_actions));
    t.reward = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
    t.done = rng.NextDouble() < 0.1;
    t.next_mask.assign(num_actions, 1);
    agent->Observe(std::move(t));
  }
}

ScenarioResult RunScenario(nn::SimdLevel level, long threads, bool sparse,
                           bool variants) {
  nn::SetSimdLevel(level);
  SetGlobalThreads(threads);
  constexpr size_t kStateDim = 40;
  constexpr size_t kNumActions = 11;
  DqnAgent agent(kStateDim, kNumActions, ScenarioOptions(sparse, variants));
  FeedTransitions(&agent, 64, kStateDim, kNumActions, 7);
  for (int step = 0; step < 30; ++step) agent.TrainStep();

  ScenarioResult result;
  Rng probe_rng(55);
  std::vector<RuleKey> probes;
  for (int i = 0; i < 8; ++i) probes.push_back(MakeKey(&probe_rng, kStateDim));
  std::vector<const RuleKey*> states;
  std::vector<uint8_t> mask(kNumActions, 1);
  std::vector<const std::vector<uint8_t>*> masks;
  for (const auto& p : probes) {
    states.push_back(&p);
    masks.push_back(&mask);
  }
  result.qvalues = agent.QValuesBatch(states).data();
  result.actions = agent.ActGreedyBatch(states, masks);
  std::ostringstream oss;
  EXPECT_TRUE(agent.SaveWeights(oss).ok());
  result.weights = oss.str();
  return result;
}

void ExpectSameResult(const ScenarioResult& a, const ScenarioResult& b,
                      const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.weights, b.weights) << "trained weights diverged";
  ASSERT_EQ(a.qvalues.size(), b.qvalues.size());
  EXPECT_EQ(0, std::memcmp(a.qvalues.data(), b.qvalues.data(),
                           a.qvalues.size() * sizeof(float)));
  EXPECT_EQ(a.actions, b.actions);
}

TEST(DqnDifferential, BitwiseAcrossSimdLevelsAndThreads) {
  EnvGuard guard;
  const ScenarioResult base =
      RunScenario(nn::SimdLevel::kOff, 1, /*sparse=*/true, /*variants=*/false);
  for (nn::SimdLevel level : SupportedLevels()) {
    for (long threads : {1L, 2L, 4L}) {
      if (level == nn::SimdLevel::kOff && threads == 1) continue;
      ExpectSameResult(base, RunScenario(level, threads, true, false),
                       std::string("level=") + nn::SimdLevelName(level) +
                           " threads=" + std::to_string(threads));
    }
  }
}

TEST(DqnDifferential, DenseAndSparseEncodingsMatch) {
  EnvGuard guard;
  const ScenarioResult dense =
      RunScenario(SupportedLevels().back(), 2, /*sparse=*/false, false);
  const ScenarioResult sparse =
      RunScenario(SupportedLevels().back(), 2, /*sparse=*/true, false);
  ExpectSameResult(dense, sparse, "dense vs sparse");
  // And the sparse-scalar corner: encoding x SIMD interplay.
  ExpectSameResult(dense, RunScenario(nn::SimdLevel::kOff, 1, true, false),
                   "dense-simd vs sparse-scalar");
}

TEST(DqnDifferential, VariantStackBitwiseAcrossLevels) {
  EnvGuard guard;
  // Double DQN + dueling + prioritized replay exercise every kernel
  // (dueling heads, sparse trunk, per-sample IS weights).
  const ScenarioResult base =
      RunScenario(nn::SimdLevel::kOff, 1, true, /*variants=*/true);
  for (nn::SimdLevel level : SupportedLevels()) {
    if (level == nn::SimdLevel::kOff) continue;
    ExpectSameResult(base, RunScenario(level, 4, true, true),
                     std::string("variants level=") +
                         nn::SimdLevelName(level));
  }
}

TEST(DqnDifferential, CheckpointRoundTripAcrossSimdLevels) {
  EnvGuard guard;
  const auto levels = SupportedLevels();
  if (levels.size() < 2) GTEST_SKIP() << "no SIMD level to compare";
  constexpr size_t kStateDim = 40;
  constexpr size_t kNumActions = 11;

  // Train under the highest level, checkpoint mid-training.
  nn::SetSimdLevel(levels.back());
  SetGlobalThreads(2);
  DqnAgent trained(kStateDim, kNumActions, ScenarioOptions(true, false));
  FeedTransitions(&trained, 64, kStateDim, kNumActions, 7);
  for (int step = 0; step < 10; ++step) trained.TrainStep();
  ckpt::Writer w;
  ASSERT_TRUE(trained.SaveState(&w).ok());

  // Continue the original to completion under the same level.
  for (int step = 0; step < 10; ++step) trained.TrainStep();
  std::ostringstream continued;
  ASSERT_TRUE(trained.SaveWeights(continued).ok());

  // Restore under every other level and continue identically: the snapshot
  // format is kernel-agnostic, so the resumed run must land on the same
  // bytes.
  for (nn::SimdLevel level : levels) {
    if (level == levels.back()) continue;
    nn::SetSimdLevel(level);
    DqnAgent resumed(kStateDim, kNumActions, ScenarioOptions(true, false));
    ckpt::Reader r(w.buffer());
    ASSERT_TRUE(resumed.LoadState(&r).ok());
    for (int step = 0; step < 10; ++step) resumed.TrainStep();
    std::ostringstream resumed_weights;
    ASSERT_TRUE(resumed.SaveWeights(resumed_weights).ok());
    EXPECT_EQ(continued.str(), resumed_weights.str())
        << "resume diverged at level " << nn::SimdLevelName(level);
  }
}

}  // namespace
}  // namespace erminer
