#include "data/binning.h"

#include <gtest/gtest.h>

namespace erminer {
namespace {

TEST(ParseNumericTest, AcceptsDecimals) {
  EXPECT_DOUBLE_EQ(*ParseNumeric("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseNumeric("-2"), -2.0);
  EXPECT_DOUBLE_EQ(*ParseNumeric("1e3"), 1000.0);
}

TEST(ParseNumericTest, RejectsGarbage) {
  EXPECT_FALSE(ParseNumeric("").has_value());
  EXPECT_FALSE(ParseNumeric("abc").has_value());
  EXPECT_FALSE(ParseNumeric("1.2x").has_value());
}

TEST(DiscretizerTest, EqualFrequencyBins) {
  std::vector<std::string> samples;
  for (int i = 0; i < 100; ++i) samples.push_back(std::to_string(i));
  Discretizer d = Discretizer::Fit(samples, 4);
  EXPECT_EQ(d.num_bins(), 4);
  // Same bin for nearby values, different for far values.
  EXPECT_EQ(d.Apply("1"), d.Apply("2"));
  EXPECT_NE(d.Apply("1"), d.Apply("99"));
}

TEST(DiscretizerTest, AllValuesLandInSomeBin) {
  std::vector<std::string> samples = {"1", "5", "9", "13"};
  Discretizer d = Discretizer::Fit(samples, 3);
  for (const char* v : {"-100", "1", "7", "13", "1000"}) {
    EXPECT_FALSE(d.Apply(v).empty());
    EXPECT_NE(d.Apply(v), v);  // became a range label
  }
}

TEST(DiscretizerTest, NonNumericPassThrough) {
  Discretizer d = Discretizer::Fit({"1", "2", "3", "4"}, 2);
  EXPECT_EQ(d.Apply("oops"), "oops");
  EXPECT_EQ(d.Apply(""), "");
}

TEST(DiscretizerTest, NoNumericSamplesIsNoOp) {
  Discretizer d = Discretizer::Fit({"a", "b"}, 3);
  EXPECT_EQ(d.num_bins(), 0);
  EXPECT_EQ(d.Apply("5"), "5");
}

TEST(DiscretizerTest, ConstantColumnCollapsesToOneBin) {
  Discretizer d = Discretizer::Fit({"7", "7", "7"}, 4);
  EXPECT_EQ(d.Apply("7"), d.Apply("7.0"));
}

TEST(DiscretizeJointlyTest, SharedEdgesAcrossTables) {
  StringTable a, b;
  a.schema = Schema::FromNames({"age"});
  b.schema = Schema::FromNames({"age"});
  for (int i = 0; i < 60; ++i) a.rows.push_back({std::to_string(i)});
  for (int i = 40; i < 100; ++i) b.rows.push_back({std::to_string(i)});
  ContinuousBinding binding;
  binding.column_per_table = {0, 0};
  ASSERT_TRUE(DiscretizeJointly({&a, &b}, {binding}, 4).ok());
  // The same numeric value gets the same label in both tables (edges are
  // fit jointly, not per table).
  EXPECT_EQ(a.rows[45][0], b.rows[5][0]);   // both were "45"
  EXPECT_EQ(a.rows[59][0], b.rows[19][0]);  // both were "59"
  // Kind flipped to discrete.
  EXPECT_EQ(a.schema.attribute(0).kind, AttributeKind::kDiscrete);
}

TEST(DiscretizeJointlyTest, AbsentColumnSkipsTable) {
  StringTable a, b;
  a.schema = Schema::FromNames({"x"});
  b.schema = Schema::FromNames({"y"});
  a.rows = {{"1"}, {"2"}, {"3"}, {"4"}};
  b.rows = {{"keep"}};
  ContinuousBinding binding;
  binding.column_per_table = {0, -1};
  ASSERT_TRUE(DiscretizeJointly({&a, &b}, {binding}, 2).ok());
  EXPECT_EQ(b.rows[0][0], "keep");
  EXPECT_NE(a.rows[0][0], "1");
}

TEST(DiscretizeJointlyTest, BadBindingWidthFails) {
  StringTable a;
  a.schema = Schema::FromNames({"x"});
  ContinuousBinding binding;
  binding.column_per_table = {0, 0};  // two entries, one table
  EXPECT_FALSE(DiscretizeJointly({&a}, {binding}, 2).ok());
}

}  // namespace
}  // namespace erminer
