#include "core/beam_miner.h"

#include <gtest/gtest.h>

#include "core/enu_miner.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;
using erminer::testing::MakeTinyCorpus;

MinerOptions SmallOptions() {
  MinerOptions o;
  o.k = 10;
  o.support_threshold = 20;
  return o;
}

TEST(BeamMinerTest, FindsThePlantedRule) {
  Corpus c = MakeExactFdCorpus();
  MineResult r = BeamMine(c, SmallOptions());
  ASSERT_FALSE(r.rules.empty());
  bool found = false;
  for (const auto& sr : r.rules) {
    found |= (sr.rule.lhs == LhsPairs{{0, 0}, {1, 1}} &&
              sr.stats.certainty == 1.0);
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(IsNonRedundant(r.rules));
}

TEST(BeamMinerTest, ExploresNoMoreThanEnuMiner) {
  Corpus c = MakeExactFdCorpus();
  MinerOptions o = SmallOptions();
  BeamMinerOptions narrow;
  narrow.beam_width = 2;
  MineResult beam = BeamMine(c, o, narrow);
  MineResult enu = EnuMine(c, o);
  EXPECT_LE(beam.nodes_explored, enu.nodes_explored);
  ASSERT_FALSE(beam.rules.empty());
  ASSERT_FALSE(enu.rules.empty());
  // The beam's best rule cannot beat the exhaustive best.
  EXPECT_LE(beam.rules[0].stats.utility,
            enu.rules[0].stats.utility + 1e-9);
}

TEST(BeamMinerTest, WiderBeamFindsAtLeastAsGoodTopRule) {
  Corpus c = MakeExactFdCorpus();
  MinerOptions o = SmallOptions();
  BeamMinerOptions w1, w2;
  w1.beam_width = 1;
  w2.beam_width = 32;
  MineResult narrow = BeamMine(c, o, w1);
  MineResult wide = BeamMine(c, o, w2);
  if (!narrow.rules.empty() && !wide.rules.empty()) {
    EXPECT_GE(wide.rules[0].stats.utility,
              narrow.rules[0].stats.utility - 1e-9);
  }
}

TEST(BeamMinerTest, DepthLimitBoundsRuleSize) {
  Corpus c = MakeExactFdCorpus();
  BeamMinerOptions b;
  b.max_depth = 2;
  MineResult r = BeamMine(c, SmallOptions(), b);
  for (const auto& sr : r.rules) {
    EXPECT_LE(sr.rule.LhsSize() + sr.rule.PatternSize(), 2u);
  }
}

TEST(BeamMinerTest, SupportThresholdRespected) {
  Corpus c = MakeTinyCorpus();
  MinerOptions o;
  o.k = 10;
  o.support_threshold = 3;
  MineResult r = BeamMine(c, o);
  for (const auto& sr : r.rules) {
    EXPECT_GE(sr.stats.support, 3);
    EXPECT_GE(sr.rule.LhsSize(), 1u);
  }
}

}  // namespace
}  // namespace erminer
