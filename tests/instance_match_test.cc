#include "data/instance_match.h"

#include <gtest/gtest.h>

namespace erminer {
namespace {

StringTable MakeInput() {
  StringTable t;
  t.schema = Schema::FromNames({"Zip", "Town", "Junk"});
  t.rows = {
      {"10001", "springfield", "x1"}, {"10002", "shelbyville", "x2"},
      {"10003", "ogdenville", "x3"},  {"10001", "springfield", "x4"},
  };
  return t;
}

StringTable MakeMaster() {
  StringTable t;
  // Different names, overlapping values; an extra unrelated column.
  t.schema = Schema::FromNames({"City", "Postcode", "Ref"});
  t.rows = {
      {"springfield", "10001", "r1"},
      {"shelbyville", "10002", "r2"},
      {"capital city", "10009", "r3"},
  };
  return t;
}

TEST(InstanceMatchTest, ScoresReflectOverlap) {
  auto cands = ScoreMatches(MakeInput(), MakeMaster(), {});
  ASSERT_FALSE(cands.empty());
  // Best candidates must link Zip<->Postcode and Town<->City.
  bool zip = false, town = false;
  for (const auto& c : cands) {
    if (c.input_col == 0 && c.master_col == 1) {
      zip = true;
      EXPECT_GT(c.score, 0.6);
    }
    if (c.input_col == 1 && c.master_col == 0) {
      town = true;
      EXPECT_GT(c.score, 0.6);
    }
    EXPECT_GE(c.score, 0.5);  // threshold respected
  }
  EXPECT_TRUE(zip);
  EXPECT_TRUE(town);
}

TEST(InstanceMatchTest, BuildsOneToOneMatch) {
  SchemaMatch m = MatchByValues(MakeInput(), MakeMaster());
  EXPECT_TRUE(m.Contains(0, 1));  // Zip - Postcode
  EXPECT_TRUE(m.Contains(1, 0));  // Town - City
  EXPECT_TRUE(m.Matches(2).empty());
  EXPECT_EQ(m.num_pairs(), 2u);
}

TEST(InstanceMatchTest, OneToOnePreventsDoubleAssignment) {
  // Duplicate the master postcode column; only one may match Zip.
  StringTable master = MakeMaster();
  master.schema = Schema::FromNames({"City", "Postcode", "Postcode2"});
  for (auto& r : master.rows) r[2] = r[1];
  InstanceMatchOptions opts;
  SchemaMatch m = MatchByValues(MakeInput(), master, opts);
  EXPECT_EQ(m.Matches(0).size(), 1u);

  opts.one_to_one = false;
  SchemaMatch multi = MatchByValues(MakeInput(), master, opts);
  EXPECT_EQ(multi.Matches(0).size(), 2u);
}

TEST(InstanceMatchTest, ThresholdFiltersWeakPairs) {
  InstanceMatchOptions strict;
  strict.min_score = 0.99;
  SchemaMatch m = MatchByValues(MakeInput(), MakeMaster(), strict);
  // Town ⊂ City fully (springfield, shelbyville, ogdenville? ogdenville is
  // not in master) -> containment 2/3 < 0.99; nothing passes.
  EXPECT_EQ(m.num_pairs(), 0u);
}

TEST(InstanceMatchTest, EmptyColumnsNeverMatch) {
  StringTable input = MakeInput();
  for (auto& r : input.rows) r[2].clear();  // Junk all null
  auto cands = ScoreMatches(input, MakeMaster(), {});
  for (const auto& c : cands) EXPECT_NE(c.input_col, 2);
}

TEST(InstanceMatchTest, DirtyValuesToleratedByContainment) {
  // The input has typos; containment against the smaller (clean) master
  // set still links the columns.
  StringTable input = MakeInput();
  input.rows.push_back({"1ooo1", "sprngfield", "x"});
  input.rows.push_back({"10x01", "springfeld", "x"});
  SchemaMatch m = MatchByValues(input, MakeMaster());
  EXPECT_TRUE(m.Contains(0, 1));
  EXPECT_TRUE(m.Contains(1, 0));
}

}  // namespace
}  // namespace erminer
