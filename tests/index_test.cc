// GroupIndex and EvalCache tests over the hand-checkable tiny corpus.

#include <gtest/gtest.h>

#include "index/eval_cache.h"
#include "index/group_index.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeTinyCorpus;

TEST(GroupIndexTest, GroupsAndCounts) {
  Corpus c = MakeTinyCorpus();
  GroupIndex idx = GroupIndex::Build(c.master(), {0}, 1);
  EXPECT_EQ(idx.num_groups(), 2u);
  Domain* dom = c.master().domain(0).get();
  const Group* g1 = idx.Find({dom->Lookup("a1")});
  ASSERT_NE(g1, nullptr);
  EXPECT_EQ(g1->total, 3);
  EXPECT_EQ(g1->max_count, 2);
  EXPECT_EQ(g1->argmax, c.master().domain(1)->Lookup("y1"));
  EXPECT_DOUBLE_EQ(g1->Certainty(), 2.0 / 3.0);
  const Group* g2 = idx.Find({dom->Lookup("a2")});
  ASSERT_NE(g2, nullptr);
  EXPECT_EQ(g2->total, 1);
  EXPECT_DOUBLE_EQ(g2->Certainty(), 1.0);
}

TEST(GroupIndexTest, MissingKeyReturnsNull) {
  Corpus c = MakeTinyCorpus();
  GroupIndex idx = GroupIndex::Build(c.master(), {0}, 1);
  EXPECT_EQ(idx.Find({9999}), nullptr);
}

TEST(GroupIndexTest, EmptyKeyIsOneGlobalGroup) {
  Corpus c = MakeTinyCorpus();
  GroupIndex idx = GroupIndex::Build(c.master(), {}, 1);
  EXPECT_EQ(idx.num_groups(), 1u);
  const Group* g = idx.Find({});
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->total, 4);
  EXPECT_EQ(g->max_count, 2);  // y1:2, y2:2 tie -> first seen wins argmax
}

TEST(GroupIndexTest, SkipsNullKeysAndTargets) {
  StringTable ms;
  ms.schema = Schema::FromNames({"A", "Y"});
  ms.rows = {{"a", "y"}, {"", "y"}, {"a", ""}};
  Table t = Table::EncodeFresh(ms).ValueOrDie();
  GroupIndex idx = GroupIndex::Build(t, {0}, 1);
  EXPECT_EQ(idx.num_groups(), 1u);
  const Group* g = idx.Find({t.domain(0)->Lookup("a")});
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->total, 1);
}

TEST(EvalCacheTest, ColumnMapsRowsToGroups) {
  Corpus c = MakeTinyCorpus();
  EvalCache cache(&c);
  auto entry = cache.Get({{0, 0}});
  const auto& col = entry.column->group;
  ASSERT_EQ(col.size(), 5u);
  EXPECT_NE(col[0], nullptr);  // a1 in master
  EXPECT_NE(col[1], nullptr);  // a1
  EXPECT_NE(col[2], nullptr);  // a2
  EXPECT_EQ(col[3], nullptr);  // a3 unmatched
  EXPECT_NE(col[4], nullptr);  // a1 (null Y does not affect the key)
  EXPECT_DOUBLE_EQ(col[0]->Certainty(), 2.0 / 3.0);
}

TEST(EvalCacheTest, CachesByLhs) {
  Corpus c = MakeTinyCorpus();
  EvalCache cache(&c);
  cache.Get({{0, 0}});
  EXPECT_EQ(cache.num_built(), 1u);
  cache.Get({{0, 0}});
  EXPECT_EQ(cache.num_built(), 1u);
  cache.Get({});
  EXPECT_EQ(cache.num_built(), 2u);
}

TEST(EvalCacheTest, EvictionRebuildsButEntriesStayValid) {
  Corpus c = erminer::testing::MakeExactFdCorpus();
  EvalCache cache(&c, /*capacity=*/2);
  auto e1 = cache.Get({{0, 0}});
  auto e2 = cache.Get({{1, 1}});
  auto e3 = cache.Get({{0, 0}, {1, 1}});  // evicts the LRU entry
  auto e4 = cache.Get({{0, 0}});          // rebuilt
  EXPECT_GE(cache.num_built(), 4u);
  // e1 is still usable even though its cache slot was evicted.
  EXPECT_EQ(e1.column->group.size(), c.input().num_rows());
  (void)e2;
  (void)e3;
  (void)e4;
}

TEST(EvalCacheTest, LhsKeyOfIsPositional) {
  EXPECT_EQ(LhsKeyOf({{1, 2}, {3, 4}}), (std::vector<int32_t>{1, 2, 3, 4}));
  EXPECT_NE(LhsKeyOf({{1, 2}}), LhsKeyOf({{2, 1}}));
}

}  // namespace
}  // namespace erminer
