// Differential tests for the partition-refinement engine: a GroupIndex /
// EvalCache entry derived from its parent (docs/perf.md) must be
// bit-identical to one built from scratch — group order, keys, counts
// (insertion order included), argmax, member rows and the EvalColumn — for
// every dataset generator and every thread count, and each miner must
// produce identical rule sets with refinement on and off. EXPECT_EQ on
// doubles is deliberate: the contract is bit-identity, not tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "core/beam_miner.h"
#include "core/cfd_miner.h"
#include "core/enu_miner.h"
#include "eval/experiment.h"
#include "index/eval_cache.h"
#include "index/group_index.h"
#include "rl/rl_miner.h"
#include "test_util.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace erminer {
namespace {

using erminer::testing::SeededCorpusCache;

void ExpectIndexIdentical(const GroupIndex& refined,
                          const GroupIndex& scratch) {
  ASSERT_EQ(refined.xm_cols(), scratch.xm_cols());
  ASSERT_EQ(refined.num_groups(), scratch.num_groups());
  const size_t k = scratch.xm_cols().size();
  for (size_t gid = 0; gid < scratch.num_groups(); ++gid) {
    for (size_t i = 0; i < k; ++i) {
      ASSERT_EQ(refined.key_of(gid)[i], scratch.key_of(gid)[i])
          << "group " << gid << " key column " << i;
    }
    const Group& a = refined.group(gid);
    const Group& b = scratch.group(gid);
    ASSERT_EQ(a.counts, b.counts) << "group " << gid;  // values AND order
    ASSERT_EQ(a.total, b.total);
    ASSERT_EQ(a.max_count, b.max_count);
    ASSERT_EQ(a.argmax, b.argmax);
    auto [ab, ae] = refined.rows_of(gid);
    auto [bb, be] = scratch.rows_of(gid);
    ASSERT_EQ(ae - ab, be - bb) << "group " << gid;
    ASSERT_TRUE(std::equal(ab, ae, bb)) << "group " << gid;
  }
}

/// (input, master) attribute pairs usable as LHS pairs.
LhsPairs MatchedPairs(const Corpus& corpus) {
  LhsPairs pairs;
  for (size_t a = 0; a < corpus.input().num_cols(); ++a) {
    if (static_cast<int>(a) == corpus.y_input()) continue;
    for (int m : corpus.match().Matches(static_cast<int>(a))) {
      if (m == corpus.y_master()) continue;
      pairs.emplace_back(static_cast<int>(a), m);
    }
  }
  return pairs;
}

/// Random LHS chains: grow an LHS one random pair at a time, refining the
/// previous level's index, and check every level against a scratch build.
void RunLhsChains(const std::string& dataset, uint64_t seed) {
  const GeneratedDataset& ds =
      SeededCorpusCache::Get(dataset, 1200, 500, seed);
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  const LhsPairs pairs = MatchedPairs(corpus);
  ASSERT_GE(pairs.size(), 2u);
  for (long threads : {1L, 4L}) {
    SetGlobalThreads(threads);
    Rng rng(seed * 31 + static_cast<uint64_t>(threads));
    for (int chain = 0; chain < 4; ++chain) {
      LhsPairs order = pairs;
      for (size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.NextUint64(i)]);
      }
      LhsPairs lhs;
      GroupIndex parent =
          GroupIndex::Build(corpus.master(), {}, corpus.y_master());
      const size_t depth = std::min<size_t>(order.size(), 4);
      for (size_t d = 0; d < depth; ++d) {
        lhs.push_back(order[d]);
        std::sort(lhs.begin(), lhs.end());
        std::vector<int> xm_cols;
        for (const auto& [a, am] : lhs) {
          (void)a;
          xm_cols.push_back(am);
        }
        GroupIndex scratch =
            GroupIndex::Build(corpus.master(), xm_cols, corpus.y_master());
        GroupIndex refined = GroupIndex::BuildRefined(
            corpus.master(), parent, xm_cols, corpus.y_master());
        ExpectIndexIdentical(refined, scratch);
        parent = std::move(refined);
      }
    }
    SetGlobalThreads(1);
  }
}

TEST(RefineDifferentialTest, LhsChainsAdult) { RunLhsChains("Adult", 101); }
TEST(RefineDifferentialTest, LhsChainsNursery) {
  RunLhsChains("nursery", 102);
}
TEST(RefineDifferentialTest, LhsChainsCovid) { RunLhsChains("covid", 103); }
TEST(RefineDifferentialTest, LhsChainsLocation) {
  RunLhsChains("Location", 104);
}

/// EvalCache entries (index AND EvalColumn) built through the parent-hint
/// refinement path vs the scratch path.
void RunCacheChains(const std::string& dataset, uint64_t seed) {
  const GeneratedDataset& ds =
      SeededCorpusCache::Get(dataset, 1200, 500, seed);
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  const LhsPairs pairs = MatchedPairs(corpus);
  ASSERT_GE(pairs.size(), 2u);
  for (long threads : {1L, 4L}) {
    SetGlobalThreads(threads);
    EvalCache refined_cache(&corpus, 64);
    EvalCache scratch_cache(&corpus, 64);
    scratch_cache.set_refine_enabled(false);
    ASSERT_TRUE(refined_cache.refine_enabled());
    ASSERT_FALSE(scratch_cache.refine_enabled());
    Rng rng(seed * 47 + static_cast<uint64_t>(threads));
    for (int chain = 0; chain < 3; ++chain) {
      LhsPairs order = pairs;
      for (size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng.NextUint64(i)]);
      }
      LhsPairs lhs;
      const size_t depth = std::min<size_t>(order.size(), 3);
      for (size_t d = 0; d < depth; ++d) {
        const LhsPairs parent = lhs;
        lhs.push_back(order[d]);
        std::sort(lhs.begin(), lhs.end());
        EvalCache::Entry refined = refined_cache.Get(lhs, &parent);
        EvalCache::Entry scratch = scratch_cache.Get(lhs, &parent);
        ExpectIndexIdentical(*refined.index, *scratch.index);
        const auto& rg = refined.column->group;
        const auto& sg = scratch.column->group;
        ASSERT_EQ(rg.size(), sg.size());
        for (size_t r = 0; r < rg.size(); ++r) {
          ASSERT_EQ(rg[r] == nullptr, sg[r] == nullptr) << "row " << r;
          if (rg[r] != nullptr) {
            ASSERT_EQ(refined.index->IdOf(rg[r]), scratch.index->IdOf(sg[r]))
                << "row " << r;
          }
        }
      }
    }
    SetGlobalThreads(1);
  }
}

TEST(RefineDifferentialTest, CacheChainsAdult) {
  RunCacheChains("Adult", 201);
}
TEST(RefineDifferentialTest, CacheChainsNursery) {
  RunCacheChains("nursery", 202);
}
TEST(RefineDifferentialTest, CacheChainsCovid) {
  RunCacheChains("covid", 203);
}
TEST(RefineDifferentialTest, CacheChainsLocation) {
  RunCacheChains("Location", 204);
}

/// A stale or wrong parent hint must fall back to a correct scratch build.
TEST(RefineDifferentialTest, InvalidHintsFallBackToScratch) {
  Corpus corpus = erminer::testing::MakeExactFdCorpus();
  const LhsPairs pairs = MatchedPairs(corpus);
  ASSERT_GE(pairs.size(), 2u);
  EvalCache cache(&corpus, 16);
  LhsPairs child = {pairs[0], pairs[1]};
  std::sort(child.begin(), child.end());
  // Parent never requested (not resident), parent == child, parent totally
  // unrelated, and parent two levels up — all must yield the scratch result.
  const LhsPairs absent = {pairs[0]};
  const LhsPairs same = child;
  const LhsPairs empty;
  for (const LhsPairs* hint : {&absent, &same, &empty}) {
    EvalCache fresh(&corpus, 16);
    fresh.set_refine_enabled(false);
    EvalCache::Entry want = fresh.Get(child);
    EvalCache hinted(&corpus, 16);
    EvalCache::Entry got = hinted.Get(child, hint);
    ExpectIndexIdentical(*got.index, *want.index);
  }
}

MinerOptions BaseOptions(const GeneratedDataset& ds, bool refine) {
  MinerOptions o;
  o.k = 20;
  o.support_threshold =
      std::max(10.0, static_cast<double>(ds.input.num_rows()) / 40.0);
  o.max_nodes = 200'000;
  o.refine = refine;
  return o;
}

void ExpectSameMineResult(const MineResult& a, const MineResult& b) {
  ASSERT_EQ(a.rules.size(), b.rules.size());
  for (size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].rule, b.rules[i].rule) << "rule " << i;
    EXPECT_EQ(a.rules[i].stats.support, b.rules[i].stats.support);
    EXPECT_EQ(a.rules[i].stats.certainty, b.rules[i].stats.certainty);
    EXPECT_EQ(a.rules[i].stats.quality, b.rules[i].stats.quality);
    EXPECT_EQ(a.rules[i].stats.utility, b.rules[i].stats.utility);
  }
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.rule_evaluations, b.rule_evaluations);
}

/// Mined rule sets must be bit-identical with refinement on vs off, for
/// every thread count (the --no-refine acceptance criterion).
void RunMinerOnOff(const std::function<MineResult(const Corpus&, bool)>& mine,
                   const GeneratedDataset& ds) {
  for (long threads : {1L, 4L}) {
    SetGlobalThreads(threads);
    Corpus corpus = BuildCorpus(ds).ValueOrDie();
    MineResult on = mine(corpus, true);
    MineResult off = mine(corpus, false);
    SetGlobalThreads(1);
    ExpectSameMineResult(on, off);
  }
}

TEST(RefineDifferentialTest, EnuMinerOnOffIdentical) {
  const GeneratedDataset& ds =
      SeededCorpusCache::Get("Adult", 1000, 300, 301);
  RunMinerOnOff(
      [&](const Corpus& c, bool refine) {
        return EnuMineH3(c, BaseOptions(ds, refine));
      },
      ds);
}

TEST(RefineDifferentialTest, CtaneOnOffIdentical) {
  const GeneratedDataset& ds =
      SeededCorpusCache::Get("nursery", 1000, 400, 302);
  RunMinerOnOff(
      [&](const Corpus& c, bool refine) {
        return CfdMine(c, BaseOptions(ds, refine));
      },
      ds);
}

TEST(RefineDifferentialTest, BeamMinerOnOffIdentical) {
  const GeneratedDataset& ds =
      SeededCorpusCache::Get("covid", 1000, 300, 303);
  RunMinerOnOff(
      [&](const Corpus& c, bool refine) {
        return BeamMine(c, BaseOptions(ds, refine), {});
      },
      ds);
}

TEST(RefineDifferentialTest, RlMinerInferenceOnOffIdentical) {
  const GeneratedDataset& ds =
      SeededCorpusCache::Get("Adult", 1000, 300, 304);
  RunMinerOnOff(
      [&](const Corpus& c, bool refine) {
        RlMinerOptions rl;
        rl.base = BaseOptions(ds, refine);
        rl.seed = 123;
        rl.max_inference_steps = 150;
        RlMiner miner(&c, rl);
        return miner.Infer();
      },
      ds);
}

}  // namespace
}  // namespace erminer
