// The negated-pattern extension (\bar{a} conditions of Def. 1 / [18]).

#include <gtest/gtest.h>

#include "core/domain_compress.h"
#include "core/enu_miner.h"
#include "core/measures.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeTinyCorpus;

TEST(NegationTest, NegatedItemMatchesComplement) {
  PatternItem item{0, {2, 5}, "!v", true};
  EXPECT_FALSE(item.Matches(2));
  EXPECT_FALSE(item.Matches(5));
  EXPECT_TRUE(item.Matches(3));
  EXPECT_FALSE(item.Matches(kNullCode));  // unknown matches neither form
}

TEST(NegationTest, NegatedAndPositiveItemsDiffer) {
  PatternItem pos{0, {2}, "v", false};
  PatternItem neg{0, {2}, "!v", true};
  EXPECT_FALSE(pos == neg);
}

TEST(NegationTest, CompressDomainEmitsNegations) {
  Corpus c = MakeTinyCorpus();
  DomainCompressOptions opts;
  opts.include_negations = true;
  auto items = CompressDomain(c, 0, opts);  // A: a1(3), a2(1), a3(1)
  size_t negated = 0;
  for (const auto& it : items) {
    if (it.negated) {
      ++negated;
      EXPECT_EQ(it.label[0], '!');
    }
  }
  // !a1 has frequency 2, !a2 and !a3 have 4: all pass min_frequency=0.
  EXPECT_EQ(negated, 3u);
  EXPECT_EQ(items.size(), 6u);
}

TEST(NegationTest, NegationFrequencyPruned) {
  Corpus c = MakeTinyCorpus();
  DomainCompressOptions opts;
  opts.include_negations = true;
  opts.min_frequency = 3;  // positives: only a1 (3); negations need >= 3
  auto items = CompressDomain(c, 0, opts);
  // Only a1 survives the positive bar; with a single candidate left, no
  // negations are emitted (complement of everything = nothing informative).
  ASSERT_EQ(items.size(), 1u);
  EXPECT_FALSE(items[0].negated);
}

TEST(NegationTest, CoverOfNegatedConditionIsComplement) {
  Corpus c = MakeTinyCorpus();
  ValueCode g1 = c.input().domain(1)->Lookup("g1");
  Pattern pos, neg;
  pos.Add({1, {g1}, "g1", false});
  neg.Add({1, {g1}, "!g1", true});
  Cover cp = CoverOf(c, pos);
  Cover cn = CoverOf(c, neg);
  // 5 rows, none null on G: complement partition.
  EXPECT_EQ(cp->size() + cn->size(), 5u);
  for (uint32_t r : *cn) {
    EXPECT_EQ(c.input().CellString(r, 1), "g2");
  }
}

TEST(NegationTest, EnuMinerWithNegationsExploresMore) {
  Corpus c = MakeTinyCorpus();
  MinerOptions base;
  base.k = 20;
  base.support_threshold = 1;
  MinerOptions with_neg = base;
  with_neg.include_negations = true;
  MineResult plain = EnuMine(c, base);
  MineResult neg = EnuMine(c, with_neg);
  EXPECT_GT(neg.nodes_explored, plain.nodes_explored);
}

TEST(NegationTest, NegatedRuleEvaluatesCorrectly) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  EditingRule r;
  r.y_input = 2;
  r.y_master = 1;
  r.AddLhs(0, 0);
  r.pattern.Add({1, {c.input().domain(1)->Lookup("g2")}, "!g2", true});
  // !g2 covers rows r0, r2, r3, r4 (same as g1 here).
  RuleStats s = ev.Evaluate(r);
  EXPECT_EQ(s.support, 3);
  EXPECT_NEAR(s.certainty, 7.0 / 9.0, 1e-12);
}

}  // namespace
}  // namespace erminer
