// Concurrent-access determinism for the metrics registry and trace recorder:
// N threads hammering the same names must lose no increments, and spans
// recorded from pool workers must export cleanly. Runs under TSan via
// scripts/sanitize.sh (label: concurrency).

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace erminer::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIncrementsPerThread = 50000;

TEST(ObsConcurrencyTest, CounterLosesNoIncrements) {
  Counter& c =
      MetricsRegistry::Global().GetCounter("obs_concurrency/counter");
  c.Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncrementsPerThread; ++i) c.Inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

TEST(ObsConcurrencyTest, MacroLookupRacesResolveToOneObject) {
  // First-use registration from many threads at once must yield one object.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        ERMINER_COUNT("obs_concurrency/macro_race", 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("obs_concurrency/macro_race")
          .value(),
      static_cast<uint64_t>(kThreads) * 1000);
}

TEST(ObsConcurrencyTest, GaugeAddIsExactForIntegralSteps) {
  Gauge& g = MetricsRegistry::Global().GetGauge("obs_concurrency/gauge");
  g.Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 10000; ++i) g.Add(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(g.value(), kThreads * 10000.0);
}

TEST(ObsConcurrencyTest, HistogramCountsEveryObserve) {
  Histogram& h = MetricsRegistry::Global().GetHistogram(
      "obs_concurrency/hist", {0.25, 0.5, 0.75});
  h.Reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 10000; ++i) {
        h.Observe(static_cast<double>(t % 4) * 0.25);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * 10000);
  uint64_t total = 0;
  for (uint64_t b : h.bucket_counts()) total += b;
  EXPECT_EQ(total, h.count());
}

TEST(ObsConcurrencyTest, PoolWorkersCountThroughParallelFor) {
  ThreadPool pool(kThreads);
  Counter& c =
      MetricsRegistry::Global().GetCounter("obs_concurrency/parallel_for");
  c.Reset();
  constexpr size_t kItems = 100000;
  pool.ParallelFor(0, kItems, /*grain=*/128,
                   [&c](size_t begin, size_t end) { c.Inc(end - begin); });
  EXPECT_EQ(c.value(), kItems);
}

TEST(ObsConcurrencyTest, ConcurrentSpansExportConsistently) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable();
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ERMINER_SPAN("obs_concurrency/span");
      }
    });
  }
  for (auto& th : threads) th.join();
  rec.Disable();
  EXPECT_EQ(rec.num_events(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  // Export with writers quiesced must be parseable and complete.
  const std::string json = rec.ToJson();
  size_t complete_events = 0;
  for (size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++complete_events;
  }
  EXPECT_EQ(complete_events, static_cast<size_t>(kThreads) * kSpansPerThread);
  rec.Clear();
}

TEST(ObsConcurrencyTest, SnapshotWhileWriting) {
  // Snapshot concurrent with increments must see a value between 0 and the
  // final total and never tear or crash.
  Counter& c =
      MetricsRegistry::Global().GetCounter("obs_concurrency/snapshot");
  c.Reset();
  std::atomic<bool> done{false};
  std::thread writer([&c, &done] {
    for (int i = 0; i < kIncrementsPerThread; ++i) c.Inc();
    done.store(true);
  });
  while (!done.load()) {
    MetricsSnapshot s = MetricsRegistry::Global().Snapshot();
    EXPECT_LE(s.counters.at("obs_concurrency/snapshot"),
              static_cast<uint64_t>(kIncrementsPerThread));
  }
  writer.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kIncrementsPerThread));
}

}  // namespace
}  // namespace erminer::obs
