#include "nn/dueling.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "nn/q_network.h"

namespace erminer {
namespace {

TEST(DuelingNetTest, QHasMeanAdvantageZeroStructure) {
  Rng rng(3);
  DuelingNet net({4, 8}, 3, &rng);
  Tensor x(2, 4, 0.5f);
  Tensor q = net.Forward(x);
  EXPECT_EQ(q.rows(), 2u);
  EXPECT_EQ(q.cols(), 3u);
  // Q - mean(Q per row) equals A - mean(A): the advantage stream has zero
  // mean by construction, so rows of Q differ from V by zero-mean offsets.
  for (size_t b = 0; b < 2; ++b) {
    float mean = (q.at(b, 0) + q.at(b, 1) + q.at(b, 2)) / 3.0f;
    // V(s) equals the row mean of Q.
    (void)mean;  // structure asserted via gradient test below
  }
}

float LossOf(DuelingNet* net, const Tensor& x) {
  Tensor q = net->Forward(x);
  float l = 0;
  for (float v : q.data()) l += 0.5f * v * v;
  return l;
}

TEST(DuelingNetTest, GradientMatchesFiniteDifference) {
  Rng rng(5);
  DuelingNet net({3, 6}, 4, &rng);
  Tensor x(2, 3);
  for (float& v : x.data()) v = static_cast<float>(rng.NextGaussian());

  Tensor q = net.Forward(x);
  net.ZeroGrad();
  net.Backward(q);  // dL/dq = q for L = 0.5*sum(q^2)
  auto params = net.Parameters();
  auto grads = net.Gradients();
  const float eps = 1e-3f;
  int checked = 0;
  for (size_t p = 0; p < params.size(); ++p) {
    for (size_t i = 0; i < params[p]->size(); i += 3) {
      float orig = params[p]->data()[i];
      params[p]->data()[i] = orig + eps;
      float lp = LossOf(&net, x);
      params[p]->data()[i] = orig - eps;
      float lm = LossOf(&net, x);
      params[p]->data()[i] = orig;
      float numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(numeric, grads[p]->data()[i],
                  5e-2f * std::max(1.0f, std::fabs(numeric)))
          << "param " << p << " index " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 15);
}

TEST(DuelingNetTest, CopyWeightsMakesNetsAgree) {
  Rng rng(7);
  DuelingNet a({3, 6}, 2, &rng);
  DuelingNet b({3, 6}, 2, &rng);
  Tensor x(1, 3, 1.0f);
  b.CopyWeightsFrom(a);
  EXPECT_EQ(a.Forward(x).data(), b.Forward(x).data());
}

TEST(DuelingNetTest, SaveLoadRoundTrip) {
  Rng rng(9);
  DuelingNet a({4, 5}, 3, &rng);
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());
  DuelingNet b = DuelingNet::Load(ss).ValueOrDie();
  Tensor x(2, 4, 0.3f);
  EXPECT_EQ(a.Forward(x).data(), b.Forward(x).data());
}

TEST(DuelingNetTest, LoadRejectsGarbage) {
  std::stringstream ss;
  ss << "garbage";
  EXPECT_FALSE(DuelingNet::Load(ss).ok());
}

TEST(QNetworkTest, MlpAdapterSaveLoad) {
  Rng rng(11);
  MlpQNetwork a({3, 4, 2}, &rng);
  MlpQNetwork b({3, 4, 2}, &rng);
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());
  ASSERT_TRUE(b.LoadFrom(ss).ok());
  Tensor x(1, 3, 0.7f);
  EXPECT_EQ(a.Forward(x).data(), b.Forward(x).data());
}

TEST(QNetworkTest, MlpAdapterRejectsWrongShape) {
  Rng rng(13);
  MlpQNetwork a({3, 4, 2}, &rng);
  MlpQNetwork b({5, 4, 2}, &rng);
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());
  EXPECT_FALSE(b.LoadFrom(ss).ok());
}

TEST(QNetworkTest, DuelingAdapterRoundTrip) {
  Rng rng(15);
  DuelingQNetwork a({3, 6}, 4, &rng);
  DuelingQNetwork b({3, 6}, 4, &rng);
  std::stringstream ss;
  ASSERT_TRUE(a.Save(ss).ok());
  ASSERT_TRUE(b.LoadFrom(ss).ok());
  Tensor x(1, 3, 0.2f);
  EXPECT_EQ(a.Forward(x).data(), b.Forward(x).data());
}

}  // namespace
}  // namespace erminer
