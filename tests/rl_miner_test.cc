// RLMiner end-to-end on small corpora: rule quality, invariants, agent
// persistence and the fine-tuning path.

#include "rl/rl_miner.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/enu_miner.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::MakeExactFdCorpus;

RlMinerOptions SmallRl(uint64_t seed = 21) {
  RlMinerOptions o;
  o.base.k = 8;
  o.base.support_threshold = 20;
  o.train_steps = 600;
  o.seed = seed;
  o.dqn.hidden = {32, 32};
  return o;
}

TEST(RlMinerTest, FindsHighUtilityRulesOnExactCorpus) {
  Corpus c = MakeExactFdCorpus();
  RlMiner miner(&c, SmallRl());
  MineResult r = miner.Mine();
  ASSERT_FALSE(r.rules.empty());
  // The planted rule {(A,A),(B,B)} (C=1) must be in the result.
  bool found = false;
  for (const auto& sr : r.rules) {
    if (sr.rule.lhs == LhsPairs{{0, 0}, {1, 1}}) {
      found = true;
      EXPECT_DOUBLE_EQ(sr.stats.certainty, 1.0);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(IsNonRedundant(r.rules));
  EXPECT_GT(miner.episodes_done(), 0u);
  EXPECT_GE(miner.steps_done(), 600u);
}

TEST(RlMinerTest, UtilityParityWithEnuMinerOnSmallCorpus) {
  Corpus c = MakeExactFdCorpus();
  MinerOptions enu_opts;
  enu_opts.k = 8;
  enu_opts.support_threshold = 20;
  MineResult enu = EnuMine(c, enu_opts);
  RlMiner miner(&c, SmallRl());
  MineResult rl = miner.Mine();
  ASSERT_FALSE(enu.rules.empty());
  ASSERT_FALSE(rl.rules.empty());
  // The top RLMiner rule reaches at least 90% of EnuMiner's top utility.
  EXPECT_GE(rl.rules[0].stats.utility, 0.9 * enu.rules[0].stats.utility);
}

TEST(RlMinerTest, RulesMeetSupportThreshold) {
  Corpus c = MakeExactFdCorpus();
  RlMinerOptions o = SmallRl();
  RlMiner miner(&c, o);
  MineResult r = miner.Mine();
  for (const auto& sr : r.rules) {
    EXPECT_GE(static_cast<double>(sr.stats.support),
              o.base.support_threshold);
    EXPECT_FALSE(sr.rule.lhs.empty());
  }
  EXPECT_LE(r.rules.size(), o.base.k);
}

TEST(RlMinerTest, InferWithoutTrainingStillReturnsRules) {
  Corpus c = MakeExactFdCorpus();
  RlMiner miner(&c, SmallRl());
  MineResult r = miner.Infer();  // untrained greedy walk
  EXPECT_TRUE(IsNonRedundant(r.rules));
}

TEST(RlMinerTest, SaveLoadAgentPreservesPolicy) {
  Corpus c = MakeExactFdCorpus();
  RlMinerOptions o = SmallRl();
  RlMiner a(&c, o);
  a.Train(300);
  std::stringstream ss;
  ASSERT_TRUE(a.SaveAgent(ss).ok());

  RlMiner b(&c, o);
  ASSERT_TRUE(b.LoadAgent(ss).ok());
  EXPECT_EQ(a.agent().QValues({0}), b.agent().QValues({0}));
}

TEST(RlMinerTest, FineTuneOnTruncatedCorpusViaSharedSpace) {
  // Build the action space on the FULL corpus; train on a truncated view;
  // fine-tune on the full corpus with transferred weights.
  Corpus full = MakeExactFdCorpus(300, 80);
  auto space = std::make_shared<ActionSpace>(ActionSpace::Build(full, {}));
  Corpus half = full.TruncateRows(150, 40);

  RlMinerOptions o = SmallRl();
  RlMiner pre(&half, o, space);
  pre.Train(400);
  std::stringstream ss;
  ASSERT_TRUE(pre.SaveAgent(ss).ok());

  RlMiner ft(&full, o, space);
  ASSERT_TRUE(ft.LoadAgent(ss).ok());
  ft.Train(150);  // short fine-tune instead of full training
  MineResult r = ft.Infer();
  ASSERT_FALSE(r.rules.empty());
  bool found = false;
  for (const auto& sr : r.rules) {
    found |= (sr.rule.lhs == LhsPairs{{0, 0}, {1, 1}});
  }
  EXPECT_TRUE(found);
}

TEST(RlMinerTest, DeterministicGivenSeed) {
  Corpus c = MakeExactFdCorpus();
  RlMiner a(&c, SmallRl(5));
  RlMiner b(&c, SmallRl(5));
  MineResult ra = a.Mine();
  MineResult rb = b.Mine();
  ASSERT_EQ(ra.rules.size(), rb.rules.size());
  for (size_t i = 0; i < ra.rules.size(); ++i) {
    EXPECT_EQ(ra.rules[i].rule, rb.rules[i].rule);
  }
}

}  // namespace
}  // namespace erminer
