// Hand-computed measure checks (Eqs. 1-5) on the tiny corpus, plus the
// Lemma 1 property (domination => support anti-monotone) verified over
// randomized rules on a generated corpus.

#include "core/measures.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/action_space.h"
#include "core/mask.h"
#include "datagen/generators.h"
#include "eval/experiment.h"
#include "test_util.h"
#include "util/random.h"

namespace erminer {
namespace {

using erminer::testing::MakeTinyCorpus;

EditingRule TinyRule(const Corpus& c, bool with_pattern) {
  EditingRule r;
  r.y_input = 2;
  r.y_master = 1;
  r.AddLhs(0, 0);
  if (with_pattern) {
    r.pattern.Add({1, {c.input().domain(1)->Lookup("g1")}, "g1"});
  }
  return r;
}

TEST(MeasuresTest, HandComputedNoPattern) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  RuleStats s = ev.Evaluate(TinyRule(c, false));
  EXPECT_EQ(s.support, 4);                     // r3's a3 is not in master
  EXPECT_NEAR(s.certainty, 0.75, 1e-12);       // (2/3+2/3+1+2/3)/4
  EXPECT_NEAR(s.quality, 0.0, 1e-12);          // (+1-1+1-1)/4
  EXPECT_NEAR(s.utility, std::log(4) * std::log(4) * 0.75, 1e-9);
}

TEST(MeasuresTest, HandComputedWithPattern) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  RuleStats s = ev.Evaluate(TinyRule(c, true));
  EXPECT_EQ(s.support, 3);                 // rows r0, r2, r4
  EXPECT_NEAR(s.certainty, 7.0 / 9.0, 1e-12);
  EXPECT_NEAR(s.quality, 1.0 / 3.0, 1e-12);
}

TEST(MeasuresTest, ZeroSupportRule) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev(&c);
  EditingRule r = TinyRule(c, false);
  r.pattern.Add({1, {9999}, "missing"});
  RuleStats s = ev.Evaluate(r);
  EXPECT_EQ(s.support, 0);
  EXPECT_EQ(s.certainty, 0);
  EXPECT_EQ(s.quality, 0);
  EXPECT_EQ(s.utility, 0);
}

TEST(MeasuresTest, LabelsChangeQualityOnly) {
  Corpus c = MakeTinyCorpus();
  RuleEvaluator ev1(&c);
  RuleStats before = ev1.Evaluate(TinyRule(c, false));
  // Relabel so that every covered row's truth equals the group argmax.
  ASSERT_TRUE(c.SetLabels({"y1", "y1", "y2", "y1", "y1"}).ok());
  RuleEvaluator ev2(&c);
  RuleStats after = ev2.Evaluate(TinyRule(c, false));
  EXPECT_EQ(after.support, before.support);
  EXPECT_EQ(after.certainty, before.certainty);
  EXPECT_NEAR(after.quality, 1.0, 1e-12);
}

TEST(MeasuresTest, UtilityFunctionShape) {
  // Utility is linear in C+Q and log-squared in S (Fig. 2).
  EXPECT_EQ(UtilityOf(0, 1, 1), 0);
  EXPECT_EQ(UtilityOf(1, 1, 1), 0);
  EXPECT_NEAR(UtilityOf(100, 0.5, 0.25),
              std::log(100) * std::log(100) * 0.75, 1e-9);
  EXPECT_NEAR(UtilityOf(100, 1.0, 0.0) * 2, UtilityOf(100, 1.0, 1.0), 1e-9);
  EXPECT_LT(UtilityOf(100, 1, 1), UtilityOf(10000, 1, 1));
  EXPECT_LT(UtilityOf(100, 1, -1.5), 0);  // negative quality can sink it
  // Marginal gain of support shrinks: U(10k)-U(1k) < 3*(U(100)-U(10)).
  double d_small = UtilityOf(100, 1, 0) - UtilityOf(10, 1, 0);
  double d_large = UtilityOf(10000, 1, 0) - UtilityOf(1000, 1, 0);
  EXPECT_LT(d_large, 3 * d_small);
}

TEST(CoverTest, RefineAndFromScratchAgree) {
  Corpus c = MakeTinyCorpus();
  PatternItem g1{1, {c.input().domain(1)->Lookup("g1")}, "g1"};
  Cover refined = RefineCover(c, FullCover(c), g1);
  Pattern p;
  p.Add(g1);
  Cover scratch = CoverOf(c, p);
  EXPECT_EQ(*refined, *scratch);
  // Rows r0, r2, r3, r4 carry g1; support is only 3 because r3 has no
  // master match, but the cover itself has 4 rows.
  EXPECT_EQ(refined->size(), 4u);
}

TEST(CoverTest, FullCoverIsAllRows) {
  Corpus c = MakeTinyCorpus();
  EXPECT_EQ(FullCover(c)->size(), 5u);
}

// ---------------------------------------------------------------------------
// Property: Lemma 1. If rule1 dominates rule2 then S(rule1) >= S(rule2).
// Randomized parent/child rule pairs over a generated Covid corpus.
// ---------------------------------------------------------------------------

class Lemma1Property : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma1Property, DominationImpliesSupportMonotone) {
  GenOptions g;
  g.input_size = 400;
  g.master_size = 200;
  g.seed = 11;
  GeneratedDataset ds = MakeCovid(g).ValueOrDie();
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  ActionSpaceOptions aopts;
  aopts.support_threshold = 0;
  aopts.max_classes_per_attr = 16;
  ActionSpace space = ActionSpace::Build(corpus, aopts);
  RuleEvaluator ev(&corpus);

  Rng rng(GetParam());
  // Build a random parent rule key, then a strict extension of it.
  RuleKey parent_key;
  for (int tries = 0; tries < 40 && parent_key.size() < 2; ++tries) {
    int32_t a = static_cast<int32_t>(rng.NextUint64(space.state_dim()));
    std::vector<uint8_t> mask = ComputeMask(space, parent_key, {});
    if (mask[static_cast<size_t>(a)]) parent_key = KeyWith(parent_key, a);
  }
  RuleKey child_key = parent_key;
  for (int tries = 0; tries < 40 && child_key.size() < parent_key.size() + 2;
       ++tries) {
    int32_t a = static_cast<int32_t>(rng.NextUint64(space.state_dim()));
    std::vector<uint8_t> mask = ComputeMask(space, child_key, {});
    if (mask[static_cast<size_t>(a)]) child_key = KeyWith(child_key, a);
  }
  if (child_key.size() == parent_key.size()) GTEST_SKIP();

  EditingRule parent = space.Decode(parent_key);
  EditingRule child = space.Decode(child_key);
  ASSERT_TRUE(parent.Dominates(child));
  EXPECT_GE(ev.Evaluate(parent).support, ev.Evaluate(child).support);
}

INSTANTIATE_TEST_SUITE_P(RandomRules, Lemma1Property,
                         ::testing::Range<uint64_t>(1, 21));

// Certainty and f_c bounds: C in [0,1], Q in [-1,1] for random rules.
class MeasureBoundsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MeasureBoundsProperty, BoundsHold) {
  GenOptions g;
  g.input_size = 300;
  g.master_size = 150;
  g.seed = 13;
  GeneratedDataset ds = MakeNursery(g).ValueOrDie();
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  ActionSpaceOptions aopts;
  aopts.max_classes_per_attr = 8;
  ActionSpace space = ActionSpace::Build(corpus, aopts);
  RuleEvaluator ev(&corpus);

  Rng rng(GetParam() * 7919);
  RuleKey key;
  size_t want = 1 + rng.NextUint64(3);
  for (int tries = 0; tries < 60 && key.size() < want; ++tries) {
    int32_t a = static_cast<int32_t>(rng.NextUint64(space.state_dim()));
    std::vector<uint8_t> mask = ComputeMask(space, key, {});
    if (mask[static_cast<size_t>(a)]) key = KeyWith(key, a);
  }
  RuleStats s = ev.Evaluate(space.Decode(key));
  EXPECT_GE(s.certainty, 0.0);
  EXPECT_LE(s.certainty, 1.0 + 1e-12);
  EXPECT_GE(s.quality, -1.0 - 1e-12);
  EXPECT_LE(s.quality, 1.0 + 1e-12);
  EXPECT_GE(s.support, 0);
  EXPECT_LE(s.support, static_cast<long>(corpus.input().num_rows()));
}

INSTANTIATE_TEST_SUITE_P(RandomRules, MeasureBoundsProperty,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace erminer
