// Unit tests for the search subsystem (src/search): the frontier and dedup
// primitives every policy drives, the beam truncation order, the unified
// prune-reason taxonomy (names shared with the obs wire vocabulary), and
// the batched EvalCache path — GetBatch must return entries bit-identical
// to per-call Get for hits, misses, refinement-hinted misses and
// batch-internal duplicate keys, and the engine's EvaluateCandidate must
// produce the same RuleStats with batching on and off.

#include <gtest/gtest.h>

#include <vector>

#include "core/measures.h"
#include "eval/experiment.h"
#include "index/eval_cache.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "search/prune.h"
#include "search/search_engine.h"
#include "test_util.h"

namespace erminer {
namespace {

using erminer::testing::SeededCorpusCache;
using search::PruneReason;
using search::SearchEngine;

const Corpus& TestCorpus() {
  static const Corpus* corpus = [] {
    const GeneratedDataset& ds = SeededCorpusCache::Get("adult", 800, 400, 7);
    return new Corpus(BuildCorpus(ds).ValueOrDie());
  }();
  return *corpus;
}

/// (input, master) attribute pairs usable as LHS pairs.
LhsPairs MatchedPairs(const Corpus& corpus) {
  LhsPairs pairs;
  for (size_t a = 0; a < corpus.input().num_cols(); ++a) {
    if (static_cast<int>(a) == corpus.y_input()) continue;
    for (int m : corpus.match().Matches(static_cast<int>(a))) {
      if (m == corpus.y_master()) continue;
      pairs.emplace_back(static_cast<int>(a), m);
    }
  }
  return pairs;
}

TEST(PruneTaxonomyTest, WireReasonsMirrorObsEnum) {
  for (size_t i = 0; i < search::kNumWireReasons; ++i) {
    const auto reason = static_cast<PruneReason>(i);
    EXPECT_EQ(static_cast<size_t>(search::WireReason(reason)), i);
  }
}

TEST(PruneTaxonomyTest, WireReasonNamesMatchObsVocabulary) {
  // tools/decision_stats and scripts/watch_run.py group prunes by the obs
  // names; the search taxonomy must keep speaking the same vocabulary.
  for (size_t i = 0; i < search::kNumWireReasons; ++i) {
    EXPECT_STREQ(
        search::PruneReasonName(static_cast<PruneReason>(i)),
        obs::PruneReasonName(static_cast<obs::PruneReason>(i)));
  }
  EXPECT_STREQ(search::PruneReasonName(PruneReason::kMasked), "masked");
  EXPECT_STREQ(search::PruneReasonName(PruneReason::kDepth), "depth");
}

TEST(SearchEngineTest, FrontierIsFifo) {
  const Corpus& c = TestCorpus();
  RuleEvaluator ev(&c);
  SearchEngine engine(&c, nullptr, &ev, MinerOptions{},
                      obs::DecisionMiner::kEnu, "test_fifo");
  EXPECT_FALSE(engine.HasFrontier());
  for (int32_t a = 0; a < 4; ++a) {
    engine.PushNode({RuleKey{a}, nullptr, static_cast<double>(a), 0, 0});
  }
  EXPECT_EQ(engine.FrontierSize(), 4u);
  for (int32_t a = 0; a < 4; ++a) {
    SearchEngine::Node node = engine.PopFront();
    EXPECT_EQ(node.key, RuleKey{a});
  }
  EXPECT_FALSE(engine.HasFrontier());
}

TEST(SearchEngineTest, TruncateByScoreKeepsBestDescending) {
  const Corpus& c = TestCorpus();
  RuleEvaluator ev(&c);
  SearchEngine engine(&c, nullptr, &ev, MinerOptions{},
                      obs::DecisionMiner::kBeam, "test_beam");
  for (double score : {0.5, 3.0, 1.0, 2.0}) {
    engine.PushNode({RuleKey{}, nullptr, score, 0, 0});
  }
  engine.TruncateByScore(2);
  ASSERT_EQ(engine.FrontierSize(), 2u);
  EXPECT_EQ(engine.PopFront().score, 3.0);
  EXPECT_EQ(engine.PopFront().score, 2.0);

  // Width at or above the frontier size is a no-op.
  engine.PushNode({RuleKey{}, nullptr, 1.0, 0, 0});
  engine.TruncateByScore(5);
  EXPECT_EQ(engine.FrontierSize(), 1u);
}

TEST(SearchEngineTest, DedupTracksDiscoveredKeys) {
  const Corpus& c = TestCorpus();
  RuleEvaluator ev(&c);
  SearchEngine engine(&c, nullptr, &ev, MinerOptions{},
                      obs::DecisionMiner::kEnu, "test_dedup");
  EXPECT_TRUE(engine.InsertDedup(RuleKey{1}));
  EXPECT_FALSE(engine.InsertDedup(RuleKey{1}));
  EXPECT_TRUE(engine.InsertDedup(RuleKey{2}));
  EXPECT_EQ(engine.dedup().size(), 2u);
  engine.ClearDedup();
  EXPECT_TRUE(engine.InsertDedup(RuleKey{1}));
}

void ExpectEntriesIdentical(const EvalCache::Entry& a,
                            const EvalCache::Entry& b) {
  ASSERT_EQ(a.column->group.size(), b.column->group.size());
  for (size_t r = 0; r < a.column->group.size(); ++r) {
    const Group* ga = a.column->group[r];
    const Group* gb = b.column->group[r];
    ASSERT_EQ(ga == nullptr, gb == nullptr) << "row " << r;
    if (ga == nullptr) continue;
    ASSERT_EQ(ga->counts, gb->counts) << "row " << r;  // values AND order
    ASSERT_EQ(ga->total, gb->total) << "row " << r;
    ASSERT_EQ(ga->max_count, gb->max_count) << "row " << r;
    ASSERT_EQ(ga->argmax, gb->argmax) << "row " << r;
  }
}

TEST(EvalCacheBatchTest, GetBatchMatchesPerCallGet) {
  const Corpus& c = TestCorpus();
  const LhsPairs pairs = MatchedPairs(c);
  ASSERT_GE(pairs.size(), 3u);
  const LhsPairs parent = {pairs[0]};
  const LhsPairs child_a = {pairs[0], pairs[1]};
  const LhsPairs child_b = {pairs[0], pairs[2]};

  EvalCache batched(&c, 16);
  batched.set_refine_enabled(true);
  EvalCache per_call(&c, 16);
  per_call.set_refine_enabled(true);

  // Warm the parent so the batch mixes one hit with refinement-served
  // misses; key 3 duplicates key 0 inside the batch (the alias path).
  batched.Get(parent);
  per_call.Get(parent);

  const std::vector<const LhsPairs*> keys = {&child_a, &child_b, &parent,
                                             &child_a};
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  std::vector<EvalCache::Entry> entries = batched.GetBatch(&parent, keys);
  obs::MetricsSnapshot delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counters["eval_cache/batched"], keys.size());

  ASSERT_EQ(entries.size(), keys.size());
  // Batch-internal duplicates share one build.
  EXPECT_EQ(entries[0].column, entries[3].column);
  EXPECT_EQ(entries[0].index, entries[3].index);
  for (size_t i = 0; i < keys.size(); ++i) {
    ExpectEntriesIdentical(entries[i], per_call.Get(*keys[i], &parent));
  }

  // A second batch is all hits and still identical.
  std::vector<EvalCache::Entry> again = batched.GetBatch(&parent, keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    ExpectEntriesIdentical(again[i], entries[i]);
  }
}

TEST(SearchEngineTest, EvaluateCandidateMatchesBothEvalPaths) {
  const Corpus& c = TestCorpus();
  const LhsPairs pairs = MatchedPairs(c);
  ASSERT_GE(pairs.size(), 2u);
  EditingRule rule;
  rule.y_input = c.y_input();
  rule.y_master = c.y_master();
  rule.AddLhs(pairs[0].first, pairs[0].second);
  rule.AddLhs(pairs[1].first, pairs[1].second);
  const LhsPairs parent = {pairs[0]};

  MinerOptions batched_opts;
  batched_opts.batch_eval = true;
  MinerOptions legacy_opts;
  legacy_opts.batch_eval = false;
  RuleEvaluator ev_batched(&c);
  RuleEvaluator ev_legacy(&c);
  SearchEngine batched(&c, nullptr, &ev_batched, batched_opts,
                       obs::DecisionMiner::kEnu, "test_eval_b");
  SearchEngine legacy(&c, nullptr, &ev_legacy, legacy_opts,
                      obs::DecisionMiner::kEnu, "test_eval_l");

  const RuleStats a = batched.EvaluateCandidate(rule, nullptr, &parent);
  const RuleStats b = legacy.EvaluateCandidate(rule, nullptr, &parent);
  EXPECT_EQ(a.support, b.support);
  EXPECT_EQ(a.certainty, b.certainty);  // bit-identity, not tolerance
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.utility, b.utility);
  EXPECT_GT(a.support, 0);
  EXPECT_EQ(ev_batched.num_evaluations(), ev_legacy.num_evaluations());
}

}  // namespace
}  // namespace erminer
