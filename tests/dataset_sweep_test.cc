// Parameterized invariants over ALL four paper datasets x seeds: generation
// invariants, corpus shared-dictionary invariants, and a mining smoke test.

#include <set>

#include <gtest/gtest.h>

#include "core/enu_miner.h"
#include "datagen/generators.h"
#include "eval/experiment.h"

namespace erminer {
namespace {

struct SweepParam {
  const char* dataset;
  uint64_t seed;
};

class DatasetSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  GeneratedDataset Make() {
    GenOptions g;
    g.input_size = 400;
    g.master_size = 300;
    g.noise_rate = 0.1;
    g.seed = GetParam().seed;
    return MakeByName(GetParam().dataset, g).ValueOrDie();
  }
};

TEST_P(DatasetSweep, GenerationInvariants) {
  GeneratedDataset ds = Make();
  EXPECT_EQ(ds.input.num_rows(), 400u);
  EXPECT_EQ(ds.master.num_rows(), 300u);
  ASSERT_TRUE(ds.input.Validate().ok());
  ASSERT_TRUE(ds.master.Validate().ok());
  // Master is clean; dirty bookkeeping matches reality.
  for (const auto& row : ds.master.rows) {
    for (const auto& cell : row) EXPECT_FALSE(cell.empty());
  }
  size_t counted = 0;
  for (size_t c = 0; c < ds.input.num_cols(); ++c) {
    for (size_t r = 0; r < ds.input.num_rows(); ++r) {
      if (ds.injection.dirty[c][r]) {
        ++counted;
        EXPECT_NE(ds.input.rows[r][c], ds.clean_input.rows[r][c]);
      }
    }
  }
  EXPECT_EQ(counted, ds.injection.num_errors);
  // Roughly the requested noise rate (generous tolerance at this size).
  double cells = static_cast<double>(400 * ds.input.num_cols());
  EXPECT_NEAR(static_cast<double>(counted) / cells, 0.1, 0.03);
}

TEST_P(DatasetSweep, CorpusSharedDictionaries) {
  GeneratedDataset ds = Make();
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  // Every matched pair shares a Domain object; codes agree on strings.
  for (size_t a = 0; a < corpus.input().num_cols(); ++a) {
    for (int am : corpus.match().Matches(static_cast<int>(a))) {
      EXPECT_EQ(corpus.input().domain(a).get(),
                corpus.master().domain(static_cast<size_t>(am)).get())
          << "pair (" << a << "," << am << ")";
    }
  }
  EXPECT_EQ(corpus.y_domain().get(),
            corpus.master()
                .domain(static_cast<size_t>(corpus.y_master()))
                .get());
}

TEST_P(DatasetSweep, EnuMinerSmoke) {
  GeneratedDataset ds = Make();
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  MinerOptions o;
  o.k = 10;
  o.support_threshold = 25;
  MineResult r = EnuMine(corpus, o);
  EXPECT_TRUE(IsNonRedundant(r.rules));
  for (const auto& sr : r.rules) {
    EXPECT_GE(sr.stats.support, 25);
    EXPECT_GE(sr.rule.LhsSize(), 1u);
    EXPECT_LE(sr.stats.certainty, 1.0 + 1e-12);
  }
}

TEST_P(DatasetSweep, RepairNeverExceedsRowCount) {
  GeneratedDataset ds = Make();
  Corpus corpus = BuildCorpus(ds).ValueOrDie();
  MinerOptions o;
  o.k = 10;
  o.support_threshold = 25;
  TrialResult tr =
      RunTrial(ds, Method::kEnuMiner, o, DefaultRlOptions(ds)).ValueOrDie();
  EXPECT_LE(tr.repair.num_predicted, tr.repair.num_rows);
  EXPECT_GE(tr.repair.f1, 0.0);
  EXPECT_LE(tr.repair.f1, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetSweep,
    ::testing::Values(SweepParam{"nursery", 1}, SweepParam{"nursery", 2},
                      SweepParam{"adult", 1}, SweepParam{"adult", 2},
                      SweepParam{"covid", 1}, SweepParam{"covid", 2},
                      SweepParam{"location", 1}, SweepParam{"location", 2}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(info.param.dataset) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace erminer
